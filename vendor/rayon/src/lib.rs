//! Offline stand-in for `rayon` (see `vendor/README.md`).
//!
//! Exposes the `par_iter` / `par_iter_mut` / `into_par_iter` entry
//! points the workspace uses, backed by **sequential** `std` iterators.
//! That keeps `cargo build --offline` working with zero third-party
//! code while preserving semantics exactly: everything the workspace
//! parallelises is order-independent by construction (the
//! `parallel_sweep_equals_sequential` test asserts bit-equality of the
//! two schedules), so a sequential schedule is a valid — if slower —
//! execution. Because the adapters *are* `std` iterators, the
//! downstream `.map().collect()`, `.zip()`, `.enumerate().for_each()`
//! chains compile unchanged.

pub mod prelude {
    /// `.into_par_iter()` — sequential stand-in: plain `into_iter()`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// `.par_iter()` — sequential stand-in: plain `iter()`.
    pub trait IntoParallelRefIterator<'a> {
        type Item: 'a;
        type Iter: Iterator<Item = &'a Self::Item>;
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    /// `.par_iter_mut()` — sequential stand-in: plain `iter_mut()`.
    pub trait IntoParallelRefMutIterator<'a> {
        type Item: 'a;
        type Iter: Iterator<Item = &'a mut Self::Item>;
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Item = T;
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = T;
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_behave_like_std_iterators() {
        let v = vec![1u32, 2, 3];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let squared: Vec<u32> = (1u32..4).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squared, vec![1, 4, 9]);
        let mut w = vec![1u32, 2, 3];
        w.par_iter_mut()
            .zip(v.par_iter())
            .for_each(|(a, b)| *a += b);
        assert_eq!(w, vec![2, 4, 6]);
    }
}
