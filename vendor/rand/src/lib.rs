//! Offline stand-in for the `rand` crate.
//!
//! This workspace must build and test with `cargo build --offline` in
//! network-isolated environments, so the handful of external crates it
//! depends on are vendored as minimal local implementations (see
//! `vendor/README.md`). This one covers exactly the `rand 0.8` API
//! surface the workspace uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen_range`] over integer ranges (half-open and inclusive)
//!   and half-open `f64` ranges
//! * [`Rng::gen_bool`], [`Rng::gen`] (for `f64`, `bool`, `u32`, `u64`,
//!   `usize`)
//! * [`seq::SliceRandom::shuffle`]
//!
//! The generator is a SplitMix64 stream — deterministic and seed-stable,
//! but **not** bit-compatible with upstream `rand`'s ChaCha-based
//! `StdRng`. Nothing in the workspace depends on upstream's exact
//! streams: all random use is seed-to-seed determinism (asserted by the
//! `topology_generation_is_seed_stable` tests) plus statistical
//! properties, never golden values.

/// A source of random `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (only the `seed_from_u64` entry point is used
/// by this workspace).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// One SplitMix64 step: advances `*s` and returns the mixed output.
#[inline]
pub(crate) fn splitmix64(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: a SplitMix64 stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix once so nearby seeds do not give nearby streams.
            let mut s = seed;
            let _ = splitmix64(&mut s);
            StdRng { state: s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        f64::sample(self) < p
    }

    /// Draw from the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates), the only `seq` API the workspace
    /// uses.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seed_stability() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1_500..2_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
