//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Prints and parses JSON against the vendored `serde`'s [`Value`]
//! tree. Covers what the workspace calls: [`to_string`] and
//! [`from_str`]. The grammar support is complete JSON (objects,
//! arrays, strings with escapes, numbers, booleans, null); the
//! printer is compact (no whitespace), matching upstream
//! `to_string`'s framing.

use serde::{de::DeserializeOwned, Error, Serialize, Value};

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserialize an instance of `T` from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

// ---- printer ----

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest-roundtrip float formatting;
                // it always includes a `.0` or exponent, so the value
                // re-parses as a float.
                out.push_str(&format!("{f:?}"));
            } else {
                // Upstream serde_json has no representation for
                // non-finite floats and emits null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                self.pos += 1; // leave `pos` at the `u` for parse_hex4
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::custom("invalid surrogate pair"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?
                            };
                            s.push(c);
                            continue;
                        }
                        _ => return Err(Error::custom("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    /// Parse exactly four hex digits; on entry `pos` is at the `u` of
    /// a `\u` escape.
    fn parse_hex4(&mut self) -> Result<u32> {
        self.pos += 1; // the `u`
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| Error::custom("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid UTF-8");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_container_roundtrip() {
        let v = vec![(1u64, 2u64), (3, 4)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3,4]]");
        let back: Vec<(u64, u64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn derived_struct_roundtrips_through_text() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct S {
            name: String,
            xs: Vec<u32>,
            frac: f64,
            neg: i32,
        }
        let s = S {
            name: "a \"b\"\n".into(),
            xs: vec![1, 2],
            frac: 0.25,
            neg: -3,
        };
        let json = to_string(&s).unwrap();
        let back: S = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parses_whitespace_escapes_and_floats() {
        let v: Vec<f64> = from_str(" [ 1.5 , 2e3 , -0.25 ] ").unwrap();
        assert_eq!(v, vec![1.5, 2000.0, -0.25]);
        let s: String = from_str(r#""tab\there Aé""#).unwrap();
        assert_eq!(s, "tab\there Aé");
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("").is_err());
    }

    #[test]
    fn float_printing_reparses_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e300, -2.5e-10, 4.0] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, f);
        }
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
