//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the slice of the proptest API this workspace uses:
//! `proptest!` with an optional `#![proptest_config(..)]` header,
//! `prop_oneof!` / `Just` / `.prop_map` / tuple strategies / integer
//! and float range strategies / `any::<T>()` / `collection::vec`, and
//! the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the sampled inputs
//!   (`Debug`-printed) and the deterministic case/attempt indices, so
//!   failures are reproducible but not minimized.
//! * **Deterministic seeding.** Each case's RNG is derived from the
//!   test name and case index via SplitMix64 — there is no OS entropy
//!   and no persistence file, so runs are identical everywhere.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// SplitMix64 generator seeded from (test name, case, attempt).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn from_parts(name_seed: u64, case: u32, attempt: u64) -> Self {
            let mut state = name_seed
                ^ u64::from(case).wrapping_mul(0xA24B_AED4_963E_E407)
                ^ attempt.wrapping_mul(0x9FB2_1C65_1E98_DF25);
            // One warm-up step decorrelates adjacent (case, attempt) pairs.
            splitmix(&mut state);
            TestRng { state }
        }

        pub fn next_u64(&mut self) -> u64 {
            splitmix(&mut self.state)
        }

        /// Uniform draw in `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Outcome of one sampled case body.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed — abort the test.
        Fail(String),
        /// `prop_assume!` rejected the inputs — resample.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        pub fn reject(msg: String) -> Self {
            TestCaseError::Reject(msg)
        }

        /// Attach the Debug-printed inputs to a failure message.
        pub fn with_inputs(self, inputs: &str) -> Self {
            match self {
                TestCaseError::Fail(msg) => {
                    TestCaseError::Fail(format!("{msg}\n  inputs: {inputs}"))
                }
                reject => reject,
            }
        }
    }

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream's default.
            ProptestConfig { cases: 256 }
        }
    }

    fn name_seed(name: &str) -> u64 {
        // FNV-1a, good enough to decorrelate test names.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Driver behind the `proptest!` macro: run `config.cases`
    /// successful samples of `body`, resampling on rejection.
    pub fn run_cases(
        config: &ProptestConfig,
        name: &str,
        mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let seed = name_seed(name);
        let max_rejects = config.cases.saturating_mul(64).max(4096);
        let mut rejects = 0u32;
        let mut case = 0u32;
        let mut attempt = 0u64;
        while case < config.cases {
            let mut rng = TestRng::from_parts(seed, case, attempt);
            match body(&mut rng) {
                Ok(()) => {
                    case += 1;
                    attempt = 0;
                }
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    attempt += 1;
                    assert!(
                        rejects <= max_rejects,
                        "proptest `{name}`: too many rejected cases ({rejects}); last: {why}"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest `{name}` failed at case {case} (attempt {attempt}):\n  {msg}")
                }
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use super::Debug;

    /// A recipe for producing values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree / shrinking: `sample`
    /// draws one value directly.
    pub trait Strategy {
        type Value: Debug;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Uniform choice over same-typed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }

    macro_rules! impl_int_range_strategy {
        ($(($t:ty, $u:ty)),*) => {$(
            impl Strategy for super::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Wrapping width-preserving arithmetic handles the
                    // signed types: the span always fits in the
                    // unsigned counterpart.
                    let span = self.end.wrapping_sub(self.start) as $u as u64;
                    self.start.wrapping_add(rng.below(span) as $u as $t)
                }
            }

            impl Strategy for super::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as $u as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $u as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(
        (u8, u8),
        (u16, u16),
        (u32, u32),
        (u64, u64),
        (usize, usize),
        (i8, u8),
        (i16, u16),
        (i32, u32),
        (i64, u64),
        (isize, usize)
    );

    impl Strategy for super::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// Full-domain strategy backing `any::<T>()`.
    pub struct Full<T>(pub(crate) super::PhantomData<T>);

    macro_rules! impl_full_int {
        ($($t:ty),*) => {$(
            impl Strategy for Full<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_full_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Full<bool> {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod arbitrary {
    use super::strategy::{Full, Strategy};
    use super::PhantomData;

    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = Full<$t>;

                fn arbitrary() -> Full<$t> {
                    Full(PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// `any::<T>()` — the full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Length bounds for [`vec()`]; built from `usize` ranges.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<super::Range<usize>> for SizeRange {
        fn from(r: super::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<super::RangeInclusive<usize>> for SizeRange {
        fn from(r: super::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ---- macros ----

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                let __vals = ($($crate::strategy::Strategy::sample(&($strat), __rng),)+);
                let __inputs = ::std::format!("{:?}", __vals);
                let ($($pat,)+) = __vals;
                let __out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __out.map_err(|e| e.with_inputs(&__inputs))
            });
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n    left: {:?}\n   right: {:?}",
            stringify!($a),
            stringify!($b),
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n    left: {:?}\n   right: {:?}\n {}",
            stringify!($a),
            stringify!($b),
            __a,
            __b,
            ::std::format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{} != {}`\n    both: {:?}",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::from_parts(1, 2, 0);
        let mut b = TestRng::from_parts(1, 2, 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_parts(1, 3, 0);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    crate::proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 1u8..=80, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=80).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn oneof_map_tuple_and_vec_compose(
            v in crate::collection::vec(
                crate::prop_oneof![Just(0u64), (1u64..10, 1u64..10).prop_map(|(a, b)| a * b)],
                0..20,
            ),
            flag in any::<bool>(),
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 82));
            // Rejects roughly half the cases — exercises resampling.
            prop_assume!(flag);
        }
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failures_report_inputs() {
        crate::proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
