//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Emits impls of the vendored `serde`'s [`Serialize`]/[`Deserialize`]
//! traits (the `Value`-tree pair) in upstream's externally-tagged
//! conventions. Parsing is done directly over the `proc_macro` token
//! stream — the container can't pull in `syn`/`quote` — so only the
//! shapes this workspace actually derives are supported:
//!
//! * non-generic structs (named, tuple, unit)
//! * non-generic enums with unit / tuple / struct variants
//! * the `#[serde(default)]` field attribute
//!
//! Anything else (generics, lifetimes, other serde attributes) panics
//! at expansion time with a clear message rather than silently
//! miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---- parsed shape ----

struct Field {
    name: String,
    default: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---- token-stream parsing ----

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Skip `#[...]` attribute groups; report whether any was
    /// `#[serde(default)]`. Unknown `#[serde(...)]` contents panic.
    fn skip_attrs(&mut self) -> bool {
        let mut has_default = false;
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next();
            let Some(TokenTree::Group(g)) = self.next() else {
                panic!("serde_derive: malformed attribute");
            };
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    let Some(TokenTree::Group(args)) = inner.get(1) else {
                        panic!("serde_derive: bare #[serde] attribute");
                    };
                    for t in args.stream() {
                        match t {
                            TokenTree::Ident(a) if a.to_string() == "default" => {
                                has_default = true;
                            }
                            TokenTree::Punct(p) if p.as_char() == ',' => {}
                            other => panic!(
                                "serde_derive: unsupported serde attribute `{other}` \
                                 (only `default` is implemented in the vendored stand-in)"
                            ),
                        }
                    }
                }
            }
        }
        has_default
    }

    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            self.next();
            if matches!(
                self.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected {what}, found {other:?}"),
        }
    }

    /// Consume one type, i.e. tokens up to a top-level `,` (angle
    /// brackets tracked manually — they are punctuation, not groups).
    fn skip_type(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    while !c.at_end() {
        let default = c.skip_attrs();
        c.skip_visibility();
        let name = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        c.skip_type();
        c.next(); // the separating comma, if any
        fields.push(Field { name, default });
    }
    fields
}

fn tuple_arity(ts: TokenStream) -> usize {
    let mut c = Cursor::new(ts);
    let mut arity = 0;
    loop {
        c.skip_attrs();
        c.skip_visibility();
        if c.at_end() {
            break;
        }
        c.skip_type();
        arity += 1;
        c.next(); // comma
    }
    arity
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.skip_attrs();
        let name = c.expect_ident("variant name");
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                c.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(tuple_arity(g.stream()));
                c.next();
                f
            }
            _ => Fields::Unit,
        };
        match c.next() {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => panic!(
                "serde_derive: unsupported token {other:?} after variant `{name}` \
                 (discriminants are not implemented in the vendored stand-in)"
            ),
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_visibility();
    let kw = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the vendored stand-in");
    }
    let shape = match (kw.as_str(), c.peek()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Struct(Fields::Named(parse_named_fields(g.stream())))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Struct(Fields::Tuple(tuple_arity(g.stream())))
        }
        ("struct", _) => Shape::Struct(Fields::Unit),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Enum(parse_variants(g.stream()))
        }
        _ => panic!("serde_derive: expected a struct or enum body for `{name}`"),
    };
    Item { name, shape }
}

// ---- code generation ----

/// `to_value` expression for a struct/variant body, given per-field
/// accessor expressions (e.g. `&self.x` or a bound pattern name).
fn ser_named(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value({a}))",
                n = f.name,
                a = access(&f.name)
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn de_named(ty: &str, ctor: &str, fields: &[Field], payload: &str) -> String {
    let mut s = format!(
        "{{ if {payload}.as_map().is_none() {{ \
            return ::std::result::Result::Err(::serde::Error::unexpected(\"struct {ty}\", {payload})); \
         }} ::std::result::Result::Ok({ctor} {{ "
    );
    for f in fields {
        let missing = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::Error::missing_field(\"{ty}\", \"{n}\"))",
                n = f.name
            )
        };
        s.push_str(&format!(
            "{n}: match {payload}.get(\"{n}\") {{ \
                ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?, \
                ::std::option::Option::None => {missing}, \
             }}, ",
            n = f.name
        ));
    }
    s.push_str("}) }");
    s
}

fn de_tuple(ty: &str, ctor: &str, arity: usize, payload: &str) -> String {
    if arity == 1 {
        return format!(
            "::std::result::Result::Ok({ctor}(::serde::Deserialize::from_value({payload})?))"
        );
    }
    let elems: Vec<String> = (0..arity)
        .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
        .collect();
    format!(
        "{{ let s = {payload}.as_seq().ok_or_else(|| ::serde::Error::unexpected(\"tuple {ty}\", {payload}))?; \
           if s.len() != {arity} {{ \
               return ::std::result::Result::Err(::serde::Error::custom(\
                   ::std::format!(\"expected {arity} elements for {ty}, found {{}}\", s.len()))); \
           }} \
           ::std::result::Result::Ok({ctor}({elems})) }}",
        elems = elems.join(", ")
    )
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => ser_named(fields, |f| format!("&self.{f}")),
        Shape::Struct(Fields::Tuple(arity)) => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
        }
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                let tag = format!("::std::string::String::from(\"{vn}\")");
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!("{name}::{vn} => ::serde::Value::Str({tag}), "))
                    }
                    Fields::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Map(::std::vec![({tag}, {payload})]), ",
                            binds = binds.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let payload = ser_named(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![({tag}, {payload})]), ",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
             fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => de_named(name, name, fields, "v"),
        Shape::Struct(Fields::Tuple(arity)) => de_tuple(name, name, *arity, "v"),
        Shape::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                let ctor = format!("{name}::{vn}");
                match &v.fields {
                    Fields::Unit => unit_arms
                        .push_str(&format!("\"{vn}\" => ::std::result::Result::Ok({ctor}), ")),
                    Fields::Tuple(arity) => data_arms.push_str(&format!(
                        "\"{vn}\" => {}, ",
                        de_tuple(&format!("{name}::{vn}"), &ctor, *arity, "payload")
                    )),
                    Fields::Named(fields) => data_arms.push_str(&format!(
                        "\"{vn}\" => {}, ",
                        de_named(&format!("{name}::{vn}"), &ctor, fields, "payload")
                    )),
                }
            }
            format!(
                "match v {{ \
                     ::serde::Value::Str(s) => match s.as_str() {{ \
                         {unit_arms} \
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown variant `{{other}}` of {name}\"))), \
                     }}, \
                     ::serde::Value::Map(m) if m.len() == 1 => {{ \
                         let (tag, payload) = &m[0]; \
                         match tag.as_str() {{ \
                             {data_arms} \
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))), \
                         }} \
                     }}, \
                     other => ::std::result::Result::Err(::serde::Error::unexpected(\"enum {name}\", other)), \
                 }}"
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{ \
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
