//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! The real serde decouples data structures from data formats through a
//! visitor pair. This stand-in collapses that design to a single
//! self-describing [`Value`] tree — `Serialize` renders into it,
//! `Deserialize` reads back out of it — because the only format the
//! workspace uses is JSON via the vendored `serde_json`, which maps
//! `Value` to text 1:1. The derive macro (`serde_derive`, re-exported
//! here like upstream's `derive` feature) emits impls in upstream's
//! externally-tagged conventions, so the JSON this produces matches
//! what real serde would emit for these types: structs as objects,
//! unit enum variants as strings, data-carrying variants as
//! single-key objects, and `#[serde(default)]` fields backfilled when
//! missing.

// Let the derive macro's generated `::serde::` paths resolve inside
// this crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing intermediate tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers (the common case for this workspace).
    U64(u64),
    /// Negative integers.
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Key–value pairs in insertion order (order is part of the
    /// serialized text but not of equality for maps).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }

    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error(format!("missing field `{field}` of `{ty}`"))
    }

    pub fn unexpected(ty: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        };
        Error(format!("expected {ty}, found {kind}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree. The lifetime mirrors
/// upstream's zero-copy parameter; this stand-in never borrows, the
/// parameter exists so `for<'de> Deserialize<'de>` bounds written
/// against upstream compile unchanged.
pub trait Deserialize<'de>: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

pub mod de {
    /// Owned deserialization, as a blanket alias (upstream's
    /// `serde::de::DeserializeOwned`).
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T: for<'de> crate::Deserialize<'de>> DeserializeOwned for T {}
}

// ---- primitive impls ----

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = match *v {
                    Value::U64(u) => u,
                    Value::I64(i) if i >= 0 => i as u64,
                    _ => return Err(Error::unexpected(stringify!($t), v)),
                };
                <$t>::try_from(u).map_err(|_| {
                    Error::custom(format!("{u} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::U64(i as u64)
                } else {
                    Value::I64(i)
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = match *v {
                    Value::I64(i) => i,
                    Value::U64(u) => {
                        i64::try_from(u).map_err(|_| Error::custom(format!("{u} overflows i64")))?
                    }
                    _ => return Err(Error::unexpected(stringify!($t), v)),
                };
                <$t>::try_from(i).map_err(|_| {
                    Error::custom(format!("{i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::unexpected("bool", v)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::U64(u) => Ok(u as f64),
            Value::I64(i) => Ok(i as f64),
            _ => Err(Error::unexpected("f64", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::unexpected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::unexpected("sequence", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const N: usize = [$($n),+].len();
                let s = v.as_seq().ok_or_else(|| Error::unexpected("tuple", v))?;
                if s.len() != N {
                    return Err(Error::custom(format!(
                        "expected a tuple of {N} elements, found {}",
                        s.len()
                    )));
                }
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&Value::U64(4)), Ok(4.0));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            Vec::<u64>::from_value(&vec![1u64, 2, 3].to_value()),
            Ok(vec![1, 2, 3])
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(
            <(u64, u64)>::from_value(&(3u64, 9u64).to_value()),
            Ok((3, 9))
        );
    }

    #[test]
    fn out_of_range_is_an_error() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
    }

    #[test]
    fn derive_emits_externally_tagged_impls() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct P {
            x: u32,
            #[serde(default)]
            y: u64,
        }

        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        enum E {
            Unit,
            New(u32),
            Pair(u32, u64),
            Named { a: u32, b: bool },
        }

        let p = P { x: 3, y: 9 };
        assert_eq!(P::from_value(&p.to_value()), Ok(p));
        // #[serde(default)] backfills a missing field.
        let v = Value::Map(vec![("x".into(), Value::U64(5))]);
        assert_eq!(P::from_value(&v), Ok(P { x: 5, y: 0 }));
        // Missing non-default field errors.
        assert!(P::from_value(&Value::Map(vec![])).is_err());

        for e in [
            E::Unit,
            E::New(7),
            E::Pair(1, 2),
            E::Named { a: 3, b: true },
        ] {
            let v = e.to_value();
            assert_eq!(E::from_value(&v), Ok(e));
        }
        assert_eq!(E::Unit.to_value(), Value::Str("Unit".into()));
    }
}
