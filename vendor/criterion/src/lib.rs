//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Same macro/builder surface as upstream (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `BenchmarkId`, `Throughput`,
//! `Bencher::iter`), but the measurement core is a plain wall-clock
//! loop: warm up, pick an iteration count targeting ~100 ms, report
//! mean ns/iter (plus elements/s when a throughput is set) to stdout.
//! No statistics, no HTML reports, no comparison against saved
//! baselines — enough to run `cargo bench` offline and eyeball
//! relative numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration timing driver handed to bench closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: one timed call sizes the batch.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(100);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.ns_per_iter = t1.elapsed().as_nanos() as f64 / iters as f64;
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&id.0, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    let per_sec = |count: u64| count as f64 * 1e9 / b.ns_per_iter.max(1.0);
    match throughput {
        Some(Throughput::Elements(n)) => {
            println!(
                "{label}: {:.0} ns/iter ({:.0} elem/s)",
                b.ns_per_iter,
                per_sec(n)
            );
        }
        Some(Throughput::Bytes(n)) => {
            println!(
                "{label}: {:.0} ns/iter ({:.0} B/s)",
                b.ns_per_iter,
                per_sec(n)
            );
        }
        None => println!("{label}: {:.0} ns/iter", b.ns_per_iter),
    }
}

/// Upstream signature compatibility: `criterion_group!(name, fns...)`
/// defines a function running each bench fn against a fresh
/// [`Criterion`]; `criterion_main!(groups...)` defines `main`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_measures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.throughput(Throughput::Elements(64));
        let mut ran = 0u32;
        g.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
            ran += 1;
        });
        g.finish();
        assert_eq!(ran, 1);
    }
}
