//! `overlap-cli` — explore latency-hiding simulations from the command line.
//!
//! ```text
//! overlap-cli [--host <topo>] [--delays <model>] [--guest <shape>]
//!             [--steps N] [--strategy <s>] [--seed N] [--engine <e>]
//!             [--faults <f>]...
//! overlap-cli fuzz [--seed N] [--cases K] [--dag]
//! overlap-cli serve [--addr A] [--workers N] [--store FILE]
//! overlap-cli submit [--addr A] [--wait] <scenario flags as above>
//! overlap-cli session|watch|pause|resume|cancel <ID> [--addr A]
//! overlap-cli runs [--hash H] [--addr A]
//! overlap-cli cache|stop-daemon [--addr A]
//!
//!   fuzz        differential fuzzing: sample K random scenarios (guest,
//!               host, delays, assignment, costs, faults, multicast,
//!               memory budgets), lower each once and run every legal
//!               engine plus the parallel reference over the shared plan,
//!               auditing state agreement and the invariant catalogue.
//!               Failures are shrunk to a minimal repro printed as a
//!               paste-able regression test; exits non-zero on any
//!               divergence. --dag forces every scenario onto a
//!               task-graph guest (random layered DAGs, wavefronts,
//!               fork-joins) with memory budgets twice as likely.
//!
//!   --host      line:N | ring:N | mesh:WxH | torus:WxH | hypercube:D |
//!               tree:LEVELS | rreg:N:DEG | bfly:K | ccc:K |
//!               geo:N:RADIUS_PCT:MAXDELAY | cliques:K | h1:N | h2:N
//!               (default line:32)
//!   --delays    const:D | uniform:LO:HI | bimodal:LO:HI:PCT |
//!               heavy:MIN:ALPHAx100:CAP | spike:BASE:SPIKE:PERIOD
//!               (default uniform:1:9; ignored by cliques/h1/h2)
//!   --guest     line:M | ring:M | mesh:WxH | torus:WxH | mesh3:WxHxD |
//!               btree:LEVELS    (default line:2×host)
//!   --steps     guest steps to simulate (default 64)
//!   --strategy  auto | overlap[:C] | halo[:W] | combined[:C:L] | blocked |
//!               slackness | all-on-one   (default overlap:4; grid guests
//!               always use the Theorem 8 pipeline)
//!   --engine    event | stepped | lockstep | sharded  (default event;
//!               line/ring only; sharded is the conservative-parallel
//!               engine, bit-identical to event)
//!   --threads   worker threads for --engine sharded (default: all cores;
//!               an explicit 0 is rejected with a typed error)
//!   --faults    down:A:B:FROM:UNTIL | spike:A:B:FROM:UNTIL:FACTOR |
//!               crash:P:AT | rand:PCT  (repeatable; injects deterministic
//!               link outages / delay spikes / processor crashes; rand:PCT
//!               draws seeded outages totalling ~PCT% downtime per link;
//!               event engine only)
//!   --seed        RNG seed (default 42)
//!   --trace-json  FILE — run with stall attribution and write the full
//!                 trace report (per-copy stall breakdown, link occupancy
//!                 and queue-depth series) as JSON; also prints a stall
//!                 summary line (event engine, line/ring guests only)
//!   --analyze     print host statistics, embedding quality and the Auto
//!                 strategy recommendation instead of simulating
//!   --dot         print the host as Graphviz DOT and exit
//! ```
//!
//! Prints the validated report: slowdown, load, redundancy, messages, and
//! the predicted bound where the strategy has one.

use overlap::core::mesh::simulate_mesh_on_host;
use overlap::daemon::{Client, Daemon, DaemonConfig, Event, JsonlStore, MemStore};
use overlap::net::metrics::DelayStats;
use overlap::{
    topology, DelayModel, EngineKind, Error, FaultPlan, GuestSpec, GuestTopology, HostGraph,
    ProgramKind, ScenarioSpec, Simulation, Strategy, TraceConfig,
};
use std::process::exit;

const DEFAULT_ADDR: &str = "127.0.0.1:7341";

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n\nrun with --help for usage");
    exit(2)
}

fn parse_nums(s: &str) -> Vec<u64> {
    s.split(&[':', 'x'][..])
        .skip(1)
        .map(|p| {
            p.parse()
                .unwrap_or_else(|_| usage(&format!("bad number in '{s}'")))
        })
        .collect()
}

fn parse_delays(spec: &str) -> DelayModel {
    let v = parse_nums(spec);
    let need = |k: usize| {
        if v.len() != k {
            usage(&format!("'{spec}' needs {k} parameters"));
        }
    };
    if spec.starts_with("const") {
        need(1);
        DelayModel::Constant(v[0])
    } else if spec.starts_with("uniform") {
        need(2);
        DelayModel::Uniform { lo: v[0], hi: v[1] }
    } else if spec.starts_with("bimodal") {
        need(3);
        DelayModel::Bimodal {
            lo: v[0],
            hi: v[1],
            p_hi: v[2] as f64 / 100.0,
        }
    } else if spec.starts_with("heavy") {
        need(3);
        DelayModel::HeavyTail {
            min: v[0],
            alpha: v[1] as f64 / 100.0,
            cap: v[2],
        }
    } else if spec.starts_with("spike") {
        need(3);
        DelayModel::Spike {
            base: v[0],
            spike: v[1],
            period: v[2],
        }
    } else {
        usage(&format!("unknown delay model '{spec}'"))
    }
}

fn parse_host(spec: &str, dm: DelayModel, seed: u64) -> HostGraph {
    let v = parse_nums(spec);
    let get = |i: usize| {
        *v.get(i)
            .unwrap_or_else(|| usage(&format!("'{spec}' needs more parameters"))) as u32
    };
    if spec.starts_with("line") {
        topology::linear_array(get(0), dm, seed)
    } else if spec.starts_with("ring") {
        topology::ring(get(0), dm, seed)
    } else if spec.starts_with("mesh") {
        topology::mesh2d(get(0), get(1), dm, seed)
    } else if spec.starts_with("torus") {
        topology::torus2d(get(0), get(1), dm, seed)
    } else if spec.starts_with("hypercube") {
        topology::hypercube(get(0), dm, seed)
    } else if spec.starts_with("tree") {
        topology::binary_tree(get(0), dm, seed)
    } else if spec.starts_with("rreg") {
        topology::random_regular(get(0), get(1), dm, seed)
    } else if spec.starts_with("bfly") {
        topology::butterfly(get(0), dm, seed)
    } else if spec.starts_with("ccc") {
        topology::cube_connected_cycles(get(0), dm, seed)
    } else if spec.starts_with("geo") {
        topology::geometric(get(0), get(1) as f64 / 100.0, get(2) as u64, seed)
    } else if spec.starts_with("cliques") {
        topology::clique_of_cliques(get(0))
    } else if spec.starts_with("h1") {
        topology::h1_lower_bound(get(0))
    } else if spec.starts_with("h2") {
        topology::h2_recursive_boxes(get(0)).graph
    } else {
        usage(&format!("unknown host '{spec}'"))
    }
}

fn parse_guest(spec: &str, seed: u64, steps: u32) -> GuestSpec {
    let v = parse_nums(spec);
    let get = |i: usize| {
        *v.get(i)
            .unwrap_or_else(|| usage(&format!("'{spec}' needs more parameters"))) as u32
    };
    let pk = ProgramKind::KvWorkload;
    if spec.starts_with("line") {
        GuestSpec::array(get(0), pk, seed, steps)
    } else if spec.starts_with("ring") {
        GuestSpec::ring(get(0), pk, seed, steps)
    } else if spec.starts_with("mesh3") {
        GuestSpec::mesh3(get(0), get(1), get(2), pk, seed, steps)
    } else if spec.starts_with("btree") {
        GuestSpec::tree(get(0), pk, seed, steps)
    } else if spec.starts_with("mesh") {
        GuestSpec::mesh(get(0), get(1), pk, seed, steps)
    } else if spec.starts_with("torus") {
        GuestSpec::torus(get(0), get(1), pk, seed, steps)
    } else {
        usage(&format!("unknown guest '{spec}'"))
    }
}

fn parse_strategy(spec: &str) -> Strategy {
    let v = parse_nums(spec);
    if spec.starts_with("auto") {
        Strategy::Auto
    } else if spec.starts_with("overlap") {
        Strategy::Overlap {
            c: v.first().map(|&c| c as f64).unwrap_or(4.0),
        }
    } else if spec.starts_with("halo") {
        Strategy::Halo {
            halo: v.first().map(|&w| w as u32).unwrap_or(1),
        }
    } else if spec.starts_with("combined") {
        Strategy::Combined {
            c: v.first().map(|&c| c as f64).unwrap_or(4.0),
            expansion: v.get(1).map(|&l| l as u32).unwrap_or(2),
        }
    } else if spec.starts_with("blocked") {
        Strategy::Blocked
    } else if spec.starts_with("slackness") {
        Strategy::Slackness
    } else if spec.starts_with("all-on-one") {
        Strategy::AllOnOne
    } else {
        usage(&format!("unknown strategy '{spec}'"))
    }
}

/// Fold every `--faults` occurrence into one [`FaultPlan`].
fn parse_faults(args: &[String], host: &HostGraph, seed: u64, horizon: u64) -> Option<FaultPlan> {
    let mut plan = FaultPlan::new();
    let mut any = false;
    for (i, a) in args.iter().enumerate() {
        if a != "--faults" {
            continue;
        }
        let spec = args
            .get(i + 1)
            .unwrap_or_else(|| usage("--faults needs a value"));
        let v = parse_nums(spec);
        let get = |i: usize| {
            *v.get(i)
                .unwrap_or_else(|| usage(&format!("'{spec}' needs more parameters")))
        };
        any = true;
        plan = if spec.starts_with("down") {
            plan.link_down(get(0) as u32, get(1) as u32, get(2), get(3))
        } else if spec.starts_with("spike") {
            plan.delay_spike(get(0) as u32, get(1) as u32, get(2), get(3), get(4) as u32)
        } else if spec.starts_with("crash") {
            plan.crash(get(0) as u32, get(1))
        } else if spec.starts_with("rand") {
            plan.with_random_outages(
                host,
                seed,
                get(0) as f64 / 100.0,
                (horizon / 16).max(8),
                horizon,
            )
        } else {
            usage(&format!("unknown fault '{spec}'"))
        };
    }
    any.then_some(plan)
}

fn opt_in(args: &[String], name: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

/// Resolve `--engine`/`--threads` into an [`EngineKind`]. An *absent*
/// `--threads` means "all cores"; an explicit `--threads 0` is passed
/// through so the builder rejects it with `Error::InvalidConfig` (it
/// used to be silently treated as the default).
fn parse_engine(engine: &str, args: &[String]) -> EngineKind {
    match engine {
        "event" => EngineKind::Event,
        "stepped" => EngineKind::Stepped,
        "lockstep" => EngineKind::Lockstep,
        "sharded" => {
            let given = args.iter().any(|a| a == "--threads");
            let threads: usize = opt_in(args, "--threads", "0")
                .parse()
                .unwrap_or_else(|_| usage("bad --threads"));
            EngineKind::Sharded {
                threads: if threads == 0 && !given {
                    std::thread::available_parallelism().map_or(1, |n| n.get())
                } else {
                    threads
                },
            }
        }
        other => usage(&format!("unknown engine '{other}'")),
    }
}

fn engine_feature_label(kind: EngineKind) -> &'static str {
    match kind {
        EngineKind::Event => "event",
        EngineKind::Stepped => "stepped",
        EngineKind::Lockstep => "lockstep",
        EngineKind::Sharded { .. } => "sharded",
    }
}

/// Build a [`ScenarioSpec`] from the standard scenario flags (used by
/// `submit`; mirrors the local simulation path).
fn parse_scenario(args: &[String]) -> ScenarioSpec {
    let seed: u64 = opt_in(args, "--seed", "42")
        .parse()
        .unwrap_or_else(|_| usage("bad --seed"));
    let steps: u32 = opt_in(args, "--steps", "64")
        .parse()
        .unwrap_or_else(|_| usage("bad --steps"));
    let dm = parse_delays(&opt_in(args, "--delays", "uniform:1:9"));
    let host = parse_host(&opt_in(args, "--host", "line:32"), dm, seed);
    let default_guest = format!("line:{}", 2 * host.num_nodes());
    let guest = parse_guest(&opt_in(args, "--guest", &default_guest), seed, steps);
    let strategy = parse_strategy(&opt_in(args, "--strategy", "overlap:4"));
    let engine = parse_engine(&opt_in(args, "--engine", "event"), args);
    let stats = DelayStats::of(&host);
    let horizon = steps as u64 * (stats.d_max + 2);
    let faults = parse_faults(args, &host, seed, horizon);
    let trace = args.iter().any(|a| a == "--trace");
    let mut spec = ScenarioSpec::new(guest, host);
    spec.strategy = strategy;
    spec.engine = engine;
    spec.faults = faults;
    spec.trace = trace;
    spec
}

fn describe_event(e: &Event) -> String {
    match e {
        Event::Queued => "queued".into(),
        Event::Started { cache_hit } => format!(
            "started ({})",
            if *cache_hit {
                "plan-cache hit"
            } else {
                "plan lowered"
            }
        ),
        Event::Progress { done } => format!("progress: {done} dispatch units"),
        Event::Paused => "paused".into(),
        Event::Resumed => "resumed".into(),
        Event::Stalls { totals } => format!(
            "stalls: compute {} dep {} bw {} order {} fault {} drained {}",
            totals.compute_ticks,
            totals.stall_dependency,
            totals.stall_bandwidth,
            totals.stall_db_order,
            totals.stall_fault,
            totals.stall_drained
        ),
        Event::Done { record } => format!(
            "done: makespan {} slowdown {:.2} validated {} (run #{}, plan {:#018x})",
            record.stats.makespan,
            record.stats.slowdown,
            record.validated,
            record.run_id,
            record.plan_hash
        ),
        Event::Failed { error } => format!("FAILED: {error}"),
        Event::Cancelled { at } => format!("cancelled after {at} dispatch units"),
    }
}

/// `overlap-cli serve` — run the daemon until a client stops it.
fn serve_main(args: &[String]) -> ! {
    let addr = opt_in(args, "--addr", DEFAULT_ADDR);
    let workers: usize = opt_in(args, "--workers", "0")
        .parse()
        .unwrap_or_else(|_| usage("bad --workers"));
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(2, |n| n.get())
    } else {
        workers
    };
    let store: Box<dyn overlap::daemon::RunStore> = match opt_in(args, "--store", "").as_str() {
        "" => Box::new(MemStore::new()),
        path => Box::new(JsonlStore::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open store {path}: {e}");
            exit(1)
        })),
    };
    let daemon = std::sync::Arc::new(Daemon::start(DaemonConfig { workers, store }));
    let mut server =
        overlap::daemon::serve(std::sync::Arc::clone(&daemon), &addr).unwrap_or_else(|e| {
            eprintln!("cannot bind {addr}: {e}");
            exit(1)
        });
    println!(
        "overlap-daemon listening on {} ({workers} workers)",
        server.addr()
    );
    while !daemon.is_shut_down() {
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    server.stop();
    println!("daemon stopped");
    exit(0)
}

/// Client subcommands (`submit`, `session`, `watch`, …).
fn client_main(cmd: &str, args: &[String]) -> ! {
    let addr = opt_in(args, "--addr", DEFAULT_ADDR);
    let client = Client::new(addr);
    let fail = |e: overlap::daemon::ClientError| -> ! {
        eprintln!("{e}");
        exit(1)
    };
    let session_arg = || -> u64 {
        args.iter()
            .find(|a| !a.starts_with("--"))
            .and_then(|a| a.parse().ok())
            .unwrap_or_else(|| usage(&format!("'{cmd}' needs a session id")))
    };
    let watch = |client: &Client, id: u64| {
        let mut next = 0;
        loop {
            let resp = client.events(id, next, 5_000).unwrap_or_else(|e| fail(e));
            for e in &resp.events {
                println!("session {id}: {}", describe_event(e));
                match e {
                    Event::Failed { .. } => exit(1),
                    Event::Done { .. } | Event::Cancelled { .. } => exit(0),
                    _ => {}
                }
            }
            next = resp.next;
        }
    };
    match cmd {
        "submit" => {
            let spec = parse_scenario(args);
            let id = client.submit(&spec).unwrap_or_else(|e| fail(e));
            println!("session {id} accepted");
            if args.iter().any(|a| a == "--wait") {
                watch(&client, id);
            }
            exit(0)
        }
        "session" => {
            let view = client.status(session_arg()).unwrap_or_else(|e| fail(e));
            println!(
                "session {}: {:?}, progress {} dispatch units, plan {:#018x}, {} events",
                view.id, view.status, view.progress, view.plan_hash, view.events
            );
            exit(0)
        }
        "watch" => watch(&client, session_arg()),
        "pause" | "resume" | "cancel" => {
            let id = session_arg();
            match cmd {
                "pause" => client.pause(id),
                "resume" => client.resume(id),
                _ => client.cancel(id),
            }
            .unwrap_or_else(|e| fail(e));
            println!("session {id}: {cmd} requested");
            exit(0)
        }
        "runs" => {
            let hash = args
                .iter()
                .position(|a| a == "--hash")
                .and_then(|i| args.get(i + 1))
                .map(|h| {
                    let h = h.trim_start_matches("0x");
                    u64::from_str_radix(h, 16)
                        .or_else(|_| h.parse())
                        .unwrap_or_else(|_| usage("bad --hash"))
                });
            let runs = client.runs(hash).unwrap_or_else(|e| fail(e));
            for r in &runs {
                println!(
                    "run #{:<4} session {:<4} plan {:#018x} {:10} {:24} makespan {:8} slowdown {:6.2} validated {} {}",
                    r.run_id,
                    r.session,
                    r.plan_hash,
                    r.engine,
                    r.strategy,
                    r.stats.makespan,
                    r.stats.slowdown,
                    r.validated,
                    if r.cache_hit { "[cache hit]" } else { "[lowered]" }
                );
            }
            println!("{} run(s)", runs.len());
            exit(0)
        }
        "cache" => {
            let c = client.cache().unwrap_or_else(|e| fail(e));
            println!(
                "plan cache: {} hits, {} misses, {} cached plan(s)",
                c.hits, c.misses, c.entries
            );
            exit(0)
        }
        "stop-daemon" => {
            client.shutdown().unwrap_or_else(|e| fail(e));
            println!("daemon asked to stop");
            exit(0)
        }
        other => usage(&format!("unknown subcommand '{other}'")),
    }
}

/// `overlap-cli fuzz --seed N --cases K` — stream the differential fuzzer
/// with progress lines, printing a shrunk paste-able repro per divergence.
fn fuzz_main(args: &[String]) -> ! {
    use overlap::sim::fuzz::{check_spec, gen_spec, gen_spec_dag, shrink, Divergence};
    let opt = |name: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    let seed: u64 = opt("--seed", "0")
        .parse()
        .unwrap_or_else(|_| usage("bad --seed"));
    let cases: u64 = opt("--cases", "1000")
        .parse()
        .unwrap_or_else(|_| usage("bad --cases"));
    let dag = args.iter().any(|a| a == "--dag");
    let profile = if dag { " [dag profile]" } else { "" };
    println!(
        "fuzzing {cases} scenarios (seed {seed}){profile} across \
         event/sharded/stepped/lockstep/reference…"
    );
    let mut divergences = 0u64;
    for case in 0..cases {
        let spec = if dag {
            gen_spec_dag(seed, case)
        } else {
            gen_spec(seed, case)
        };
        if check_spec(&spec).is_err() {
            divergences += 1;
            let (min, detail) = shrink(&spec);
            let d = Divergence {
                case,
                spec: min,
                detail,
            };
            println!("\ncase {case} DIVERGED:\n  {}", d.detail);
            println!(
                "\nminimal repro (paste into tests/fuzz_regressions.rs):\n{}",
                d.repro_test(&format!("fuzz_repro_seed{seed}_case{case}"))
            );
        }
        if (case + 1) % 250 == 0 || case + 1 == cases {
            println!(
                "  {}/{cases} checked, {divergences} divergence(s)",
                case + 1
            );
        }
    }
    if divergences > 0 {
        eprintln!("FAIL: {divergences} divergence(s) in {cases} cases");
        exit(1)
    }
    println!("OK: no divergences in {cases} cases");
    exit(0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("fuzz") => fuzz_main(&args[1..]),
        Some("serve") => serve_main(&args[1..]),
        Some(
            cmd @ ("submit" | "session" | "watch" | "pause" | "resume" | "cancel" | "runs"
            | "cache" | "stop-daemon"),
        ) => client_main(cmd, &args[1..]),
        _ => {}
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        // The module doc is the help text.
        println!("overlap-cli — latency-hiding simulations (SPAA'96 reproduction)\n");
        println!(
            "{}",
            include_str!("overlap-cli.rs")
                .lines()
                .take_while(|l| l.starts_with("//!"))
                .map(|l| l.trim_start_matches("//!").trim_start_matches(' '))
                .collect::<Vec<_>>()
                .join("\n")
        );
        return;
    }
    let opt = |name: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    let seed: u64 = opt("--seed", "42")
        .parse()
        .unwrap_or_else(|_| usage("bad --seed"));
    let steps: u32 = opt("--steps", "64")
        .parse()
        .unwrap_or_else(|_| usage("bad --steps"));
    let dm = parse_delays(&opt("--delays", "uniform:1:9"));
    let host = parse_host(&opt("--host", "line:32"), dm, seed);
    let default_guest = format!("line:{}", 2 * host.num_nodes());
    let guest = parse_guest(&opt("--guest", &default_guest), seed, steps);
    let strategy_spec = opt("--strategy", "overlap:4");
    let engine = opt("--engine", "event");

    let stats = DelayStats::of(&host);
    if args.iter().any(|a| a == "--dot") {
        print!("{}", host.to_dot());
        return;
    }
    if args.iter().any(|a| a == "--analyze") {
        use overlap::core::general::embedded_array_stats;
        use overlap::core::pipeline::{host_as_array, resolve_auto};
        use overlap::net::metrics::DistanceStats;
        println!(
            "host      : {} — {} nodes, {} links",
            host.name(),
            host.num_nodes(),
            host.num_links()
        );
        println!(
            "delays    : d_ave {:.2}, d_max {}, d_min {}",
            stats.d_ave, stats.d_max, stats.d_min
        );
        println!("degree    : max {}", host.max_degree());
        if host.num_nodes() <= 4096 {
            let dist = DistanceStats::of(&host);
            println!(
                "distances : diameter {} (delay-weighted), mean {:.1}",
                dist.diameter, dist.mean_distance
            );
        }
        let e = embedded_array_stats(&host);
        println!(
            "embedding : dilation {}, array d_ave {:.2} (host d_ave × {:.2})",
            e.dilation,
            e.array_d_ave,
            e.array_d_ave / e.host_d_ave.max(1e-9)
        );
        let (_, delays, _) = host_as_array(&host);
        println!("auto pick : {}", resolve_auto(&delays).label());
        return;
    }
    println!(
        "host    : {} — {} nodes, d_ave {:.2}, d_max {}",
        host.name(),
        host.num_nodes(),
        stats.d_ave,
        stats.d_max
    );
    println!(
        "guest   : {:?} — {} cells × {} steps",
        guest.topology,
        guest.num_cells(),
        guest.steps
    );

    // Horizon estimate for random fault generation: the run's tick count
    // is unknown up front, so scale the guest length by the delay spread.
    let horizon = steps as u64 * (stats.d_max + 2);
    let faults = parse_faults(&args, &host, seed, horizon);
    let trace_json: Option<String> = args.iter().position(|a| a == "--trace-json").map(|i| {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| usage("--trace-json needs a file path"))
    });

    let report = match guest.topology {
        GuestTopology::Line { .. } | GuestTopology::Ring { .. } => {
            let strategy = parse_strategy(&strategy_spec);
            let kind = parse_engine(&engine, &args);
            // Tracing is event-engine-only; say so before planning the
            // placement rather than after (and with the same typed error
            // the builder would produce).
            if trace_json.is_some() && kind != EngineKind::Event {
                let err = Error::Unsupported {
                    engine: engine_feature_label(kind),
                    feature: "stall-attribution tracing",
                };
                eprintln!("simulation failed: {err}");
                exit(1);
            }
            let mut builder = Simulation::of(&guest)
                .on(&host)
                .strategy(strategy)
                .engine(kind);
            if let Some(plan) = faults {
                builder = builder.faults(plan);
            }
            if trace_json.is_some() {
                builder = builder.trace(TraceConfig::default());
            }
            builder.build().and_then(|sim| sim.run()).map(|mut r| {
                if kind != EngineKind::Event {
                    r.strategy = format!("{} [{engine} engine]", r.strategy);
                }
                r
            })
        }
        GuestTopology::BinaryTree { .. } => {
            if trace_json.is_some() {
                usage("--trace-json supports line/ring guests only");
            }
            overlap::core::tree_guest::simulate_tree_on_host(&guest, &host, true, None)
        }
        _ => {
            if trace_json.is_some() {
                usage("--trace-json supports line/ring guests only");
            }
            simulate_mesh_on_host(&guest, &host, 4.0, 2)
        }
    };
    match report {
        Ok(r) => {
            println!("strategy: {}", r.strategy);
            println!(
                "slowdown : {:.2}  (makespan {} / {} steps)",
                r.stats.slowdown, r.stats.makespan, r.stats.guest_steps
            );
            println!(
                "load     : {} databases/processor, redundancy {:.2}×",
                r.stats.load, r.stats.redundancy
            );
            println!(
                "traffic  : {} pebble messages, {} link hops",
                r.stats.messages, r.stats.pebble_hops
            );
            println!(
                "efficiency {:.3}, work overhead {:.2}×",
                r.stats.efficiency(),
                r.stats.work_overhead()
            );
            let f = r.stats.faults;
            if f != Default::default() {
                println!(
                    "faults   : {} retries, {} rerouted subs, {} crashed procs ({} copies lost), {} stall ticks",
                    f.retries, f.rerouted_subscriptions, f.crashed_procs, f.lost_copies, f.fault_stall_ticks
                );
            }
            if let Some(b) = r.stats.stalls {
                let total = b.total().max(1) as f64;
                println!(
                    "stalls   : compute {:.1}%, dependency {:.1}%, bandwidth {:.1}%, db-order {:.1}%, fault {:.1}%, drained {:.1}%",
                    100.0 * b.compute_ticks as f64 / total,
                    100.0 * b.stall_dependency as f64 / total,
                    100.0 * b.stall_bandwidth as f64 / total,
                    100.0 * b.stall_db_order as f64 / total,
                    100.0 * b.stall_fault as f64 / total,
                    100.0 * b.stall_drained as f64 / total,
                );
            }
            if let Some(path) = &trace_json {
                let report = r.outcome.trace.as_ref().expect("traced run has a report");
                let json = serde_json::to_string(report).expect("trace serializes");
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("cannot write {path}: {e}");
                    exit(1);
                }
                println!("trace    : written to {path}");
            }
            if let Some(p) = r.predicted_slowdown {
                println!("predicted: {p:.1} (asymptotic shape, constants included)");
            }
            if r.dilation > 0 {
                println!("embedding: dilation {}", r.dilation);
            }
            println!("validated: {}", r.validated);
            if !r.validated {
                eprintln!("VALIDATION FAILED: {} copy mismatches", r.mismatches);
                exit(1);
            }
        }
        Err(e) => {
            eprintln!("simulation failed: {e}");
            exit(1);
        }
    }
}
