//! # overlap — automatic latency hiding for high-bandwidth networks
//!
//! A full reproduction of Andrews, Leighton, Metaxas, Zhang,
//! *"Improved Methods for Hiding Latency in High Bandwidth Networks"*
//! (SPAA 1996), as a production-quality Rust workspace.
//!
//! This facade crate re-exports the public API of the four member crates:
//!
//! * [`model`] — the guest computation model (pebbles, databases, programs,
//!   the unit-delay reference executor);
//! * [`net`] — the host network substrate (topologies, link delays,
//!   embeddings, metrics);
//! * [`sim`] — the NOW simulator: three execution engines (greedy
//!   event-driven, parallel time-stepped, lockstep baseline) all consuming
//!   one lowered [`ExecPlan`] (compile a placement once, run it anywhere),
//!   unicast and multicast routing, the paper's bandwidth law, link jitter,
//!   heterogeneous machine speeds, timing traces, and bit-exact validation
//!   against the unit-delay reference;
//! * [`core`] — the paper's algorithms: the OVERLAP killing/labeling tree
//!   and database assignment, the Theorem 1 schedule table, the
//!   uniform-delay √d simulation, the combined √d̄·log³n simulation,
//!   general-network / 2-D / 3-D / torus / tree emulations, the
//!   lower-bound constructions and certificates, strategy auto-selection,
//!   and the baselines.
//!
//! The `overlap-cli` binary exposes all of it from the command line, and
//! the `overlap-bench` crate regenerates every experiment (E1–E18) and
//! figure (F1–F8) recorded in `EXPERIMENTS.md`.
//!
//! ## Quickstart
//!
//! ```
//! use overlap::{topology, DelayModel, GuestSpec, Strategy, ProgramKind, Simulation};
//!
//! // A 64-cell unit-delay guest line running a KV workload for 32 steps.
//! let guest = GuestSpec::array(64, ProgramKind::KvWorkload, 42, 32);
//! // A 16-workstation host line with seeded random link delays.
//! let host = topology::linear_array(16, DelayModel::uniform(1, 9), 7);
//! // Run OVERLAP and validate against the unit-delay reference.
//! let report = Simulation::of(&guest)
//!     .on(&host)
//!     .strategy(Strategy::Overlap { c: 4.0 })
//!     .build()
//!     .and_then(|sim| sim.run())
//!     .expect("simulation must run");
//! assert!(report.validated);
//! println!("slowdown = {:.2}", report.stats.slowdown);
//! ```
//!
//! ## Fault injection
//!
//! ```
//! use overlap::{topology, DelayModel, FaultPlan, GuestSpec, ProgramKind, Simulation};
//!
//! let guest = GuestSpec::array(32, ProgramKind::StencilSum, 3, 24);
//! let host = topology::linear_array(8, DelayModel::uniform(1, 6), 5);
//! // Take a link down mid-run; in-flight transfers time out and retry
//! // with exponential backoff, and the run still validates.
//! let faults = FaultPlan::new().link_down(2, 3, 40, 90);
//! let report = Simulation::of(&guest)
//!     .on(&host)
//!     .faults(faults)
//!     .build()
//!     .and_then(|sim| sim.run())
//!     .expect("degraded run must still complete");
//! assert!(report.validated);
//! println!("retries = {}", report.stats.faults.retries);
//! ```

#![warn(missing_docs)]

pub use overlap_core as core;
pub use overlap_daemon as daemon;
pub use overlap_model as model;
pub use overlap_net as net;
pub use overlap_sim as sim;

pub use overlap_core::{
    EngineKind, Error, ScenarioSpec, SimReport, Simulation, SimulationBuilder, Strategy,
};
pub use overlap_model::{GuestSpec, GuestTopology, ProgramKind, ReferenceRun, ReferenceTrace};
pub use overlap_net::{topology, DelayModel, HostGraph};
pub use overlap_sim::{
    validate_run, AppliedDelta, Assignment, BandwidthMode, Engine, EngineConfig, ExecPlan,
    FaultPlan, FaultStats, Jitter, PlanDelta, RetryPolicy, RunError, RunOutcome, RunStats,
    StallBreakdown, TraceConfig, TraceReport,
};
