//! Fault-injection contracts, deterministically.
//!
//! * An **empty** fault plan is free: the engine must produce a
//!   `RunOutcome` bit-identical to the no-faults engine and to the frozen
//!   classic engine, across unicast/multicast × jitter.
//! * A mid-run holder **crash** degrades gracefully: orphaned
//!   subscriptions are rerouted to surviving copies and the run still
//!   validates bit-exactly against the unit-delay reference.
//!
//! (`tests/prop_faults.rs` re-checks the identity property over random
//! scenarios with proptest.)

use overlap::sim::engine_classic::run_classic;
use overlap::{
    topology, validate_run, DelayModel, Engine, EngineConfig, Error, FaultPlan, GuestSpec, Jitter,
    ProgramKind, ReferenceRun, RunError, Simulation, Strategy,
};

#[test]
fn empty_fault_plan_is_bit_identical_across_engines_and_configs() {
    let guest = GuestSpec::array(24, ProgramKind::KvWorkload, 11, 12);
    let host = topology::linear_array(8, DelayModel::uniform(1, 9), 5);
    let assign = overlap::Assignment::blocked(8, 24);
    for multicast in [false, true] {
        for jitter in [
            Jitter::None,
            Jitter::Periodic {
                amplitude_pct: 40,
                period: 6,
            },
        ] {
            let cfg = EngineConfig {
                multicast,
                jitter,
                ..EngineConfig::default()
            };
            let plain = Engine::new(&guest, &host, &assign, cfg)
                .run()
                .expect("plain");
            let empty = Engine::new(&guest, &host, &assign, cfg)
                .with_faults(FaultPlan::new())
                .run()
                .expect("empty plan");
            let classic = run_classic(&guest, &host, &assign, cfg, None).expect("classic");
            assert_eq!(
                plain, empty,
                "empty plan diverged (multicast={multicast}, jitter={jitter:?})"
            );
            assert_eq!(
                plain, classic,
                "faulty-capable engine diverged from classic (multicast={multicast}, jitter={jitter:?})"
            );
        }
    }
}

#[test]
fn empty_plan_via_builder_matches_plain_builder_run() {
    let guest = GuestSpec::array(32, ProgramKind::Relaxation, 3, 16);
    let host = topology::linear_array(8, DelayModel::uniform(1, 12), 9);
    let plain = Simulation::of(&guest)
        .on(&host)
        .strategy(Strategy::Halo { halo: 1 })
        .build()
        .and_then(|s| s.run())
        .expect("plain");
    let empty = Simulation::of(&guest)
        .on(&host)
        .strategy(Strategy::Halo { halo: 1 })
        .faults(FaultPlan::new())
        .build()
        .and_then(|s| s.run())
        .expect("empty plan");
    assert_eq!(plain.outcome, empty.outcome);
    assert_eq!(plain.stats, empty.stats);
}

#[test]
fn mid_run_holder_crash_still_validates_against_the_reference() {
    let guest = GuestSpec::array(32, ProgramKind::KvWorkload, 7, 24);
    let host = topology::linear_array(8, DelayModel::uniform(1, 6), 5);
    // Block-wide halo: every column is held by at least two processors,
    // so any single crash is survivable.
    let strategy = Strategy::Halo { halo: 4 };
    let clean = Simulation::of(&guest)
        .on(&host)
        .strategy(strategy)
        .build()
        .and_then(|s| s.run())
        .expect("clean");
    let crash_at = clean.stats.makespan / 3;
    let r = Simulation::of(&guest)
        .on(&host)
        .strategy(strategy)
        .faults(FaultPlan::new().crash(3, crash_at))
        .build()
        .and_then(|s| s.run())
        .expect("crashed run must complete");
    assert!(r.validated, "{} copy mismatches", r.mismatches);
    let f = r.stats.faults;
    assert_eq!(f.crashed_procs, 1);
    assert!(f.lost_copies > 0);
    assert!(
        f.rerouted_subscriptions > 0,
        "the crashed holder served subscriptions that must be rerouted"
    );
    // The crashed processor's copies are gone from the outcome.
    assert!(r.outcome.copies.iter().all(|c| c.proc != 3));
}

#[test]
fn crashing_the_only_holder_aborts_with_column_lost() {
    let guest = GuestSpec::array(24, ProgramKind::StencilSum, 2, 16);
    let host = topology::linear_array(8, DelayModel::uniform(1, 6), 5);
    let err = Simulation::of(&guest)
        .on(&host)
        .strategy(Strategy::Blocked)
        .faults(FaultPlan::new().crash(2, 4))
        .build()
        .and_then(|s| s.run())
        .unwrap_err();
    assert!(
        matches!(err, Error::Run(RunError::ColumnLost { .. })),
        "got {err}"
    );
}

#[test]
fn link_outage_retries_and_still_validates() {
    let guest = GuestSpec::array(32, ProgramKind::KvWorkload, 5, 24);
    let host = topology::linear_array(8, DelayModel::uniform(1, 6), 7);
    let r = Simulation::of(&guest)
        .on(&host)
        .strategy(Strategy::Blocked)
        .faults(FaultPlan::new().link_down(3, 4, 10, 200))
        .build()
        .and_then(|s| s.run())
        .expect("outage run");
    assert!(r.validated);
    let f = r.stats.faults;
    assert!(f.retries > 0, "transfers in the outage window must retry");
    assert!(f.fault_stall_ticks > 0);
    let trace = ReferenceRun::execute(&guest);
    assert!(validate_run(&trace, &r.outcome).is_empty());
}
