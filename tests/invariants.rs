//! Cross-crate invariants of the statistics and the execution model.

use overlap::model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap::net::{topology, DelayModel};
use overlap::sim::engine::{Engine, EngineConfig};
use overlap::sim::validate::validate_run;
use overlap::sim::{Assignment, BandwidthMode};

fn setup() -> (GuestSpec, overlap::net::HostGraph, Assignment) {
    let guest = GuestSpec::array(24, ProgramKind::KvWorkload, 5, 16);
    let host = topology::linear_array(6, DelayModel::uniform(1, 9), 3);
    let assign = Assignment::from_cells_of(
        6,
        24,
        vec![
            vec![0, 1, 2, 3, 4, 5],
            vec![4, 5, 6, 7, 8, 9],
            vec![8, 9, 10, 11, 12, 13],
            vec![12, 13, 14, 15, 16, 17],
            vec![16, 17, 18, 19, 20, 21],
            vec![20, 21, 22, 23],
        ],
    );
    (guest, host, assign)
}

#[test]
fn compute_accounting_matches_assignment() {
    let (guest, host, assign) = setup();
    let out = Engine::new(&guest, &host, &assign, EngineConfig::default())
        .run()
        .unwrap();
    // One pebble per copy per step.
    assert_eq!(
        out.stats.total_compute,
        assign.total_copies() as u64 * guest.steps as u64
    );
    assert_eq!(out.copies.len(), assign.total_copies());
    assert_eq!(out.stats.guest_work, guest.total_work());
    assert_eq!(out.stats.load, assign.load());
    assert!((out.stats.redundancy - assign.redundancy()).abs() < 1e-12);
}

#[test]
fn message_accounting_matches_subscriptions() {
    let (guest, host, assign) = setup();
    let engine = Engine::new(&guest, &host, &assign, EngineConfig::default());
    let subs = engine.routing().unwrap().num_subscriptions() as u64;
    let out = engine.run().unwrap();
    // Every subscription streams exactly `steps` pebbles.
    assert_eq!(out.stats.messages, subs * guest.steps as u64);
    assert!(out.stats.pebble_hops >= out.stats.messages);
}

#[test]
fn makespan_bounds() {
    let (guest, host, assign) = setup();
    let out = Engine::new(&guest, &host, &assign, EngineConfig::default())
        .run()
        .unwrap();
    // Lower bound: busiest processor's pebble count.
    let busiest = assign.load() as u64 * guest.steps as u64;
    assert!(out.stats.makespan >= busiest);
    // Every copy finishes by the makespan and no earlier than its steps.
    for c in &out.copies {
        assert!(c.finished_at <= out.stats.makespan);
        assert!(c.finished_at >= guest.steps as u64);
    }
    assert!((out.stats.slowdown - out.stats.makespan as f64 / guest.steps as f64).abs() < 1e-12);
}

#[test]
fn lower_bandwidth_cannot_speed_things_up() {
    let (guest, host, assign) = setup();
    let mut spans = Vec::new();
    for bw in [8u32, 2, 1] {
        let cfg = EngineConfig {
            bandwidth: BandwidthMode::Fixed(bw),
            ..Default::default()
        };
        let out = Engine::new(&guest, &host, &assign, cfg).run().unwrap();
        let trace = ReferenceRun::execute(&guest);
        assert!(validate_run(&trace, &out).is_empty(), "bw={bw}");
        spans.push(out.stats.makespan);
    }
    assert!(spans[0] <= spans[1] && spans[1] <= spans[2], "{spans:?}");
}

#[test]
fn scaling_host_delays_never_reduces_makespan() {
    let guest = GuestSpec::array(16, ProgramKind::Relaxation, 5, 12);
    let assign = Assignment::blocked(4, 16);
    let mut last = 0;
    for f in [1u64, 2, 8, 32] {
        let host = topology::linear_array(4, DelayModel::constant(f), 0);
        let out = Engine::new(&guest, &host, &assign, EngineConfig::default())
            .run()
            .unwrap();
        assert!(
            out.stats.makespan >= last,
            "delay {f}: {} < {last}",
            out.stats.makespan
        );
        last = out.stats.makespan;
    }
}

#[test]
fn efficiency_and_overhead_are_consistent() {
    let (guest, host, assign) = setup();
    let out = Engine::new(&guest, &host, &assign, EngineConfig::default())
        .run()
        .unwrap();
    let s = out.stats;
    assert!(s.efficiency() > 0.0 && s.efficiency() <= 1.0);
    assert!(s.work_overhead() >= 1.0);
    // efficiency = guest_work / (procs × makespan) exactly.
    let expect = s.guest_work as f64 / (s.host_procs as f64 * s.makespan as f64);
    assert!((s.efficiency() - expect).abs() < 1e-12);
}
