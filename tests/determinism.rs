//! Determinism: the whole pipeline — topology generation, embedding,
//! planning, simulation — is a pure function of its seeds, including when
//! sweeps run under rayon.

use overlap::core::pipeline::{simulate_line_on_host, LineStrategy};
use overlap::model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap::net::{topology, DelayModel};
use overlap::sim::sweep::par_map;

#[test]
fn pipeline_is_deterministic_across_runs() {
    let guest = GuestSpec::line(28, ProgramKind::KvWorkload, 17, 14);
    let host = topology::mesh2d(4, 4, DelayModel::uniform(1, 15), 8);
    let a = simulate_line_on_host(&guest, &host, LineStrategy::Overlap { c: 4.0 }).unwrap();
    let b = simulate_line_on_host(&guest, &host, LineStrategy::Overlap { c: 4.0 }).unwrap();
    assert_eq!(a.stats.makespan, b.stats.makespan);
    assert_eq!(a.stats.messages, b.stats.messages);
    assert_eq!(a.stats.pebble_hops, b.stats.pebble_hops);
}

#[test]
fn parallel_sweep_equals_sequential() {
    let guest = GuestSpec::line(16, ProgramKind::Relaxation, 3, 10);
    let seeds: Vec<u64> = (0..8).collect();
    let sequential: Vec<u64> = seeds
        .iter()
        .map(|&s| {
            let host = topology::linear_array(8, DelayModel::uniform(1, 9), s);
            simulate_line_on_host(&guest, &host, LineStrategy::Blocked)
                .unwrap()
                .stats
                .makespan
        })
        .collect();
    let parallel: Vec<u64> = par_map(&seeds, |&s| {
        let host = topology::linear_array(8, DelayModel::uniform(1, 9), s);
        simulate_line_on_host(&guest, &host, LineStrategy::Blocked)
            .unwrap()
            .stats
            .makespan
    });
    assert_eq!(sequential, parallel);
}

#[test]
fn reference_trace_is_seed_stable() {
    let a = ReferenceRun::execute(&GuestSpec::line(10, ProgramKind::KvWorkload, 42, 8));
    let b = ReferenceRun::execute(&GuestSpec::line(10, ProgramKind::KvWorkload, 42, 8));
    assert_eq!(a.grid, b.grid);
    assert_eq!(a.final_db_digest, b.final_db_digest);
}

#[test]
fn topology_generation_is_seed_stable() {
    for seed in 0..4 {
        let a = topology::random_regular(20, 3, DelayModel::uniform(1, 99), seed);
        let b = topology::random_regular(20, 3, DelayModel::uniform(1, 99), seed);
        assert_eq!(a.links(), b.links());
    }
    let a = topology::h2_recursive_boxes(512);
    let b = topology::h2_recursive_boxes(512);
    assert_eq!(a.graph.links(), b.graph.links());
    assert_eq!(a.segments.len(), b.segments.len());
}
