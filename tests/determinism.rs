//! Determinism: the whole pipeline — topology generation, embedding,
//! planning, simulation — is a pure function of its seeds, including when
//! sweeps run under rayon.

use overlap::model::{fold64, GuestSpec, ProgramKind, ReferenceRun};
use overlap::net::{topology, DelayModel, HostGraph};
use overlap::sim::engine::{Engine, EngineConfig, Jitter};
use overlap::sim::sweep::par_map;
use overlap::sim::Assignment;
use overlap::{Simulation, Strategy};
/// Run via the builder facade (the old free-function entry points are
/// deprecated).
fn simulate(
    guest: &overlap::GuestSpec,
    host: &overlap::HostGraph,
    strategy: Strategy,
) -> Result<overlap::SimReport, overlap::Error> {
    Simulation::of(guest)
        .on(host)
        .strategy(strategy)
        .build()
        .and_then(|s| s.run())
}

#[test]
fn pipeline_is_deterministic_across_runs() {
    let guest = GuestSpec::array(28, ProgramKind::KvWorkload, 17, 14);
    let host = topology::mesh2d(4, 4, DelayModel::uniform(1, 15), 8);
    let a = simulate(&guest, &host, Strategy::Overlap { c: 4.0 }).unwrap();
    let b = simulate(&guest, &host, Strategy::Overlap { c: 4.0 }).unwrap();
    assert_eq!(a.stats.makespan, b.stats.makespan);
    assert_eq!(a.stats.messages, b.stats.messages);
    assert_eq!(a.stats.pebble_hops, b.stats.pebble_hops);
}

#[test]
fn parallel_sweep_equals_sequential() {
    let guest = GuestSpec::array(16, ProgramKind::Relaxation, 3, 10);
    let seeds: Vec<u64> = (0..8).collect();
    let sequential: Vec<u64> = seeds
        .iter()
        .map(|&s| {
            let host = topology::linear_array(8, DelayModel::uniform(1, 9), s);
            simulate(&guest, &host, Strategy::Blocked)
                .unwrap()
                .stats
                .makespan
        })
        .collect();
    let parallel: Vec<u64> = par_map(&seeds, |&s| {
        let host = topology::linear_array(8, DelayModel::uniform(1, 9), s);
        simulate(&guest, &host, Strategy::Blocked)
            .unwrap()
            .stats
            .makespan
    });
    assert_eq!(sequential, parallel);
}

#[test]
fn reference_trace_is_seed_stable() {
    let a = ReferenceRun::execute(&GuestSpec::array(10, ProgramKind::KvWorkload, 42, 8));
    let b = ReferenceRun::execute(&GuestSpec::array(10, ProgramKind::KvWorkload, 42, 8));
    assert_eq!(a.grid, b.grid);
    assert_eq!(a.final_db_digest, b.final_db_digest);
}

/// Golden end-to-end run: every feature that affects event ordering at
/// once — hand-built heterogeneous host, overlapping assignment, multicast
/// trees, delay jitter, per-processor compute costs, timing trace. The
/// asserted values were recorded from a verified run; any engine change
/// that shifts event order, link-id assignment, or tie-breaking will move
/// at least one of them.
#[test]
fn golden_engine_run_is_bit_stable() {
    let guest = GuestSpec::array(9, ProgramKind::KvWorkload, 5, 12);
    let mut host = HostGraph::new("golden", 4);
    host.add_link(0, 1, 3);
    host.add_link(1, 2, 5);
    host.add_link(2, 3, 2);
    host.add_link(0, 2, 7);
    let assign = Assignment::from_cells_of(
        4,
        9,
        vec![vec![0, 1, 2], vec![2, 3, 4], vec![4, 5, 6, 7], vec![7, 8]],
    );
    let cfg = EngineConfig {
        multicast: true,
        jitter: Jitter::Periodic {
            amplitude_pct: 40,
            period: 8,
        },
        record_timing: true,
        ..Default::default()
    };
    let out = Engine::new(&guest, &host, &assign, cfg)
        .with_compute_costs(vec![1, 3, 2, 1])
        .run()
        .expect("golden run");

    // One order-sensitive digest over every copy's audit record.
    let mut digest = 0x60u64;
    for c in &out.copies {
        for x in [
            c.cell as u64,
            c.proc as u64,
            c.value_fold,
            c.db_digest,
            c.update_fold,
            c.finished_at,
        ] {
            digest = fold64(digest, x);
        }
    }
    // And over the full timing trace.
    let timing = out.timing.as_ref().expect("timing recorded");
    let mut tdigest = 0x71u64;
    for ticks in &timing.ticks {
        for &t in ticks {
            tdigest = fold64(tdigest, t);
        }
    }
    assert_eq!(out.stats.makespan, 108);
    assert_eq!(out.stats.messages, 60);
    assert_eq!(out.stats.pebble_hops, 72);
    assert_eq!(out.stats.events_processed, 216);
    assert_eq!(out.stats.peak_queue_depth, 8);
    assert_eq!(digest, 0x099061efa035f13e, "copy records moved");
    assert_eq!(tdigest, 0x13bc53be88719ba8, "timing trace moved");

    // The frozen classic (heap-based) engine must agree bit for bit.
    let classic =
        overlap::sim::engine_classic::run_classic(&guest, &host, &assign, cfg, Some(&[1, 3, 2, 1]))
            .expect("classic run");
    assert_eq!(out, classic);
}

/// The stall-attribution tracer must observe without perturbing: re-run
/// the golden scenario traced and it must still agree bit for bit with
/// the frozen classic oracle once the trace-only fields are stripped,
/// while the attributed ticks partition every copy's `[0, makespan)`
/// exactly.
#[test]
fn traced_golden_run_matches_classic_oracle_and_conserves() {
    let guest = GuestSpec::array(9, ProgramKind::KvWorkload, 5, 12);
    let mut host = HostGraph::new("golden", 4);
    host.add_link(0, 1, 3);
    host.add_link(1, 2, 5);
    host.add_link(2, 3, 2);
    host.add_link(0, 2, 7);
    let assign = Assignment::from_cells_of(
        4,
        9,
        vec![vec![0, 1, 2], vec![2, 3, 4], vec![4, 5, 6, 7], vec![7, 8]],
    );
    let cfg = EngineConfig {
        multicast: true,
        jitter: Jitter::Periodic {
            amplitude_pct: 40,
            period: 8,
        },
        record_timing: true,
        ..Default::default()
    };
    let out = Engine::new(&guest, &host, &assign, cfg)
        .with_compute_costs(vec![1, 3, 2, 1])
        .run_traced(overlap::TraceConfig::default())
        .expect("traced golden run");

    let report = out.trace.as_ref().expect("tracing was enabled");
    assert_eq!(report.per_copy.len(), out.copies.len());
    for (i, b) in report.per_copy.iter().enumerate() {
        assert_eq!(b.total(), out.stats.makespan, "copy {i} leaks ticks");
    }
    assert_eq!(
        report.totals.total(),
        out.stats.makespan * out.copies.len() as u64
    );

    let classic =
        overlap::sim::engine_classic::run_classic(&guest, &host, &assign, cfg, Some(&[1, 3, 2, 1]))
            .expect("classic run");
    let mut stripped = out;
    stripped.trace = None;
    stripped.stats.stalls = None;
    assert_eq!(stripped, classic, "tracing perturbed the schedule");
}

/// The sharded conservative-parallel engine must be bit-identical to the
/// sequential event engine — for every thread count, under both partition
/// heuristics — on the full-feature golden scenario (multicast, jitter,
/// heterogeneous costs, timing trace), `peak_queue_depth` included: the
/// barrier merge reconstructs the sequential single-queue depth.
#[test]
fn sharded_engine_matches_event_on_golden_scenario() {
    use overlap::sim::{run_sharded_with, ExecPlan, Partition};

    let guest = GuestSpec::array(9, ProgramKind::KvWorkload, 5, 12);
    let mut host = HostGraph::new("golden", 4);
    host.add_link(0, 1, 3);
    host.add_link(1, 2, 5);
    host.add_link(2, 3, 2);
    host.add_link(0, 2, 7);
    let assign = Assignment::from_cells_of(
        4,
        9,
        vec![vec![0, 1, 2], vec![2, 3, 4], vec![4, 5, 6, 7], vec![7, 8]],
    );
    let cfg = EngineConfig {
        multicast: true,
        jitter: Jitter::Periodic {
            amplitude_pct: 40,
            period: 8,
        },
        record_timing: true,
        ..Default::default()
    };
    let plan = ExecPlan::build(&guest, &host, &assign, cfg)
        .unwrap()
        .with_compute_costs(vec![1, 3, 2, 1]);
    let ev = Engine::from_plan(&plan).run().expect("event run");
    assert_eq!(ev.stats.makespan, 108, "golden scenario drifted");

    for threads in [1, 2, 8] {
        for how in [Partition::DelayCut, Partition::RoundRobin] {
            let sh = run_sharded_with(&plan, threads, how)
                .unwrap_or_else(|e| panic!("sharded({threads}, {how:?}): {e}"));
            assert_eq!(sh, ev, "sharded({threads}, {how:?}) diverged");
        }
    }
}

/// Same bit-identity under a fault schedule exercising every fault event
/// the engine orders at barriers: a link outage (forcing retries), a
/// delay spike, and a processor crash that strands subscribers and
/// triggers re-subscription plus replayed backfill sends.
#[test]
fn sharded_engine_matches_event_under_crash_faults() {
    use overlap::sim::{run_sharded_with, ExecPlan, Partition};
    use overlap::FaultPlan;

    let guest = GuestSpec::array(24, ProgramKind::Relaxation, 11, 20);
    let host = topology::linear_array(6, DelayModel::uniform(1, 7), 5);
    // Every cell on exactly two processors, so the crash strands live
    // subscribers (re-subscription) instead of losing a column.
    let assign = Assignment::from_cells_of(
        6,
        24,
        (0..6u32)
            .map(|p| (0..8).map(|i| (4 * p + i) % 24).collect())
            .collect(),
    );
    let cfg = EngineConfig {
        record_timing: true,
        ..Default::default()
    };
    let faults = FaultPlan::new()
        .link_down(1, 2, 10, 40)
        .delay_spike(0, 1, 5, 60, 3)
        .crash(3, 55);
    let plan = ExecPlan::build(&guest, &host, &assign, cfg)
        .unwrap()
        .with_faults(faults)
        .unwrap();
    let ev = Engine::from_plan(&plan).run().expect("event run");
    assert!(ev.stats.faults.crashed_procs > 0, "crash did not land");
    assert!(
        ev.stats.faults.rerouted_subscriptions > 0,
        "no re-subscription exercised"
    );

    for threads in [1, 2, 8] {
        for how in [Partition::DelayCut, Partition::RoundRobin] {
            let sh = run_sharded_with(&plan, threads, how)
                .unwrap_or_else(|e| panic!("sharded({threads}, {how:?}): {e}"));
            assert_eq!(sh, ev, "sharded({threads}, {how:?}) diverged under faults");
        }
    }
}

/// `EngineKind::Sharded` through the builder facade reaches the same
/// validated report as the default event engine.
#[test]
fn sharded_engine_via_builder_matches_event() {
    use overlap::EngineKind;

    let guest = GuestSpec::array(20, ProgramKind::KvWorkload, 7, 16);
    let host = topology::linear_array(5, DelayModel::uniform(2, 6), 3);
    let run = |kind| {
        Simulation::of(&guest)
            .on(&host)
            .strategy(Strategy::Overlap { c: 4.0 })
            .engine(kind)
            .build()
            .and_then(|s| s.run())
            .unwrap()
    };
    let ev = run(EngineKind::Event);
    let sh = run(EngineKind::Sharded { threads: 4 });
    assert_eq!(ev.stats.makespan, sh.stats.makespan);
    assert_eq!(ev.stats.messages, sh.stats.messages);
    assert_eq!(ev.stats.pebble_hops, sh.stats.pebble_hops);
    assert_eq!(ev.stats.events_processed, sh.stats.events_processed);
    assert!(sh.validated && ev.validated);
}

#[test]
fn topology_generation_is_seed_stable() {
    for seed in 0..4 {
        let a = topology::random_regular(20, 3, DelayModel::uniform(1, 99), seed);
        let b = topology::random_regular(20, 3, DelayModel::uniform(1, 99), seed);
        assert_eq!(a.links(), b.links());
    }
    let a = topology::h2_recursive_boxes(512);
    let b = topology::h2_recursive_boxes(512);
    assert_eq!(a.graph.links(), b.graph.links());
    assert_eq!(a.segments.len(), b.segments.len());
}
