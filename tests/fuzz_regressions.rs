//! Shrunken repros checked in from differential-fuzzer findings, plus
//! direct regression tests for the bugs the fuzzing/audit PR fixed. Each
//! `ScenarioSpec` test is in the exact paste-able form the fuzzer prints
//! (`overlap-cli fuzz`), so future findings land here the same way.

use overlap::model::ProgramKind;
use overlap::net::DelayModel;
use overlap::sim::engine::{Engine, EngineConfig, RunError};
use overlap::sim::fuzz::{check_spec, AssignKind, FaultSpec, GuestKind, HostKind, ScenarioSpec};
use overlap::sim::stepped::run_stepped;
use overlap::sim::{Assignment, ExecPlan, FaultPlan};
use overlap::{topology, GuestSpec};

/// Fuzzer finding (seed 0, case 770, shrunk): a crash scheduled after an
/// engine's last pebble fired in the event engine (which drains its queue
/// by tick) but not in the stepped engine (whose loop exits at the last
/// pebble), so the engines disagreed on the surviving copy set. Crashes
/// now destroy storage regardless of engine timing.
#[test]
fn fuzz_repro_seed0_case770_crash_after_completion() {
    let spec = ScenarioSpec {
        guest: GuestKind::Line(4),
        program: ProgramKind::KvWorkload,
        steps: 1,
        guest_seed: 969918,
        host: HostKind::Line(4),
        delays: DelayModel::Constant(1),
        host_seed: 687235,
        assign: AssignKind::Redundant {
            seed: 457216850984680125,
        },
        costs: None,
        multicast: false,
        mem: None,
        faults: vec![FaultSpec::Crash { proc: 2, at: 4 }],
    };
    check_spec(&spec).expect("engines must agree");
}

/// Same finding, seed 0 case 86: a tree host and a one-step guest, where
/// the crash tick lands between the two engines' makespans.
#[test]
fn fuzz_repro_seed0_case86_crash_straddles_makespans() {
    let spec = ScenarioSpec {
        guest: GuestKind::Line(7),
        program: ProgramKind::StencilSum,
        steps: 1,
        guest_seed: 501491,
        host: HostKind::Tree(2),
        delays: DelayModel::Constant(1),
        host_seed: 929698,
        assign: AssignKind::Redundant {
            seed: 15561091816461123874,
        },
        costs: None,
        multicast: false,
        mem: None,
        faults: vec![FaultSpec::Crash { proc: 2, at: 4 }],
    };
    check_spec(&spec).expect("engines must agree");
}

/// Direct form of the finding: a crash far beyond both makespans still
/// loses the victim's copies in *both* engines, and the fault counters
/// agree with the plan.
#[test]
fn crash_beyond_makespan_still_destroys_copies() {
    let guest = GuestSpec::array(8, ProgramKind::KvWorkload, 3, 2);
    let host = topology::linear_array(4, DelayModel::constant(1), 0);
    let assign = Assignment::from_cells_of(
        4,
        8,
        vec![
            vec![0, 1, 2, 3],
            vec![2, 3, 4, 5],
            vec![4, 5, 6, 7],
            vec![6, 7, 0, 1],
        ],
    );
    let plan = ExecPlan::build(&guest, &host, &assign, EngineConfig::default())
        .unwrap()
        .with_faults(FaultPlan::new().crash(1, 1_000_000))
        .unwrap();
    let ev = Engine::from_plan(&plan).run().expect("event");
    let st = run_stepped(&plan).expect("stepped");
    for (label, out) in [("event", &ev), ("stepped", &st)] {
        assert!(
            out.stats.makespan < 1_000_000,
            "{label}: the crash must be post-completion for this test"
        );
        assert_eq!(out.stats.faults.crashed_procs, 1, "{label}");
        assert!(
            out.copies.iter().all(|c| c.proc != 1),
            "{label}: crashed processor's copies must be lost"
        );
    }
    assert_eq!(
        ev.copies.len(),
        st.copies.len(),
        "engines must agree on the surviving set"
    );
}

/// Satellite regression: a fault plan naming a link the host does not
/// have used to abort the whole process inside fault lowering
/// (`no such link` panic). It must now surface as a typed error on every
/// path — attaching to a plan, and running a scenario.
#[test]
fn fault_on_missing_link_is_an_error_on_every_path() {
    let guest = GuestSpec::array(8, ProgramKind::StencilSum, 0, 4);
    let host = topology::linear_array(4, DelayModel::constant(2), 0);
    let assign = Assignment::blocked(4, 8);
    let plan = ExecPlan::build(&guest, &host, &assign, EngineConfig::default()).unwrap();
    let err = plan
        .with_faults(FaultPlan::new().link_down(0, 3, 5, 10))
        .unwrap_err();
    assert!(
        matches!(err, RunError::MissingLink { from: 0, to: 3 }),
        "{err:?}"
    );

    // The fuzzer reports the same misconfiguration as a divergence
    // instead of dying.
    let spec = ScenarioSpec {
        guest: GuestKind::Line(8),
        program: ProgramKind::StencilSum,
        steps: 4,
        guest_seed: 0,
        host: HostKind::Line(4),
        delays: DelayModel::Constant(2),
        host_seed: 0,
        assign: AssignKind::Blocked,
        costs: None,
        multicast: false,
        mem: None,
        faults: vec![FaultSpec::LinkDown {
            a: 0,
            b: 3,
            from: 5,
            until: 10,
        }],
    };
    let detail = check_spec(&spec).unwrap_err();
    assert!(detail.contains("fault plan rejected"), "{detail}");
}

/// Satellite regression: crashing a processor the host does not have is a
/// typed error, not an index panic.
#[test]
fn crash_of_missing_processor_is_an_error() {
    let guest = GuestSpec::array(8, ProgramKind::StencilSum, 0, 4);
    let host = topology::linear_array(4, DelayModel::constant(2), 0);
    let assign = Assignment::blocked(4, 8);
    let plan = ExecPlan::build(&guest, &host, &assign, EngineConfig::default()).unwrap();
    let err = plan.with_faults(FaultPlan::new().crash(17, 5)).unwrap_err();
    assert!(
        matches!(err, RunError::NoSuchProcessor { proc: 17, procs: 4 }),
        "{err:?}"
    );
}

/// Satellite regression: zero-step guests are legal everywhere — every
/// engine completes with an empty, well-defined outcome (makespan 0,
/// finite ratios, no NaNs) instead of dividing by zero.
#[test]
fn zero_step_scenarios_are_well_defined() {
    for (assign, multicast) in [
        (AssignKind::Blocked, false),
        (AssignKind::AllOnOne, false),
        (AssignKind::Redundant { seed: 11 }, false),
        (AssignKind::Blocked, true),
    ] {
        let spec = ScenarioSpec {
            guest: GuestKind::Ring(9),
            program: ProgramKind::RuleAutomaton { db_size: 4 },
            steps: 0,
            guest_seed: 5,
            host: HostKind::Mesh(2, 2),
            delays: DelayModel::Uniform { lo: 1, hi: 7 },
            host_seed: 9,
            assign,
            costs: None,
            multicast,
            mem: None,
            faults: vec![],
        };
        check_spec(&spec).unwrap_or_else(|d| panic!("{assign:?}/multicast={multicast}: {d}"));
    }

    let guest = GuestSpec::array(6, ProgramKind::KvWorkload, 1, 0);
    let host = topology::linear_array(3, DelayModel::constant(3), 0);
    let assign = Assignment::blocked(3, 6);
    let plan = ExecPlan::build(&guest, &host, &assign, EngineConfig::default()).unwrap();
    let out = Engine::from_plan(&plan).run().expect("zero-step event run");
    assert_eq!(out.stats.makespan, 0);
    assert_eq!(out.stats.total_compute, 0);
    assert_eq!(out.stats.slowdown, 0.0);
    assert!(out.stats.efficiency().is_finite());
    assert!(out.stats.work_overhead().is_finite());
}

/// Satellite regression: crash recovery on a *disconnected* host used to
/// panic (`expect("connected host")`) in every fault-capable engine. A
/// cell redundantly held in two components, all subscriptions
/// intra-component (so the plan builds cleanly), then a crash of the
/// same-component holder: the nearest surviving holder sits across the
/// cut with no path to the orphaned consumer. That must surface as
/// `RunError::NoRouteToHolder`, identically everywhere.
#[test]
fn crash_recovery_without_a_route_is_an_error_not_a_panic() {
    use overlap::model::taskgraph::DagBuilder;
    use overlap::net::HostGraph;
    use overlap::sim::{run_sharded_with, Partition};

    // Lane 0 is a self-contained chain; lane 1 consumes lane 0. Only the
    // lane-1 copy ever subscribes, so the redundant lane-0 copy on the
    // isolated processor needs no route at build time.
    let mut b = DagBuilder::new(2);
    let t0 = b.node(0, 1, &[]);
    let t1 = b.node(0, 1, &[t0]);
    let t2 = b.node(0, 1, &[t1]);
    let u1 = b.node(1, 1, &[t0]);
    let u2 = b.node(1, 1, &[t1, u1]);
    let _ = b.node(1, 1, &[t2, u2]);
    let guest = GuestSpec::dag(b.build().unwrap(), ProgramKind::KvWorkload, 7);

    // Processors {0, 1} are linked; processor 2 is an island holding the
    // redundant copy of cell 0.
    let mut host = HostGraph::new("split-host", 3);
    host.add_link(0, 1, 2);
    let assign = Assignment::from_cells_of(3, 2, vec![vec![0], vec![1], vec![0]]);

    let plan = ExecPlan::build(&guest, &host, &assign, EngineConfig::default())
        .unwrap()
        .with_faults(FaultPlan::new().crash(0, 1))
        .unwrap();
    let want = RunError::NoRouteToHolder {
        cell: 0,
        holder: 2,
        consumer: 1,
        tick: 1,
    };
    assert_eq!(Engine::from_plan(&plan).run().unwrap_err(), want, "event");
    assert_eq!(run_stepped(&plan).unwrap_err(), want, "stepped");
    for threads in [1, 3] {
        for how in [Partition::DelayCut, Partition::RoundRobin] {
            assert_eq!(
                run_sharded_with(&plan, threads, how).unwrap_err(),
                want,
                "sharded({threads}, {how:?})"
            );
        }
    }
}

/// Task-graph scenarios in the exact paste-able form the fuzzer prints,
/// pinning the DAG/memory-budget fuzzing profile: a non-uniform random
/// layered DAG under a thrashing memory budget must keep all engines in
/// bit-agreement (lockstep and tracing are auto-skipped as unsupported).
#[test]
fn fuzz_pin_dag_random_under_memory_budget() {
    use overlap::sim::engine::MemBudget;
    let spec = ScenarioSpec {
        guest: GuestKind::DagRandom {
            dbs: 11,
            extra: 2,
            max_cost: 3,
            seed: 0xD151_71CE,
        },
        program: ProgramKind::KvWorkload,
        steps: 7,
        guest_seed: 414243,
        host: HostKind::Mesh(2, 3),
        delays: DelayModel::Uniform { lo: 1, hi: 9 },
        host_seed: 55,
        assign: AssignKind::Blocked,
        costs: Some(vec![1, 2, 1, 3, 1, 2]),
        multicast: false,
        mem: Some(MemBudget {
            budget: 1,
            reload_cost: 4,
        }),
        faults: vec![],
    };
    check_spec(&spec).expect("engines must agree");
}

/// Fork-join diamonds exercise relay slots (pass-through tasks padding
/// the layered normal form) under faults and redundant placement.
#[test]
fn fuzz_pin_fork_join_relays_with_link_fault() {
    let spec = ScenarioSpec {
        guest: GuestKind::ForkJoin(3),
        program: ProgramKind::RuleAutomaton { db_size: 4 },
        steps: 5, // overridden by the graph's fixed 2·levels−1 layers
        guest_seed: 99,
        host: HostKind::Line(3),
        delays: DelayModel::Constant(3),
        host_seed: 0,
        assign: AssignKind::Redundant { seed: 1234 },
        costs: None,
        multicast: false,
        mem: None,
        faults: vec![FaultSpec::LinkDown {
            a: 0,
            b: 1,
            from: 2,
            until: 20,
        }],
    };
    check_spec(&spec).expect("engines must agree");
}

/// A uniform wavefront DAG lowers through the static tables, so every
/// engine (lockstep and the traced event run included) is in scope —
/// with multicast routing on top for the event/sharded pair.
#[test]
fn fuzz_pin_wavefront_multicast() {
    let spec = ScenarioSpec {
        guest: GuestKind::Wavefront(9),
        program: ProgramKind::Histogram { buckets: 6 },
        steps: 6,
        guest_seed: 77,
        host: HostKind::Ring(5),
        delays: DelayModel::Bimodal {
            lo: 1,
            hi: 12,
            p_hi: 0.25,
        },
        host_seed: 3,
        assign: AssignKind::Blocked,
        costs: None,
        multicast: true,
        mem: None,
        faults: vec![],
    };
    check_spec(&spec).expect("engines must agree");
}

/// Zero-layer task graphs are legal everywhere: the static lowering's
/// layer-1 probe of an empty graph must see an empty dependency list
/// instead of tripping the slot bounds (regression: `TaskGraph::slot`
/// debug-assert via `visit_deps` during `ExecPlan::build`).
#[test]
fn zero_layer_task_graph_is_well_defined() {
    let spec = ScenarioSpec {
        guest: GuestKind::Wavefront(6),
        program: ProgramKind::KvWorkload,
        steps: 0,
        guest_seed: 1,
        host: HostKind::Line(3),
        delays: DelayModel::Constant(2),
        host_seed: 0,
        assign: AssignKind::Blocked,
        costs: None,
        multicast: false,
        mem: None,
        faults: vec![],
    };
    check_spec(&spec).expect("engines must agree");
}
