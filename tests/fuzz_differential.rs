//! Bounded differential-fuzzing harness: the same generator + invariant
//! audit the `overlap-cli fuzz` subcommand drives, run small enough for
//! every `cargo test`. A clean pass certifies that the event, sharded,
//! stepped and lockstep engines plus the parallel reference agree across
//! a random sample of guests, hosts, delay models, assignments, costs,
//! multicast lowerings and fault schedules — each scenario lowered
//! exactly once into a shared `ExecPlan`. The sharded engine runs on
//! every case (it supports the full feature set) at several thread
//! counts and both partition heuristics.

use overlap::model::ProgramKind;
use overlap::net::DelayModel;
use overlap::sim::fuzz::{
    check_spec, gen_spec, run_fuzz, shrink, AssignKind, FuzzConfig, GuestKind, HostKind,
    ScenarioSpec,
};

#[test]
fn bounded_fuzz_run_is_divergence_free() {
    let report = run_fuzz(&FuzzConfig {
        seed: 0,
        cases: 150,
    });
    assert_eq!(report.cases, 150);
    for d in &report.divergences {
        eprintln!(
            "case {} diverged:\n  {}\n{}",
            d.case,
            d.detail,
            d.repro_test(&format!("fuzz_repro_case{}", d.case))
        );
    }
    assert!(
        report.divergences.is_empty(),
        "{} divergence(s); repros printed above — check them into \
         tests/fuzz_regressions.rs",
        report.divergences.len()
    );
}

#[test]
fn scenario_stream_is_deterministic_and_diverse() {
    // Replays must be exact for repro-by-case-number to work.
    for case in 0..200 {
        assert_eq!(gen_spec(42, case), gen_spec(42, case));
    }
    // The stream must actually exercise the feature matrix.
    let specs: Vec<ScenarioSpec> = (0..200).map(|c| gen_spec(42, c)).collect();
    assert!(specs.iter().any(|s| s.multicast));
    assert!(specs.iter().any(|s| s.costs.is_some()));
    assert!(specs.iter().any(|s| !s.faults.is_empty()));
    assert!(specs.iter().any(|s| s.steps == 0));
    assert!(specs
        .iter()
        .any(|s| matches!(s.assign, AssignKind::Redundant { .. })));
    let hosts: std::collections::BTreeSet<String> =
        specs.iter().map(|s| format!("{:?}", s.host)).collect();
    assert!(hosts.len() >= 8, "host diversity: {hosts:?}");
}

/// Hand-written corner scenarios that must stay green: each pins one
/// cell of the engine-support matrix through the shared-plan path.
#[test]
fn feature_matrix_corners_agree() {
    let corners = [
        // Multicast lowering: event engine + reference only.
        ScenarioSpec {
            guest: GuestKind::Mesh(3, 3),
            program: ProgramKind::Histogram { buckets: 5 },
            steps: 6,
            guest_seed: 1,
            host: HostKind::Mesh(2, 2),
            delays: DelayModel::Uniform { lo: 1, hi: 11 },
            host_seed: 3,
            assign: AssignKind::Blocked,
            costs: None,
            multicast: true,
            mem: None,
            faults: vec![],
        },
        // Heterogeneous compute costs over a heavy-tailed network.
        ScenarioSpec {
            guest: GuestKind::Ring(12),
            program: ProgramKind::CacheChurn,
            steps: 8,
            guest_seed: 7,
            host: HostKind::Ring(4),
            delays: DelayModel::HeavyTail {
                min: 1,
                alpha: 1.5,
                cap: 64,
            },
            host_seed: 5,
            assign: AssignKind::Redundant { seed: 99 },
            costs: Some(vec![1, 3, 2, 4]),
            multicast: false,
            mem: None,
            faults: vec![],
        },
        // All databases on one processor: no messages at all.
        ScenarioSpec {
            guest: GuestKind::Tree(3),
            program: ProgramKind::Relaxation,
            steps: 5,
            guest_seed: 2,
            host: HostKind::Line(5),
            delays: DelayModel::Spike {
                base: 1,
                spike: 20,
                period: 3,
            },
            host_seed: 8,
            assign: AssignKind::AllOnOne,
            costs: None,
            multicast: false,
            mem: None,
            faults: vec![],
        },
    ];
    for spec in &corners {
        check_spec(spec).unwrap_or_else(|d| panic!("{spec:?}: {d}"));
    }
}

#[test]
fn shrinker_minimizes_while_preserving_failure() {
    // An impossible fault (missing link) fails check_spec deterministically;
    // the shrinker must simplify everything else away but keep failing.
    let spec = ScenarioSpec {
        guest: GuestKind::Mesh(4, 4),
        program: ProgramKind::RuleAutomaton { db_size: 8 },
        steps: 10,
        guest_seed: 3,
        host: HostKind::Ring(8),
        delays: DelayModel::Bimodal {
            lo: 1,
            hi: 30,
            p_hi: 0.2,
        },
        host_seed: 4,
        assign: AssignKind::Redundant { seed: 1 },
        costs: Some(vec![2; 8]),
        multicast: false,
        mem: None,
        faults: vec![
            crate_fault_missing_link(),
            overlap::sim::fuzz::FaultSpec::Spike {
                a: 0,
                b: 1,
                from: 0,
                until: 5,
                factor: 3,
            },
        ],
    };
    assert!(check_spec(&spec).is_err());
    let (min, detail) = shrink(&spec);
    assert!(check_spec(&min).is_err());
    assert!(!detail.is_empty());
    assert!(min.costs.is_none());
    assert_eq!(min.steps, 1);
    assert_eq!(min.faults.len(), 1, "only the impossible fault survives");
    assert_eq!(min.delays, DelayModel::Constant(1));
}

fn crate_fault_missing_link() -> overlap::sim::fuzz::FaultSpec {
    // Ring(8) has no chord 0–4.
    overlap::sim::fuzz::FaultSpec::LinkDown {
        a: 0,
        b: 4,
        from: 0,
        until: 10,
    }
}
