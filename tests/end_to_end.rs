//! End-to-end integration: every strategy × every program family ×
//! several host families, all validated against the unit-delay reference.

use overlap::core::mesh::simulate_mesh_on_host;
use overlap::{Simulation, Strategy};
/// Run via the builder facade (the old free-function entry points are
/// deprecated).
fn simulate(
    guest: &overlap::GuestSpec,
    host: &overlap::HostGraph,
    strategy: Strategy,
) -> Result<overlap::SimReport, overlap::Error> {
    Simulation::of(guest)
        .on(host)
        .strategy(strategy)
        .build()
        .and_then(|s| s.run())
}

use overlap::model::{GuestSpec, ProgramKind};
use overlap::net::{topology, DelayModel, HostGraph};

fn hosts() -> Vec<HostGraph> {
    let dm = DelayModel::uniform(1, 12);
    vec![
        topology::linear_array(12, dm, 1),
        topology::ring(12, dm, 2),
        topology::mesh2d(4, 3, dm, 3),
        topology::binary_tree(4, dm, 4),
        topology::random_regular(12, 3, dm, 5),
    ]
}

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::Overlap { c: 4.0 },
        Strategy::Halo { halo: 1 },
        Strategy::Combined {
            c: 4.0,
            expansion: 2,
        },
        Strategy::Blocked,
        Strategy::Slackness,
    ]
}

#[test]
fn line_guests_validate_everywhere() {
    let guest = GuestSpec::array(30, ProgramKind::KvWorkload, 9, 12);
    for host in hosts() {
        for s in strategies() {
            let r = simulate(&guest, &host, s)
                .unwrap_or_else(|e| panic!("{} × {}: {e}", host.name(), s.label()));
            assert!(
                r.validated,
                "{} × {}: {} mismatches",
                host.name(),
                r.strategy,
                r.mismatches
            );
        }
    }
}

#[test]
fn ring_guests_validate_everywhere() {
    let guest = GuestSpec::ring(26, ProgramKind::RuleAutomaton { db_size: 8 }, 4, 10);
    for host in hosts() {
        let r = simulate(&guest, &host, Strategy::Overlap { c: 4.0 })
            .unwrap_or_else(|e| panic!("{}: {e}", host.name()));
        assert!(r.validated, "{}", host.name());
    }
}

#[test]
fn every_program_kind_validates() {
    let host = topology::linear_array(8, DelayModel::uniform(1, 20), 7);
    for pk in [
        ProgramKind::StencilSum,
        ProgramKind::RuleAutomaton { db_size: 16 },
        ProgramKind::KvWorkload,
        ProgramKind::Relaxation,
    ] {
        let guest = GuestSpec::array(24, pk, 3, 16);
        let r = simulate(&guest, &host, Strategy::Overlap { c: 4.0 }).unwrap();
        assert!(r.validated, "{pk:?}");
    }
}

#[test]
fn mesh_guests_validate_on_every_host() {
    let guest = GuestSpec::mesh(6, 5, ProgramKind::KvWorkload, 11, 8);
    for host in hosts() {
        let r = simulate_mesh_on_host(&guest, &host, 4.0, 2)
            .unwrap_or_else(|e| panic!("{}: {e}", host.name()));
        assert!(r.validated, "{}", host.name());
    }
}

#[test]
fn adversarial_hosts_still_validate() {
    let guest = GuestSpec::array(32, ProgramKind::Relaxation, 5, 12);
    for host in [
        topology::h1_lower_bound(64),
        topology::clique_of_cliques(6),
        topology::h2_recursive_boxes(256).graph,
    ] {
        let r = simulate(&guest, &host, Strategy::Overlap { c: 4.0 })
            .unwrap_or_else(|e| panic!("{}: {e}", host.name()));
        assert!(r.validated, "{}", host.name());
    }
}

#[test]
fn slowdown_never_below_work_floor() {
    // makespan ≥ guest_work / host_procs: a processor computes at most one
    // pebble per tick.
    let guest = GuestSpec::array(40, ProgramKind::Relaxation, 5, 20);
    for host in hosts() {
        for s in strategies() {
            let r = simulate(&guest, &host, s).unwrap();
            let floor = guest.total_work() as f64 / host.num_nodes() as f64;
            assert!(
                r.stats.makespan as f64 >= floor,
                "{} × {}: makespan {} below work floor {floor}",
                host.name(),
                r.strategy,
                r.stats.makespan
            );
        }
    }
}
