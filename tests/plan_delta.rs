//! Incremental-plan contracts: a delta-applied [`ExecPlan`] must be
//! **bit-identical** to a from-scratch lowering of the changed inputs, on
//! every engine — and the delta's inverse must restore the base plan
//! exactly. Covers link-delay edits (both the patch-in-place fast path
//! and the re-lowering slow path), fault-plan swaps, and compute-cost
//! overrides, over grid guests, non-uniform task-graph guests, and
//! memory-budgeted configurations.

use overlap::model::TaskGraph;
use overlap::sim::engine::MemBudget;
use overlap::sim::{run_lockstep, run_sharded_with, run_stepped, Partition};
use overlap::{
    topology, Assignment, DelayModel, Engine, EngineConfig, ExecPlan, FaultPlan, GuestSpec,
    HostGraph, PlanDelta, ProgramKind, RunOutcome,
};
use proptest::prelude::*;

/// Outcomes of every engine the plan is legal for, in a comparable bundle.
fn run_all(plan: &ExecPlan) -> Vec<(&'static str, Result<RunOutcome, String>)> {
    let mut out = Vec::new();
    let e = |r: Result<RunOutcome, overlap::RunError>| r.map_err(|e| e.to_string());
    out.push(("event", e(Engine::from_plan(plan).run())));
    out.push(("stepped", e(run_stepped(plan))));
    for (threads, how) in [(1, Partition::DelayCut), (3, Partition::RoundRobin)] {
        out.push(("sharded", e(run_sharded_with(plan, threads, how))));
    }
    let guest = plan.guest();
    if plan.faults().is_none()
        && plan.compute_costs().is_none()
        && plan.config().mem.is_none()
        && !guest.has_nonunit_task_costs()
    {
        out.push(("lockstep", e(run_lockstep(plan))));
    }
    out
}

/// Assert the delta-applied plan matches a fresh lowering on every
/// engine, then assert the inverse restores the base plan bit-exactly.
fn check_delta(
    guest: &GuestSpec,
    host: &HostGraph,
    assign: &Assignment,
    config: EngineConfig,
    delta: PlanDelta,
) {
    let mut plan = ExecPlan::build(guest, host, assign, config).expect("base plan");
    let base_runs = run_all(&plan);

    let receipt = plan.apply_delta(delta.clone()).expect("delta applies");

    // Fresh lowering of the post-delta inputs.
    let mut host2 = host.clone();
    if let PlanDelta::LinkDelay { a, b, delay } = &delta {
        host2.set_link_delay(*a, *b, *delay);
    }
    let fresh = ExecPlan::build(guest, &host2, assign, config).expect("fresh plan");
    let fresh = match &delta {
        PlanDelta::Faults(Some(f)) => fresh.with_faults(f.clone()).expect("valid faults"),
        PlanDelta::ComputeCosts(Some(c)) => fresh.with_compute_costs(c.clone()),
        _ => fresh,
    };
    let got = run_all(&plan);
    let want = run_all(&fresh);
    assert_eq!(got.len(), want.len(), "engine sets differ");
    for ((eng, g), (_, w)) in got.iter().zip(&want) {
        assert_eq!(g, w, "{eng}: delta-applied != fresh lowering for {delta:?}");
    }

    // The inverse restores the base plan: same outcomes as before.
    plan.apply_delta(receipt.inverse).expect("inverse applies");
    let restored = run_all(&plan);
    assert_eq!(base_runs.len(), restored.len());
    for ((eng, b), (_, r)) in base_runs.iter().zip(&restored) {
        assert_eq!(b, r, "{eng}: inverse failed to restore the base plan");
    }
}

fn guest_strategy() -> impl Strategy<Value = GuestSpec> {
    prop_oneof![
        // Uniform grid guest.
        (6u32..16, 2u32..10, 0u64..500).prop_map(|(m, steps, seed)| GuestSpec::array(
            m,
            ProgramKind::KvWorkload,
            seed,
            steps
        )),
        // Non-uniform layered DAG: cross-lane deps and task costs > 1
        // force the dynamic per-(cell, step) lowering.
        ((4u32..10, 3u32..8), (1u32..3, 2u32..4), 0u64..500).prop_map(
            |((dbs, layers), (extra, max_cost), seed)| {
                let g = TaskGraph::layered_random(dbs, layers, extra, max_cost, seed);
                GuestSpec::dag(g, ProgramKind::KvWorkload, seed)
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Link-delay deltas on a tree host (every change takes the
    /// patch-in-place fast path) and on a ring host (delay increases may
    /// re-lower, decreases always do) are bit-identical to fresh
    /// lowerings on all engines, with and without a memory budget.
    #[test]
    fn link_delay_delta_equals_fresh_lowering(
        guest in guest_strategy(),
        ring in any::<bool>(),
        procs in 3u32..7,
        link_pick in 0usize..100,
        new_delay in 1u64..12,
        base_delay in 1u64..8,
        budgeted in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let host = if ring {
            topology::ring(procs, DelayModel::uniform(1, base_delay), seed)
        } else {
            topology::linear_array(procs, DelayModel::uniform(1, base_delay), seed)
        };
        let assign = Assignment::blocked(procs, guest.num_cells());
        let config = EngineConfig {
            record_timing: true,
            mem: budgeted.then_some(MemBudget { budget: 1, reload_cost: 2 }),
            ..EngineConfig::default()
        };
        let l = host.links()[link_pick % host.num_links()];
        let delta = PlanDelta::LinkDelay { a: l.a, b: l.b, delay: new_delay };
        check_delta(&guest, &host, &assign, config, delta);
    }

    /// Fault-plan swaps and compute-cost overrides never re-lower and are
    /// bit-identical to `with_faults` / `with_compute_costs` on a fresh
    /// plan.
    #[test]
    fn fault_and_cost_deltas_equal_fresh_lowering(
        guest in guest_strategy(),
        procs in 3u32..7,
        cost_pick in 1u32..4,
        down_from in 10u64..40,
        down_len in 5u64..40,
        use_costs in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let host = topology::linear_array(procs, DelayModel::uniform(1, 6), seed);
        let assign = Assignment::blocked(procs, guest.num_cells());
        let config = EngineConfig { record_timing: true, ..EngineConfig::default() };
        let delta = if use_costs {
            let costs: Vec<u32> = (0..procs).map(|p| 1 + (p + cost_pick) % 3).collect();
            PlanDelta::ComputeCosts(Some(costs))
        } else {
            PlanDelta::Faults(Some(
                FaultPlan::new().link_down(0, 1, down_from, down_from + down_len),
            ))
        };
        check_delta(&guest, &host, &assign, config, delta);
    }
}

/// A delay *increase* on a ring link no lowered route crosses keeps the
/// interned tables (fast path); a *decrease* on the same link re-lowers.
/// Both must equal fresh lowerings — this pins the receipt's `relowered`
/// flag against the documented rules.
#[test]
fn unused_link_fast_path_and_relowering_slow_path() {
    let guest = GuestSpec::array(8, ProgramKind::KvWorkload, 3, 6);
    // Ring of 4: links 0-1, 1-2, 2-3, 0-3. Make 0-3 expensive so no
    // shortest route uses it, with blocked assignment keeping traffic
    // between block neighbours.
    let mut host = HostGraph::new("ring4", 4);
    host.add_link(0, 1, 2);
    host.add_link(1, 2, 2);
    host.add_link(2, 3, 2);
    host.add_link(0, 3, 50);
    let assign = Assignment::blocked(4, 8);
    let mut plan = ExecPlan::build(&guest, &host, &assign, EngineConfig::default()).unwrap();

    // Increase of the unused 0-3 link: fast path, no re-lowering.
    let up = plan
        .apply_delta(PlanDelta::LinkDelay {
            a: 0,
            b: 3,
            delay: 60,
        })
        .unwrap();
    assert!(!up.relowered, "unused-link increase must not re-lower");
    let mut h2 = host.clone();
    h2.set_link_delay(0, 3, 60);
    let fresh = ExecPlan::build(&guest, &h2, &assign, EngineConfig::default()).unwrap();
    assert_eq!(plan.run().unwrap(), fresh.run().unwrap());
    plan.apply_delta(up.inverse).unwrap();

    // Decrease that reroutes traffic through 0-3: slow path.
    let down = plan
        .apply_delta(PlanDelta::LinkDelay {
            a: 0,
            b: 3,
            delay: 1,
        })
        .unwrap();
    assert!(down.relowered, "route-changing decrease must re-lower");
    let mut h3 = host.clone();
    h3.set_link_delay(0, 3, 1);
    let fresh = ExecPlan::build(&guest, &h3, &assign, EngineConfig::default()).unwrap();
    assert_eq!(plan.run().unwrap(), fresh.run().unwrap());
    assert_eq!(
        run_stepped(&plan).unwrap(),
        run_stepped(&fresh).unwrap(),
        "stepped agrees after re-lowering"
    );

    // Undo restores the base lowering bit-exactly.
    plan.apply_delta(down.inverse).unwrap();
    let base = ExecPlan::build(&guest, &host, &assign, EngineConfig::default()).unwrap();
    assert_eq!(plan.run().unwrap(), base.run().unwrap());
}

/// Multicast plans take the fast path only on tree hosts; elsewhere every
/// delay change re-lowers the trees. Both paths must match fresh
/// lowerings on the engines that support multicast.
#[test]
fn multicast_deltas_match_fresh_lowerings() {
    let guest = GuestSpec::array(9, ProgramKind::Relaxation, 5, 6);
    let config = EngineConfig {
        multicast: true,
        ..EngineConfig::default()
    };
    // Redundant holders force fan-out, making trees non-trivial.
    let assign = Assignment::from_cells_of(
        3,
        9,
        vec![vec![0, 1, 2, 3], vec![3, 4, 5, 6], vec![6, 7, 8]],
    );
    for (host, expect_fast) in [
        (topology::linear_array(3, DelayModel::constant(3), 0), true),
        (topology::ring(3, DelayModel::constant(3), 0), false),
    ] {
        let mut plan = ExecPlan::build(&guest, &host, &assign, config).unwrap();
        let receipt = plan
            .apply_delta(PlanDelta::LinkDelay {
                a: 0,
                b: 1,
                delay: 7,
            })
            .unwrap();
        assert_eq!(
            !receipt.relowered,
            expect_fast,
            "tree hosts patch in place; cyclic hosts re-lower ({})",
            host.name()
        );
        let mut h2 = host.clone();
        h2.set_link_delay(0, 1, 7);
        let fresh = ExecPlan::build(&guest, &h2, &assign, config).unwrap();
        assert_eq!(plan.run().unwrap(), fresh.run().unwrap());
        for (threads, how) in [(1, Partition::DelayCut), (3, Partition::RoundRobin)] {
            assert_eq!(
                run_sharded_with(&plan, threads, how).unwrap(),
                run_sharded_with(&fresh, threads, how).unwrap()
            );
        }
        plan.apply_delta(receipt.inverse).unwrap();
        let base = ExecPlan::build(&guest, &host, &assign, config).unwrap();
        assert_eq!(plan.run().unwrap(), base.run().unwrap());
    }
}

/// Deltas naming a link the host does not have are rejected without
/// touching the plan.
#[test]
fn missing_link_delta_is_rejected() {
    let guest = GuestSpec::array(6, ProgramKind::StencilSum, 0, 4);
    let host = topology::linear_array(3, DelayModel::constant(2), 0);
    let assign = Assignment::blocked(3, 6);
    let mut plan = ExecPlan::build(&guest, &host, &assign, EngineConfig::default()).unwrap();
    let before = plan.run().unwrap();
    let err = plan
        .apply_delta(PlanDelta::LinkDelay {
            a: 0,
            b: 2,
            delay: 5,
        })
        .unwrap_err();
    assert!(matches!(
        err,
        overlap::RunError::MissingLink { from: 0, to: 2 }
    ));
    assert_eq!(plan.run().unwrap(), before, "failed delta must not mutate");
}
