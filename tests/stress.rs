//! Large-scale stress runs, `#[ignore]`d by default. Run with
//! `cargo test --release --test stress -- --ignored`.

use overlap::core::mesh::simulate_mesh_on_host;
use overlap::{Simulation, Strategy};
/// Run via the builder facade (the old free-function entry points are
/// deprecated).
fn simulate(
    guest: &overlap::GuestSpec,
    host: &overlap::HostGraph,
    strategy: Strategy,
) -> Result<overlap::SimReport, overlap::Error> {
    Simulation::of(guest)
        .on(host)
        .strategy(strategy)
        .build()
        .and_then(|s| s.run())
}

use overlap::model::{GuestSpec, ProgramKind};
use overlap::net::{topology, DelayModel};

#[test]
#[ignore = "multi-second release-mode stress run"]
fn overlap_on_4096_processor_host() {
    let host = topology::linear_array(4096, DelayModel::uniform(1, 32), 9);
    let guest = GuestSpec::array(8192, ProgramKind::Relaxation, 5, 128);
    let r = simulate(&guest, &host, Strategy::Overlap { c: 4.0 }).expect("large overlap run");
    assert!(r.validated);
    assert!(r.stats.slowdown >= 1.0);
}

#[test]
#[ignore = "multi-second release-mode stress run"]
fn mesh_guest_with_65k_cells() {
    let host = topology::linear_array(32, DelayModel::uniform(1, 8), 3);
    let guest = GuestSpec::mesh(256, 256, ProgramKind::Relaxation, 7, 8);
    let r = simulate_mesh_on_host(&guest, &host, 4.0, 2).expect("large mesh run");
    assert!(r.validated);
}

#[test]
#[ignore = "multi-second release-mode stress run"]
fn deep_h2_and_cliques_still_validate() {
    let guest = GuestSpec::array(256, ProgramKind::KvWorkload, 5, 32);
    for host in [
        topology::h2_recursive_boxes(16384).graph,
        topology::clique_of_cliques(32),
        topology::geometric(512, 0.12, 200, 11),
    ] {
        let r = simulate(&guest, &host, Strategy::Overlap { c: 4.0 })
            .unwrap_or_else(|e| panic!("{}: {e}", host.name()));
        assert!(r.validated, "{}", host.name());
    }
}

#[test]
#[ignore = "multi-second release-mode stress run"]
fn long_horizon_run_stays_consistent() {
    // 4096 guest steps: watermarks, folds and link slots exercise long
    // histories.
    let host = topology::linear_array(16, DelayModel::uniform(1, 12), 2);
    let guest = GuestSpec::array(64, ProgramKind::CacheChurn, 3, 4096);
    let r = simulate(&guest, &host, Strategy::Halo { halo: 1 }).expect("long run");
    assert!(r.validated);
}
