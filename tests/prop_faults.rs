//! Property-based fault contracts: over random guests, hosts, and engine
//! configurations,
//!
//! * an empty fault plan is bit-identical to the no-faults engine **and**
//!   to the frozen classic engine (unicast/multicast × jitter), and
//! * a survivable mid-run holder crash still validates bit-exactly
//!   against the unit-delay reference.

use overlap::sim::engine_classic::run_classic;
use overlap::{
    topology, validate_run, Assignment, DelayModel, Engine, EngineConfig, FaultPlan, GuestSpec,
    Jitter, ProgramKind, ReferenceRun,
};
use proptest::prelude::*;

fn program_strategy() -> impl Strategy<Value = ProgramKind> {
    prop_oneof![
        Just(ProgramKind::StencilSum),
        (2u32..32).prop_map(|s| ProgramKind::RuleAutomaton { db_size: s }),
        Just(ProgramKind::KvWorkload),
        Just(ProgramKind::Relaxation),
    ]
}

fn jitter_strategy() -> impl Strategy<Value = Jitter> {
    prop_oneof![
        Just(Jitter::None),
        (1u8..=80, 2u32..16).prop_map(|(amplitude_pct, period)| Jitter::Periodic {
            amplitude_pct,
            period
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn empty_fault_plan_is_bit_identical(
        pk in program_strategy(),
        jitter in jitter_strategy(),
        multicast in any::<bool>(),
        procs in 2u32..9,
        cells_per in 1u32..4,
        steps in 1u32..16,
        seed in 0u64..1000,
    ) {
        let cells = procs * cells_per;
        let guest = GuestSpec::array(cells, pk, seed, steps);
        let host = topology::linear_array(procs, DelayModel::uniform(1, 12), seed);
        let assign = Assignment::blocked(procs, cells);
        let cfg = EngineConfig { multicast, jitter, ..EngineConfig::default() };
        let plain = Engine::new(&guest, &host, &assign, cfg).run().expect("plain");
        let empty = Engine::new(&guest, &host, &assign, cfg)
            .with_faults(FaultPlan::new())
            .run()
            .expect("empty plan");
        let classic = run_classic(&guest, &host, &assign, cfg, None).expect("classic");
        prop_assert_eq!(&plain, &empty);
        prop_assert_eq!(&plain, &classic);
    }

    #[test]
    fn survivable_crashes_still_validate(
        pk in program_strategy(),
        procs in 3u32..8,
        cells_per in 1u32..4,
        steps in 4u32..16,
        seed in 0u64..1000,
        victim_pick in 0u32..100,
        when_pct in 5u64..80,
    ) {
        let cells = procs * cells_per;
        let guest = GuestSpec::array(cells, pk, seed, steps);
        let host = topology::linear_array(procs, DelayModel::uniform(1, 8), seed);
        // Double coverage: every processor holds its block and its right
        // neighbour's (wrapping), so any single crash is survivable.
        let blocked = Assignment::blocked(procs, cells);
        let cells_of: Vec<Vec<u32>> = (0..procs)
            .map(|p| {
                let mut v: Vec<u32> = blocked.cells_of(p).to_vec();
                v.extend_from_slice(blocked.cells_of((p + 1) % procs));
                v.sort_unstable();
                v
            })
            .collect();
        let assign = Assignment::from_cells_of(procs, cells, cells_of);
        let cfg = EngineConfig::default();
        let clean = Engine::new(&guest, &host, &assign, cfg).run().expect("clean");
        let victim = victim_pick % procs;
        let crash_at = (clean.stats.makespan * when_pct / 100).max(1);
        let out = Engine::new(&guest, &host, &assign, cfg)
            .with_faults(FaultPlan::new().crash(victim, crash_at))
            .run()
            .expect("survivable crash must complete");
        let trace = ReferenceRun::execute(&guest);
        let errors = validate_run(&trace, &out);
        prop_assert!(errors.is_empty(), "{} mismatches after crash", errors.len());
        prop_assert_eq!(out.stats.faults.crashed_procs, 1);
        prop_assert!(out.copies.iter().all(|c| c.proc != victim));
    }
}
