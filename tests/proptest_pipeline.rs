//! Property-based end-to-end tests: random guests, hosts, and assignments
//! must always produce simulations that validate bit-for-bit against the
//! unit-delay reference — the workspace's core safety property.

use overlap::model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap::net::{topology, DelayModel};
use overlap::sim::engine::{Engine, EngineConfig};
use overlap::sim::validate::validate_run;
use overlap::sim::Assignment;
use overlap::{Simulation, Strategy as Placement};
use proptest::prelude::*;

fn program_strategy() -> impl Strategy<Value = ProgramKind> {
    prop_oneof![
        Just(ProgramKind::StencilSum),
        (2u32..32).prop_map(|s| ProgramKind::RuleAutomaton { db_size: s }),
        Just(ProgramKind::KvWorkload),
        Just(ProgramKind::Relaxation),
    ]
}

fn delay_model_strategy() -> impl Strategy<Value = DelayModel> {
    prop_oneof![
        (1u64..50).prop_map(DelayModel::Constant),
        (1u64..10, 10u64..80).prop_map(|(lo, hi)| DelayModel::Uniform { lo, hi }),
        (1u64..4, 20u64..200, 0.01f64..0.5).prop_map(|(lo, hi, p)| DelayModel::Bimodal {
            lo,
            hi,
            p_hi: p
        }),
        (2u64..64, 2u64..16).prop_map(|(spike, period)| DelayModel::Spike {
            base: 1,
            spike,
            period
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_runs_validate(
        pk in program_strategy(),
        dm in delay_model_strategy(),
        procs in 2u32..10,
        cells_per in 1u32..5,
        steps in 1u32..20,
        seed in 0u64..1000,
        extra in 0usize..1, // placeholder to keep tuple arity future-proof
    ) {
        let _ = extra;
        let cells = procs * cells_per;
        let guest = GuestSpec::array(cells, pk, seed, steps);
        let host = topology::linear_array(procs, dm, seed);
        let trace = ReferenceRun::execute(&guest);
        let assign = Assignment::blocked(procs, cells);
        let out = Engine::new(&guest, &host, &assign, EngineConfig::default())
            .run()
            .expect("run must complete");
        prop_assert!(validate_run(&trace, &out).is_empty());
        prop_assert!(out.stats.makespan >= steps as u64);
    }

    #[test]
    fn random_redundant_assignments_validate(
        procs in 2u32..8,
        cells_per in 1u32..4,
        steps in 1u32..16,
        seed in 0u64..1000,
        assign_seed in 0u64..100,
    ) {
        let cells = procs * cells_per;
        let guest = GuestSpec::array(cells, ProgramKind::KvWorkload, seed, steps);
        let host = topology::linear_array(procs, DelayModel::uniform(1, 30), seed);
        let trace = ReferenceRun::execute(&guest);
        // Derive random extra copies deterministically from assign_seed.
        let base = Assignment::blocked(procs, cells);
        let mut cells_of: Vec<Vec<u32>> =
            (0..procs).map(|p| base.cells_of(p).to_vec()).collect();
        let mut x = assign_seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        for _ in 0..(assign_seed % 16) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let p = ((x >> 33) % procs as u64) as usize;
            let c = ((x >> 13) % cells as u64) as u32;
            if !cells_of[p].contains(&c) {
                cells_of[p].push(c);
            }
        }
        let assign = Assignment::from_cells_of(procs, cells, cells_of);
        let out = Engine::new(&guest, &host, &assign, EngineConfig::default())
            .run()
            .expect("run must complete");
        prop_assert!(validate_run(&trace, &out).is_empty());
        prop_assert_eq!(out.copies.len(), assign.total_copies());
    }

    #[test]
    fn ring_guests_validate_under_overlap(
        m in 4u32..40,
        procs in 2u32..8,
        steps in 1u32..12,
        seed in 0u64..500,
    ) {
        let guest = GuestSpec::ring(m, ProgramKind::Relaxation, seed, steps);
        let host = topology::linear_array(procs, DelayModel::uniform(1, 20), seed);
        let trace = ReferenceRun::execute(&guest);
        let r = Simulation::of(&guest)
            .on(&host)
            .strategy(Placement::Overlap { c: 4.0 })
            .build()
            .and_then(|s| s.run_with_trace(&trace))
            .expect("pipeline");
        prop_assert!(r.validated);
    }

    #[test]
    fn non_path_hosts_validate_under_embedding(
        w in 2u32..5,
        h in 2u32..5,
        steps in 1u32..10,
        seed in 0u64..500,
    ) {
        let host = topology::mesh2d(w, h, DelayModel::uniform(1, 15), seed);
        let guest = GuestSpec::array(w * h * 2, ProgramKind::KvWorkload, seed, steps);
        let trace = ReferenceRun::execute(&guest);
        let r = Simulation::of(&guest)
            .on(&host)
            .strategy(Placement::Overlap { c: 4.0 })
            .build()
            .and_then(|s| s.run_with_trace(&trace))
            .expect("pipeline");
        prop_assert!(r.validated);
        prop_assert!(r.dilation <= 3);
    }
}
