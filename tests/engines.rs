//! Three execution semantics, one lowered plan: every strategy's
//! assignment is compiled once into an `ExecPlan`, and the event-driven
//! engine, the parallel time-stepped engine, and the lockstep executor
//! all consume that same plan. They must compute identical state, and
//! their makespans must order sensibly (greedy ≤ lockstep).

use overlap::core::pipeline::{plan_line_placement, Strategy};
use overlap::model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap::net::{topology, DelayModel};
use overlap::sim::engine::{Engine, EngineConfig};
use overlap::sim::lockstep::run_lockstep;
use overlap::sim::stepped::run_stepped;
use overlap::sim::validate::validate_run;
use overlap::sim::{ExecPlan, RunOutcome};

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::Overlap { c: 4.0 },
        Strategy::Halo { halo: 1 },
        Strategy::Combined {
            c: 4.0,
            expansion: 2,
        },
        Strategy::Blocked,
        Strategy::Slackness,
    ]
}

/// Copy-level state must agree between two outcomes (folds and database
/// digests; completion times legitimately differ between engines).
fn assert_same_state(label: &str, a: &RunOutcome, b: &RunOutcome) {
    let mut xs = a.copies.clone();
    let mut ys = b.copies.clone();
    xs.sort_by_key(|c| (c.cell, c.proc));
    ys.sort_by_key(|c| (c.cell, c.proc));
    assert_eq!(xs.len(), ys.len(), "{label}: copy count mismatch");
    for (x, y) in xs.iter().zip(&ys) {
        assert_eq!(x.value_fold, y.value_fold, "{label}: value fold");
        assert_eq!(x.db_digest, y.db_digest, "{label}: db digest");
        assert_eq!(x.update_fold, y.update_fold, "{label}: update fold");
    }
}

#[test]
fn all_three_engines_agree_on_state_from_one_plan() {
    // Heterogeneous link delays, every placement strategy; one lowering
    // feeds all three executors.
    let guest = GuestSpec::array(24, ProgramKind::KvWorkload, 11, 10);
    let host = topology::linear_array(8, DelayModel::uniform(1, 12), 5);
    let trace = ReferenceRun::execute(&guest);
    for s in strategies() {
        let placement = plan_line_placement(&guest, &host, s).expect("placement");
        let plan = ExecPlan::build(
            &guest,
            &host,
            &placement.assignment,
            EngineConfig::default(),
        )
        .expect("plan");
        let ev = Engine::from_plan(&plan).run().expect("event");
        let st = run_stepped(&plan).expect("stepped");
        let lk = run_lockstep(&plan).expect("lockstep");
        for out in [&ev, &st, &lk] {
            assert!(
                validate_run(&trace, out).is_empty(),
                "{}: engine state mismatch",
                s.label()
            );
        }
        assert_same_state(&s.label(), &ev, &st);
        assert_same_state(&s.label(), &ev, &lk);
        assert!(
            ev.stats.makespan <= lk.stats.makespan,
            "{}: greedy {} should not lose to lockstep {}",
            s.label(),
            ev.stats.makespan,
            lk.stats.makespan
        );
    }
}

#[test]
fn engines_agree_on_ring_fold_over_embedded_host() {
    // Ring guest (the slowdown-2 fold) on a non-path host: the plan is
    // lowered from the embedded placement and shared three ways.
    let guest = GuestSpec::ring(18, ProgramKind::RuleAutomaton { db_size: 8 }, 3, 8);
    let host = topology::mesh2d(3, 3, DelayModel::uniform(1, 10), 7);
    let trace = ReferenceRun::execute(&guest);
    let placement =
        plan_line_placement(&guest, &host, Strategy::Overlap { c: 4.0 }).expect("placement");
    let plan = ExecPlan::build(
        &guest,
        &host,
        &placement.assignment,
        EngineConfig::default(),
    )
    .expect("plan");
    let ev = Engine::from_plan(&plan).run().expect("event");
    let st = run_stepped(&plan).expect("stepped");
    let lk = run_lockstep(&plan).expect("lockstep");
    assert!(validate_run(&trace, &ev).is_empty());
    assert!(validate_run(&trace, &st).is_empty());
    assert!(validate_run(&trace, &lk).is_empty());
    assert_same_state("ring-fold", &ev, &st);
    assert_same_state("ring-fold", &ev, &lk);
    assert_eq!(ev.stats.messages, st.stats.messages);
}

#[test]
fn plan_reuse_is_bit_identical_to_fresh_lowerings() {
    // Two runs from one plan must equal two runs from two independent
    // lowerings, outcome-for-outcome — including the multicast tables
    // (event engine only; the other executors reject multicast up front).
    let guest = GuestSpec::array(24, ProgramKind::KvWorkload, 7, 12);
    let host = topology::mesh2d(3, 3, DelayModel::uniform(1, 9), 2);
    let placement =
        plan_line_placement(&guest, &host, Strategy::Halo { halo: 1 }).expect("placement");
    let a = &placement.assignment;
    for multicast in [false, true] {
        let cfg = EngineConfig {
            multicast,
            ..Default::default()
        };
        let shared = ExecPlan::build(&guest, &host, a, cfg).expect("plan");
        let r1 = Engine::from_plan(&shared).run().expect("first shared run");
        let r2 = Engine::from_plan(&shared).run().expect("second shared run");
        let f1 = Engine::new(&guest, &host, a, cfg).run().expect("fresh 1");
        let f2 = Engine::new(&guest, &host, a, cfg).run().expect("fresh 2");
        assert_eq!(r1, r2, "multicast={multicast}: shared plan not reusable");
        assert_eq!(r1, f1, "multicast={multicast}: shared vs fresh diverge");
        assert_eq!(f1, f2, "multicast={multicast}: fresh lowerings diverge");
    }
}

#[test]
fn calendar_engine_matches_classic_on_planned_placements() {
    // The rewritten hot path must reproduce the frozen heap-based engine's
    // full `RunOutcome` (stats, copy records, timing trace) on real
    // pipeline placements, in both route modes with jitter and costs.
    use overlap::sim::engine::Jitter;
    use overlap::sim::engine_classic::run_classic;

    let guest = GuestSpec::array(24, ProgramKind::KvWorkload, 11, 10);
    let host = topology::mesh2d(3, 3, DelayModel::uniform(1, 12), 5);
    let costs: Vec<u32> = (0..9).map(|p| 1 + p % 3).collect();
    for s in [Strategy::Overlap { c: 4.0 }, Strategy::Blocked] {
        let placement = plan_line_placement(&guest, &host, s).expect("placement");
        let a = &placement.assignment;
        for multicast in [false, true] {
            let cfg = EngineConfig {
                multicast,
                jitter: Jitter::Periodic {
                    amplitude_pct: 30,
                    period: 16,
                },
                record_timing: true,
                ..Default::default()
            };
            let new = Engine::new(&guest, &host, a, cfg)
                .with_compute_costs(costs.clone())
                .run()
                .expect("calendar engine");
            let classic = run_classic(&guest, &host, a, cfg, Some(&costs)).expect("classic engine");
            assert_eq!(
                new,
                classic,
                "{}: engines diverge (multicast={multicast})",
                s.label()
            );
        }
    }
}

#[test]
fn lockstep_slowdown_tracks_dmax_while_greedy_does_not() {
    // The E10 story as a single integration check.
    // n must be large enough that the integer overlaps m_k are nonzero
    // (m_0 = n/(c·log n) ≥ 4 at n = 128), else OVERLAP degenerates to
    // blocked and pays the spike like everyone else.
    let guest = GuestSpec::array(512, ProgramKind::Relaxation, 5, 24);
    let mut lock_slow = Vec::new();
    let mut greedy_slow = Vec::new();
    for spike in [8u64, 1024] {
        let host = topology::line_with_middle_spike(128, spike);
        let placement =
            plan_line_placement(&guest, &host, Strategy::Overlap { c: 4.0 }).expect("placement");
        let plan = ExecPlan::build(
            &guest,
            &host,
            &placement.assignment,
            EngineConfig::default(),
        )
        .expect("plan");
        let lk = run_lockstep(&plan).expect("lockstep");
        let ev = Engine::from_plan(&plan).run().expect("event");
        lock_slow.push(lk.stats.slowdown);
        greedy_slow.push(ev.stats.slowdown);
    }
    let lock_growth = lock_slow[1] / lock_slow[0];
    let greedy_growth = greedy_slow[1] / greedy_slow[0];
    assert!(
        greedy_growth < lock_growth,
        "greedy growth {greedy_growth:.2} vs lockstep {lock_growth:.2}"
    );
}

#[test]
fn pebble_grid_as_taskgraph_is_bit_identical_to_line_guest() {
    // The tentpole invariant of the task-graph IR: the paper's pebble
    // grid expressed as an explicit `TaskGraph` must lower through the
    // same static tables as the native line guest and reproduce its full
    // `RunOutcome` — stats, copies, event counts — on all four engines.
    use overlap::model::TaskGraph;
    use overlap::sim::sharded::run_sharded;

    let (m, steps) = (24u32, 10u32);
    let line = GuestSpec::array(m, ProgramKind::KvWorkload, 11, steps);
    let dag = GuestSpec::dag(
        TaskGraph::pebble_grid(&line.topology, steps),
        ProgramKind::KvWorkload,
        11,
    );
    assert_eq!(dag.steps, steps);
    let host = topology::linear_array(8, DelayModel::uniform(1, 12), 5);
    for s in [
        Strategy::Overlap { c: 4.0 },
        Strategy::Halo { halo: 1 },
        Strategy::Blocked,
    ] {
        let placement = plan_line_placement(&line, &host, s).expect("placement");
        let a = &placement.assignment;
        let pl_line = ExecPlan::build(&line, &host, a, EngineConfig::default()).expect("line plan");
        let pl_dag = ExecPlan::build(&dag, &host, a, EngineConfig::default()).expect("dag plan");
        let label = s.label();
        assert_eq!(
            Engine::from_plan(&pl_line).run().expect("event line"),
            Engine::from_plan(&pl_dag).run().expect("event dag"),
            "{label}: event"
        );
        assert_eq!(
            run_stepped(&pl_line).expect("stepped line"),
            run_stepped(&pl_dag).expect("stepped dag"),
            "{label}: stepped"
        );
        assert_eq!(
            run_lockstep(&pl_line).expect("lockstep line"),
            run_lockstep(&pl_dag).expect("lockstep dag"),
            "{label}: lockstep"
        );
        assert_eq!(
            run_sharded(&pl_line, 3).expect("sharded line"),
            run_sharded(&pl_dag, 3).expect("sharded dag"),
            "{label}: sharded"
        );
    }
}
