//! Three execution semantics, one model: the event-driven engine, the
//! parallel time-stepped engine, and the lockstep executor must compute
//! identical state for every strategy's assignment, and their makespans
//! must order sensibly (greedy ≤ lockstep).

use overlap::core::pipeline::{plan_line_placement, LineStrategy};
use overlap::model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap::net::{topology, DelayModel};
use overlap::sim::engine::{Engine, EngineConfig};
use overlap::sim::lockstep::run_lockstep;
use overlap::sim::stepped::run_stepped;
use overlap::sim::validate::validate_run;
use overlap::sim::BandwidthMode;

fn strategies() -> Vec<LineStrategy> {
    vec![
        LineStrategy::Overlap { c: 4.0 },
        LineStrategy::Halo { halo: 1 },
        LineStrategy::Combined {
            c: 4.0,
            expansion: 2,
        },
        LineStrategy::Blocked,
        LineStrategy::Slackness,
    ]
}

#[test]
fn all_three_engines_agree_on_state_for_every_strategy() {
    let guest = GuestSpec::line(24, ProgramKind::KvWorkload, 11, 10);
    let host = topology::linear_array(8, DelayModel::uniform(1, 12), 5);
    let trace = ReferenceRun::execute(&guest);
    for s in strategies() {
        let placement = plan_line_placement(&guest, &host, s).expect("placement");
        let a = &placement.assignment;
        let ev = Engine::new(&guest, &host, a, EngineConfig::default())
            .run()
            .expect("event");
        let st = run_stepped(&guest, &host, a, EngineConfig::default()).expect("stepped");
        let lk = run_lockstep(&guest, &host, a, BandwidthMode::LogN).expect("lockstep");
        for out in [&ev, &st, &lk] {
            assert!(
                validate_run(&trace, out).is_empty(),
                "{}: engine state mismatch",
                s.label()
            );
        }
        assert!(
            ev.stats.makespan <= lk.stats.makespan,
            "{}: greedy {} should not lose to lockstep {}",
            s.label(),
            ev.stats.makespan,
            lk.stats.makespan
        );
    }
}

#[test]
fn engines_agree_on_embedded_non_path_hosts() {
    let guest = GuestSpec::ring(18, ProgramKind::RuleAutomaton { db_size: 8 }, 3, 8);
    let host = topology::mesh2d(3, 3, DelayModel::uniform(1, 10), 7);
    let trace = ReferenceRun::execute(&guest);
    let placement =
        plan_line_placement(&guest, &host, LineStrategy::Overlap { c: 4.0 }).expect("placement");
    let a = &placement.assignment;
    let ev = Engine::new(&guest, &host, a, EngineConfig::default())
        .run()
        .expect("event");
    let st = run_stepped(&guest, &host, a, EngineConfig::default()).expect("stepped");
    assert!(validate_run(&trace, &ev).is_empty());
    assert!(validate_run(&trace, &st).is_empty());
    assert_eq!(ev.stats.messages, st.stats.messages);
}

#[test]
fn calendar_engine_matches_classic_on_planned_placements() {
    // The rewritten hot path must reproduce the frozen heap-based engine's
    // full `RunOutcome` (stats, copy records, timing trace) on real
    // pipeline placements, in both route modes with jitter and costs.
    use overlap::sim::engine::Jitter;
    use overlap::sim::engine_classic::run_classic;

    let guest = GuestSpec::line(24, ProgramKind::KvWorkload, 11, 10);
    let host = topology::mesh2d(3, 3, DelayModel::uniform(1, 12), 5);
    let costs: Vec<u32> = (0..9).map(|p| 1 + p % 3).collect();
    for s in [LineStrategy::Overlap { c: 4.0 }, LineStrategy::Blocked] {
        let placement = plan_line_placement(&guest, &host, s).expect("placement");
        let a = &placement.assignment;
        for multicast in [false, true] {
            let cfg = EngineConfig {
                multicast,
                jitter: Jitter::Periodic {
                    amplitude_pct: 30,
                    period: 16,
                },
                record_timing: true,
                ..Default::default()
            };
            let new = Engine::new(&guest, &host, a, cfg)
                .with_compute_costs(costs.clone())
                .run()
                .expect("calendar engine");
            let classic =
                run_classic(&guest, &host, a, cfg, Some(&costs)).expect("classic engine");
            assert_eq!(
                new,
                classic,
                "{}: engines diverge (multicast={multicast})",
                s.label()
            );
        }
    }
}

#[test]
fn lockstep_slowdown_tracks_dmax_while_greedy_does_not() {
    // The E10 story as a single integration check.
    // n must be large enough that the integer overlaps m_k are nonzero
    // (m_0 = n/(c·log n) ≥ 4 at n = 128), else OVERLAP degenerates to
    // blocked and pays the spike like everyone else.
    let guest = GuestSpec::line(512, ProgramKind::Relaxation, 5, 24);
    let mut lock_slow = Vec::new();
    let mut greedy_slow = Vec::new();
    for spike in [8u64, 1024] {
        let host = topology::line_with_middle_spike(128, spike);
        let placement = plan_line_placement(&guest, &host, LineStrategy::Overlap { c: 4.0 })
            .expect("placement");
        let a = &placement.assignment;
        let lk = run_lockstep(&guest, &host, a, BandwidthMode::LogN).expect("lockstep");
        let ev = Engine::new(&guest, &host, a, EngineConfig::default())
            .run()
            .expect("event");
        lock_slow.push(lk.stats.slowdown);
        greedy_slow.push(ev.stats.slowdown);
    }
    let lock_growth = lock_slow[1] / lock_slow[0];
    let greedy_growth = greedy_slow[1] / greedy_slow[0];
    assert!(
        greedy_growth < lock_growth,
        "greedy growth {greedy_growth:.2} vs lockstep {lock_growth:.2}"
    );
}
