//! Serde round trips of the public configuration and result types —
//! experiment tooling persists these as JSON.

use overlap::model::{DbKind, DbUpdate, GuestSpec, GuestTopology, ProgramKind};
use overlap::net::{topology, DelayModel, HostGraph};
use overlap::sim::engine::{EngineConfig, Jitter};
use overlap::sim::{Assignment, BandwidthMode};

fn roundtrip<T: serde::Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug>(
    v: &T,
) {
    let json = serde_json::to_string(v).expect("serialize");
    let back: T = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(&back, v);
}

#[test]
fn guest_specs_roundtrip() {
    for spec in [
        GuestSpec::array(16, ProgramKind::KvWorkload, 7, 10),
        GuestSpec::ring(9, ProgramKind::Histogram { buckets: 8 }, 1, 2),
        GuestSpec::mesh(4, 5, ProgramKind::StencilSum, 0, 1),
        GuestSpec::torus(3, 3, ProgramKind::CacheChurn, 2, 4),
        GuestSpec::mesh3(2, 3, 4, ProgramKind::Relaxation, 3, 5),
        GuestSpec::tree(5, ProgramKind::RuleAutomaton { db_size: 16 }, 4, 6),
    ] {
        let json = serde_json::to_string(&spec).unwrap();
        let back: GuestSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.topology, spec.topology);
        assert_eq!(back.program, spec.program);
        assert_eq!(back.seed, spec.seed);
        assert_eq!(back.steps, spec.steps);
    }
}

#[test]
fn host_graphs_roundtrip_with_structure() {
    let g = topology::mesh2d(3, 4, DelayModel::uniform(1, 9), 5);
    let json = serde_json::to_string(&g).unwrap();
    let back: HostGraph = serde_json::from_str(&json).unwrap();
    assert_eq!(back.num_nodes(), g.num_nodes());
    assert_eq!(back.links(), g.links());
    assert_eq!(back.name(), g.name());
    // adjacency survives (spot check)
    assert_eq!(back.neighbours(5), g.neighbours(5));
}

#[test]
fn delay_models_and_db_types_roundtrip() {
    roundtrip(&DelayModel::Bimodal {
        lo: 1,
        hi: 100,
        p_hi: 0.25,
    });
    roundtrip(&DelayModel::Spike {
        base: 1,
        spike: 64,
        period: 8,
    });
    roundtrip(&DbKind::Vec { size: 32 });
    roundtrip(&DbUpdate::Add { key: 7, delta: 9 });
    roundtrip(&GuestTopology::Mesh3D { w: 2, h: 3, d: 4 });
}

#[test]
fn engine_config_roundtrips() {
    roundtrip(&EngineConfig {
        bandwidth: BandwidthMode::Fixed(3),
        max_ticks: 1000,
        record_timing: true,
        multicast: true,
        jitter: Jitter::Periodic {
            amplitude_pct: 30,
            period: 16,
        },
        mem: Some(overlap::sim::engine::MemBudget {
            budget: 2,
            reload_cost: 5,
        }),
    });
}

#[test]
fn assignments_roundtrip() {
    let a = Assignment::from_cells_of(3, 6, vec![vec![0, 1, 2], vec![2, 3, 4], vec![5]]);
    roundtrip(&a);
}

#[test]
fn db_contents_roundtrip() {
    for kind in [DbKind::Counter, DbKind::Vec { size: 8 }, DbKind::Kv] {
        let mut db = kind.instantiate(3, 42);
        db.apply(&DbUpdate::Set { key: 2, value: 9 });
        db.apply(&DbUpdate::Add { key: 5, delta: 4 });
        let json = serde_json::to_string(&db).unwrap();
        let back: overlap::model::Db = serde_json::from_str(&json).unwrap();
        assert_eq!(back.digest(), db.digest());
    }
}
