//! Guest-to-guest structural transformations.
//!
//! The paper's results are stated for linear arrays, with the remark (§1)
//! that "a linear array can simulate a ring with slowdown 2 \[8\]". We realize
//! that — and the column-strip linearization of a 2-D mesh used in §5 — at
//! the *assignment* level: the transformation tells the host algorithms how
//! to group guest cells into "slots" that behave like the cells of a linear
//! array (all guest edges are intra-slot or between adjacent slots), and
//! the simulation engine works on raw guest cells throughout.

use crate::guest::GuestTopology;

/// A grouping of guest cells into linear-array slots such that every guest
/// dependency is either within a slot or between adjacent slots. This is
/// exactly the property OVERLAP needs to treat the guest as a line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotMap {
    /// `slots[j]` = guest cells grouped into line position `j`.
    pub slots: Vec<Vec<u32>>,
    /// Inverse map: `slot_of[cell]` = line position holding that cell.
    pub slot_of: Vec<u32>,
}

impl SlotMap {
    fn from_slots(slots: Vec<Vec<u32>>, num_cells: u32) -> Self {
        let mut slot_of = vec![u32::MAX; num_cells as usize];
        for (j, cells) in slots.iter().enumerate() {
            for &c in cells {
                assert!(
                    slot_of[c as usize] == u32::MAX,
                    "cell {c} assigned to two slots"
                );
                slot_of[c as usize] = j as u32;
            }
        }
        assert!(
            slot_of.iter().all(|&s| s != u32::MAX),
            "some cell is in no slot"
        );
        Self { slots, slot_of }
    }

    /// Number of line positions.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Maximum number of cells per slot (the per-slot load multiplier).
    pub fn width(&self) -> usize {
        self.slots.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Verify the defining property against a topology: every guest
    /// dependency edge stays within a slot or crosses to an adjacent slot.
    pub fn is_valid_for(&self, topo: &GuestTopology) -> bool {
        for c in 0..topo.num_cells() {
            let sc = self.slot_of[c as usize];
            for n in topo.neighbours(c) {
                let sn = self.slot_of[n as usize];
                if sc.abs_diff(sn) > 1 {
                    return false;
                }
            }
        }
        true
    }
}

/// The identity slot map for a line guest: slot `j` = cell `j`.
pub fn line_slots(m: u32) -> SlotMap {
    SlotMap::from_slots((0..m).map(|c| vec![c]).collect(), m)
}

/// Fold a ring of `m` cells (m ≥ 2) onto a line of `⌈m/2⌉` slots: slot `j`
/// holds cells `{j, m-1-j}`. Every ring edge `(i, i+1 mod m)` is then
/// intra-slot or between adjacent slots, and the slot width is 2 — the
/// classical "linear array simulates a ring with slowdown 2" of \[8\].
///
/// ```
/// use overlap_model::{ring_fold, GuestTopology};
/// let fold = ring_fold(6);
/// assert_eq!(fold.slots[0], vec![0, 5]);
/// assert!(fold.is_valid_for(&GuestTopology::Ring { m: 6 }));
/// ```
pub fn ring_fold(m: u32) -> SlotMap {
    assert!(m >= 2, "ring fold needs at least 2 cells");
    let half = m.div_ceil(2);
    let mut slots = Vec::with_capacity(half as usize);
    for j in 0..half {
        let a = j;
        let b = m - 1 - j;
        if a == b {
            slots.push(vec![a]);
        } else {
            slots.push(vec![a, b]);
        }
    }
    SlotMap::from_slots(slots, m)
}

/// Linearize a `w × h` mesh into `w` slots, one per mesh column (cell id
/// `x*h + y` goes to slot `x`). Mesh edges are vertical (intra-slot) or
/// horizontal (adjacent slots). Used by the §5 emulation, where a host
/// processor of the intermediate array simulates whole mesh columns.
pub fn mesh_columns(w: u32, h: u32) -> SlotMap {
    let slots = (0..w)
        .map(|x| (0..h).map(|y| x * h + y).collect())
        .collect();
    SlotMap::from_slots(slots, w * h)
}

/// Fold a `w × h` torus onto a line of `⌈w/2⌉` slots: slot `j` holds the
/// full columns `{j, w-1-j}` (ring fold in x; the y-wraparound is
/// intra-slot because a slot owns whole columns). Slot width is `2h`.
pub fn torus_fold(w: u32, h: u32) -> SlotMap {
    assert!(w >= 2 && h >= 1);
    let half = w.div_ceil(2);
    let mut slots = Vec::with_capacity(half as usize);
    for j in 0..half {
        let mut cells: Vec<u32> = (0..h).map(|y| j * h + y).collect();
        let other = w - 1 - j;
        if other != j {
            cells.extend((0..h).map(|y| other * h + y));
        }
        slots.push(cells);
    }
    SlotMap::from_slots(slots, w * h)
}

/// Linearize a `w × h × d` 3-D mesh into `w` slots, one per `x`-slab
/// (`h·d` cells each). Slab-internal edges (y and z) are intra-slot;
/// x edges connect adjacent slots — the higher-dimensional analogue of
/// [`mesh_columns`] the §5 emulation generalizes to.
pub fn mesh3d_slabs(w: u32, h: u32, d: u32) -> SlotMap {
    let slots = (0..w)
        .map(|x| (0..h * d).map(|yz| x * h * d + yz).collect())
        .collect();
    SlotMap::from_slots(slots, w * h * d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_slots_are_identity() {
        let s = line_slots(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.width(), 1);
        assert!(s.is_valid_for(&GuestTopology::Line { m: 5 }));
        assert_eq!(s.slot_of, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_fold_even() {
        let s = ring_fold(6);
        assert_eq!(s.len(), 3);
        assert_eq!(s.slots[0], vec![0, 5]);
        assert_eq!(s.slots[1], vec![1, 4]);
        assert_eq!(s.slots[2], vec![2, 3]);
        assert_eq!(s.width(), 2);
        assert!(s.is_valid_for(&GuestTopology::Ring { m: 6 }));
    }

    #[test]
    fn ring_fold_odd() {
        let s = ring_fold(7);
        assert_eq!(s.len(), 4);
        assert_eq!(s.slots[3], vec![3]);
        assert!(s.is_valid_for(&GuestTopology::Ring { m: 7 }));
    }

    #[test]
    fn ring_fold_validity_for_many_sizes() {
        for m in 2..64 {
            let s = ring_fold(m);
            assert!(
                s.is_valid_for(&GuestTopology::Ring { m }),
                "ring fold invalid for m={m}"
            );
            assert!(s.width() <= 2);
        }
    }

    #[test]
    fn unfolded_ring_is_invalid_as_line() {
        // The naive identity grouping of a ring violates adjacency: edge
        // (0, m-1) spans the whole line. This is why the fold exists.
        let m = 8;
        let naive = line_slots(m);
        assert!(!naive.is_valid_for(&GuestTopology::Ring { m }));
    }

    #[test]
    fn mesh_columns_group_by_x() {
        let s = mesh_columns(3, 4);
        assert_eq!(s.len(), 3);
        assert_eq!(s.slots[1], vec![4, 5, 6, 7]);
        assert_eq!(s.width(), 4);
        assert!(s.is_valid_for(&GuestTopology::Mesh2D { w: 3, h: 4 }));
    }

    #[test]
    fn torus_fold_is_valid_for_many_sizes() {
        for w in 2..12 {
            for h in 1..8 {
                let s = torus_fold(w, h);
                assert!(
                    s.is_valid_for(&GuestTopology::Torus2D { w, h }),
                    "torus fold invalid for {w}x{h}"
                );
                assert!(s.width() as u32 <= 2 * h);
                assert_eq!(s.len() as u32, w.div_ceil(2));
            }
        }
    }

    #[test]
    fn mesh_columns_do_not_fold_a_torus() {
        // Plain column strips violate the x-wraparound: edge (0, w-1).
        let s = mesh_columns(6, 3);
        assert!(!s.is_valid_for(&GuestTopology::Torus2D { w: 6, h: 3 }));
    }

    #[test]
    fn mesh3d_slabs_are_valid() {
        for (w, h, d) in [(2u32, 2u32, 2u32), (4, 3, 2), (5, 2, 4)] {
            let s = mesh3d_slabs(w, h, d);
            assert!(
                s.is_valid_for(&GuestTopology::Mesh3D { w, h, d }),
                "{w}x{h}x{d}"
            );
            assert_eq!(s.width() as u32, h * d);
            assert_eq!(s.len() as u32, w);
        }
    }

    #[test]
    #[should_panic(expected = "two slots")]
    fn duplicate_cell_in_slots_panics() {
        SlotMap::from_slots(vec![vec![0], vec![0]], 1);
    }

    #[test]
    #[should_panic(expected = "no slot")]
    fn missing_cell_panics() {
        SlotMap::from_slots(vec![vec![0]], 2);
    }
}
