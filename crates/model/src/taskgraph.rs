//! Arbitrary task-graph guests in layered normal form.
//!
//! The pebble grid `(i, t)` of the paper is one instance of a dependency
//! DAG: node `(i, t)` consumes its neighbours' values at `t-1` and owns
//! database `b_i`. [`TaskGraph`] generalizes the guest to *any* DAG whose
//! nodes carry a compute cost and an owning database, normalized into a
//! **layered** form the engines can execute with the existing machinery:
//!
//! * every task sits on a *lane* (its owning database) at a *layer*
//!   (its longest-path depth), with at most one task per `(lane, layer)`;
//! * dependency edges always reference the previous layer — a value
//!   produced earlier is carried forward by **relay tasks** (cost-1
//!   pass-throughs that repeat the lane's value without touching the
//!   database);
//! * an edge whose value would be *overwritten* by an intervening task on
//!   the producer's lane is rejected as [`TaskGraphError::StaleEdge`] —
//!   the DAG must be expressible with one live value per lane.
//!
//! Lanes map onto guest cells and layers onto guest steps, so assignment,
//! routing, validation and every engine work unchanged. A graph whose
//! dependency lists are layer-invariant with unit costs and no relays is
//! *uniform*: it lowers through the exact static tables the grid guests
//! use, making "pebble grid expressed as a task graph" bit-identical to
//! the native grid guest.

use crate::database::mix64;
use crate::guest::{Dep, GuestTopology, Side};
use serde::{Deserialize, Serialize};

/// Handle of a task added to a [`DagBuilder`] (its insertion index).
pub type TaskId = u32;

/// Why a DAG could not be normalized into layered form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskGraphError {
    /// The graph has no tasks.
    Empty,
    /// Two tasks own the same database at the same longest-path layer.
    DuplicateTask {
        /// The contested lane.
        db: u32,
        /// The contested layer.
        layer: u32,
    },
    /// A consumer at `to_layer` reads `db`'s value produced at
    /// `from_layer`, but another task on that lane overwrites it in
    /// between — the edge is stale by the time relays would deliver it.
    StaleEdge {
        /// The producer's lane.
        db: u32,
        /// The producer's layer.
        from_layer: u32,
        /// The consumer's layer.
        to_layer: u32,
    },
    /// A task names a database outside `0..num_dbs`.
    BadDb {
        /// The offending database id.
        db: u32,
    },
    /// A task cost of zero (every task takes ≥ 1 tick).
    ZeroCost,
}

impl std::fmt::Display for TaskGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            TaskGraphError::Empty => write!(f, "task graph has no tasks"),
            TaskGraphError::DuplicateTask { db, layer } => {
                write!(f, "two tasks own database {db} at layer {layer}")
            }
            TaskGraphError::StaleEdge {
                db,
                from_layer,
                to_layer,
            } => write!(
                f,
                "value of database {db} produced at layer {from_layer} is \
                 overwritten before its consumer at layer {to_layer}"
            ),
            TaskGraphError::BadDb { db } => write!(f, "task names database {db} out of range"),
            TaskGraphError::ZeroCost => write!(f, "task cost must be ≥ 1"),
        }
    }
}

impl std::error::Error for TaskGraphError {}

/// An arbitrary-DAG guest program in layered normal form (see the module
/// docs). Construct one with [`DagBuilder`] or a generator
/// ([`TaskGraph::pebble_grid`], [`TaskGraph::wavefront`],
/// [`TaskGraph::fork_join`], [`TaskGraph::layered_random`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    num_dbs: u32,
    layers: u32,
    /// CSR dependency lists, indexed `db * layers + (layer - 1)`.
    deps: Vec<Dep>,
    dep_off: Vec<u32>,
    /// Compute cost (ticks at a unit-speed processor) per task slot.
    costs: Vec<u32>,
    /// Pass-through slots: repeat the lane's previous value, no program
    /// call, no database update.
    relay: Vec<bool>,
    /// Layer-invariant deps, unit costs, no relays: lowers through the
    /// static (grid) tables.
    uniform: bool,
    max_deps: usize,
}

impl TaskGraph {
    fn slot(&self, db: u32, layer: u32) -> usize {
        debug_assert!(db < self.num_dbs && 1 <= layer && layer <= self.layers);
        db as usize * self.layers as usize + (layer as usize - 1)
    }

    /// Number of lanes (databases).
    pub fn num_dbs(&self) -> u32 {
        self.num_dbs
    }

    /// Number of layers (guest steps).
    pub fn layers(&self) -> u32 {
        self.layers
    }

    /// Dependencies of the task on lane `db` at `layer` (1-based), all
    /// referencing layer `layer - 1`.
    pub fn deps_of(&self, db: u32, layer: u32) -> &[Dep] {
        let s = self.slot(db, layer);
        &self.deps[self.dep_off[s] as usize..self.dep_off[s + 1] as usize]
    }

    /// Compute cost of the task on lane `db` at `layer`.
    pub fn cost_of(&self, db: u32, layer: u32) -> u32 {
        self.costs[self.slot(db, layer)]
    }

    /// Is the `(db, layer)` slot a relay (pass-through)?
    pub fn is_relay(&self, db: u32, layer: u32) -> bool {
        self.relay[self.slot(db, layer)]
    }

    /// Layer-invariant structure with unit costs and no relays — the graph
    /// lowers through the same static tables as a grid guest.
    pub fn is_uniform(&self) -> bool {
        self.uniform
    }

    /// Largest dependency-list length over all tasks.
    pub fn max_deps(&self) -> usize {
        self.max_deps
    }

    /// Any task with cost > 1?
    pub fn has_nonunit_costs(&self) -> bool {
        self.costs.iter().any(|&c| c > 1)
    }

    /// Sum of all task costs (relays included) — the guest's weighted work.
    pub fn total_cost(&self) -> u64 {
        self.costs.iter().map(|&c| c as u64).sum()
    }

    /// All lanes whose values lane `db` ever reads, over every layer
    /// (sorted, deduplicated, excluding `db` itself) — the lane adjacency
    /// that routing subscribes to.
    pub fn dep_lanes(&self, db: u32) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for layer in 1..=self.layers {
            for d in self.deps_of(db, layer) {
                if let Dep::Cell(c) = *d {
                    if c != db {
                        out.push(c);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn finish(
        num_dbs: u32,
        layers: u32,
        deps: Vec<Dep>,
        dep_off: Vec<u32>,
        costs: Vec<u32>,
        relay: Vec<bool>,
    ) -> Self {
        let max_deps = (0..num_dbs as usize * layers as usize)
            .map(|s| (dep_off[s + 1] - dep_off[s]) as usize)
            .max()
            .unwrap_or(0);
        let mut g = Self {
            num_dbs,
            layers,
            deps,
            dep_off,
            costs,
            relay,
            uniform: false,
            max_deps,
        };
        g.uniform = g.detect_uniform();
        g
    }

    fn detect_uniform(&self) -> bool {
        if self.layers == 0 {
            return true; // no tasks: trivially layer-invariant
        }
        if self.relay.iter().any(|&r| r) || self.costs.iter().any(|&c| c != 1) {
            return false;
        }
        for db in 0..self.num_dbs {
            let first = self.deps_of(db, 1);
            for layer in 2..=self.layers {
                if self.deps_of(db, layer) != first {
                    return false;
                }
            }
        }
        true
    }

    /// Build from a per-slot closure: `f(db, layer, &mut deps)` returns
    /// `(cost, relay)` after pushing that slot's dependencies.
    fn from_fn(
        num_dbs: u32,
        layers: u32,
        mut f: impl FnMut(u32, u32, &mut Vec<Dep>) -> (u32, bool),
    ) -> Self {
        assert!(num_dbs >= 1, "task graph needs at least one lane");
        let slots = num_dbs as usize * layers as usize;
        let mut deps = Vec::new();
        let mut dep_off = Vec::with_capacity(slots + 1);
        dep_off.push(0u32);
        let mut costs = Vec::with_capacity(slots);
        let mut relay = Vec::with_capacity(slots);
        let mut buf = Vec::new();
        for db in 0..num_dbs {
            for layer in 1..=layers {
                buf.clear();
                let (cost, rel) = f(db, layer, &mut buf);
                assert!(cost >= 1, "task cost must be ≥ 1");
                deps.extend_from_slice(&buf);
                dep_off.push(deps.len() as u32);
                costs.push(cost);
                relay.push(rel);
            }
        }
        Self::finish(num_dbs, layers, deps, dep_off, costs, relay)
    }

    /// The paper's pebble grid as a task graph: lane `i` at every layer
    /// runs a unit-cost task over `topo`'s canonical dependency list.
    /// Uniform by construction, so it lowers bit-identically to the
    /// native grid guest.
    pub fn pebble_grid(topo: &GuestTopology, layers: u32) -> Self {
        let m = topo.num_cells();
        Self::from_fn(m, layers, |db, _layer, out| {
            out.extend(topo.deps(db).iter());
            (1, false)
        })
    }

    /// A wavefront (systolic) sweep over `lanes` lanes: task `(i, t)`
    /// consumes `(i-1, t-1)` and `(i, t-1)`; lane 0 reads the west
    /// boundary. An *asymmetric* stencil no [`GuestTopology`] expresses,
    /// yet still uniform (static lowering).
    pub fn wavefront(lanes: u32, layers: u32) -> Self {
        Self::from_fn(lanes, layers, |db, _layer, out| {
            if db == 0 {
                out.push(Dep::Boundary {
                    side: Side::West,
                    offset: 0,
                });
            } else {
                out.push(Dep::Cell(db - 1));
            }
            out.push(Dep::Cell(db));
            (1, false)
        })
    }

    /// A fork-join diamond over `2^(levels-1)` lanes: `levels` fork layers
    /// splitting work outward from lane 0, then `levels - 1` join layers
    /// merging pairs back. Slots off the active frontier are relays, so
    /// the graph is non-uniform and exercises the per-layer lowering.
    pub fn fork_join(levels: u32) -> Self {
        assert!(levels >= 1);
        let lanes = 1u32 << (levels - 1);
        let layers = 2 * levels - 1;
        Self::from_fn(lanes, layers, |db, layer, out| {
            if layer <= levels {
                // Fork phase: at layer l the active lanes are the multiples
                // of `lanes >> (l-1)`; each reads its parent lane (the
                // active lane one coarser stride below).
                let stride = lanes >> (layer - 1);
                if db % stride == 0 {
                    let parent = if layer == 1 {
                        0
                    } else {
                        db - db % (stride * 2)
                    };
                    out.push(Dep::Cell(parent));
                    return (1, false);
                }
            } else {
                // Join phase: layer levels+k merges pairs at stride
                // `1 << k`; the surviving lane reads itself and its sibling.
                let k = layer - levels;
                let stride = 1u32 << k;
                if db % stride == 0 {
                    out.push(Dep::Cell(db));
                    out.push(Dep::Cell(db + stride / 2));
                    return (1, false);
                }
            }
            out.push(Dep::Cell(db));
            (1, true)
        })
    }

    /// A seeded random layered DAG: every slot is a real task reading its
    /// own lane plus up to `extra` distinct other lanes at the previous
    /// layer, with costs in `1..=max_cost`. Non-uniform whenever `extra`
    /// or `max_cost` vary anything (the fuzzer's workhorse).
    pub fn layered_random(dbs: u32, layers: u32, extra: u32, max_cost: u32, seed: u64) -> Self {
        assert!(max_cost >= 1);
        Self::from_fn(dbs, layers, |db, layer, out| {
            out.push(Dep::Cell(db));
            let mut h = mix64(seed ^ ((db as u64) << 32) ^ layer as u64);
            for k in 0..extra.min(dbs.saturating_sub(1)) {
                h = mix64(h.wrapping_add(k as u64 + 1));
                let pick = (h % dbs as u64) as u32;
                if pick != db && !out.contains(&Dep::Cell(pick)) {
                    out.push(Dep::Cell(pick));
                }
            }
            let cost = 1 + (mix64(h ^ 0xC057) % max_cost as u64) as u32;
            (cost, false)
        })
    }
}

/// Incremental builder for arbitrary DAGs. Tasks are added in topological
/// order (dependencies must already exist); [`DagBuilder::build`] assigns
/// each task its longest-path layer, pads holes with relays, and verifies
/// the one-live-value-per-lane discipline.
///
/// ```
/// use overlap_model::taskgraph::DagBuilder;
/// let mut b = DagBuilder::new(2);
/// let a = b.node(0, 1, &[]);
/// let c = b.node(1, 2, &[a]);
/// let _d = b.node(0, 1, &[a, c]);
/// let g = b.build().unwrap();
/// assert_eq!(g.layers(), 3);
/// assert!(g.is_relay(1, 1)); // lane 1 idles before its first task
/// ```
#[derive(Debug, Clone)]
pub struct DagBuilder {
    num_dbs: u32,
    /// (owning db, cost, dep task ids)
    nodes: Vec<(u32, u32, Vec<TaskId>)>,
}

impl DagBuilder {
    /// A builder over `num_dbs` lanes.
    pub fn new(num_dbs: u32) -> Self {
        Self {
            num_dbs,
            nodes: Vec::new(),
        }
    }

    /// Add a task owning database `db` with compute cost `cost`, consuming
    /// the values produced by `deps` (previously added tasks). Returns the
    /// task's id.
    ///
    /// # Panics
    /// If a dependency id has not been added yet (the builder is
    /// insertion-ordered, which makes cycles unrepresentable).
    pub fn node(&mut self, db: u32, cost: u32, deps: &[TaskId]) -> TaskId {
        let id = self.nodes.len() as TaskId;
        assert!(
            deps.iter().all(|&d| d < id),
            "dependencies must be added before their consumers"
        );
        self.nodes.push((db, cost, deps.to_vec()));
        id
    }

    /// Normalize into a [`TaskGraph`] (see the module docs for the rules).
    pub fn build(self) -> Result<TaskGraph, TaskGraphError> {
        if self.nodes.is_empty() {
            return Err(TaskGraphError::Empty);
        }
        for &(db, cost, _) in &self.nodes {
            if db >= self.num_dbs {
                return Err(TaskGraphError::BadDb { db });
            }
            if cost == 0 {
                return Err(TaskGraphError::ZeroCost);
            }
        }
        // Longest-path layering.
        let mut layer = vec![0u32; self.nodes.len()];
        for (i, (_, _, deps)) in self.nodes.iter().enumerate() {
            layer[i] = 1 + deps.iter().map(|&d| layer[d as usize]).max().unwrap_or(0);
        }
        let layers = layer.iter().copied().max().unwrap();
        // Occupancy: at most one task per (db, layer).
        let slots = self.num_dbs as usize * layers as usize;
        let mut occupant = vec![u32::MAX; slots];
        let slot = |db: u32, l: u32| db as usize * layers as usize + (l as usize - 1);
        for (i, &(db, _, _)) in self.nodes.iter().enumerate() {
            let s = slot(db, layer[i]);
            if occupant[s] != u32::MAX {
                return Err(TaskGraphError::DuplicateTask {
                    db,
                    layer: layer[i],
                });
            }
            occupant[s] = i as u32;
        }
        // Staleness: a consumer at layer L reads the relay chain of its
        // producer's lane at L-1; any intervening real task on that lane
        // would have overwritten the value.
        for (i, (_, _, deps)) in self.nodes.iter().enumerate() {
            for &d in deps {
                let (pdb, pl) = (self.nodes[d as usize].0, layer[d as usize]);
                for l in pl + 1..layer[i] {
                    if occupant[slot(pdb, l)] != u32::MAX {
                        return Err(TaskGraphError::StaleEdge {
                            db: pdb,
                            from_layer: pl,
                            to_layer: layer[i],
                        });
                    }
                }
            }
        }
        let nodes = &self.nodes;
        Ok(TaskGraph::from_fn(
            self.num_dbs,
            layers,
            |db, l, out| match occupant[slot(db, l)] {
                u32::MAX => {
                    out.push(Dep::Cell(db));
                    (1, true)
                }
                i => {
                    let (_, cost, deps) = &nodes[i as usize];
                    for &d in deps {
                        let dep = Dep::Cell(nodes[d as usize].0);
                        if !out.contains(&dep) {
                            out.push(dep);
                        }
                    }
                    if out.is_empty() {
                        // A source task: read the lane's initial value so
                        // the slot still has a well-defined gather list.
                        out.push(Dep::Cell(db));
                    }
                    (*cost, false)
                }
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pebble_grid_is_uniform_and_mirrors_topology() {
        let topo = GuestTopology::Line { m: 6 };
        let g = TaskGraph::pebble_grid(&topo, 4);
        assert!(g.is_uniform());
        assert_eq!(g.num_dbs(), 6);
        assert_eq!(g.layers(), 4);
        for c in 0..6 {
            for l in 1..=4 {
                assert_eq!(g.deps_of(c, l), topo.deps(c).as_slice());
                assert_eq!(g.cost_of(c, l), 1);
                assert!(!g.is_relay(c, l));
            }
        }
        assert_eq!(g.max_deps(), 3);
        assert_eq!(g.dep_lanes(2), vec![1, 3]);
        assert_eq!(g.total_cost(), 24);
    }

    #[test]
    fn wavefront_is_uniform_but_asymmetric() {
        let g = TaskGraph::wavefront(4, 3);
        assert!(g.is_uniform());
        assert_eq!(g.deps_of(2, 1), &[Dep::Cell(1), Dep::Cell(2)]);
        assert!(matches!(g.deps_of(0, 2)[0], Dep::Boundary { .. }));
        assert_eq!(g.dep_lanes(2), vec![1]);
    }

    #[test]
    fn fork_join_relays_pad_the_frontier() {
        let g = TaskGraph::fork_join(3); // 4 lanes, 5 layers
        assert_eq!(g.num_dbs(), 4);
        assert_eq!(g.layers(), 5);
        assert!(!g.is_uniform());
        // Layer 1: only lane 0 is active.
        assert!(!g.is_relay(0, 1));
        assert!(g.is_relay(1, 1) && g.is_relay(2, 1) && g.is_relay(3, 1));
        // Layer 2: lanes 0 and 2 fork; 2 reads its parent 0.
        assert!(!g.is_relay(2, 2));
        assert_eq!(g.deps_of(2, 2), &[Dep::Cell(0)]);
        // Layer 3 (full frontier): lane 3 reads parent 2.
        assert_eq!(g.deps_of(3, 3), &[Dep::Cell(2)]);
        // Join layers: lane 0 merges with 1, then with 2.
        assert_eq!(g.deps_of(0, 4), &[Dep::Cell(0), Dep::Cell(1)]);
        assert_eq!(g.deps_of(0, 5), &[Dep::Cell(0), Dep::Cell(2)]);
    }

    #[test]
    fn layered_random_is_deterministic_and_bounded() {
        let a = TaskGraph::layered_random(8, 5, 2, 3, 42);
        let b = TaskGraph::layered_random(8, 5, 2, 3, 42);
        assert_eq!(a, b);
        assert_ne!(a, TaskGraph::layered_random(8, 5, 2, 3, 43));
        assert!(a.max_deps() <= 3);
        assert!(a.has_nonunit_costs());
        for db in 0..8 {
            for l in 1..=5 {
                assert!(!a.is_relay(db, l));
                assert!((1..=3).contains(&a.cost_of(db, l)));
                assert_eq!(a.deps_of(db, l)[0], Dep::Cell(db));
            }
        }
    }

    #[test]
    fn builder_layers_by_longest_path() {
        let mut b = DagBuilder::new(3);
        let a = b.node(0, 1, &[]);
        let c = b.node(1, 1, &[a]);
        let d = b.node(2, 1, &[a]);
        let _e = b.node(0, 2, &[c, d]);
        let g = b.build().unwrap();
        assert_eq!(g.layers(), 3);
        assert!(!g.is_relay(0, 1) && !g.is_relay(1, 2) && !g.is_relay(2, 2));
        assert!(!g.is_relay(0, 3));
        assert_eq!(g.cost_of(0, 3), 2);
        assert_eq!(g.deps_of(0, 3), &[Dep::Cell(1), Dep::Cell(2)]);
        // Lane 0 idles at layer 2 (relay carrying a's value to e).
        assert!(g.is_relay(0, 2));
        assert_eq!(g.deps_of(0, 2), &[Dep::Cell(0)]);
    }

    #[test]
    fn builder_rejects_duplicates_and_stale_edges() {
        let mut b = DagBuilder::new(2);
        let a = b.node(0, 1, &[]);
        let _also_layer1_lane0 = b.node(0, 1, &[]);
        assert_eq!(
            b.build().unwrap_err(),
            TaskGraphError::DuplicateTask { db: 0, layer: 1 }
        );

        let mut b = DagBuilder::new(2);
        let a0 = b.node(0, 1, &[]);
        let _a1 = b.node(0, 1, &[a0]); // overwrites lane 0 at layer 2
        let via = b.node(1, 1, &[a0]);
        let _late = b.node(1, 1, &[via, a0]); // reads a0 at layer 3: stale
        assert_eq!(
            b.build().unwrap_err(),
            TaskGraphError::StaleEdge {
                db: 0,
                from_layer: 1,
                to_layer: 3
            }
        );
        let _ = a;
    }

    #[test]
    fn builder_rejects_bad_inputs() {
        assert_eq!(
            DagBuilder::new(2).build().unwrap_err(),
            TaskGraphError::Empty
        );
        let mut b = DagBuilder::new(1);
        b.node(1, 1, &[]);
        assert_eq!(b.build().unwrap_err(), TaskGraphError::BadDb { db: 1 });
        let mut b = DagBuilder::new(1);
        b.node(0, 0, &[]);
        assert_eq!(b.build().unwrap_err(), TaskGraphError::ZeroCost);
    }

    #[test]
    fn graphs_compare_structurally() {
        let g = TaskGraph::fork_join(3);
        assert_eq!(g, g.clone());
        assert_ne!(g, TaskGraph::fork_join(2));
    }
}
