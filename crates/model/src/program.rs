//! Guest programs: the pluggable per-pebble computation.
//!
//! A [`Program`] defines what pebble `(cell, t)` computes from the cell's
//! database and the predecessor pebble values (in the guest topology's
//! canonical dependency order — `[left, self, right]` for lines/rings,
//! `[W, N, self, S, E]` for meshes). Every program is a pure deterministic
//! function, so redundant computation on multiple host processors (the core
//! technique of the paper) yields bit-identical pebbles, which the validator
//! checks.

use crate::database::{fold64, mix64, Db, DbKind, DbUpdate};
use crate::pebble::PebbleValue;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The result of one pebble computation: the value to propagate and the
/// update to apply to this cell's database.
pub type ComputeResult = (PebbleValue, DbUpdate);

/// A guest program in the database model. `compute` must be a *pure*
/// function of its arguments: the paper's simulation correctness (and our
/// validator) relies on redundant copies producing identical pebbles.
pub trait Program: Send + Sync {
    /// Compute pebble `(cell, step)` given the cell's database and the
    /// dependency pebble values in canonical order.
    fn compute(&self, cell: u32, step: u32, db: &Db, deps: &[PebbleValue]) -> ComputeResult;

    /// The database kind this program operates on.
    fn db_kind(&self) -> DbKind;

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Shared, thread-safe handle to a program.
pub type ProgramRef = Arc<dyn Program>;

/// Enumerates the built-in programs, for configuration and serialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProgramKind {
    /// Pure dataflow stencil: value mixing only, no database update. The
    /// closest analogue of the *dataflow model* of \[2\]; used to contrast
    /// dataflow vs database behaviour.
    StencilSum,
    /// A chaotic rule automaton whose update writes back into a vector db.
    RuleAutomaton {
        /// Vector database size per cell.
        db_size: u32,
    },
    /// Key-value read-modify-write workload: the NOW "local database"
    /// application the paper's introduction motivates.
    KvWorkload,
    /// Iterative relaxation flavoured workload on a counter db (cheap,
    /// useful for very large sweeps).
    Relaxation,
    /// Streaming aggregation: every step adds a neighbour-derived sample
    /// into a histogram bucket of a vector database (add-heavy updates).
    Histogram {
        /// Number of buckets per cell.
        buckets: u32,
    },
    /// Cache-maintenance workload: a bounded working set of keys with
    /// insert/refresh/evict churn (remove-heavy KV updates).
    CacheChurn,
}

impl ProgramKind {
    /// Instantiate the program.
    pub fn instantiate(self) -> ProgramRef {
        match self {
            ProgramKind::StencilSum => Arc::new(StencilSum),
            ProgramKind::RuleAutomaton { db_size } => Arc::new(RuleAutomaton { db_size }),
            ProgramKind::KvWorkload => Arc::new(KvWorkload),
            ProgramKind::Relaxation => Arc::new(Relaxation),
            ProgramKind::Histogram { buckets } => Arc::new(Histogram { buckets }),
            ProgramKind::CacheChurn => Arc::new(CacheChurn),
        }
    }

    /// Derive a program kind deterministically from `bits` (e.g. a PRNG
    /// draw): every variant is reachable and parameters stay in sane,
    /// fuzz-friendly ranges. Used by the differential fuzzer.
    pub fn arbitrary(bits: u64) -> Self {
        match bits % 6 {
            0 => ProgramKind::StencilSum,
            1 => ProgramKind::RuleAutomaton {
                db_size: 1 + (bits >> 3) as u32 % 9,
            },
            2 => ProgramKind::KvWorkload,
            3 => ProgramKind::Relaxation,
            4 => ProgramKind::Histogram {
                buckets: 1 + (bits >> 3) as u32 % 12,
            },
            _ => ProgramKind::CacheChurn,
        }
    }
}

/// Convenience constructors for the built-in programs.
pub mod programs {
    use super::*;

    /// Pure-dataflow stencil program.
    pub fn stencil_sum() -> ProgramRef {
        ProgramKind::StencilSum.instantiate()
    }

    /// Rule automaton over a `db_size`-slot vector database.
    pub fn rule_automaton(db_size: u32) -> ProgramRef {
        ProgramKind::RuleAutomaton { db_size }.instantiate()
    }

    /// Key-value read-modify-write workload.
    pub fn kv_workload() -> ProgramRef {
        ProgramKind::KvWorkload.instantiate()
    }

    /// Cheap relaxation workload on a counter database.
    pub fn relaxation() -> ProgramRef {
        ProgramKind::Relaxation.instantiate()
    }

    /// Streaming histogram aggregation over `buckets` buckets.
    pub fn histogram(buckets: u32) -> ProgramRef {
        ProgramKind::Histogram { buckets }.instantiate()
    }

    /// Cache-churn workload (insert/refresh/evict on a KV shard).
    pub fn cache_churn() -> ProgramRef {
        ProgramKind::CacheChurn.instantiate()
    }
}

/// Fold a dependency slice into one word, order-sensitively.
#[inline]
fn fold_deps(deps: &[PebbleValue]) -> u64 {
    let mut acc = 0x6f6c6170u64 ^ deps.len() as u64;
    for (i, d) in deps.iter().enumerate() {
        acc = fold64(acc, d.rotate_left((i as u32 * 11) % 63));
    }
    acc
}

/// Pure dataflow: `value = mix(deps, db-read)`, no db update.
struct StencilSum;

impl Program for StencilSum {
    fn compute(&self, cell: u32, step: u32, db: &Db, deps: &[PebbleValue]) -> ComputeResult {
        let state = db.consult(cell, step);
        (fold64(fold_deps(deps), state), DbUpdate::None)
    }

    fn db_kind(&self) -> DbKind {
        DbKind::Counter
    }

    fn name(&self) -> &'static str {
        "stencil-sum"
    }
}

/// Rule automaton: consults a vector database slot, mixes with neighbours,
/// writes the result back to a (value-dependent) slot. Exercises the full
/// read–compute–update cycle of the database model.
struct RuleAutomaton {
    db_size: u32,
}

impl Program for RuleAutomaton {
    fn compute(&self, cell: u32, step: u32, db: &Db, deps: &[PebbleValue]) -> ComputeResult {
        let state = db.consult(cell, step);
        let v = mix64(fold_deps(deps) ^ state);
        let slot = v % self.db_size.max(1) as u64;
        (
            v,
            DbUpdate::Set {
                key: slot,
                value: v,
            },
        )
    }

    fn db_kind(&self) -> DbKind {
        DbKind::Vec { size: self.db_size }
    }

    fn name(&self) -> &'static str {
        "rule-automaton"
    }
}

/// Key-value workload: every step performs a read-modify-write on a key
/// derived from the incoming pebble values — the "updates of large local
/// memories or databases" workload from the paper's abstract.
struct KvWorkload;

impl Program for KvWorkload {
    fn compute(&self, cell: u32, step: u32, db: &Db, deps: &[PebbleValue]) -> ComputeResult {
        let state = db.consult(cell, step);
        let v = fold64(fold_deps(deps), state);
        // Keep the shard bounded: mostly updates to a rotating window of
        // keys, occasionally a removal.
        let key = v % 257;
        let update = if v.is_multiple_of(13) {
            DbUpdate::Remove { key }
        } else if v.is_multiple_of(3) {
            DbUpdate::Set { key, value: v }
        } else {
            DbUpdate::Add { key, delta: v | 1 }
        };
        (v, update)
    }

    fn db_kind(&self) -> DbKind {
        DbKind::Kv
    }

    fn name(&self) -> &'static str {
        "kv-workload"
    }
}

/// Cheap accumulator relaxation; db is a single counter.
struct Relaxation;

impl Program for Relaxation {
    fn compute(&self, cell: u32, step: u32, db: &Db, deps: &[PebbleValue]) -> ComputeResult {
        let state = db.consult(cell, step);
        let mut v = state;
        for d in deps {
            v = v.wrapping_add(d.rotate_left(7)).rotate_left(3);
        }
        (v, DbUpdate::Add { key: v, delta: 1 })
    }

    fn db_kind(&self) -> DbKind {
        DbKind::Counter
    }

    fn name(&self) -> &'static str {
        "relaxation"
    }
}

/// Streaming aggregation: sample = mix(deps); bucket = sample mod buckets;
/// the histogram itself feeds back into the next value via `consult`.
struct Histogram {
    buckets: u32,
}

impl Program for Histogram {
    fn compute(&self, cell: u32, step: u32, db: &Db, deps: &[PebbleValue]) -> ComputeResult {
        let state = db.consult(cell, step);
        let sample = mix64(fold_deps(deps) ^ state.rotate_left(13));
        let bucket = sample % self.buckets.max(1) as u64;
        (
            sample,
            DbUpdate::Add {
                key: bucket,
                delta: (sample >> 32) | 1,
            },
        )
    }

    fn db_kind(&self) -> DbKind {
        DbKind::Vec { size: self.buckets }
    }

    fn name(&self) -> &'static str {
        "histogram"
    }
}

/// Cache churn: keys live in a window of 64 slots; most steps refresh a
/// key (`Set`), a third insert-or-bump (`Add`), and every 5th evicts
/// (`Remove`) — a remove-heavy shard workload.
struct CacheChurn;

impl Program for CacheChurn {
    fn compute(&self, cell: u32, step: u32, db: &Db, deps: &[PebbleValue]) -> ComputeResult {
        let state = db.consult(cell, step);
        let v = fold64(fold_deps(deps), state.rotate_left(29));
        let key = v % 64;
        let update = if v.is_multiple_of(5) {
            DbUpdate::Remove { key }
        } else if v.is_multiple_of(3) {
            DbUpdate::Add { key, delta: v | 1 }
        } else {
            DbUpdate::Set { key, value: v }
        };
        (v, update)
    }

    fn db_kind(&self) -> DbKind {
        DbKind::Kv
    }

    fn name(&self) -> &'static str {
        "cache-churn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<ProgramKind> {
        vec![
            ProgramKind::StencilSum,
            ProgramKind::RuleAutomaton { db_size: 16 },
            ProgramKind::KvWorkload,
            ProgramKind::Relaxation,
            ProgramKind::Histogram { buckets: 12 },
            ProgramKind::CacheChurn,
        ]
    }

    #[test]
    fn programs_are_pure() {
        for kind in all_kinds() {
            let p = kind.instantiate();
            let db = p.db_kind().instantiate(2, 11);
            let a = p.compute(2, 3, &db, &[10, 20, 30]);
            let b = p.compute(2, 3, &db, &[10, 20, 30]);
            assert_eq!(a, b, "{} must be deterministic", p.name());
        }
    }

    #[test]
    fn programs_depend_on_every_dependency_slot() {
        for kind in all_kinds() {
            let p = kind.instantiate();
            let db = p.db_kind().instantiate(1, 5);
            for n in [3usize, 5] {
                let base_deps: Vec<u64> = (1..=n as u64).collect();
                let base = p.compute(1, 1, &db, &base_deps).0;
                for i in 0..n {
                    let mut d = base_deps.clone();
                    d[i] = 999;
                    assert_ne!(base, p.compute(1, 1, &db, &d).0, "{} slot {i}", p.name());
                }
            }
        }
    }

    #[test]
    fn dependency_order_matters() {
        for kind in all_kinds() {
            let p = kind.instantiate();
            let db = p.db_kind().instantiate(1, 5);
            let a = p.compute(1, 1, &db, &[1, 2, 3]).0;
            let b = p.compute(1, 1, &db, &[3, 2, 1]).0;
            assert_ne!(a, b, "{} must be order-sensitive", p.name());
        }
    }

    #[test]
    fn database_state_affects_computation() {
        // Apply an update, recompute: results must change for db-coupled
        // programs (this is what makes the model *not* dataflow).
        for kind in [
            ProgramKind::RuleAutomaton { db_size: 4 },
            ProgramKind::KvWorkload,
            ProgramKind::Relaxation,
            ProgramKind::Histogram { buckets: 4 },
            ProgramKind::CacheChurn,
        ] {
            let p = kind.instantiate();
            let mut db = p.db_kind().instantiate(1, 5);
            let before = p.compute(1, 2, &db, &[1, 2, 3]);
            // Perturb every slot a Vec db might be consulted on, plus the
            // counter/kv state.
            for k in 0..4 {
                db.apply(&DbUpdate::Set {
                    key: k,
                    value: 77 ^ k,
                });
            }
            let after = p.compute(1, 2, &db, &[1, 2, 3]);
            assert_ne!(before, after, "{} must read the database", p.name());
        }
    }

    #[test]
    fn stencil_sum_never_updates() {
        let p = programs::stencil_sum();
        let db = p.db_kind().instantiate(1, 1);
        for s in 1..50 {
            let (_, u) = p.compute(1, s, &db, &[s as u64, 2, 3]);
            assert_eq!(u, DbUpdate::None);
        }
    }

    #[test]
    fn kv_workload_emits_varied_updates() {
        let p = programs::kv_workload();
        let mut db = p.db_kind().instantiate(1, 1);
        let (mut adds, mut sets, mut removes) = (0, 0, 0);
        let mut v = 1u64;
        for s in 1..200 {
            let (nv, u) = p.compute(1, s, &db, &[v, v ^ 1, v ^ 2]);
            match u {
                DbUpdate::Add { .. } => adds += 1,
                DbUpdate::Set { .. } => sets += 1,
                DbUpdate::Remove { .. } => removes += 1,
                DbUpdate::None => {}
            }
            db.apply(&u);
            v = nv;
        }
        assert!(
            adds > 0 && sets > 0 && removes > 0,
            "{adds}/{sets}/{removes}"
        );
    }

    #[test]
    fn cache_churn_evicts_regularly() {
        let p = programs::cache_churn();
        let mut db = p.db_kind().instantiate(1, 1);
        let mut removes = 0;
        let mut v = 1u64;
        for s in 1..300 {
            let (nv, u) = p.compute(1, s, &db, &[v, v ^ 7, v ^ 9]);
            if matches!(u, DbUpdate::Remove { .. }) {
                removes += 1;
            }
            db.apply(&u);
            v = nv;
        }
        assert!(removes > 20, "expected regular evictions, saw {removes}");
    }

    #[test]
    fn histogram_only_adds() {
        let p = programs::histogram(8);
        let db = p.db_kind().instantiate(1, 1);
        for s in 1..100 {
            let (_, u) = p.compute(1, s, &db, &[s as u64, 2, 3]);
            assert!(matches!(u, DbUpdate::Add { .. }));
        }
    }

    #[test]
    fn program_names_are_distinct() {
        let names: Vec<_> = all_kinds().iter().map(|k| k.instantiate().name()).collect();
        for i in 0..names.len() {
            for j in 0..names.len() {
                if i != j {
                    assert_ne!(names[i], names[j]);
                }
            }
        }
    }
}
