//! The unit-delay reference executor.
//!
//! Runs a [`GuestSpec`] exactly as the guest network itself would — every
//! cell computes one pebble per step with unit-delay neighbour exchange —
//! and records the complete pebble grid plus per-cell database digests.
//! Every host simulation in the workspace is validated against this trace:
//! a correct latency-hiding simulation must compute *the same pebbles* and
//! leave every database copy in *the same state* (paper §2: "H performs the
//! same step-by-step computations as G").

use crate::database::{fold64, Db};
use crate::guest::{Dep, GuestSpec};
use crate::pebble::{PebbleGrid, PebbleId, PebbleValue};
use crate::program::ProgramRef;

/// The complete ground truth of a guest run.
#[derive(Debug, Clone)]
pub struct ReferenceTrace {
    /// The spec that was executed.
    pub spec: GuestSpec,
    /// All pebble values, `cells × steps`.
    pub grid: PebbleGrid,
    /// Digest of each cell's final database contents.
    pub final_db_digest: Vec<u64>,
    /// Order-sensitive digest of each cell's update log (step order).
    pub update_log_digest: Vec<u64>,
    /// Total pebbles computed (= cells × steps).
    pub work: u64,
}

impl ReferenceTrace {
    /// Value of pebble `id` in the ground truth.
    pub fn value(&self, id: PebbleId) -> PebbleValue {
        self.grid.get(id)
    }
}

/// Executor for the unit-delay guest.
pub struct ReferenceRun;

impl ReferenceRun {
    /// Execute `spec` and return the full trace.
    ///
    /// Memory: `cells × steps` pebble values plus one live database per
    /// cell. A 4096-cell, 4096-step run is ~128 MiB of pebbles; callers
    /// running parameter sweeps should size accordingly.
    pub fn execute(spec: &GuestSpec) -> ReferenceTrace {
        let program: ProgramRef = spec.program.instantiate();
        let cells = spec.num_cells();
        let steps = spec.steps;
        let boundary = spec.boundary();
        let kind = program.db_kind();

        let mut dbs: Vec<Db> = (0..cells).map(|c| kind.instantiate(c, spec.seed)).collect();
        let mut update_log_digest = vec![0xD16u64; cells as usize];
        let mut grid = PebbleGrid::new(cells, steps);

        let mut prev: Vec<PebbleValue> = (0..cells).map(|c| spec.initial_value(c)).collect();
        let mut cur: Vec<PebbleValue> = vec![0; cells as usize];
        let mut deps_buf: Vec<PebbleValue> = Vec::with_capacity(spec.max_deps());

        for t in 1..=steps {
            for c in 0..cells {
                deps_buf.clear();
                spec.visit_deps(c, t, |d| {
                    deps_buf.push(match d {
                        Dep::Cell(cc) => prev[cc as usize],
                        Dep::Boundary { side, offset } => boundary.value(side, offset, t),
                    });
                });
                let (v, u) = if spec.is_relay(c, t) {
                    // Relay slots repeat the lane's previous value and leave
                    // the database untouched (DbUpdate::None still folds
                    // into the update log, keeping digests well-defined).
                    (prev[c as usize], crate::database::DbUpdate::None)
                } else {
                    program.compute(c, t, &dbs[c as usize], &deps_buf)
                };
                dbs[c as usize].apply(&u);
                update_log_digest[c as usize] = fold64(update_log_digest[c as usize], u.digest());
                cur[c as usize] = v;
                grid.set(PebbleId::new(c, t), v);
            }
            std::mem::swap(&mut prev, &mut cur);
        }

        ReferenceTrace {
            spec: spec.clone(),
            grid,
            final_db_digest: dbs.iter().map(|d| d.digest()).collect(),
            update_log_digest,
            work: cells as u64 * steps as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramKind;

    fn spec() -> GuestSpec {
        GuestSpec::array(8, ProgramKind::KvWorkload, 7, 12)
    }

    #[test]
    fn execution_is_deterministic() {
        let a = ReferenceRun::execute(&spec());
        let b = ReferenceRun::execute(&spec());
        assert_eq!(a.grid, b.grid);
        assert_eq!(a.final_db_digest, b.final_db_digest);
        assert_eq!(a.update_log_digest, b.update_log_digest);
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let a = ReferenceRun::execute(&spec());
        let mut s2 = spec();
        s2.seed = 8;
        let b = ReferenceRun::execute(&s2);
        assert_ne!(a.grid, b.grid);
    }

    #[test]
    fn work_counts_all_pebbles() {
        let t = ReferenceRun::execute(&spec());
        assert_eq!(t.work, 8 * 12);
        assert_eq!(t.grid.len(), 96);
    }

    #[test]
    fn values_propagate_spatially() {
        // After t steps, a perturbation of cell 0's initial value must reach
        // cell t (information travels 1 cell per step) but not further.
        let base = GuestSpec::array(10, ProgramKind::StencilSum, 100, 5);
        let a = ReferenceRun::execute(&base);
        let mut pert = base.clone();
        pert.seed = 101; // changes every initial value; instead compare two
                         // runs cell-by-cell is not possible. Use rings below.
        let b = ReferenceRun::execute(&pert);
        assert_ne!(
            a.value(PebbleId::new(0, 1)),
            b.value(PebbleId::new(0, 1)),
            "seed must influence step-1 pebbles"
        );
    }

    #[test]
    fn ring_and_line_differ() {
        let line = ReferenceRun::execute(&GuestSpec::array(6, ProgramKind::StencilSum, 3, 6));
        let ring = ReferenceRun::execute(&GuestSpec::ring(6, ProgramKind::StencilSum, 3, 6));
        // Edge cells see boundary vs wraparound values.
        assert_ne!(
            line.value(PebbleId::new(0, 1)),
            ring.value(PebbleId::new(0, 1))
        );
        // Interior cells agree at step 1 (same deps), diverge later as edge
        // effects propagate inward.
        assert_eq!(
            line.value(PebbleId::new(3, 1)),
            ring.value(PebbleId::new(3, 1))
        );
        assert_ne!(
            line.value(PebbleId::new(3, 6)),
            ring.value(PebbleId::new(3, 6))
        );
    }

    #[test]
    fn mesh_reference_runs() {
        let t = ReferenceRun::execute(&GuestSpec::mesh(
            4,
            4,
            ProgramKind::RuleAutomaton { db_size: 8 },
            9,
            5,
        ));
        assert_eq!(t.work, 80);
        assert_eq!(t.final_db_digest.len(), 16);
    }

    #[test]
    fn db_digests_change_over_time_for_updating_programs() {
        let s = GuestSpec::array(4, ProgramKind::KvWorkload, 5, 1);
        let t1 = ReferenceRun::execute(&s);
        let mut s2 = s.clone();
        s2.steps = 20;
        let t2 = ReferenceRun::execute(&s2);
        assert_ne!(t1.final_db_digest, t2.final_db_digest);
    }

    #[test]
    fn pebble_grid_taskgraph_matches_native_guest() {
        // The grid expressed as a TaskGraph must reproduce the native
        // topology's run exactly: same pebbles, same database digests.
        for topo in [
            crate::guest::GuestTopology::Line { m: 8 },
            crate::guest::GuestTopology::Ring { m: 8 },
            crate::guest::GuestTopology::Mesh2D { w: 3, h: 3 },
        ] {
            let native = GuestSpec {
                topology: topo,
                program: ProgramKind::KvWorkload,
                seed: 7,
                steps: 6,
                graph: None,
            };
            let dag = GuestSpec::dag(
                crate::taskgraph::TaskGraph::pebble_grid(&topo, 6),
                ProgramKind::KvWorkload,
                7,
            );
            let a = ReferenceRun::execute(&native);
            let b = ReferenceRun::execute(&dag);
            assert_eq!(a.grid, b.grid);
            assert_eq!(a.final_db_digest, b.final_db_digest);
            assert_eq!(a.update_log_digest, b.update_log_digest);
        }
    }

    #[test]
    fn relay_slots_pass_values_through_untouched() {
        let g = crate::taskgraph::TaskGraph::fork_join(3); // 4 lanes, 5 layers
        let spec = GuestSpec::dag(g, ProgramKind::KvWorkload, 11);
        let t = ReferenceRun::execute(&spec);
        // Lane 3 idles (relays) until layer 3: its pebbles repeat the
        // initial value and its database stays fresh until then.
        assert_eq!(t.value(PebbleId::new(3, 1)), spec.initial_value(3));
        assert_eq!(t.value(PebbleId::new(3, 2)), spec.initial_value(3));
        assert_ne!(t.value(PebbleId::new(3, 3)), spec.initial_value(3));
        // Lane 0 computes at every layer of the fork and join phases.
        assert_ne!(t.value(PebbleId::new(0, 1)), spec.initial_value(0));
    }

    #[test]
    fn stencil_program_leaves_dbs_untouched() {
        let s = GuestSpec::array(4, ProgramKind::StencilSum, 5, 10);
        let t = ReferenceRun::execute(&s);
        let fresh: Vec<u64> = (0..4)
            .map(|c| s.db_kind().instantiate(c, s.seed).digest())
            .collect();
        assert_eq!(t.final_db_digest, fresh);
    }
}
