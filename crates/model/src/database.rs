//! Databases: the large per-column local state that cannot travel over links.
//!
//! The paper's model (§2) assumes the *initial contents* of each database can
//! be copied before the computation begins (enabling replicated computation),
//! but during the computation only *updates* travel through the network,
//! carried inside pebbles. A host processor holding a copy of `b_i` must
//! apply the updates of pebbles `(i, 1), (i, 2), …` in step order to keep its
//! copy current; the simulator's validator enforces this.
//!
//! Three concrete database kinds are provided. They are deliberately
//! deterministic and digest-comparable so that redundant copies on different
//! host processors can be checked for bit-identical agreement:
//!
//! * [`DbKind::Counter`] — a single accumulator (smallest possible db);
//! * [`DbKind::Vec`] — a fixed-size vector store (array/stencil workloads);
//! * [`DbKind::Kv`] — an open-addressed key→value shard (NOW database
//!   workloads, the paper's motivating application).

use serde::{Deserialize, Serialize};

/// Multiplier of the 64-bit mix function (splitmix64 finalizer).
const MIX_M1: u64 = 0xff51_afd7_ed55_8ccd;
const MIX_M2: u64 = 0xc4ce_b9fe_1a85_ec53;

/// Deterministic 64-bit mixer used throughout the workspace to fold values
/// into digests. Not cryptographic; stable across platforms.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(MIX_M1);
    x ^= x >> 33;
    x = x.wrapping_mul(MIX_M2);
    x ^= x >> 33;
    x
}

/// Fold `b` into running digest `a` (order-sensitive).
#[inline]
pub fn fold64(a: u64, b: u64) -> u64 {
    mix64(a.rotate_left(17) ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// The change one pebble computation makes to its column's database.
///
/// Updates are small (O(1) words) by design: the model forbids shipping
/// whole databases, and the simulator charges link bandwidth per pebble.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DbUpdate {
    /// No change to the database this step.
    None,
    /// Add `delta` to the accumulator (Counter) or to slot `key % len` (Vec)
    /// or to key `key` (Kv).
    Add {
        /// The key / slot selector.
        key: u64,
        /// The increment.
        delta: u64,
    },
    /// Overwrite: slot `key % len` (Vec) or key `key` (Kv) becomes `value`.
    Set {
        /// The key / slot selector.
        key: u64,
        /// The new value.
        value: u64,
    },
    /// Remove key `key` (Kv only; a no-op for other kinds).
    Remove {
        /// The key to delete.
        key: u64,
    },
}

impl DbUpdate {
    /// A stable digest of the update itself (used to fold updates into
    /// pebble values and to compare update logs).
    pub fn digest(&self) -> u64 {
        match *self {
            DbUpdate::None => mix64(1),
            DbUpdate::Add { key, delta } => fold64(fold64(2, key), delta),
            DbUpdate::Set { key, value } => fold64(fold64(3, key), value),
            DbUpdate::Remove { key } => fold64(4, key),
        }
    }
}

/// Which concrete database implementation a guest uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DbKind {
    /// Single accumulator.
    Counter,
    /// Fixed-size vector of `size` slots.
    Vec {
        /// Number of slots.
        size: u32,
    },
    /// Key→value shard with open addressing, unbounded.
    Kv,
}

impl DbKind {
    /// Instantiate the initial database for guest column `col` (1-based).
    /// Initial contents are a deterministic function of `(kind, col, seed)`,
    /// so every host copy of `b_col` starts identical — the paper's
    /// "initial contents of each database can be copied before the
    /// computation begins".
    pub fn instantiate(&self, col: u32, seed: u64) -> Db {
        match *self {
            DbKind::Counter => Db::Counter {
                acc: mix64(seed ^ (col as u64) << 32),
            },
            DbKind::Vec { size } => {
                let n = size.max(1) as usize;
                let mut v = Vec::with_capacity(n);
                for i in 0..n {
                    v.push(mix64(seed ^ ((col as u64) << 32) ^ i as u64));
                }
                Db::Vec { slots: v }
            }
            DbKind::Kv => {
                let mut kv = KvShard::new();
                // A handful of deterministic seed entries per column.
                for i in 0..4u64 {
                    let k = mix64(seed ^ ((col as u64) << 16) ^ i);
                    kv.set(k, fold64(k, col as u64));
                }
                Db::Kv { shard: kv }
            }
        }
    }
}

/// A concrete database instance (one copy of some `b_i`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Db {
    /// Single accumulator.
    Counter {
        /// Current accumulator value.
        acc: u64,
    },
    /// Fixed-size vector store.
    Vec {
        /// Slot contents.
        slots: Vec<u64>,
    },
    /// Key→value shard.
    Kv {
        /// The shard.
        shard: KvShard,
    },
}

impl Db {
    /// Apply one update in place. Updates must be applied in pebble-step
    /// order; the caller (host processor model) is responsible for ordering
    /// and the validator checks it.
    pub fn apply(&mut self, u: &DbUpdate) {
        match (self, *u) {
            (_, DbUpdate::None) => {}
            (Db::Counter { acc }, DbUpdate::Add { key, delta }) => {
                *acc = acc.wrapping_add(delta.wrapping_mul(mix64(key) | 1));
            }
            (Db::Counter { acc }, DbUpdate::Set { key, value }) => {
                *acc = fold64(value, key);
            }
            (Db::Counter { .. }, DbUpdate::Remove { .. }) => {}
            (Db::Vec { slots }, DbUpdate::Add { key, delta }) => {
                let n = slots.len() as u64;
                let i = (key % n) as usize;
                slots[i] = slots[i].wrapping_add(delta);
            }
            (Db::Vec { slots }, DbUpdate::Set { key, value }) => {
                let n = slots.len() as u64;
                let i = (key % n) as usize;
                slots[i] = value;
            }
            (Db::Vec { .. }, DbUpdate::Remove { .. }) => {}
            (Db::Kv { shard }, DbUpdate::Add { key, delta }) => {
                let cur = shard.get(key).unwrap_or(0);
                shard.set(key, cur.wrapping_add(delta));
            }
            (Db::Kv { shard }, DbUpdate::Set { key, value }) => {
                shard.set(key, value);
            }
            (Db::Kv { shard }, DbUpdate::Remove { key }) => {
                shard.remove(key);
            }
        }
    }

    /// Consult the database: a deterministic 64-bit summary of the state
    /// relevant to `(col, step)`. This is what the guest program reads; it
    /// is a pure function of the current contents, so two up-to-date copies
    /// always return the same value.
    pub fn consult(&self, col: u32, step: u32) -> u64 {
        let probe = mix64(((col as u64) << 32) | step as u64);
        match self {
            Db::Counter { acc } => fold64(*acc, probe),
            Db::Vec { slots } => {
                let n = slots.len() as u64;
                let i = (probe % n) as usize;
                fold64(slots[i], probe)
            }
            Db::Kv { shard } => {
                let v = shard.get(probe).unwrap_or(mix64(probe));
                fold64(v, shard.len() as u64)
            }
        }
    }

    /// Order-insensitive digest of the full contents; two copies of the same
    /// column that have applied the same update prefix digest identically.
    pub fn digest(&self) -> u64 {
        match self {
            Db::Counter { acc } => fold64(0xC0, *acc),
            Db::Vec { slots } => {
                let mut d = fold64(0x5645_4300, slots.len() as u64);
                for (i, s) in slots.iter().enumerate() {
                    d = fold64(d, fold64(i as u64, *s));
                }
                d
            }
            Db::Kv { shard } => shard.digest(),
        }
    }

    /// Approximate size in 64-bit words (for load accounting: databases are
    /// "large" — the simulator charges memory, not bandwidth, for copies).
    pub fn words(&self) -> usize {
        match self {
            Db::Counter { .. } => 1,
            Db::Vec { slots } => slots.len(),
            Db::Kv { shard } => shard.len() * 2,
        }
    }
}

/// A deterministic key→value shard. Plain sorted-vec representation: simple,
/// allocation-friendly, and digest order does not depend on insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvShard {
    entries: Vec<(u64, u64)>,
}

impl KvShard {
    /// Empty shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no keys are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a key.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.entries
            .binary_search_by_key(&key, |e| e.0)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Insert or overwrite a key.
    pub fn set(&mut self, key: u64, value: u64) {
        match self.entries.binary_search_by_key(&key, |e| e.0) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (key, value)),
        }
    }

    /// Remove a key if present; returns the old value.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        match self.entries.binary_search_by_key(&key, |e| e.0) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Content digest, independent of operation history.
    pub fn digest(&self) -> u64 {
        let mut d = fold64(0x4B56, self.entries.len() as u64);
        for (k, v) in &self.entries {
            d = fold64(d, fold64(*k, *v));
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_nontrivial() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), 42);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn instantiate_is_deterministic_per_column() {
        for kind in [DbKind::Counter, DbKind::Vec { size: 16 }, DbKind::Kv] {
            let a = kind.instantiate(3, 99);
            let b = kind.instantiate(3, 99);
            assert_eq!(a.digest(), b.digest());
            let c = kind.instantiate(4, 99);
            assert_ne!(a.digest(), c.digest(), "{kind:?} columns must differ");
        }
    }

    #[test]
    fn same_update_sequence_gives_same_digest() {
        let kind = DbKind::Kv;
        let updates = [
            DbUpdate::Set { key: 10, value: 5 },
            DbUpdate::Add { key: 10, delta: 3 },
            DbUpdate::Add { key: 7, delta: 1 },
            DbUpdate::Remove { key: 10 },
        ];
        let mut a = kind.instantiate(1, 0);
        let mut b = kind.instantiate(1, 0);
        for u in &updates {
            a.apply(u);
            b.apply(u);
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.consult(1, 5), b.consult(1, 5));
    }

    #[test]
    fn update_order_matters_for_set() {
        let kind = DbKind::Vec { size: 8 };
        let mut a = kind.instantiate(1, 0);
        let mut b = kind.instantiate(1, 0);
        a.apply(&DbUpdate::Set { key: 0, value: 1 });
        a.apply(&DbUpdate::Set { key: 0, value: 2 });
        b.apply(&DbUpdate::Set { key: 0, value: 2 });
        b.apply(&DbUpdate::Set { key: 0, value: 1 });
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn kv_set_get_remove_roundtrip() {
        let mut kv = KvShard::new();
        assert!(kv.is_empty());
        kv.set(5, 50);
        kv.set(3, 30);
        kv.set(5, 55);
        assert_eq!(kv.get(5), Some(55));
        assert_eq!(kv.get(3), Some(30));
        assert_eq!(kv.get(4), None);
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.remove(5), Some(55));
        assert_eq!(kv.remove(5), None);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn kv_digest_is_insertion_order_independent() {
        let mut a = KvShard::new();
        let mut b = KvShard::new();
        for k in 0..20u64 {
            a.set(k, k * 2);
        }
        for k in (0..20u64).rev() {
            b.set(k, k * 2);
        }
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn counter_add_is_commutative_but_set_is_not() {
        let kind = DbKind::Counter;
        let mut a = kind.instantiate(1, 7);
        let mut b = kind.instantiate(1, 7);
        a.apply(&DbUpdate::Add { key: 1, delta: 10 });
        a.apply(&DbUpdate::Add { key: 2, delta: 20 });
        b.apply(&DbUpdate::Add { key: 2, delta: 20 });
        b.apply(&DbUpdate::Add { key: 1, delta: 10 });
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn remove_is_noop_for_counter_and_vec() {
        for kind in [DbKind::Counter, DbKind::Vec { size: 4 }] {
            let mut db = kind.instantiate(2, 1);
            let before = db.digest();
            db.apply(&DbUpdate::Remove { key: 9 });
            assert_eq!(db.digest(), before);
        }
    }

    #[test]
    fn consult_depends_on_col_and_step() {
        let db = DbKind::Vec { size: 64 }.instantiate(1, 3);
        assert_ne!(db.consult(1, 1), db.consult(1, 2));
        assert_ne!(db.consult(1, 1), db.consult(2, 1));
    }

    #[test]
    fn words_reflects_size() {
        assert_eq!(DbKind::Counter.instantiate(1, 0).words(), 1);
        assert_eq!(DbKind::Vec { size: 32 }.instantiate(1, 0).words(), 32);
        assert!(DbKind::Kv.instantiate(1, 0).words() >= 2);
    }

    #[test]
    fn update_digest_distinguishes_variants() {
        let us = [
            DbUpdate::None,
            DbUpdate::Add { key: 1, delta: 2 },
            DbUpdate::Set { key: 1, value: 2 },
            DbUpdate::Remove { key: 1 },
        ];
        for i in 0..us.len() {
            for j in 0..us.len() {
                if i != j {
                    assert_ne!(us[i].digest(), us[j].digest());
                }
            }
        }
    }
}
