//! # overlap-model
//!
//! The *guest* computation model from Andrews, Leighton, Metaxas and Zhang,
//! "Improved Methods for Hiding Latency in High Bandwidth Networks"
//! (SPAA 1996), Section 2 — the **database model**.
//!
//! A guest network is a linear array (or ring, or linearized 2-D mesh) of
//! `m` processors `g_1 .. g_m` with unit-delay links. Processor `g_i` owns a
//! potentially large local *database* `b_i`. At every step `t`, `g_i`
//! consults `b_i`, combines it with the *pebbles* `(i-1, t-1)`, `(i, t-1)`
//! and `(i+1, t-1)`, records the result in pebble `(i, t)`, and applies an
//! update to `b_i`. A pebble carries the computed value *and* the database
//! update it incurred — never a snapshot of a whole database, so pebbles are
//! small while databases are too large to ship across links.
//!
//! This crate provides:
//!
//! * [`PebbleId`] / [`Pebble`] — the unit of computation and communication;
//! * [`Db`] / [`DbUpdate`] — concrete database kinds with replayable updates;
//! * [`Program`] — the pluggable per-pebble computation;
//! * [`GuestSpec`] — guest shape (line with virtual boundaries, or ring);
//! * `reference` — the unit-delay ground-truth executor used to validate
//!   every host simulation in the workspace;
//! * [`transform`] — guest-to-guest transformations (ring → line with
//!   slowdown 2, 2-D mesh → column-strip line).

#![warn(missing_docs)]

pub mod boundary;
pub mod database;
pub mod guest;
pub mod pebble;
pub mod program;
pub mod reference;
pub mod taskgraph;
pub mod transform;

pub use boundary::BoundaryRule;
pub use database::{fold64, mix64, Db, DbKind, DbUpdate, KvShard};
pub use guest::{Dep, DepList, GuestSpec, GuestTopology, Side};
pub use pebble::{Pebble, PebbleGrid, PebbleId, PebbleValue};
pub use program::{programs, ComputeResult, Program, ProgramKind, ProgramRef};
pub use reference::{ReferenceRun, ReferenceTrace};
pub use taskgraph::{DagBuilder, TaskGraph, TaskGraphError, TaskId};
pub use transform::{line_slots, mesh3d_slabs, mesh_columns, ring_fold, torus_fold, SlotMap};
