//! Virtual boundary pebbles.
//!
//! §3.2 of the paper: "We also assume the existence of pebbles `(0,t)` and
//! `(n'+1,t)`, for all `t ≥ 1`, which are known to H at time step 0. This
//! ensures that each pebble computed by G is dependent on three pebbles."
//!
//! We realize boundary pebbles as a pure function of `(side, offset, step)`
//! seeded by the guest seed, so every host processor can evaluate them
//! locally at zero communication cost — exactly "known at time step 0".

use crate::database::{fold64, mix64};
use crate::guest::Side;
use crate::pebble::PebbleValue;
use serde::{Deserialize, Serialize};

/// Deterministic generator of virtual boundary pebble values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundaryRule {
    seed: u64,
}

impl BoundaryRule {
    /// Rule seeded from the guest seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Value of the virtual boundary pebble on `side` at `offset`, step `t`.
    pub fn value(&self, side: Side, offset: u32, step: u32) -> PebbleValue {
        let s = match side {
            Side::West => 1u64,
            Side::East => 2,
            Side::North => 3,
            Side::South => 4,
            Side::Up => 5,
            Side::Down => 6,
        };
        mix64(fold64(
            self.seed ^ (s << 56),
            ((offset as u64) << 32) | step as u64,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_values_are_deterministic() {
        let b = BoundaryRule::new(42);
        assert_eq!(b.value(Side::West, 0, 1), b.value(Side::West, 0, 1));
    }

    #[test]
    fn boundary_values_vary_with_all_inputs() {
        let b = BoundaryRule::new(42);
        let base = b.value(Side::West, 0, 1);
        assert_ne!(base, b.value(Side::East, 0, 1));
        assert_ne!(base, b.value(Side::West, 1, 1));
        assert_ne!(base, b.value(Side::West, 0, 2));
        assert_ne!(base, BoundaryRule::new(43).value(Side::West, 0, 1));
    }

    #[test]
    fn all_sides_are_distinct() {
        let b = BoundaryRule::new(7);
        let vals = [
            b.value(Side::West, 5, 5),
            b.value(Side::East, 5, 5),
            b.value(Side::North, 5, 5),
            b.value(Side::South, 5, 5),
        ];
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert_ne!(vals[i], vals[j]);
                }
            }
        }
    }
}
