//! Pebbles: the unit of computation and communication in the database model.
//!
//! `Pebble(i, t)` represents the computation performed by guest processor
//! (cell) `i` at guest time step `t`. In a host simulation a pebble records
//! both the computed value and the database update incurred by that
//! computation (paper, §2: "a pebble does not contain a snapshot of the
//! whole database but only the changes incurred by one computation").
//!
//! Cells are 0-based. Steps are 1-based; "step 0" denotes the initial state,
//! which every host processor knows at time 0 (initial databases and initial
//! pebble values are copied before the computation begins).

use crate::database::DbUpdate;
use serde::{Deserialize, Serialize};

/// The value computed by one pebble. Real guest programs fold whatever they
/// compute into a deterministic 64-bit word so that redundant copies can be
/// compared bit-for-bit across host processors.
pub type PebbleValue = u64;

/// Identity of a pebble: guest cell `cell` (0-based) and guest step `step`
/// (1-based; step 0 is the initial state and is never a computed pebble).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PebbleId {
    /// Guest cell (equivalently: database index), 0-based.
    pub cell: u32,
    /// Guest time step, 1-based.
    pub step: u32,
}

impl PebbleId {
    /// Create a pebble identity.
    #[inline]
    pub const fn new(cell: u32, step: u32) -> Self {
        Self { cell, step }
    }
}

/// A computed pebble: identity, value, and the database update incurred.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pebble {
    /// Which computation this is.
    pub id: PebbleId,
    /// The computed value, passed to dependent pebbles.
    pub value: PebbleValue,
    /// The change this computation made to database `b_cell`. Processors
    /// holding a copy of `b_cell` must apply these updates *in step order*
    /// before computing any later pebble of the same cell.
    pub update: DbUpdate,
}

impl Pebble {
    /// Construct a pebble.
    pub fn new(id: PebbleId, value: PebbleValue, update: DbUpdate) -> Self {
        Self { id, value, update }
    }
}

/// A dense `cells × steps` grid of pebble values, step-major. Used by the
/// reference executor and by validators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PebbleGrid {
    cells: u32,
    steps: u32,
    values: Vec<PebbleValue>,
}

impl PebbleGrid {
    /// Allocate a grid of `cells` columns by `steps` steps, zero-filled.
    pub fn new(cells: u32, steps: u32) -> Self {
        Self {
            cells,
            steps,
            values: vec![0; cells as usize * steps as usize],
        }
    }

    /// Number of guest cells.
    #[inline]
    pub fn cells(&self) -> u32 {
        self.cells
    }

    /// Number of guest steps stored.
    #[inline]
    pub fn steps(&self) -> u32 {
        self.steps
    }

    #[inline]
    fn index(&self, id: PebbleId) -> usize {
        debug_assert!(id.cell < self.cells, "cell out of range: {id:?}");
        debug_assert!(
            id.step >= 1 && id.step <= self.steps,
            "step out of range: {id:?}"
        );
        (id.step as usize - 1) * self.cells as usize + id.cell as usize
    }

    /// Read the value of a computed pebble.
    #[inline]
    pub fn get(&self, id: PebbleId) -> PebbleValue {
        self.values[self.index(id)]
    }

    /// Record the value of a computed pebble.
    #[inline]
    pub fn set(&mut self, id: PebbleId, v: PebbleValue) {
        let i = self.index(id);
        self.values[i] = v;
    }

    /// Iterate over all pebble ids in (step, cell) order.
    pub fn ids(&self) -> impl Iterator<Item = PebbleId> + '_ {
        let cells = self.cells;
        (1..=self.steps).flat_map(move |t| (0..cells).map(move |c| PebbleId::new(c, t)))
    }

    /// Total number of pebbles in the grid.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the grid holds no pebbles.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_roundtrip() {
        let mut g = PebbleGrid::new(4, 3);
        for (k, id) in g.ids().collect::<Vec<_>>().into_iter().enumerate() {
            g.set(id, k as u64 * 17 + 3);
        }
        for (k, id) in g.ids().collect::<Vec<_>>().into_iter().enumerate() {
            assert_eq!(g.get(id), k as u64 * 17 + 3);
        }
        assert_eq!(g.len(), 12);
        assert_eq!(g.cells(), 4);
        assert_eq!(g.steps(), 3);
    }

    #[test]
    fn grid_ids_are_step_major() {
        let g = PebbleGrid::new(3, 2);
        let ids: Vec<_> = g.ids().collect();
        assert_eq!(ids[0], PebbleId::new(0, 1));
        assert_eq!(ids[1], PebbleId::new(1, 1));
        assert_eq!(ids[2], PebbleId::new(2, 1));
        assert_eq!(ids[3], PebbleId::new(0, 2));
    }

    #[test]
    fn pebble_ordering_is_by_cell_then_step() {
        let a = PebbleId::new(1, 9);
        let b = PebbleId::new(2, 1);
        assert!(a < b);
    }

    #[test]
    fn grid_is_empty_only_when_degenerate() {
        assert!(PebbleGrid::new(0, 5).is_empty());
        assert!(!PebbleGrid::new(1, 1).is_empty());
    }
}
