//! Guest network shapes and their pebble dependency structure.
//!
//! The paper's analysis centres on linear arrays and rings (§3), with 2-D
//! arrays as the main generalization (§5). All three are represented by
//! [`GuestTopology`]; dependency lists are computed on the fly (no stored
//! adjacency), so multi-million-cell guests cost nothing to describe.
//!
//! Dependencies of pebble `(cell, t)` are always at step `t-1` and are
//! returned in a *canonical order* which guest programs rely on:
//!
//! * line / ring: `[left, self, right]`
//! * 2-D mesh:    `[west, north, self, south, east]`
//!
//! A dependency is either another cell's pebble or a *virtual boundary*
//! pebble — the paper assumes boundary pebbles "are known to H at time step
//! 0" (§3.2), which we realize as a pure function of `(side, offset, step)`.

use crate::boundary::BoundaryRule;
use crate::database::DbKind;
use crate::pebble::PebbleValue;
use crate::program::ProgramKind;
use crate::taskgraph::TaskGraph;
use serde::{Deserialize, Serialize};

/// One dependency of a pebble: either the previous-step pebble of a guest
/// cell, or a virtual boundary value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dep {
    /// Pebble `(cell, t-1)`.
    Cell(u32),
    /// Virtual boundary pebble on `side` at position `offset` along that
    /// side; its value is available everywhere at time 0.
    Boundary {
        /// Which side of the guest (meaning depends on topology).
        side: Side,
        /// Position along the side (row index for mesh east/west, etc.).
        offset: u32,
    },
}

/// Sides of a guest network where virtual boundary pebbles live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// Left end of a line; west edge of a mesh.
    West,
    /// Right end of a line; east edge of a mesh.
    East,
    /// North edge of a mesh.
    North,
    /// South edge of a mesh.
    South,
    /// z = 0 face of a 3-D mesh.
    Up,
    /// z = d−1 face of a 3-D mesh.
    Down,
}

/// A fixed-capacity dependency list (max 7 entries: the 3-D mesh case).
#[derive(Debug, Clone, Copy)]
pub struct DepList {
    arr: [Dep; 7],
    len: u8,
}

impl DepList {
    fn new() -> Self {
        Self {
            arr: [Dep::Cell(0); 7],
            len: 0,
        }
    }

    fn push(&mut self, d: Dep) {
        self.arr[self.len as usize] = d;
        self.len += 1;
    }

    /// Dependencies in canonical order.
    pub fn as_slice(&self) -> &[Dep] {
        &self.arr[..self.len as usize]
    }

    /// Number of dependencies (3 for line/ring, 5 for mesh).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always false: every pebble depends at least on itself.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over the dependencies.
    pub fn iter(&self) -> impl Iterator<Item = Dep> + '_ {
        self.as_slice().iter().copied()
    }
}

/// The shape of a guest network with unit-delay links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GuestTopology {
    /// Linear array of `m` cells, virtual boundary pebbles at both ends.
    Line {
        /// Number of cells.
        m: u32,
    },
    /// Ring of `m` cells (wraparound, no boundary pebbles).
    Ring {
        /// Number of cells.
        m: u32,
    },
    /// `w × h` 2-D array; cell id = `x * h + y` (column-major: a "column"
    /// `x` is the natural unit the linear-host emulation assigns).
    Mesh2D {
        /// Width (number of columns).
        w: u32,
        /// Height (number of rows).
        h: u32,
    },
    /// `w × h` 2-D torus (wraparound in both dimensions, no boundaries);
    /// cell id = `x * h + y`.
    Torus2D {
        /// Width.
        w: u32,
        /// Height.
        h: u32,
    },
    /// Complete binary tree with `levels` levels (`2^levels − 1` cells) in
    /// heap order (children of `c` are `2c+1`, `2c+2`). Pebble `(c, t)`
    /// depends on parent, self and both children at `t−1`; the root's
    /// parent and the leaves' children are virtual boundary pebbles.
    BinaryTree {
        /// Number of levels (≥ 1).
        levels: u32,
    },
    /// `w × h × d` 3-D array; cell id = `(x*h + y)*d + z`. The §5 emulation
    /// generalized to higher dimensions assigns whole `x`-slabs.
    Mesh3D {
        /// Extent in x.
        w: u32,
        /// Extent in y.
        h: u32,
        /// Extent in z.
        d: u32,
    },
    /// Marker for an arbitrary task-graph guest: the real structure lives
    /// in [`GuestSpec::graph`] (a [`TaskGraph`] in layered normal form,
    /// which isn't `Copy`). Lanes play the role of cells and layers the
    /// role of steps. Per-step structure must be read through
    /// [`GuestSpec::visit_deps`] and friends — the per-topology
    /// [`deps`](GuestTopology::deps) / [`neighbours`](GuestTopology::neighbours)
    /// accessors panic for this variant because a task graph has no
    /// step-invariant dependency list.
    Dag {
        /// Number of lanes (databases).
        dbs: u32,
        /// Number of layers (guest steps).
        layers: u32,
    },
}

impl GuestTopology {
    /// Total number of cells.
    pub fn num_cells(&self) -> u32 {
        match *self {
            GuestTopology::Line { m } | GuestTopology::Ring { m } => m,
            GuestTopology::Mesh2D { w, h } | GuestTopology::Torus2D { w, h } => w * h,
            GuestTopology::BinaryTree { levels } => (1 << levels) - 1,
            GuestTopology::Mesh3D { w, h, d } => w * h * d,
            GuestTopology::Dag { dbs, .. } => dbs,
        }
    }

    /// Dependencies of pebble `(cell, t)` in canonical order (all at step
    /// `t-1`).
    pub fn deps(&self, cell: u32) -> DepList {
        let mut out = DepList::new();
        match *self {
            GuestTopology::Dag { .. } => {
                panic!("task-graph deps are per-layer; use GuestSpec::visit_deps")
            }
            GuestTopology::Line { m } => {
                debug_assert!(cell < m);
                if cell == 0 {
                    out.push(Dep::Boundary {
                        side: Side::West,
                        offset: 0,
                    });
                } else {
                    out.push(Dep::Cell(cell - 1));
                }
                out.push(Dep::Cell(cell));
                if cell + 1 == m {
                    out.push(Dep::Boundary {
                        side: Side::East,
                        offset: 0,
                    });
                } else {
                    out.push(Dep::Cell(cell + 1));
                }
            }
            GuestTopology::Ring { m } => {
                debug_assert!(cell < m);
                out.push(Dep::Cell(if cell == 0 { m - 1 } else { cell - 1 }));
                out.push(Dep::Cell(cell));
                out.push(Dep::Cell(if cell + 1 == m { 0 } else { cell + 1 }));
            }
            GuestTopology::Mesh2D { w, h } => {
                debug_assert!(cell < w * h);
                let x = cell / h;
                let y = cell % h;
                if x == 0 {
                    out.push(Dep::Boundary {
                        side: Side::West,
                        offset: y,
                    });
                } else {
                    out.push(Dep::Cell(cell - h));
                }
                if y == 0 {
                    out.push(Dep::Boundary {
                        side: Side::North,
                        offset: x,
                    });
                } else {
                    out.push(Dep::Cell(cell - 1));
                }
                out.push(Dep::Cell(cell));
                if y + 1 == h {
                    out.push(Dep::Boundary {
                        side: Side::South,
                        offset: x,
                    });
                } else {
                    out.push(Dep::Cell(cell + 1));
                }
                if x + 1 == w {
                    out.push(Dep::Boundary {
                        side: Side::East,
                        offset: y,
                    });
                } else {
                    out.push(Dep::Cell(cell + h));
                }
            }
            GuestTopology::Torus2D { w, h } => {
                debug_assert!(cell < w * h);
                let x = cell / h;
                let y = cell % h;
                let west = if x == 0 { w - 1 } else { x - 1 };
                let east = if x + 1 == w { 0 } else { x + 1 };
                let north = if y == 0 { h - 1 } else { y - 1 };
                let south = if y + 1 == h { 0 } else { y + 1 };
                out.push(Dep::Cell(west * h + y));
                out.push(Dep::Cell(x * h + north));
                out.push(Dep::Cell(cell));
                out.push(Dep::Cell(x * h + south));
                out.push(Dep::Cell(east * h + y));
            }
            GuestTopology::BinaryTree { levels } => {
                let n = (1u32 << levels) - 1;
                debug_assert!(cell < n);
                // canonical order: [parent, self, left child, right child]
                if cell == 0 {
                    out.push(Dep::Boundary {
                        side: Side::Up,
                        offset: 0,
                    });
                } else {
                    out.push(Dep::Cell((cell - 1) / 2));
                }
                out.push(Dep::Cell(cell));
                let l = 2 * cell + 1;
                let r = 2 * cell + 2;
                if l < n {
                    out.push(Dep::Cell(l));
                } else {
                    out.push(Dep::Boundary {
                        side: Side::Down,
                        offset: 2 * cell,
                    });
                }
                if r < n {
                    out.push(Dep::Cell(r));
                } else {
                    out.push(Dep::Boundary {
                        side: Side::Down,
                        offset: 2 * cell + 1,
                    });
                }
            }
            GuestTopology::Mesh3D { w, h, d } => {
                debug_assert!(cell < w * h * d);
                let z = cell % d;
                let y = (cell / d) % h;
                let x = cell / (d * h);
                // canonical order: [W, N, U, self, D, S, E]
                if x == 0 {
                    out.push(Dep::Boundary {
                        side: Side::West,
                        offset: y * d + z,
                    });
                } else {
                    out.push(Dep::Cell(cell - h * d));
                }
                if y == 0 {
                    out.push(Dep::Boundary {
                        side: Side::North,
                        offset: x * d + z,
                    });
                } else {
                    out.push(Dep::Cell(cell - d));
                }
                if z == 0 {
                    out.push(Dep::Boundary {
                        side: Side::Up,
                        offset: x * h + y,
                    });
                } else {
                    out.push(Dep::Cell(cell - 1));
                }
                out.push(Dep::Cell(cell));
                if z + 1 == d {
                    out.push(Dep::Boundary {
                        side: Side::Down,
                        offset: x * h + y,
                    });
                } else {
                    out.push(Dep::Cell(cell + 1));
                }
                if y + 1 == h {
                    out.push(Dep::Boundary {
                        side: Side::South,
                        offset: x * d + z,
                    });
                } else {
                    out.push(Dep::Cell(cell + d));
                }
                if x + 1 == w {
                    out.push(Dep::Boundary {
                        side: Side::East,
                        offset: y * d + z,
                    });
                } else {
                    out.push(Dep::Cell(cell + h * d));
                }
            }
        }
        out
    }

    /// The set of distinct cells that cell `c`'s pebbles depend on
    /// (excluding `c` itself) — the guest adjacency.
    pub fn neighbours(&self, cell: u32) -> Vec<u32> {
        self.deps(cell)
            .iter()
            .filter_map(|d| match d {
                Dep::Cell(c) if c != cell => Some(c),
                _ => None,
            })
            .collect()
    }

    /// Maximum dependency count for this topology (3, 4, 5 or 7).
    ///
    /// # Panics
    /// For [`GuestTopology::Dag`] — the bound lives on the task graph; use
    /// [`GuestSpec::max_deps`].
    pub fn max_deps(&self) -> usize {
        match self {
            GuestTopology::Line { .. } | GuestTopology::Ring { .. } => 3,
            GuestTopology::BinaryTree { .. } => 4,
            GuestTopology::Mesh2D { .. } | GuestTopology::Torus2D { .. } => 5,
            GuestTopology::Mesh3D { .. } => 7,
            GuestTopology::Dag { .. } => {
                panic!("task-graph dep bound is per-graph; use GuestSpec::max_deps")
            }
        }
    }
}

/// A complete guest specification: shape, program, database seed, and the
/// number of unit-delay steps to simulate.
///
/// ```
/// use overlap_model::{GuestSpec, ProgramKind};
/// let g = GuestSpec::ring(16, ProgramKind::KvWorkload, 7, 10);
/// assert_eq!(g.num_cells(), 16);
/// assert_eq!(g.total_work(), 160);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuestSpec {
    /// The guest network shape.
    pub topology: GuestTopology,
    /// Which built-in program every cell runs.
    pub program: ProgramKind,
    /// Seed for initial databases, initial pebble values and boundary rule.
    pub seed: u64,
    /// Number of guest steps `T` to simulate.
    pub steps: u32,
    /// The task graph for [`GuestTopology::Dag`] guests (`None` for every
    /// other topology). Read per-step structure through
    /// [`visit_deps`](GuestSpec::visit_deps) / [`task_cost`](GuestSpec::task_cost)
    /// rather than touching this directly.
    #[serde(default)]
    pub graph: Option<TaskGraph>,
}

impl GuestSpec {
    /// A linear-array guest running `program` for `steps` steps — the
    /// paper's canonical shape. Part of the factory family
    /// `GuestSpec::{ring, array, mesh, tree, dag}` that is the one entry
    /// point to `Simulation::of()`.
    pub fn array(m: u32, program: ProgramKind, seed: u64, steps: u32) -> Self {
        Self {
            topology: GuestTopology::Line { m },
            program,
            seed,
            steps,
            graph: None,
        }
    }

    /// A ring guest.
    pub fn ring(m: u32, program: ProgramKind, seed: u64, steps: u32) -> Self {
        Self {
            topology: GuestTopology::Ring { m },
            program,
            seed,
            steps,
            graph: None,
        }
    }

    /// A `w × h` mesh guest.
    pub fn mesh(w: u32, h: u32, program: ProgramKind, seed: u64, steps: u32) -> Self {
        Self {
            topology: GuestTopology::Mesh2D { w, h },
            program,
            seed,
            steps,
            graph: None,
        }
    }

    /// A `w × h` torus guest.
    pub fn torus(w: u32, h: u32, program: ProgramKind, seed: u64, steps: u32) -> Self {
        Self {
            topology: GuestTopology::Torus2D { w, h },
            program,
            seed,
            steps,
            graph: None,
        }
    }

    /// A `w × h × d` 3-D mesh guest.
    pub fn mesh3(w: u32, h: u32, d: u32, program: ProgramKind, seed: u64, steps: u32) -> Self {
        Self {
            topology: GuestTopology::Mesh3D { w, h, d },
            program,
            seed,
            steps,
            graph: None,
        }
    }

    /// A complete binary tree guest with `levels` levels.
    pub fn tree(levels: u32, program: ProgramKind, seed: u64, steps: u32) -> Self {
        Self {
            topology: GuestTopology::BinaryTree { levels },
            program,
            seed,
            steps,
            graph: None,
        }
    }

    /// An arbitrary task-graph guest: lanes of `graph` become cells and
    /// its layers become guest steps (so `steps` is implied by the graph).
    ///
    /// ```
    /// use overlap_model::{GuestSpec, ProgramKind, TaskGraph};
    /// let g = GuestSpec::dag(TaskGraph::wavefront(8, 12), ProgramKind::StencilSum, 3);
    /// assert_eq!(g.num_cells(), 8);
    /// assert_eq!(g.steps, 12);
    /// ```
    pub fn dag(graph: TaskGraph, program: ProgramKind, seed: u64) -> Self {
        Self {
            topology: GuestTopology::Dag {
                dbs: graph.num_dbs(),
                layers: graph.layers(),
            },
            program,
            seed,
            steps: graph.layers(),
            graph: Some(graph),
        }
    }

    /// Number of cells (databases) in the guest.
    pub fn num_cells(&self) -> u32 {
        self.topology.num_cells()
    }

    /// Total guest work: one pebble per cell per step (relay slots of a
    /// task graph count — the host still computes them).
    pub fn total_work(&self) -> u64 {
        self.num_cells() as u64 * self.steps as u64
    }

    /// Does every step share one dependency list per cell? True for all
    /// grid topologies and for *uniform* task graphs, which then lower
    /// through the same static tables (bit-identical machinery). False
    /// only for non-uniform task graphs.
    pub fn is_static(&self) -> bool {
        match &self.graph {
            None => true,
            Some(g) => g.is_uniform(),
        }
    }

    /// Visit the dependencies of pebble `(cell, step)` in canonical order
    /// (all at `step - 1`). The one dependency accessor that works for
    /// every guest, task graphs included.
    pub fn visit_deps(&self, cell: u32, step: u32, mut f: impl FnMut(Dep)) {
        match &self.graph {
            None => {
                for d in self.topology.deps(cell).iter() {
                    f(d);
                }
            }
            Some(g) => {
                // Out-of-range probes (e.g. the static lowering reading
                // layer 1 of a zero-layer graph) see an empty list.
                if step >= 1 && step <= g.layers() {
                    for &d in g.deps_of(cell, step) {
                        f(d);
                    }
                }
            }
        }
    }

    /// Largest dependency-list length over all pebbles of this guest.
    pub fn max_deps(&self) -> usize {
        match &self.graph {
            None => self.topology.max_deps(),
            Some(g) => g.max_deps(),
        }
    }

    /// Compute-cost multiplier of pebble `(cell, step)`: a task of cost
    /// `k` takes `k×` the processor's per-pebble compute time. Always 1
    /// for grid guests.
    pub fn task_cost(&self, cell: u32, step: u32) -> u32 {
        match &self.graph {
            None => 1,
            Some(g) => g.cost_of(cell, step),
        }
    }

    /// Is `(cell, step)` a relay slot (pass-through: repeats the lane's
    /// previous value, no program call, no database update)? Always false
    /// for grid guests.
    pub fn is_relay(&self, cell: u32, step: u32) -> bool {
        match &self.graph {
            None => false,
            Some(g) => g.is_relay(cell, step),
        }
    }

    /// Any pebble with a compute cost above 1?
    pub fn has_nonunit_task_costs(&self) -> bool {
        self.graph.as_ref().is_some_and(|g| g.has_nonunit_costs())
    }

    /// The distinct cells whose pebbles `cell` ever reads, over all steps
    /// (sorted, excluding `cell` itself) — what routing must subscribe to.
    pub fn dep_union(&self, cell: u32) -> Vec<u32> {
        match &self.graph {
            None => {
                let mut n = self.topology.neighbours(cell);
                n.sort_unstable();
                n
            }
            Some(g) => g.dep_lanes(cell),
        }
    }

    /// The boundary rule induced by this spec's seed.
    pub fn boundary(&self) -> BoundaryRule {
        BoundaryRule::new(self.seed)
    }

    /// Initial (step 0) pebble value of a cell — known everywhere at time 0.
    pub fn initial_value(&self, cell: u32) -> PebbleValue {
        crate::database::mix64(self.seed ^ 0x1237 ^ ((cell as u64) << 20))
    }

    /// The database kind used by this guest's program.
    pub fn db_kind(&self) -> DbKind {
        self.program.instantiate().db_kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_interior_deps() {
        let t = GuestTopology::Line { m: 10 };
        let d = t.deps(5);
        assert_eq!(d.as_slice(), &[Dep::Cell(4), Dep::Cell(5), Dep::Cell(6)]);
    }

    #[test]
    fn line_edges_have_boundary_deps() {
        let t = GuestTopology::Line { m: 10 };
        let l = t.deps(0);
        assert!(matches!(
            l.as_slice()[0],
            Dep::Boundary {
                side: Side::West,
                ..
            }
        ));
        let r = t.deps(9);
        assert!(matches!(
            r.as_slice()[2],
            Dep::Boundary {
                side: Side::East,
                ..
            }
        ));
    }

    #[test]
    fn ring_wraps_with_no_boundaries() {
        let t = GuestTopology::Ring { m: 6 };
        assert_eq!(
            t.deps(0).as_slice(),
            &[Dep::Cell(5), Dep::Cell(0), Dep::Cell(1)]
        );
        assert_eq!(
            t.deps(5).as_slice(),
            &[Dep::Cell(4), Dep::Cell(5), Dep::Cell(0)]
        );
    }

    #[test]
    fn mesh_interior_has_five_deps_in_canonical_order() {
        let t = GuestTopology::Mesh2D { w: 4, h: 4 };
        // cell (x=1, y=2) => id 1*4+2 = 6
        let d = t.deps(6);
        assert_eq!(
            d.as_slice(),
            &[
                Dep::Cell(2),  // west  (x-1,y) = 0*4+2
                Dep::Cell(5),  // north (x,y-1)
                Dep::Cell(6),  // self
                Dep::Cell(7),  // south (x,y+1)
                Dep::Cell(10), // east  (x+1,y)
            ]
        );
    }

    #[test]
    fn mesh_corner_has_boundaries_on_two_sides() {
        let t = GuestTopology::Mesh2D { w: 3, h: 3 };
        let d = t.deps(0); // (0,0)
        let slice = d.as_slice();
        assert!(matches!(
            slice[0],
            Dep::Boundary {
                side: Side::West,
                offset: 0
            }
        ));
        assert!(matches!(
            slice[1],
            Dep::Boundary {
                side: Side::North,
                offset: 0
            }
        ));
        assert_eq!(slice[2], Dep::Cell(0));
        assert_eq!(slice[3], Dep::Cell(1));
        assert_eq!(slice[4], Dep::Cell(3));
    }

    #[test]
    fn neighbours_excludes_self() {
        let t = GuestTopology::Ring { m: 4 };
        let n = t.neighbours(0);
        assert_eq!(n, vec![3, 1]);
        let mesh = GuestTopology::Mesh2D { w: 3, h: 3 };
        let n = mesh.neighbours(4); // centre
        assert_eq!(n, vec![1, 3, 5, 7]);
    }

    #[test]
    fn binary_tree_deps() {
        let t = GuestTopology::BinaryTree { levels: 3 }; // 7 cells
                                                         // root: virtual parent, self, children 1 and 2
        let d = t.deps(0);
        assert!(matches!(
            d.as_slice()[0],
            Dep::Boundary { side: Side::Up, .. }
        ));
        assert_eq!(d.as_slice()[1], Dep::Cell(0));
        assert_eq!(d.as_slice()[2], Dep::Cell(1));
        assert_eq!(d.as_slice()[3], Dep::Cell(2));
        // internal node 2: parent 0, children 5, 6
        let d = t.deps(2);
        assert_eq!(d.as_slice()[0], Dep::Cell(0));
        assert_eq!(d.as_slice()[2], Dep::Cell(5));
        // leaf 6: parent 2, two virtual children
        let d = t.deps(6);
        assert_eq!(d.as_slice()[0], Dep::Cell(2));
        assert!(matches!(
            d.as_slice()[2],
            Dep::Boundary {
                side: Side::Down,
                ..
            }
        ));
        assert!(matches!(
            d.as_slice()[3],
            Dep::Boundary {
                side: Side::Down,
                ..
            }
        ));
        assert_eq!(t.num_cells(), 7);
        assert_eq!(t.max_deps(), 4);
    }

    #[test]
    fn num_cells_matches_topology() {
        assert_eq!(GuestTopology::Line { m: 7 }.num_cells(), 7);
        assert_eq!(GuestTopology::Ring { m: 7 }.num_cells(), 7);
        assert_eq!(GuestTopology::Mesh2D { w: 3, h: 5 }.num_cells(), 15);
    }

    #[test]
    fn initial_values_differ_across_cells_and_seeds() {
        let a = GuestSpec::array(8, ProgramKind::StencilSum, 1, 4);
        let b = GuestSpec::array(8, ProgramKind::StencilSum, 2, 4);
        assert_ne!(a.initial_value(0), a.initial_value(1));
        assert_ne!(a.initial_value(0), b.initial_value(0));
    }

    #[test]
    fn total_work_is_cells_times_steps() {
        let g = GuestSpec::mesh(4, 5, ProgramKind::StencilSum, 0, 10);
        assert_eq!(g.total_work(), 200);
    }

    #[test]
    fn max_deps_by_topology() {
        assert_eq!(GuestTopology::Line { m: 2 }.max_deps(), 3);
        assert_eq!(GuestTopology::Mesh2D { w: 2, h: 2 }.max_deps(), 5);
    }
}
