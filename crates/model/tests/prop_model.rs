//! Property-based tests for the guest model.

use overlap_model::{
    line_slots, mesh_columns, ring_fold, Db, DbKind, DbUpdate, GuestSpec, GuestTopology, PebbleId,
    ProgramKind, ReferenceRun,
};
use proptest::prelude::*;

fn db_kind_strategy() -> impl Strategy<Value = DbKind> {
    prop_oneof![
        Just(DbKind::Counter),
        (1u32..64).prop_map(|size| DbKind::Vec { size }),
        Just(DbKind::Kv),
    ]
}

fn update_strategy() -> impl Strategy<Value = DbUpdate> {
    prop_oneof![
        Just(DbUpdate::None),
        (any::<u64>(), any::<u64>()).prop_map(|(key, delta)| DbUpdate::Add { key, delta }),
        (any::<u64>(), any::<u64>()).prop_map(|(key, value)| DbUpdate::Set { key, value }),
        any::<u64>().prop_map(|key| DbUpdate::Remove { key }),
    ]
}

proptest! {
    #[test]
    fn replaying_the_same_update_log_yields_identical_databases(
        kind in db_kind_strategy(),
        cell in 0u32..100,
        seed in any::<u64>(),
        updates in proptest::collection::vec(update_strategy(), 0..60),
    ) {
        let mut a = kind.instantiate(cell, seed);
        let mut b = kind.instantiate(cell, seed);
        for u in &updates {
            a.apply(u);
        }
        for u in &updates {
            b.apply(u);
        }
        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(a.consult(cell, 1), b.consult(cell, 1));
    }

    #[test]
    fn databases_never_panic_on_any_update(
        kind in db_kind_strategy(),
        updates in proptest::collection::vec(update_strategy(), 0..100),
    ) {
        let mut db: Db = kind.instantiate(0, 0);
        for u in &updates {
            db.apply(u);
        }
        let _ = db.digest();
        let _ = db.words();
    }

    #[test]
    fn ring_fold_is_always_valid(m in 2u32..200) {
        let fold = ring_fold(m);
        let topo = GuestTopology::Ring { m };
        prop_assert!(fold.is_valid_for(&topo));
        prop_assert!(fold.width() <= 2);
        prop_assert_eq!(fold.len() as u32, m.div_ceil(2));
    }

    #[test]
    fn mesh_columns_are_always_valid(w in 1u32..20, h in 1u32..20) {
        let map = mesh_columns(w, h);
        let topo = GuestTopology::Mesh2D { w, h };
        prop_assert!(map.is_valid_for(&topo));
        prop_assert_eq!(map.width() as u32, h);
    }

    #[test]
    fn line_slots_are_always_valid(m in 1u32..200) {
        let map = line_slots(m);
        let topo = GuestTopology::Line { m };
        prop_assert!(map.is_valid_for(&topo));
    }

    #[test]
    fn information_travels_at_most_one_cell_per_step(
        m in 6u32..24,
        steps in 1u32..8,
        seed in any::<u64>(),
    ) {
        // A line and a ring of the same size differ only at the wraparound
        // edge; interior pebbles further than `t` cells from both ends
        // cannot have seen the difference by step t.
        prop_assume!(steps + 2 < m / 2);
        let line = ReferenceRun::execute(&GuestSpec::array(m, ProgramKind::KvWorkload, seed, steps));
        let ring = ReferenceRun::execute(&GuestSpec::ring(m, ProgramKind::KvWorkload, seed, steps));
        for t in 1..=steps {
            for c in 0..m {
                let edge_dist = c.min(m - 1 - c);
                if edge_dist >= t {
                    prop_assert_eq!(
                        line.value(PebbleId::new(c, t)),
                        ring.value(PebbleId::new(c, t)),
                        "cell {} step {} should be unaffected by the boundary", c, t
                    );
                }
            }
        }
    }

    #[test]
    fn guest_deps_are_within_distance_one(
        m in 2u32..50,
        cell_frac in 0.0f64..1.0,
    ) {
        for topo in [GuestTopology::Line { m }, GuestTopology::Ring { m }] {
            let cell = ((cell_frac * m as f64) as u32).min(m - 1);
            for nb in topo.neighbours(cell) {
                let direct = cell.abs_diff(nb);
                let wrapped = m - direct;
                prop_assert!(direct.min(wrapped) == 1);
            }
        }
    }

    #[test]
    fn mesh_deps_are_grid_neighbours(w in 1u32..12, h in 1u32..12, cell_frac in 0.0f64..1.0) {
        let topo = GuestTopology::Mesh2D { w, h };
        let n = w * h;
        let cell = ((cell_frac * n as f64) as u32).min(n - 1);
        let (x, y) = (cell / h, cell % h);
        for nb in topo.neighbours(cell) {
            let (nx, ny) = (nb / h, nb % h);
            prop_assert_eq!(x.abs_diff(nx) + y.abs_diff(ny), 1);
        }
    }

    #[test]
    fn reference_work_is_exact(
        m in 1u32..30,
        steps in 0u32..20,
        seed in any::<u64>(),
    ) {
        let trace = ReferenceRun::execute(&GuestSpec::array(m, ProgramKind::Relaxation, seed, steps));
        prop_assert_eq!(trace.work, m as u64 * steps as u64);
        prop_assert_eq!(trace.final_db_digest.len() as u32, m);
    }
}
