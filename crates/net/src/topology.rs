//! Host topology builders.
//!
//! Every host family the paper mentions, plus the three adversarial
//! constructions used in §4 and §6:
//!
//! * [`clique_of_cliques`] — the unbounded-degree counterexample after
//!   Theorem 6: √n cliques of √n nodes each, clique edges of delay 1,
//!   inter-clique edges of delay n; `d_ave < 4` yet slowdown ≥ n^(1/4).
//! * [`h1_lower_bound`] — Theorem 9's host: a linear array where every
//!   √n-th link has delay √n (others 1), so `d_max = √n`, `d_ave = O(1)`.
//! * [`h2_recursive_boxes`] — Theorem 10's host: the recursive level-ℓ box
//!   construction with delay-d level-0 edges and `2^ℓ·d/log n`-processor
//!   segments of delay-1 edges between half-boxes.

use crate::delays::DelayModel;
use crate::graph::{Delay, HostGraph, NodeId};
use serde::{Deserialize, Serialize};

/// A linear array of `n` workstations; link `i` joins nodes `i` and `i+1`.
pub fn linear_array(n: u32, delays: DelayModel, seed: u64) -> HostGraph {
    let mut g = HostGraph::new(format!("line({n},{})", delays.label()), n);
    for i in 0..n.saturating_sub(1) {
        g.add_link(i, i + 1, delays.sample(i as u64, seed));
    }
    g
}

/// A ring of `n` workstations.
pub fn ring(n: u32, delays: DelayModel, seed: u64) -> HostGraph {
    assert!(n >= 3, "ring needs ≥ 3 nodes");
    let mut g = HostGraph::new(format!("ring({n},{})", delays.label()), n);
    for i in 0..n {
        let j = (i + 1) % n;
        g.add_link(i, j, delays.sample(i as u64, seed));
    }
    g
}

/// A `w × h` 2-D mesh (node id = `x*h + y`), degree ≤ 4.
pub fn mesh2d(w: u32, h: u32, delays: DelayModel, seed: u64) -> HostGraph {
    let mut g = HostGraph::new(format!("mesh({w}x{h},{})", delays.label()), w * h);
    let mut idx = 0u64;
    for x in 0..w {
        for y in 0..h {
            let v = x * h + y;
            if y + 1 < h {
                g.add_link(v, v + 1, delays.sample(idx, seed));
                idx += 1;
            }
            if x + 1 < w {
                g.add_link(v, v + h, delays.sample(idx, seed));
                idx += 1;
            }
        }
    }
    g
}

/// A `w × h` 2-D torus (wraparound mesh), degree 4.
pub fn torus2d(w: u32, h: u32, delays: DelayModel, seed: u64) -> HostGraph {
    assert!(w >= 3 && h >= 3, "torus needs w,h ≥ 3");
    let mut g = HostGraph::new(format!("torus({w}x{h},{})", delays.label()), w * h);
    let mut idx = 0u64;
    for x in 0..w {
        for y in 0..h {
            let v = x * h + y;
            let down = x * h + (y + 1) % h;
            let right = ((x + 1) % w) * h + y;
            g.add_link(v, down, delays.sample(idx, seed));
            idx += 1;
            g.add_link(v, right, delays.sample(idx, seed));
            idx += 1;
        }
    }
    g
}

/// A `dim`-dimensional hypercube (`2^dim` nodes, degree `dim`).
pub fn hypercube(dim: u32, delays: DelayModel, seed: u64) -> HostGraph {
    assert!((1..=24).contains(&dim));
    let n = 1u32 << dim;
    let mut g = HostGraph::new(format!("hcube({dim},{})", delays.label()), n);
    let mut idx = 0u64;
    for v in 0..n {
        for b in 0..dim {
            let w = v ^ (1 << b);
            if v < w {
                g.add_link(v, w, delays.sample(idx, seed));
                idx += 1;
            }
        }
    }
    g
}

/// An (unwrapped) butterfly of order `k`: nodes `(level, row)` with
/// `level ∈ 0..=k`, `row ∈ 0..2^k` (id = `level·2^k + row`); node
/// `(ℓ, r)` connects to `(ℓ+1, r)` (straight) and `(ℓ+1, r XOR 2^ℓ)`
/// (cross). Degree ≤ 4 — one of the §7 "architectures of parallel
/// computers" host families.
pub fn butterfly(k: u32, delays: DelayModel, seed: u64) -> HostGraph {
    assert!((1..=16).contains(&k));
    let rows = 1u32 << k;
    let n = (k + 1) * rows;
    let mut g = HostGraph::new(format!("bfly({k},{})", delays.label()), n);
    let mut idx = 0u64;
    for l in 0..k {
        for r in 0..rows {
            let a = l * rows + r;
            g.add_link(a, (l + 1) * rows + r, delays.sample(idx, seed));
            idx += 1;
            g.add_link(a, (l + 1) * rows + (r ^ (1 << l)), delays.sample(idx, seed));
            idx += 1;
        }
    }
    g
}

/// Cube-connected cycles of order `k`: each hypercube node `v ∈ 0..2^k`
/// becomes a `k`-cycle of nodes `(v, i)` (id = `v·k + i`); cycle edges
/// join `(v, i)`–`(v, i+1 mod k)` and cube edges join `(v, i)`–`(v⊕2^i, i)`.
/// Degree exactly 3 for k ≥ 3.
pub fn cube_connected_cycles(k: u32, delays: DelayModel, seed: u64) -> HostGraph {
    assert!((3..=16).contains(&k));
    let cube = 1u32 << k;
    let n = cube * k;
    let mut g = HostGraph::new(format!("ccc({k},{})", delays.label()), n);
    let mut idx = 0u64;
    for v in 0..cube {
        for i in 0..k {
            let a = v * k + i;
            // Cycle edges, each added once (the wrap edge at i = k-1).
            if i + 1 < k {
                g.add_link(a, v * k + i + 1, delays.sample(idx, seed));
                idx += 1;
            } else {
                g.add_link(v * k + k - 1, v * k, delays.sample(idx, seed));
                idx += 1;
            }
            let w = v ^ (1 << i);
            if v < w {
                g.add_link(a, w * k + i, delays.sample(idx, seed));
                idx += 1;
            }
        }
    }
    g
}

/// A complete binary tree with `levels` levels (`2^levels - 1` nodes),
/// degree ≤ 3.
pub fn binary_tree(levels: u32, delays: DelayModel, seed: u64) -> HostGraph {
    assert!((1..=24).contains(&levels));
    let n = (1u32 << levels) - 1;
    let mut g = HostGraph::new(format!("btree({levels},{})", delays.label()), n);
    for v in 1..n {
        let parent = (v - 1) / 2;
        g.add_link(parent, v, delays.sample(v as u64 - 1, seed));
    }
    g
}

/// A random `deg`-regular graph on `n` nodes via the pairing model
/// (retrying until simple and connected). `n·deg` must be even.
pub fn random_regular(n: u32, deg: u32, delays: DelayModel, seed: u64) -> HostGraph {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    assert!(deg >= 2 && deg < n, "degree must be in [2, n)");
    assert!(
        (n as u64 * deg as u64).is_multiple_of(2),
        "n*deg must be even"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    'retry: for _attempt in 0..1000 {
        let mut stubs: Vec<NodeId> = (0..n)
            .flat_map(|v| std::iter::repeat_n(v, deg as usize))
            .collect();
        stubs.shuffle(&mut rng);
        let mut g = HostGraph::new(format!("rreg({n},{deg},{})", delays.label()), n);
        let mut idx = 0u64;
        for pair in stubs.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            if a == b || g.has_link(a, b) {
                continue 'retry;
            }
            g.add_link(a, b, delays.sample(idx, seed));
            idx += 1;
        }
        if g.is_connected() {
            return g;
        }
    }
    panic!("failed to generate a connected {deg}-regular graph on {n} nodes");
}

/// The canonical two-site NOW: two cliques of workstations (intra delay 1)
/// joined by a single WAN link of delay `wan` between their gateways.
pub fn dumbbell(n1: u32, n2: u32, wan: Delay) -> HostGraph {
    assert!(n1 >= 1 && n2 >= 1 && wan >= 1);
    let n = n1 + n2;
    let mut g = HostGraph::new(format!("dumbbell({n1}+{n2},wan={wan})"), n);
    for a in 0..n1 {
        for b in (a + 1)..n1 {
            g.add_link(a, b, 1);
        }
    }
    for a in n1..n {
        for b in (a + 1)..n {
            g.add_link(a, b, 1);
        }
    }
    g.add_link(n1 - 1, n1, wan);
    g
}

/// A random geometric NOW: `n` workstations at random points of a unit
/// square, connected when within `radius`, link delay = Euclidean distance
/// scaled to `[1, max_delay]` — the paper's picture of a NOW where "some
/// processors can be far apart physically" while others sit in the same
/// rack. Retries seeds until connected.
pub fn geometric(n: u32, radius: f64, max_delay: Delay, seed: u64) -> HostGraph {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    assert!(n >= 2 && radius > 0.0 && max_delay >= 1);
    for attempt in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(attempt * 0x9e37));
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let mut g = HostGraph::new(format!("geo({n},r={radius})"), n);
        for a in 0..n {
            for b in (a + 1)..n {
                let (dx, dy) = (
                    pts[a as usize].0 - pts[b as usize].0,
                    pts[a as usize].1 - pts[b as usize].1,
                );
                let dist = (dx * dx + dy * dy).sqrt();
                if dist <= radius {
                    let delay = ((dist / radius) * (max_delay as f64 - 1.0)).round() as Delay + 1;
                    g.add_link(a, b, delay);
                }
            }
        }
        if g.is_connected() {
            return g;
        }
    }
    panic!("could not generate a connected geometric NOW (radius {radius} too small for n={n})");
}

/// The §4 counterexample to Theorem 6 for unbounded degree: a linear array
/// of `k` cliques with `k` nodes each (so `n = k²` total). Clique edges have
/// delay 1; the single edge connecting adjacent cliques has delay `n`.
/// Average delay is `< 4`, yet any simulation suffers slowdown ≥ n^(1/4).
pub fn clique_of_cliques(k: u32) -> HostGraph {
    assert!(k >= 2);
    let n = k * k;
    let mut g = HostGraph::new(format!("cliques({k}x{k})"), n);
    for c in 0..k {
        let base = c * k;
        for i in 0..k {
            for j in (i + 1)..k {
                g.add_link(base + i, base + j, 1);
            }
        }
        if c + 1 < k {
            // one long edge between adjacent cliques, delay n
            g.add_link(base + k - 1, base + k, n as Delay);
        }
    }
    g
}

/// A linear array with unit delays except one `spike`-delay link at the
/// midpoint (the widest dyadic boundary). Concentrates the entire delay
/// budget in `d_max` while `d_ave ≈ 1 + spike/n` — the host family used to
/// probe `d_max`-robustness of latency-hiding strategies.
pub fn line_with_middle_spike(n: u32, spike: Delay) -> HostGraph {
    assert!(n >= 2);
    let mut g = HostGraph::new(format!("line-spike({n},{spike})"), n);
    for i in 0..n - 1 {
        let d = if i == n / 2 - 1 { spike.max(1) } else { 1 };
        g.add_link(i, i + 1, d);
    }
    g
}

/// Theorem 9's host `H1`: an `n`-node linear array where every `⌊√n⌋`-th
/// link has delay `⌊√n⌋` and all other links have delay 1. `d_max = √n`
/// while `d_ave = O(1)`.
///
/// ```
/// use overlap_net::topology::h1_lower_bound;
/// use overlap_net::metrics::DelayStats;
/// let h1 = h1_lower_bound(256);
/// let s = DelayStats::of(&h1);
/// assert_eq!(s.d_max, 16);
/// assert!(s.d_ave < 3.0);
/// ```
pub fn h1_lower_bound(n: u32) -> HostGraph {
    let s = (n as f64).sqrt().floor().max(1.0) as u64;
    let mut g = linear_array(
        n,
        DelayModel::Spike {
            base: 1,
            spike: s,
            period: s,
        },
        0,
    );
    g.set_name(format!("H1({n})"));
    g
}

/// Segment bookkeeping for the Theorem 10 host `H2` (used by the
/// lower-bound analysis: Fact 4 speaks about delays *between segments*).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct H2Segment {
    /// The level `ℓ` of the box whose halves this segment joins.
    pub level: u32,
    /// The segment's processor ids.
    pub nodes: Vec<NodeId>,
}

/// The Theorem 10 host `H2` plus its segment structure.
#[derive(Debug, Clone)]
pub struct H2Host {
    /// The network.
    pub graph: HostGraph,
    /// All segments, outermost last.
    pub segments: Vec<H2Segment>,
    /// The delay `d` of level-0 edges (`√n` in the paper).
    pub d: Delay,
    /// The recursion depth `k = log(n/d)`.
    pub k: u32,
}

/// Theorem 10's host `H2`: a level-`k` box, `k = log(n/d)`, `d = √n`.
///
/// Recursive construction (§6, Figure 5): a level-0 box is a single edge of
/// delay `d`. A level-ℓ box consists of two level-(ℓ−1) boxes joined
/// through a *segment* of `2^ℓ·d/log n` processors: each segment processor
/// has a delay-1 edge to the right terminal of the left half and a delay-1
/// edge to the left terminal of the right half. Any route between the two
/// halves' interiors therefore crosses whole sub-boxes terminal-to-terminal
/// — which costs `Θ(2^ℓ d)` because the level-0 delay-`d` edges lie in
/// series — realizing Fact 4: the delay between processors in different
/// segments `I`, `J` is at least `min(|I|, |J|)·log n` (up to constants).
///
/// `n` is the *target* size; the result has `Θ(n)` processors.
pub fn h2_recursive_boxes(n: u32) -> H2Host {
    assert!(n >= 16, "H2 needs n ≥ 16");
    let d = (n as f64).sqrt().floor() as u64;
    let log_n = (n as f64).log2().max(1.0);
    let k = ((n as f64 / d as f64).log2().floor() as u32).max(1);

    // First pass: count nodes so HostGraph can be allocated up front.
    // level-ℓ box nodes: N(0) = 2; N(ℓ) = 2N(ℓ-1) + seg(ℓ).
    let seg_size = |l: u32| -> u32 { (((1u64 << l) * d) as f64 / log_n).floor().max(1.0) as u32 };
    let mut total = 2u64;
    for l in 1..=k {
        total = 2 * total + seg_size(l) as u64;
    }
    let mut graph = HostGraph::new(format!("H2({n})"), total as u32);
    let mut segments = Vec::new();
    let mut next_id: NodeId = 0;

    // Recursive build; returns (left_terminal, right_terminal).
    fn build(
        level: u32,
        d: Delay,
        seg_size: &dyn Fn(u32) -> u32,
        graph: &mut HostGraph,
        segments: &mut Vec<H2Segment>,
        next_id: &mut NodeId,
    ) -> (NodeId, NodeId) {
        if level == 0 {
            let a = *next_id;
            let b = *next_id + 1;
            *next_id += 2;
            graph.add_link(a, b, d);
            return (a, b);
        }
        let (l1, r1) = build(level - 1, d, seg_size, graph, segments, next_id);
        let (l2, r2) = build(level - 1, d, seg_size, graph, segments, next_id);
        let s = seg_size(level);
        let mut nodes = Vec::with_capacity(s as usize);
        for _ in 0..s {
            let v = *next_id;
            *next_id += 1;
            graph.add_link(r1, v, 1);
            graph.add_link(v, l2, 1);
            nodes.push(v);
        }
        segments.push(H2Segment { level, nodes });
        (l1, r2)
    }

    let _ = build(k, d, &seg_size, &mut graph, &mut segments, &mut next_id);
    assert_eq!(next_id as u64, total, "H2 node count mismatch");
    H2Host {
        graph,
        segments,
        d,
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::DelayStats;

    #[test]
    fn linear_array_shape() {
        let g = linear_array(10, DelayModel::constant(3), 0);
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.num_links(), 9);
        assert_eq!(g.max_degree(), 2);
        assert!(g.is_connected());
        assert_eq!(g.link_delay(4, 5), Some(3));
    }

    #[test]
    fn ring_shape() {
        let g = ring(8, DelayModel::constant(1), 0);
        assert_eq!(g.num_links(), 8);
        assert!(g.has_link(7, 0));
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn mesh_shape() {
        let g = mesh2d(4, 3, DelayModel::constant(1), 0);
        assert_eq!(g.num_nodes(), 12);
        // links: vertical 4*(3-1)=8, horizontal 3*(4-1)=9 -> 17
        assert_eq!(g.num_links(), 17);
        assert!(g.is_connected());
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus2d(4, 4, DelayModel::constant(1), 0);
        assert_eq!(g.num_links(), 32);
        for v in 0..16 {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4, DelayModel::constant(1), 0);
        assert_eq!(g.num_nodes(), 16);
        assert_eq!(g.num_links(), 32);
        for v in 0..16 {
            assert_eq!(g.degree(v), 4);
        }
        assert!(g.is_connected());
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(4, DelayModel::constant(1), 0);
        assert_eq!(g.num_nodes(), 15);
        assert_eq!(g.num_links(), 14);
        assert!(g.is_connected());
        assert!(g.max_degree() <= 3);
    }

    #[test]
    fn dumbbell_shape() {
        let g = dumbbell(4, 3, 500);
        assert_eq!(g.num_nodes(), 7);
        assert!(g.is_connected());
        assert_eq!(g.link_delay(3, 4), Some(500));
        let stats = DelayStats::of(&g);
        assert_eq!(stats.d_max, 500);
        // 6 + 3 clique edges + 1 WAN
        assert_eq!(g.num_links(), 10);
    }

    #[test]
    fn geometric_now_is_connected_and_distance_weighted() {
        let g = geometric(40, 0.35, 50, 7);
        assert!(g.is_connected());
        assert_eq!(g.num_nodes(), 40);
        let stats = DelayStats::of(&g);
        assert!(stats.d_max <= 51);
        assert!(stats.d_min >= 1);
        // determinism
        let h = geometric(40, 0.35, 50, 7);
        assert_eq!(g.links(), h.links());
    }

    #[test]
    fn butterfly_shape() {
        let g = butterfly(3, DelayModel::constant(1), 0);
        assert_eq!(g.num_nodes(), 4 * 8);
        assert_eq!(g.num_links(), 3 * 8 * 2);
        assert!(g.is_connected());
        assert!(g.max_degree() <= 4);
        // straight edge exists
        assert!(g.has_link(0, 8));
        // cross edge from (0, 0) goes to (1, 1)
        assert!(g.has_link(0, 9));
    }

    #[test]
    fn ccc_is_3_regular_and_connected() {
        let g = cube_connected_cycles(3, DelayModel::constant(1), 0);
        assert_eq!(g.num_nodes(), 24);
        assert!(g.is_connected());
        for v in 0..24 {
            assert_eq!(g.degree(v), 3, "node {v}");
        }
        assert_eq!(g.num_links(), 36); // 3n/2
    }

    #[test]
    fn ccc_larger_orders() {
        for k in 3..6 {
            let g = cube_connected_cycles(k, DelayModel::uniform(1, 5), 1);
            assert!(g.is_connected(), "k={k}");
            assert_eq!(g.max_degree(), 3);
        }
    }

    #[test]
    fn random_regular_is_regular_connected_and_deterministic() {
        let g = random_regular(20, 3, DelayModel::constant(1), 11);
        assert!(g.is_connected());
        for v in 0..20 {
            assert_eq!(g.degree(v), 3, "node {v}");
        }
        let h = random_regular(20, 3, DelayModel::constant(1), 11);
        assert_eq!(g.links(), h.links());
    }

    #[test]
    fn clique_of_cliques_matches_paper_parameters() {
        let k = 8; // n = 64
        let g = clique_of_cliques(k);
        let n = k * k;
        assert_eq!(g.num_nodes(), n);
        assert!(g.is_connected());
        let stats = DelayStats::of(&g);
        // Paper: d_ave < 4.
        assert!(stats.d_ave < 4.0, "d_ave = {}", stats.d_ave);
        assert_eq!(stats.d_max, n as u64);
        // Unbounded degree: clique nodes have degree ~k.
        assert!(g.max_degree() as u32 >= k - 1);
    }

    #[test]
    fn h1_has_constant_average_and_sqrt_max() {
        let n = 256;
        let g = h1_lower_bound(n);
        let stats = DelayStats::of(&g);
        assert_eq!(stats.d_max, 16);
        assert!(stats.d_ave < 3.0, "d_ave = {}", stats.d_ave);
        assert_eq!(g.num_links(), 255);
        // every 16th link is the spike
        assert_eq!(g.link_delay(15, 16), Some(16));
        assert_eq!(g.link_delay(14, 15), Some(1));
    }

    #[test]
    fn h2_has_theta_n_nodes_and_constant_average_delay() {
        let n = 1024;
        let h = h2_recursive_boxes(n);
        let g = &h.graph;
        assert!(g.is_connected());
        let nodes = g.num_nodes();
        // Θ(n): within [n/4, 4n].
        assert!(
            (n / 4..=4 * n).contains(&nodes),
            "H2({n}) has {nodes} nodes"
        );
        let stats = DelayStats::of(g);
        assert!(stats.d_ave < 8.0, "d_ave = {}", stats.d_ave);
        assert_eq!(stats.d_max, h.d);
    }

    #[test]
    fn h2_edge_inventory_matches_paper() {
        // "a level ℓ box contains 2^ℓ edges of delay d"
        let h = h2_recursive_boxes(4096);
        let delay_d_edges = h.graph.links().iter().filter(|l| l.delay == h.d).count() as u64;
        assert_eq!(delay_d_edges, 1 << h.k);
        // segments: one per internal level-ℓ junction: 2^(k-ℓ) of level ℓ
        for l in 1..=h.k {
            let count = h.segments.iter().filter(|s| s.level == l).count() as u64;
            assert_eq!(count, 1 << (h.k - l), "level {l}");
        }
    }

    #[test]
    fn h2_segments_partition_distinct_nodes() {
        let h = h2_recursive_boxes(256);
        let mut seen = std::collections::HashSet::new();
        for s in &h.segments {
            for &v in &s.nodes {
                assert!(seen.insert(v), "node {v} in two segments");
                assert!(v < h.graph.num_nodes());
            }
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn random_regular_rejects_odd_stub_count() {
        random_regular(5, 3, DelayModel::constant(1), 0);
    }
}
