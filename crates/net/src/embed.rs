//! Fact 3: dilation-3 one-to-one embedding of a linear array into any
//! connected graph.
//!
//! The paper's §4 lifts the linear-array results to arbitrary connected
//! bounded-degree hosts via Fact 3 ("An n-node linear array can be
//! one-to-one embedded with dilation 3 in any connected n-node network",
//! [8, p. 470]). The classical construction is Sekanina's theorem: for any
//! tree `T` and tree edge `(x, y)`, the cube `T³` has a Hamiltonian path
//! from `x` to `y`. We take a BFS spanning tree of the host and build that
//! path iteratively.
//!
//! The recursion: cut `(x, y)`, giving components `T_x ∋ x`, `T_y ∋ y`.
//! Recursively path `x → x'` inside `T_x` (for any tree neighbour `x'` of
//! `x`), and `y' → y` inside `T_y`; concatenate. The seam `x' → y'` has
//! tree distance ≤ 3 (`x'–x–y–y'`), and every recursive seam likewise.

use crate::graph::{Delay, HostGraph, NodeId};
use crate::spanning::{bfs_tree, SpanningTree};
use std::collections::HashSet;

/// A dilation-3 linear-array embedding of a host network.
#[derive(Debug, Clone)]
pub struct LineEmbedding {
    /// `order[i]` = host node at array position `i` (a permutation).
    pub order: Vec<NodeId>,
    /// Inverse of `order`.
    pub pos: Vec<u32>,
    /// Maximum tree-hop distance between consecutive array positions (≤ 3).
    pub dilation: u32,
    /// Delay of each embedded array link `i ↔ i+1`: the total delay of the
    /// spanning-tree path between the two host nodes. These are the link
    /// delays of the *embedded* linear array `𝓗` on which OVERLAP runs.
    pub array_delays: Vec<Delay>,
}

impl LineEmbedding {
    /// Average delay of the embedded array links.
    pub fn d_ave(&self) -> f64 {
        if self.array_delays.is_empty() {
            0.0
        } else {
            self.array_delays.iter().sum::<u64>() as f64 / self.array_delays.len() as f64
        }
    }

    /// Maximum delay of the embedded array links.
    pub fn d_max(&self) -> Delay {
        self.array_delays.iter().copied().max().unwrap_or(0)
    }
}

/// Canonical undirected edge key.
fn ekey(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Work item for the iterative Hamiltonian-path construction. `rev`
/// indicates the produced segment must be emitted reversed.
enum Task {
    Path { x: NodeId, y: NodeId, rev: bool },
    Single(NodeId),
}

/// Hamiltonian path of `tree³` from one endpoint of an arbitrary tree edge,
/// with consecutive nodes at tree distance ≤ 3.
fn t3_hamiltonian_order(tree: &SpanningTree) -> Vec<NodeId> {
    let n = tree.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![tree.root];
    }
    let mut cut: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(n);
    // Helper: first tree neighbour of `v` not equal to `other` over an edge
    // not yet cut.
    let pick = |v: NodeId, other: NodeId, cut: &HashSet<(NodeId, NodeId)>| -> Option<NodeId> {
        tree.adj[v as usize]
            .iter()
            .copied()
            .find(|&w| w != other && !cut.contains(&ekey(v, w)))
    };

    // Start from any tree edge at the root.
    let x0 = tree.root;
    let y0 = tree.adj[x0 as usize][0];
    let mut out: Vec<NodeId> = Vec::with_capacity(n);
    let mut stack = vec![Task::Path {
        x: x0,
        y: y0,
        rev: false,
    }];
    while let Some(task) = stack.pop() {
        match task {
            Task::Single(v) => out.push(v),
            Task::Path { x, y, rev } => {
                cut.insert(ekey(x, y));
                let x2 = pick(x, y, &cut);
                let y2 = pick(y, x, &cut);
                // In forward order the segment is  HP(T_x: x→x') ++ HP(T_y: y'→y),
                // where the second factor is HP(T_y: y→y') reversed.
                // Reversing the whole segment swaps and flips the factors.
                let (first, second) = if !rev {
                    (
                        match x2 {
                            Some(x2) => Task::Path {
                                x,
                                y: x2,
                                rev: false,
                            },
                            None => Task::Single(x),
                        },
                        match y2 {
                            Some(y2) => Task::Path {
                                x: y,
                                y: y2,
                                rev: true,
                            },
                            None => Task::Single(y),
                        },
                    )
                } else {
                    (
                        match y2 {
                            Some(y2) => Task::Path {
                                x: y,
                                y: y2,
                                rev: false,
                            },
                            None => Task::Single(y),
                        },
                        match x2 {
                            Some(x2) => Task::Path {
                                x,
                                y: x2,
                                rev: true,
                            },
                            None => Task::Single(x),
                        },
                    )
                };
                // LIFO: push `second` first so `first` is emitted first.
                stack.push(second);
                stack.push(first);
            }
        }
    }
    out
}

/// Embed an `n`-node linear array one-to-one into the connected host `g`
/// with dilation ≤ 3 (Fact 3). Array link delays are the spanning-tree path
/// delays between consecutive hosts.
///
/// ```
/// use overlap_net::{topology, DelayModel};
/// use overlap_net::embed::embed_linear_array;
/// let host = topology::mesh2d(4, 4, DelayModel::uniform(1, 5), 1);
/// let e = embed_linear_array(&host);
/// assert_eq!(e.order.len(), 16);
/// assert!(e.dilation <= 3);
/// ```
///
/// # Panics
/// If `g` is disconnected or empty.
pub fn embed_linear_array(g: &HostGraph) -> LineEmbedding {
    assert!(g.num_nodes() > 0, "cannot embed into an empty host");
    let tree = bfs_tree(g, 0);
    let order = t3_hamiltonian_order(&tree);
    assert_eq!(
        order.len() as u32,
        g.num_nodes(),
        "order must be a permutation"
    );

    let mut pos = vec![u32::MAX; g.num_nodes() as usize];
    for (i, &v) in order.iter().enumerate() {
        assert_eq!(pos[v as usize], u32::MAX, "node {v} appears twice");
        pos[v as usize] = i as u32;
    }

    let mut dilation = 0;
    let mut array_delays = Vec::with_capacity(order.len().saturating_sub(1));
    for w in order.windows(2) {
        let path = tree.tree_path(w[0], w[1]);
        let hops = (path.len() - 1) as u32;
        dilation = dilation.max(hops);
        let delay: Delay = path
            .windows(2)
            .map(|e| g.link_delay(e[0], e[1]).expect("tree edges are host links"))
            .sum::<Delay>()
            .max(1);
        array_delays.push(delay);
    }
    assert!(dilation <= 3, "Fact 3 violated: dilation {dilation}");
    LineEmbedding {
        order,
        pos,
        dilation,
        array_delays,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delays::DelayModel;
    use crate::metrics::DelayStats;
    use crate::topology::{
        binary_tree, clique_of_cliques, hypercube, linear_array, mesh2d, random_regular, ring,
        torus2d,
    };

    fn check_embedding(g: &HostGraph) -> LineEmbedding {
        let e = embed_linear_array(g);
        assert_eq!(e.order.len() as u32, g.num_nodes());
        // permutation
        let mut seen = vec![false; g.num_nodes() as usize];
        for &v in &e.order {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        assert!(e.dilation <= 3, "dilation {}", e.dilation);
        assert_eq!(e.array_delays.len() as u32, g.num_nodes() - 1);
        e
    }

    #[test]
    fn embeds_line_trivially() {
        let g = linear_array(16, DelayModel::constant(2), 0);
        let e = check_embedding(&g);
        // A path's BFS tree is itself; the Hamiltonian order of a path in
        // T³ covers it with dilation ≤ 3 and total delay Θ(total).
        assert!(e.d_max() <= 6);
    }

    #[test]
    fn embeds_ring_mesh_torus_tree_hypercube() {
        for g in [
            ring(17, DelayModel::uniform(1, 5), 3),
            mesh2d(5, 7, DelayModel::uniform(1, 5), 3),
            torus2d(4, 5, DelayModel::uniform(1, 5), 3),
            binary_tree(5, DelayModel::uniform(1, 5), 3),
            hypercube(5, DelayModel::uniform(1, 5), 3),
        ] {
            check_embedding(&g);
        }
    }

    #[test]
    fn embeds_random_regular_graphs() {
        for seed in 0..5 {
            let g = random_regular(30, 3, DelayModel::uniform(1, 9), seed);
            check_embedding(&g);
        }
    }

    #[test]
    fn embedded_average_delay_is_bounded_by_degree_times_dave() {
        // §4: "if H has bounded degree δ then 𝓗 has average delay at most
        // δ·d_ave" (up to the constant from dilation 3). We allow a factor
        // of 3δ to account for 3-hop tree paths.
        for g in [
            mesh2d(8, 8, DelayModel::uniform(1, 20), 5),
            torus2d(6, 6, DelayModel::uniform(1, 20), 5),
            binary_tree(6, DelayModel::uniform(1, 20), 5),
        ] {
            let e = check_embedding(&g);
            let host = DelayStats::of(&g);
            let delta = g.max_degree() as f64;
            assert!(
                e.d_ave() <= 3.0 * delta * host.d_ave,
                "{}: embedded d_ave {} vs host {} (δ={delta})",
                g.name(),
                e.d_ave(),
                host.d_ave
            );
        }
    }

    #[test]
    fn clique_of_cliques_embedding_pays_for_long_edges() {
        // The embedded array must cross each inter-clique (delay n) edge.
        let g = clique_of_cliques(4);
        let e = check_embedding(&g);
        assert!(e.d_max() >= 16, "must traverse a delay-n edge");
    }

    #[test]
    fn embedding_is_deterministic() {
        let g = mesh2d(6, 6, DelayModel::uniform(1, 7), 1);
        let a = embed_linear_array(&g);
        let b = embed_linear_array(&g);
        assert_eq!(a.order, b.order);
        assert_eq!(a.array_delays, b.array_delays);
    }

    #[test]
    fn single_node_host() {
        let g = HostGraph::new("one", 1);
        let e = embed_linear_array(&g);
        assert_eq!(e.order, vec![0]);
        assert!(e.array_delays.is_empty());
        assert_eq!(e.dilation, 0);
    }

    #[test]
    fn two_node_host() {
        let g = linear_array(2, DelayModel::constant(5), 0);
        let e = embed_linear_array(&g);
        assert_eq!(e.order.len(), 2);
        assert_eq!(e.array_delays, vec![5]);
    }

    #[test]
    fn large_path_does_not_overflow_stack() {
        // The construction is iterative; a 20k-node path host exercises the
        // deepest possible task chain.
        let g = linear_array(20_000, DelayModel::constant(1), 0);
        let e = embed_linear_array(&g);
        assert_eq!(e.order.len(), 20_000);
    }
}
