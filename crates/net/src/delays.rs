//! Seeded link-delay distributions.
//!
//! The paper's motivation (§1): in a NOW "some latencies can be very high …
//! and also the variation among latencies can be high". These models let
//! experiments control `d_ave` and `d_max` independently — in particular the
//! spike model reproduces the regime `d_max ≫ √d_ave · log³ n` where the
//! paper's slowdown "is particularly impressive".

use crate::graph::Delay;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A distribution over link delays, sampled per link index so that the same
/// `(model, seed)` always produces the same host network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DelayModel {
    /// Every link has delay `d`.
    Constant(Delay),
    /// Uniform integer delay in `[lo, hi]`.
    Uniform {
        /// Minimum delay (≥1).
        lo: Delay,
        /// Maximum delay.
        hi: Delay,
    },
    /// Delay `lo` with probability `1 - p_hi`, else `hi` — a NOW mixing
    /// tightly-coupled machines with far-apart ones.
    Bimodal {
        /// Common (low) delay.
        lo: Delay,
        /// Rare (high) delay.
        hi: Delay,
        /// Probability of the high delay, in `[0, 1]`.
        p_hi: f64,
    },
    /// Pareto-like heavy tail: `delay = min * u^(-1/alpha)` capped at `cap`.
    /// Produces constant-ish `d_ave` with occasional huge `d_max`.
    HeavyTail {
        /// Scale (minimum) delay.
        min: Delay,
        /// Tail exponent (>0; smaller = heavier tail).
        alpha: f64,
        /// Hard cap on sampled delays.
        cap: Delay,
    },
    /// Deterministic spikes: every `period`-th link (1-based positions
    /// `period, 2·period, …`) has delay `spike`, all others `base`. With
    /// `base = 1`, `period = spike = √n` this is exactly the Theorem 9 host
    /// `H1`.
    Spike {
        /// Delay of ordinary links.
        base: Delay,
        /// Delay of spiked links.
        spike: Delay,
        /// Spike period in links (≥1).
        period: u64,
    },
}

impl DelayModel {
    /// Convenience constructor for `Uniform`.
    pub fn uniform(lo: Delay, hi: Delay) -> Self {
        DelayModel::Uniform { lo, hi }
    }

    /// Convenience constructor for `Constant`.
    pub fn constant(d: Delay) -> Self {
        DelayModel::Constant(d)
    }

    /// Sample the delay of link number `index` (0-based creation order)
    /// under `seed`. Deterministic in all arguments.
    pub fn sample(&self, index: u64, seed: u64) -> Delay {
        let mut rng = StdRng::seed_from_u64(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        match *self {
            DelayModel::Constant(d) => d.max(1),
            DelayModel::Uniform { lo, hi } => {
                assert!(lo >= 1 && hi >= lo, "bad uniform range [{lo},{hi}]");
                rng.gen_range(lo..=hi)
            }
            DelayModel::Bimodal { lo, hi, p_hi } => {
                assert!((0.0..=1.0).contains(&p_hi));
                if rng.gen_bool(p_hi) {
                    hi.max(1)
                } else {
                    lo.max(1)
                }
            }
            DelayModel::HeavyTail { min, alpha, cap } => {
                assert!(alpha > 0.0);
                let u: f64 = rng.gen_range(1e-9..1.0);
                let d = (min.max(1) as f64) * u.powf(-1.0 / alpha);
                (d.round() as Delay).clamp(min.max(1), cap.max(min.max(1)))
            }
            DelayModel::Spike {
                base,
                spike,
                period,
            } => {
                assert!(period >= 1);
                if (index + 1).is_multiple_of(period) {
                    spike.max(1)
                } else {
                    base.max(1)
                }
            }
        }
    }

    /// A short label for reports.
    pub fn label(&self) -> String {
        match *self {
            DelayModel::Constant(d) => format!("const({d})"),
            DelayModel::Uniform { lo, hi } => format!("unif[{lo},{hi}]"),
            DelayModel::Bimodal { lo, hi, p_hi } => format!("bimodal({lo},{hi},p={p_hi})"),
            DelayModel::HeavyTail { min, alpha, cap } => {
                format!("heavy(min={min},a={alpha},cap={cap})")
            }
            DelayModel::Spike {
                base,
                spike,
                period,
            } => format!("spike({base},{spike}/{period})"),
        }
    }

    /// Derive a delay model deterministically from `bits` (e.g. a PRNG
    /// draw): every variant is reachable with small, fuzz-friendly
    /// parameters. Used by the differential fuzzer.
    pub fn arbitrary(bits: u64) -> Self {
        let p = bits >> 3;
        match bits % 5 {
            0 => DelayModel::Constant(1 + p % 9),
            1 => {
                let lo = 1 + p % 6;
                DelayModel::Uniform {
                    lo,
                    hi: lo + (p >> 8) % 20,
                }
            }
            2 => DelayModel::Bimodal {
                lo: 1 + p % 4,
                hi: 8 + (p >> 8) % 40,
                p_hi: 0.05 + ((p >> 16) % 50) as f64 / 100.0,
            },
            3 => DelayModel::HeavyTail {
                min: 1 + p % 4,
                alpha: 1.1 + ((p >> 8) % 20) as f64 / 10.0,
                cap: 32 + (p >> 16) % 200,
            },
            _ => DelayModel::Spike {
                base: 1 + p % 3,
                spike: 10 + (p >> 8) % 60,
                period: 1 + (p >> 16) % 7,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        let m = DelayModel::uniform(1, 100);
        for i in 0..50 {
            assert_eq!(m.sample(i, 7), m.sample(i, 7));
        }
    }

    #[test]
    fn different_links_vary() {
        let m = DelayModel::uniform(1, 1_000_000);
        let a = m.sample(0, 7);
        let b = m.sample(1, 7);
        assert_ne!(a, b);
    }

    #[test]
    fn constant_ignores_index_and_seed() {
        let m = DelayModel::constant(9);
        assert_eq!(m.sample(0, 1), 9);
        assert_eq!(m.sample(99, 2), 9);
    }

    #[test]
    fn uniform_respects_bounds() {
        let m = DelayModel::uniform(3, 8);
        for i in 0..200 {
            let d = m.sample(i, 13);
            assert!((3..=8).contains(&d));
        }
    }

    #[test]
    fn bimodal_hits_both_modes() {
        let m = DelayModel::Bimodal {
            lo: 1,
            hi: 100,
            p_hi: 0.3,
        };
        let samples: Vec<_> = (0..300).map(|i| m.sample(i, 5)).collect();
        assert!(samples.contains(&1));
        assert!(samples.contains(&100));
        assert!(samples.iter().all(|&d| d == 1 || d == 100));
    }

    #[test]
    fn heavy_tail_is_capped_and_floored() {
        let m = DelayModel::HeavyTail {
            min: 2,
            alpha: 0.8,
            cap: 500,
        };
        let samples: Vec<_> = (0..500).map(|i| m.sample(i, 5)).collect();
        assert!(samples.iter().all(|&d| (2..=500).contains(&d)));
        // The tail should actually produce some big values.
        assert!(samples.iter().any(|&d| d > 50));
    }

    #[test]
    fn spike_pattern_is_periodic() {
        let m = DelayModel::Spike {
            base: 1,
            spike: 64,
            period: 8,
        };
        for i in 0..64u64 {
            let expect = if (i + 1) % 8 == 0 { 64 } else { 1 };
            assert_eq!(m.sample(i, 0), expect, "link {i}");
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            DelayModel::constant(2).label(),
            DelayModel::uniform(1, 2).label(),
            DelayModel::Bimodal {
                lo: 1,
                hi: 2,
                p_hi: 0.5,
            }
            .label(),
            DelayModel::HeavyTail {
                min: 1,
                alpha: 1.0,
                cap: 10,
            }
            .label(),
            DelayModel::Spike {
                base: 1,
                spike: 2,
                period: 3,
            }
            .label(),
        ];
        for i in 0..labels.len() {
            for j in 0..labels.len() {
                if i != j {
                    assert_ne!(labels[i], labels[j]);
                }
            }
        }
    }
}
