//! Undirected host graphs with integer link delays.

use serde::{Deserialize, Serialize};

/// Host processor (workstation) identifier, 0-based and dense.
pub type NodeId = u32;

/// Link delay in simulator ticks. The guest's unit-delay links correspond to
/// delay 1.
pub type Delay = u64;

/// One undirected link of the host network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint (the smaller id).
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Delay in ticks, ≥ 1.
    pub delay: Delay,
}

/// An undirected host network with per-link delays.
///
/// Parallel links and self-loops are rejected: none of the paper's
/// constructions need them, and forbidding them keeps routing tables simple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostGraph {
    name: String,
    n: u32,
    links: Vec<Link>,
    /// adjacency: for each node, (neighbour, delay) pairs.
    adj: Vec<Vec<(NodeId, Delay)>>,
}

impl HostGraph {
    /// An edgeless graph on `n` nodes.
    pub fn new(name: impl Into<String>, n: u32) -> Self {
        Self {
            name: name.into(),
            n,
            links: Vec::new(),
            adj: vec![Vec::new(); n as usize],
        }
    }

    /// Human-readable topology name (used in experiment reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Override the topology name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u32 {
        self.n
    }

    /// Number of undirected links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Add an undirected link with the given delay (≥1 enforced).
    ///
    /// # Panics
    /// On self-loops, out-of-range endpoints, duplicate links, or zero delay.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, delay: Delay) {
        assert!(a != b, "self-loop on node {a}");
        assert!(a < self.n && b < self.n, "endpoint out of range: {a}-{b}");
        assert!(delay >= 1, "zero-delay link {a}-{b}");
        assert!(
            !self.adj[a as usize].iter().any(|&(x, _)| x == b),
            "duplicate link {a}-{b}"
        );
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        self.links.push(Link {
            a: lo,
            b: hi,
            delay,
        });
        self.adj[a as usize].push((b, delay));
        self.adj[b as usize].push((a, delay));
    }

    /// Change the delay of an existing link (≥ 1 enforced). The link's
    /// identity — its position in [`links`](Self::links) order, and hence
    /// any directed link ids derived from it — is unchanged.
    ///
    /// # Panics
    /// If the link does not exist or the delay is zero.
    pub fn set_link_delay(&mut self, a: NodeId, b: NodeId, delay: Delay) {
        assert!(delay >= 1, "zero-delay link {a}-{b}");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let l = self
            .links
            .iter_mut()
            .find(|l| (l.a, l.b) == (lo, hi))
            .unwrap_or_else(|| panic!("no link {a}-{b}"));
        l.delay = delay;
        for e in self.adj[a as usize].iter_mut() {
            if e.0 == b {
                e.1 = delay;
            }
        }
        for e in self.adj[b as usize].iter_mut() {
            if e.0 == a {
                e.1 = delay;
            }
        }
    }

    /// True if a link between `a` and `b` exists.
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        self.adj
            .get(a as usize)
            .is_some_and(|v| v.iter().any(|&(x, _)| x == b))
    }

    /// Delay of the direct link `a`-`b`, if present.
    pub fn link_delay(&self, a: NodeId, b: NodeId) -> Option<Delay> {
        self.adj[a as usize]
            .iter()
            .find(|&&(x, _)| x == b)
            .map(|&(_, d)| d)
    }

    /// All links, each undirected link exactly once.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Neighbours of `v` with link delays.
    pub fn neighbours(&self, v: NodeId) -> &[(NodeId, Delay)] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// BFS connectivity check (ignoring delays).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let mut seen = vec![false; self.n as usize];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(w, _) in &self.adj[v as usize] {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == self.n
    }

    /// Render the host as a Graphviz DOT document (undirected; link delays
    /// as edge labels) for external visualization.
    pub fn to_dot(&self) -> String {
        let mut out = format!("graph \"{}\" {{\n", self.name);
        out.push_str("  node [shape=circle];\n");
        for l in &self.links {
            out.push_str(&format!("  {} -- {} [label=\"{}\"];\n", l.a, l.b, l.delay));
        }
        out.push_str("}\n");
        out
    }

    /// Rescale every link delay by `f`, keeping delays ≥ 1.
    pub fn scale_delays(&mut self, f: f64) {
        assert!(f > 0.0);
        for l in &mut self.links {
            l.delay = ((l.delay as f64 * f).round() as Delay).max(1);
        }
        for row in &mut self.adj {
            for e in row.iter_mut() {
                e.1 = ((e.1 as f64 * f).round() as Delay).max(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> HostGraph {
        let mut g = HostGraph::new("tri", 3);
        g.add_link(0, 1, 1);
        g.add_link(1, 2, 5);
        g.add_link(2, 0, 2);
        g
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_links(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.link_delay(1, 2), Some(5));
        assert_eq!(g.link_delay(2, 1), Some(5));
        assert_eq!(g.link_delay(0, 0), None);
        assert!(g.has_link(0, 2));
        assert!(g.is_connected());
    }

    #[test]
    fn links_are_canonicalized() {
        let mut g = HostGraph::new("g", 4);
        g.add_link(3, 1, 2);
        let l = g.links()[0];
        assert!(l.a < l.b);
        assert_eq!((l.a, l.b, l.delay), (1, 3, 2));
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut g = HostGraph::new("g", 4);
        g.add_link(0, 1, 1);
        g.add_link(2, 3, 1);
        assert!(!g.is_connected());
    }

    #[test]
    fn empty_and_singleton_are_connected() {
        assert!(HostGraph::new("e", 0).is_connected());
        assert!(HostGraph::new("s", 1).is_connected());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = HostGraph::new("g", 2);
        g.add_link(1, 1, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_link_panics() {
        let mut g = HostGraph::new("g", 2);
        g.add_link(0, 1, 1);
        g.add_link(1, 0, 2);
    }

    #[test]
    #[should_panic(expected = "zero-delay")]
    fn zero_delay_panics() {
        let mut g = HostGraph::new("g", 2);
        g.add_link(0, 1, 0);
    }

    #[test]
    fn dot_export_contains_every_link() {
        let g = triangle();
        let dot = g.to_dot();
        assert!(dot.starts_with("graph \"tri\""));
        assert!(dot.contains("0 -- 1 [label=\"1\"]"));
        assert!(dot.contains("1 -- 2 [label=\"5\"]"));
        assert!(dot.contains("0 -- 2 [label=\"2\"]"));
        assert_eq!(dot.matches(" -- ").count(), 3);
    }

    #[test]
    fn scale_delays_rounds_and_clamps() {
        let mut g = triangle();
        g.scale_delays(0.1);
        assert_eq!(g.link_delay(0, 1), Some(1)); // clamped up
        assert_eq!(g.link_delay(1, 2), Some(1)); // 0.5 rounds to 1
        g.scale_delays(10.0);
        assert_eq!(g.link_delay(0, 1), Some(10));
    }
}
