//! Spanning trees of host networks.
//!
//! The dilation-3 linear-array embedding (Fact 3) operates on a spanning
//! tree. A BFS tree keeps hop-depth low; a Dijkstra tree keeps the tree's
//! root-paths cheap in delay. Both are provided.

use crate::graph::{HostGraph, NodeId};
use crate::paths::dijkstra;
use std::collections::VecDeque;

/// A rooted spanning tree of a host graph.
#[derive(Debug, Clone)]
pub struct SpanningTree {
    /// Root node.
    pub root: NodeId,
    /// `parent[v]` (`u32::MAX` for the root).
    pub parent: Vec<NodeId>,
    /// Tree adjacency (children and parent merged; undirected view).
    pub adj: Vec<Vec<NodeId>>,
}

impl SpanningTree {
    fn from_parents(root: NodeId, parent: Vec<NodeId>) -> Self {
        let n = parent.len();
        let mut adj = vec![Vec::new(); n];
        for (v, &p) in parent.iter().enumerate() {
            if p != u32::MAX {
                adj[v].push(p);
                adj[p as usize].push(v as NodeId);
            }
        }
        Self { root, parent, adj }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Number of tree edges (n − 1 for a connected graph).
    pub fn num_edges(&self) -> usize {
        self.parent.iter().filter(|&&p| p != u32::MAX).count()
    }

    /// Hop distance between two nodes *within the tree* (BFS on tree
    /// adjacency). Used to verify embedding dilation.
    pub fn tree_distance(&self, a: NodeId, b: NodeId) -> u32 {
        if a == b {
            return 0;
        }
        let mut dist = vec![u32::MAX; self.num_nodes()];
        let mut q = VecDeque::new();
        dist[a as usize] = 0;
        q.push_back(a);
        while let Some(v) = q.pop_front() {
            if v == b {
                return dist[v as usize];
            }
            for &w in &self.adj[v as usize] {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[v as usize] + 1;
                    q.push_back(w);
                }
            }
        }
        u32::MAX
    }

    /// The unique tree path between two nodes (inclusive).
    pub fn tree_path(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        // Walk both nodes to the root, then splice at the meeting point.
        let up = |mut v: NodeId| -> Vec<NodeId> {
            let mut path = vec![v];
            while self.parent[v as usize] != u32::MAX {
                v = self.parent[v as usize];
                path.push(v);
            }
            path
        };
        let pa = up(a);
        let pb = up(b);
        // Find lowest common ancestor by comparing reversed root paths.
        let mut i = pa.len();
        let mut j = pb.len();
        while i > 0 && j > 0 && pa[i - 1] == pb[j - 1] {
            i -= 1;
            j -= 1;
        }
        // pa[..=i] runs from a down to the LCA; pb[..j] from b to just below
        // the LCA.
        let mut path: Vec<NodeId> = pa[..=i].to_vec();
        let mut tail: Vec<NodeId> = pb[..j].to_vec();
        tail.reverse();
        path.extend(tail);
        path
    }
}

/// Breadth-first spanning tree rooted at `root` (minimizes hop depth).
///
/// # Panics
/// If the graph is disconnected.
pub fn bfs_tree(g: &HostGraph, root: NodeId) -> SpanningTree {
    let n = g.num_nodes() as usize;
    let mut parent = vec![u32::MAX; n];
    let mut seen = vec![false; n];
    let mut q = VecDeque::new();
    seen[root as usize] = true;
    q.push_back(root);
    let mut count = 1;
    while let Some(v) = q.pop_front() {
        for &(w, _) in g.neighbours(v) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                parent[w as usize] = v;
                count += 1;
                q.push_back(w);
            }
        }
    }
    assert_eq!(count, n, "graph is disconnected");
    SpanningTree::from_parents(root, parent)
}

/// Shortest-delay-path spanning tree rooted at `root` (Dijkstra tree).
///
/// # Panics
/// If the graph is disconnected.
pub fn dijkstra_tree(g: &HostGraph, root: NodeId) -> SpanningTree {
    let r = dijkstra(g, root);
    assert!(
        r.dist.iter().all(|&d| d != u64::MAX),
        "graph is disconnected"
    );
    SpanningTree::from_parents(root, r.parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delays::DelayModel;
    use crate::topology::{linear_array, mesh2d, ring};

    #[test]
    fn bfs_tree_of_line_is_the_line() {
        let g = linear_array(5, DelayModel::constant(1), 0);
        let t = bfs_tree(&g, 0);
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.parent[3], 2);
        assert_eq!(t.tree_distance(0, 4), 4);
    }

    #[test]
    fn bfs_tree_of_ring_cuts_one_edge() {
        let g = ring(6, DelayModel::constant(1), 0);
        let t = bfs_tree(&g, 0);
        assert_eq!(t.num_edges(), 5);
    }

    #[test]
    fn tree_path_goes_through_lca() {
        let g = mesh2d(3, 3, DelayModel::constant(1), 0);
        let t = bfs_tree(&g, 0);
        let p = t.tree_path(2, 6);
        assert_eq!(p.first(), Some(&2));
        assert_eq!(p.last(), Some(&6));
        // consecutive nodes are tree edges
        for w in p.windows(2) {
            assert!(
                t.adj[w[0] as usize].contains(&w[1]),
                "{}-{} not a tree edge",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn tree_path_between_node_and_itself() {
        let g = linear_array(4, DelayModel::constant(1), 0);
        let t = bfs_tree(&g, 0);
        assert_eq!(t.tree_path(2, 2), vec![2]);
    }

    #[test]
    fn tree_path_ancestor_descendant() {
        let g = linear_array(5, DelayModel::constant(1), 0);
        let t = bfs_tree(&g, 0);
        assert_eq!(t.tree_path(1, 4), vec![1, 2, 3, 4]);
        assert_eq!(t.tree_path(4, 1), vec![4, 3, 2, 1]);
    }

    #[test]
    fn dijkstra_tree_prefers_cheap_routes() {
        let mut g = HostGraph::new("g", 3);
        g.add_link(0, 1, 1);
        g.add_link(1, 2, 1);
        g.add_link(0, 2, 100);
        let t = dijkstra_tree(&g, 0);
        assert_eq!(t.parent[2], 1, "expensive direct edge must be avoided");
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn bfs_tree_panics_on_disconnected() {
        let mut g = HostGraph::new("g", 3);
        g.add_link(0, 1, 1);
        bfs_tree(&g, 0);
    }

    #[test]
    fn tree_distance_symmetry() {
        let g = mesh2d(4, 4, DelayModel::constant(1), 0);
        let t = bfs_tree(&g, 5);
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(t.tree_distance(a, b), t.tree_distance(b, a));
            }
        }
    }
}
