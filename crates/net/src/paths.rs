//! Delay-weighted shortest paths (Dijkstra).
//!
//! Used for routing pebble messages in the simulator and for the
//! lower-bound delay certificates (Fact 4, Theorem 9/10 arguments).

use crate::graph::{Delay, HostGraph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Single-source shortest path result.
#[derive(Debug, Clone)]
pub struct PathResult {
    /// Source node.
    pub src: NodeId,
    /// `dist[v]` = minimum total delay from `src` to `v` (`Delay::MAX` if
    /// unreachable).
    pub dist: Vec<Delay>,
    /// `parent[v]` = predecessor of `v` on a shortest path (`u32::MAX` for
    /// the source and unreachable nodes).
    pub parent: Vec<NodeId>,
}

impl PathResult {
    /// Reconstruct the node path `src → dst` (inclusive). `None` if
    /// unreachable.
    pub fn path_to(&self, dst: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[dst as usize] == Delay::MAX {
            return None;
        }
        let mut path = vec![dst];
        let mut v = dst;
        while v != self.src {
            v = self.parent[v as usize];
            path.push(v);
        }
        path.reverse();
        Some(path)
    }
}

/// Dijkstra from `src` over link delays.
pub fn dijkstra(g: &HostGraph, src: NodeId) -> PathResult {
    let n = g.num_nodes() as usize;
    let mut dist = vec![Delay::MAX; n];
    let mut parent = vec![u32::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[src as usize] = 0;
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for &(w, delay) in g.neighbours(v) {
            let nd = d + delay;
            if nd < dist[w as usize] {
                dist[w as usize] = nd;
                parent[w as usize] = v;
                heap.push(Reverse((nd, w)));
            }
        }
    }
    PathResult { src, dist, parent }
}

/// Shortest delay and path between two nodes. `None` if unreachable.
pub fn shortest_path(g: &HostGraph, a: NodeId, b: NodeId) -> Option<(Delay, Vec<NodeId>)> {
    let r = dijkstra(g, a);
    r.path_to(b).map(|p| (r.dist[b as usize], p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delays::DelayModel;
    use crate::topology::{linear_array, mesh2d};

    #[test]
    fn line_distances_accumulate() {
        let g = linear_array(5, DelayModel::constant(3), 0);
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist, vec![0, 3, 6, 9, 12]);
        assert_eq!(r.path_to(4), Some(vec![0, 1, 2, 3, 4]));
    }

    #[test]
    fn dijkstra_prefers_low_delay_routes() {
        // 0-1 (10), 1-2 (10), 0-2 (25): direct edge loses.
        let mut g = HostGraph::new("g", 3);
        g.add_link(0, 1, 10);
        g.add_link(1, 2, 10);
        g.add_link(0, 2, 25);
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist[2], 20);
        assert_eq!(r.path_to(2), Some(vec![0, 1, 2]));
    }

    #[test]
    fn unreachable_nodes_are_reported() {
        let mut g = HostGraph::new("g", 3);
        g.add_link(0, 1, 1);
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist[2], Delay::MAX);
        assert_eq!(r.path_to(2), None);
    }

    #[test]
    fn mesh_shortest_path_is_manhattan_with_unit_delays() {
        let g = mesh2d(5, 5, DelayModel::constant(1), 0);
        let (d, p) = shortest_path(&g, 0, 24).unwrap();
        assert_eq!(d, 8);
        assert_eq!(p.len(), 9);
        assert_eq!(p[0], 0);
        assert_eq!(*p.last().unwrap(), 24);
    }

    #[test]
    fn path_to_self_is_singleton() {
        let g = linear_array(3, DelayModel::constant(1), 0);
        let r = dijkstra(&g, 1);
        assert_eq!(r.path_to(1), Some(vec![1]));
        assert_eq!(r.dist[1], 0);
    }
}
