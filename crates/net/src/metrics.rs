//! Delay statistics of a host network.
//!
//! The paper's bounds are parameterized by the *average* link delay
//! `d_ave` and contrasted with the *maximum* delay `d_max` (which naive
//! simulations pay). These statistics drive both the OVERLAP killing
//! thresholds (`D_k = (n/2^k)·d_ave·c·log n`) and the experiment reports.

use crate::graph::{Delay, HostGraph};
use crate::paths::dijkstra;
use serde::{Deserialize, Serialize};

/// Summary statistics of a host network's link delays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayStats {
    /// Average link delay (`d_ave` in the paper).
    pub d_ave: f64,
    /// Maximum link delay (`d_max`).
    pub d_max: Delay,
    /// Minimum link delay.
    pub d_min: Delay,
    /// Sum of all link delays ("the total delay in the array is n·d_ave").
    pub total: u64,
    /// Number of links.
    pub links: usize,
    /// Maximum node degree.
    pub max_degree: usize,
}

impl DelayStats {
    /// Compute statistics for a host graph.
    pub fn of(g: &HostGraph) -> Self {
        let mut total = 0u64;
        let mut d_max = 0;
        let mut d_min = Delay::MAX;
        for l in g.links() {
            total += l.delay;
            d_max = d_max.max(l.delay);
            d_min = d_min.min(l.delay);
        }
        let links = g.num_links();
        Self {
            d_ave: if links == 0 {
                0.0
            } else {
                total as f64 / links as f64
            },
            d_max,
            d_min: if links == 0 { 0 } else { d_min },
            total,
            links,
            max_degree: g.max_degree(),
        }
    }
}

/// Delay-weighted distance statistics (all-pairs; O(n·m·log n) — intended
/// for hosts up to a few thousand nodes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistanceStats {
    /// Delay-weighted diameter (max over pairs of shortest-path delay).
    pub diameter: Delay,
    /// Mean shortest-path delay over ordered pairs.
    pub mean_distance: f64,
}

impl DistanceStats {
    /// Compute all-pairs distance statistics.
    ///
    /// # Panics
    /// If the graph is disconnected.
    pub fn of(g: &HostGraph) -> Self {
        let n = g.num_nodes();
        let mut diameter = 0;
        let mut total = 0u128;
        let mut pairs = 0u128;
        for v in 0..n {
            let r = dijkstra(g, v);
            for (w, &d) in r.dist.iter().enumerate() {
                if w as u32 == v {
                    continue;
                }
                assert!(d != Delay::MAX, "disconnected host");
                diameter = diameter.max(d);
                total += d as u128;
                pairs += 1;
            }
        }
        Self {
            diameter,
            mean_distance: if pairs == 0 {
                0.0
            } else {
                total as f64 / pairs as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delays::DelayModel;
    use crate::topology::linear_array;

    #[test]
    fn stats_of_constant_line() {
        let g = linear_array(11, DelayModel::constant(4), 0);
        let s = DelayStats::of(&g);
        assert_eq!(s.links, 10);
        assert_eq!(s.total, 40);
        assert_eq!(s.d_ave, 4.0);
        assert_eq!(s.d_max, 4);
        assert_eq!(s.d_min, 4);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn stats_of_spiky_line() {
        let g = linear_array(
            9,
            DelayModel::Spike {
                base: 1,
                spike: 10,
                period: 4,
            },
            0,
        );
        // links 0..8: spikes at indices 3 and 7 -> delays 1,1,1,10,1,1,1,10
        let s = DelayStats::of(&g);
        assert_eq!(s.total, 26);
        assert_eq!(s.d_max, 10);
        assert_eq!(s.d_min, 1);
        assert!((s.d_ave - 26.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn distance_stats_of_a_line() {
        let g = linear_array(4, DelayModel::constant(2), 0);
        let d = DistanceStats::of(&g);
        assert_eq!(d.diameter, 6);
        // ordered pairs distances: 2·(2+4+6) + 2·(2+4) + 2·2 = 24+12+4 = 40? — 12 ordered pairs
        assert!((d.mean_distance - 40.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn distance_stats_reject_disconnected() {
        let mut g = HostGraph::new("g", 3);
        g.add_link(0, 1, 1);
        DistanceStats::of(&g);
    }

    #[test]
    fn stats_of_edgeless_graph() {
        let g = HostGraph::new("empty", 3);
        let s = DelayStats::of(&g);
        assert_eq!(s.d_ave, 0.0);
        assert_eq!(s.d_max, 0);
        assert_eq!(s.total, 0);
    }
}
