//! # overlap-net
//!
//! The *host* network substrate for the SPAA'96 latency-hiding
//! reproduction: networks of workstations (NOWs) with arbitrary link
//! delays.
//!
//! Provides:
//!
//! * [`HostGraph`] — an undirected graph with integer link delays;
//! * [`topology`] — builders for every host family the paper uses: linear
//!   arrays, rings, meshes, tori, hypercubes, trees, random regular graphs,
//!   the clique-of-cliques counterexample (§4), and the lower-bound hosts
//!   `H1` (Thm 9) and `H2` (Thm 10);
//! * [`DelayModel`] — seeded link-delay distributions (constant, uniform,
//!   bimodal, heavy-tail, periodic spikes);
//! * [`paths`] — delay-weighted shortest paths (Dijkstra);
//! * [`spanning`] — spanning trees;
//! * [`embed`] — Fact 3: one-to-one, dilation-3 embedding of a linear array
//!   into any connected graph (Sekanina's T³ Hamiltonian-path theorem),
//!   which §4 uses to lift the linear-array results to arbitrary
//!   bounded-degree NOWs.

#![warn(missing_docs)]

pub mod delays;
pub mod embed;
pub mod graph;
pub mod metrics;
pub mod paths;
pub mod spanning;
pub mod topology;

pub use delays::DelayModel;
pub use embed::{embed_linear_array, LineEmbedding};
pub use graph::{Delay, HostGraph, Link, NodeId};
pub use metrics::DelayStats;
pub use paths::{dijkstra, shortest_path, PathResult};
