//! Property-based tests for the host-network substrate.

use overlap_net::embed::embed_linear_array;
use overlap_net::paths::dijkstra;
use overlap_net::spanning::bfs_tree;
use overlap_net::topology::{h2_recursive_boxes, linear_array, mesh2d, random_regular, ring};
use overlap_net::DelayModel;
use proptest::prelude::*;

fn delay_model_strategy() -> impl Strategy<Value = DelayModel> {
    prop_oneof![
        (1u64..100).prop_map(DelayModel::Constant),
        (1u64..5, 5u64..200).prop_map(|(lo, hi)| DelayModel::Uniform { lo, hi }),
        (2u64..1000, 2u64..20).prop_map(|(spike, period)| DelayModel::Spike {
            base: 1,
            spike,
            period
        }),
    ]
}

proptest! {
    #[test]
    fn dijkstra_satisfies_triangle_inequality(
        w in 2u32..6,
        h in 2u32..6,
        dm in delay_model_strategy(),
        seed in any::<u64>(),
    ) {
        let g = mesh2d(w, h, dm, seed);
        let n = g.num_nodes();
        let d0 = dijkstra(&g, 0);
        let dmid = dijkstra(&g, n / 2);
        for v in 0..n {
            // d(0, v) ≤ d(0, mid) + d(mid, v)
            prop_assert!(
                d0.dist[v as usize] <= d0.dist[(n / 2) as usize] + dmid.dist[v as usize]
            );
        }
    }

    #[test]
    fn dijkstra_paths_have_matching_lengths(
        n in 3u32..30,
        dm in delay_model_strategy(),
        seed in any::<u64>(),
    ) {
        let g = ring(n, dm, seed);
        let r = dijkstra(&g, 0);
        for v in 0..n {
            let path = r.path_to(v).expect("connected");
            let total: u64 = path
                .windows(2)
                .map(|e| g.link_delay(e[0], e[1]).unwrap())
                .sum();
            prop_assert_eq!(total, r.dist[v as usize]);
        }
    }

    #[test]
    fn embedding_is_a_dilation3_permutation_on_meshes(
        w in 1u32..7,
        h in 1u32..7,
        dm in delay_model_strategy(),
        seed in any::<u64>(),
    ) {
        prop_assume!(w * h >= 1);
        let g = mesh2d(w, h, dm, seed);
        let e = embed_linear_array(&g);
        prop_assert_eq!(e.order.len() as u32, w * h);
        let mut seen = vec![false; (w * h) as usize];
        for &v in &e.order {
            prop_assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        prop_assert!(e.dilation <= 3);
    }

    #[test]
    fn embedding_handles_random_regular_graphs(
        seed in any::<u64>(),
    ) {
        let g = random_regular(24, 3, DelayModel::uniform(1, 9), seed);
        let e = embed_linear_array(&g);
        prop_assert!(e.dilation <= 3);
        prop_assert_eq!(e.array_delays.len(), 23);
        // every embedded link's delay is at least the host's min delay
        prop_assert!(e.array_delays.iter().all(|&d| d >= 1));
    }

    #[test]
    fn bfs_tree_distances_bound_graph_hops(
        n in 2u32..40,
        seed in any::<u64>(),
    ) {
        let g = linear_array(n, DelayModel::uniform(1, 9), seed);
        let t = bfs_tree(&g, 0);
        prop_assert_eq!(t.num_edges() as u32, n - 1);
        // path tree: distance between i and j equals |i-j|
        for i in (0..n).step_by(5) {
            for j in (0..n).step_by(7) {
                prop_assert_eq!(t.tree_distance(i, j), i.abs_diff(j));
            }
        }
    }

    #[test]
    fn h2_invariants_hold_for_all_sizes(pow in 4u32..13) {
        let n = 1u32 << pow;
        let h2 = h2_recursive_boxes(n);
        prop_assert!(h2.graph.is_connected());
        // Θ(n) nodes.
        let nodes = h2.graph.num_nodes();
        prop_assert!(nodes >= n / 8 && nodes <= 8 * n, "{nodes} vs {n}");
        // exactly 2^k delay-d edges
        let dd = h2.graph.links().iter().filter(|l| l.delay == h2.d).count() as u64;
        prop_assert_eq!(dd, 1u64 << h2.k);
        // constant-ish average delay
        let stats = overlap_net::metrics::DelayStats::of(&h2.graph);
        prop_assert!(stats.d_ave < 16.0, "d_ave {}", stats.d_ave);
    }

    #[test]
    fn delay_models_respect_floors(
        dm in delay_model_strategy(),
        idx in 0u64..1000,
        seed in any::<u64>(),
    ) {
        prop_assert!(dm.sample(idx, seed) >= 1);
    }
}
