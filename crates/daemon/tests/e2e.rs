//! Daemon end-to-end tests: the determinism contract, the plan-cache
//! `apply_delta` path, pause/resume bit-identity, restart persistence,
//! and the HTTP round trip.

use overlap_core::{EngineKind, ScenarioSpec, Strategy};
use overlap_daemon::{Client, Daemon, DaemonConfig, Event, JsonlStore, MemStore, Status};
use overlap_model::{GuestSpec, ProgramKind};
use overlap_net::topology::linear_array;
use overlap_net::DelayModel;
use overlap_sim::faults::FaultPlan;
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(60);

fn spec(cells: u32, steps: u32) -> ScenarioSpec {
    let mut s = ScenarioSpec::new(
        GuestSpec::array(cells, ProgramKind::KvWorkload, 3, steps),
        linear_array(8, DelayModel::uniform(1, 6), 7),
    );
    s.strategy = Strategy::Overlap { c: 4.0 };
    s
}

/// The stats of an uninterrupted in-process run, as canonical JSON bytes.
fn sequential_bytes(spec: &ScenarioSpec) -> String {
    let ready = spec.ready().expect("valid spec");
    let outcome = ready.run_raw().expect("sequential run");
    serde_json::to_string(&outcome.stats).expect("stats serialize")
}

#[test]
fn eight_concurrent_submissions_are_bit_identical_to_sequential() {
    let spec = spec(16, 64);
    let baseline = sequential_bytes(&spec);
    let daemon = Daemon::start(DaemonConfig {
        workers: 4,
        store: Box::new(MemStore::new()),
    });
    let ids: Vec<u64> = (0..8)
        .map(|_| daemon.submit(spec.clone()).expect("submit"))
        .collect();
    for &id in &ids {
        assert_eq!(daemon.wait(id, WAIT), Some(Status::Done), "session {id}");
    }
    let runs = daemon.runs(None).unwrap();
    assert_eq!(runs.len(), 8);
    for r in &runs {
        let bytes = serde_json::to_string(&r.stats).unwrap();
        assert_eq!(bytes, baseline, "run {} diverged from sequential", r.run_id);
    }
    // Exactly one lowering; the other seven sessions hit the cache.
    let c = daemon.cache_stats();
    assert_eq!((c.misses, c.hits, c.entries), (1, 7, 1));
    assert_eq!(runs.iter().filter(|r| r.cache_hit).count(), 7);
    daemon.shutdown();
}

#[test]
fn pause_resume_mid_run_lands_on_the_same_result() {
    // Big enough to cross many 4096-unit checkpoints.
    let spec = spec(16, 4000);
    let baseline = sequential_bytes(&spec);
    let daemon = Daemon::start(DaemonConfig::default());
    let id = daemon.submit(spec).unwrap();
    // Pause before the run starts: the engine holds at its first
    // checkpoint with all simulation state intact.
    assert!(daemon.pause(id));
    let deadline = std::time::Instant::now() + WAIT;
    let paused_at = loop {
        let v = daemon.status(id).unwrap();
        assert!(!v.status.is_terminal(), "run must not finish while paused");
        if v.progress > 0 {
            break v.progress;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "never reached a checkpoint"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    // Held: progress must not advance while paused.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(daemon.status(id).unwrap().progress, paused_at);
    assert!(daemon.resume(id));
    assert_eq!(daemon.wait(id, WAIT), Some(Status::Done));
    let runs = daemon.runs(None).unwrap();
    assert_eq!(runs.len(), 1);
    assert_eq!(
        serde_json::to_string(&runs[0].stats).unwrap(),
        baseline,
        "paused-and-resumed run must be bit-identical to uninterrupted"
    );
    let events = daemon.events_since(id, 0, Duration::ZERO).unwrap();
    assert!(events.contains(&Event::Paused));
    assert!(events.contains(&Event::Resumed));
    daemon.shutdown();
}

#[test]
fn cancelled_runs_persist_nothing() {
    let spec = spec(16, 4000);
    let daemon = Daemon::start(DaemonConfig::default());
    let id = daemon.submit(spec).unwrap();
    daemon.pause(id);
    // Wait for the engine to hold at a checkpoint, then cancel.
    let deadline = std::time::Instant::now() + WAIT;
    while daemon.status(id).unwrap().progress == 0 {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(daemon.cancel(id));
    assert_eq!(daemon.wait(id, WAIT), Some(Status::Cancelled));
    assert_eq!(daemon.runs(None).unwrap().len(), 0);
    daemon.shutdown();
}

/// The cache-hit path applies fault/cost deltas to the cached base plan
/// (never re-lowers); differential check against a fresh lowering that
/// bakes the same faults in.
#[test]
fn cache_hit_apply_delta_matches_fresh_lowering() {
    let base = spec(16, 64);
    let mut faulted = base.clone();
    faulted.faults = Some(FaultPlan::new().link_down(2, 3, 40, 160));
    let fresh_faulted = sequential_bytes(&faulted);
    let fresh_base = sequential_bytes(&base);

    let daemon = Daemon::start(DaemonConfig::default());
    // 1: populate the cache with the base plan.
    let a = daemon.submit(base.clone()).unwrap();
    assert_eq!(daemon.wait(a, WAIT), Some(Status::Done));
    // 2: same plan key, faults applied via apply_delta on the cached plan.
    let b = daemon.submit(faulted.clone()).unwrap();
    assert_eq!(daemon.wait(b, WAIT), Some(Status::Done));
    // 3: base again — the inverse delta must have restored the plan.
    let c = daemon.submit(base).unwrap();
    assert_eq!(daemon.wait(c, WAIT), Some(Status::Done));

    let cache = daemon.cache_stats();
    assert_eq!(
        (cache.misses, cache.hits, cache.entries),
        (1, 2, 1),
        "fault variants must share the base plan's cache entry"
    );
    let runs = daemon.runs(None).unwrap();
    assert_eq!(runs.len(), 3);
    assert!(!runs[0].cache_hit);
    assert!(runs[1].cache_hit, "faulted run must ride the cached plan");
    assert_eq!(serde_json::to_string(&runs[0].stats).unwrap(), fresh_base);
    assert_eq!(
        serde_json::to_string(&runs[1].stats).unwrap(),
        fresh_faulted,
        "apply_delta on a cache hit must match a fresh lowering with faults"
    );
    assert_eq!(
        serde_json::to_string(&runs[2].stats).unwrap(),
        fresh_base,
        "inverse delta must restore the base plan exactly"
    );
    assert!(runs[1].stats.faults.retries > 0, "faults must have fired");
    daemon.shutdown();
}

#[test]
fn every_engine_matches_its_in_process_result() {
    let daemon = Daemon::start(DaemonConfig::default());
    for engine in [
        EngineKind::Event,
        EngineKind::Stepped,
        EngineKind::Lockstep,
        EngineKind::Sharded { threads: 2 },
    ] {
        let mut s = spec(16, 64);
        s.engine = engine;
        let baseline = sequential_bytes(&s);
        let id = daemon.submit(s).unwrap();
        assert_eq!(daemon.wait(id, WAIT), Some(Status::Done), "{engine:?}");
        let run = daemon.runs(None).unwrap().pop().unwrap();
        assert_eq!(
            serde_json::to_string(&run.stats).unwrap(),
            baseline,
            "{engine:?} daemon run must match in-process"
        );
    }
    // One guest/host/config ⇒ one plan shared by all four engines.
    assert_eq!(daemon.cache_stats().entries, 1);
    daemon.shutdown();
}

#[test]
fn invalid_scenarios_are_rejected_at_submission() {
    let daemon = Daemon::start(DaemonConfig::default());
    let mut zero_threads = spec(16, 16);
    zero_threads.engine = EngineKind::Sharded { threads: 0 };
    assert!(matches!(
        daemon.submit(zero_threads),
        Err(overlap_core::Error::InvalidConfig {
            option: "threads",
            ..
        })
    ));
    let mut traced_lockstep = spec(16, 16);
    traced_lockstep.trace = true;
    traced_lockstep.engine = EngineKind::Lockstep;
    assert!(matches!(
        daemon.submit(traced_lockstep),
        Err(overlap_core::Error::Unsupported { .. })
    ));
    daemon.shutdown();
}

#[test]
fn persisted_runs_are_queryable_after_restart() {
    let path =
        std::env::temp_dir().join(format!("overlap-daemon-e2e-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let hash;
    {
        let daemon = Daemon::start(DaemonConfig {
            workers: 2,
            store: Box::new(JsonlStore::open(&path).unwrap()),
        });
        let id = daemon.submit(spec(16, 32)).unwrap();
        assert_eq!(daemon.wait(id, WAIT), Some(Status::Done));
        hash = daemon.status(id).unwrap().plan_hash;
        daemon.shutdown();
    }
    // A new daemon process over the same store sees the old run.
    let daemon = Daemon::start(DaemonConfig {
        workers: 2,
        store: Box::new(JsonlStore::open(&path).unwrap()),
    });
    let old = daemon.runs(Some(hash)).unwrap();
    assert_eq!(old.len(), 1, "pre-restart run must be queryable");
    assert_eq!(old[0].plan_hash, hash);
    // And new runs of the same scenario append to the same history.
    let id = daemon.submit(spec(16, 32)).unwrap();
    assert_eq!(daemon.wait(id, WAIT), Some(Status::Done));
    assert_eq!(daemon.runs(Some(hash)).unwrap().len(), 2);
    assert_eq!(daemon.runs(Some(hash ^ 1)).unwrap().len(), 0);
    daemon.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn http_round_trip() {
    let daemon = Arc::new(Daemon::start(DaemonConfig::default()));
    let mut server = overlap_daemon::serve(Arc::clone(&daemon), "127.0.0.1:0").unwrap();
    let client = Client::new(server.addr().to_string());

    let spec16 = spec(16, 64);
    let baseline = sequential_bytes(&spec16);
    let id = client.submit(&spec16).expect("submit over HTTP");
    // Long-poll the stream to a terminal event.
    let mut next = 0;
    let mut done = None;
    while done.is_none() {
        let resp = client.events(id, next, 5_000).expect("events");
        next = resp.next;
        done = resp.events.iter().find_map(|e| match e {
            Event::Done { record } => Some(record.clone()),
            _ => None,
        });
    }
    let record = done.unwrap();
    assert_eq!(serde_json::to_string(&record.stats).unwrap(), baseline);
    let view = client.status(id).unwrap();
    assert_eq!(view.status, Status::Done);
    assert_eq!(view.plan_hash, record.plan_hash);
    assert_eq!(client.runs(Some(record.plan_hash)).unwrap().len(), 1);
    assert_eq!(client.cache().unwrap().misses, 1);
    // Typed validation errors surface as HTTP 400 with the message.
    let mut bad = spec(16, 16);
    bad.engine = EngineKind::Sharded { threads: 0 };
    match client.submit(&bad) {
        Err(overlap_daemon::ClientError::Api { status, message }) => {
            assert_eq!(status, 400);
            assert!(message.contains("threads"), "{message}");
        }
        other => panic!("expected 400, got {other:?}"),
    }
    client.shutdown().expect("shutdown");
    assert!(daemon.is_shut_down());
    server.stop();
}
