//! Simulation-as-a-service for the OVERLAP reproduction.
//!
//! The paper's machinery exists to serve *many* guest computations over
//! a shared host network; this crate makes that literal. A [`Daemon`]
//! accepts serialized scenarios ([`overlap_core::ScenarioSpec`]), runs
//! them concurrently on a worker pool, and:
//!
//! * lowers each distinct `(guest, host, assignment, config)` **once**
//!   into an owned `ExecPlan` held in a [`PlanCache`] — fault and
//!   compute-cost variants are applied to the cached plan via
//!   `ExecPlan::apply_delta` on cache hits, never re-lowered;
//! * supports cooperative **pause / resume / cancel** per session
//!   through `overlap_sim::RunControl` checkpoints, with the guarantee
//!   that a paused-and-resumed run is bit-identical to an uninterrupted
//!   one;
//! * **streams** progress and stall-trace [`Event`]s to long-polling
//!   subscribers;
//! * **persists** completed runs as [`RunRecord`]s in a pluggable
//!   [`RunStore`] ([`MemStore`] or [`JsonlStore`]), queryable across
//!   daemon restarts by plan hash.
//!
//! Determinism contract: the same scenario submitted N times
//! concurrently produces results byte-identical to a sequential run —
//! engines are deterministic, plans are immutable while running (deltas
//! are applied and inverted under the cache's per-key lock), and control
//! checkpoints never perturb the schedule.
//!
//! The HTTP front end ([`serve`]) speaks minimal HTTP/1.1 over
//! `std::net` (the workspace builds offline; no async runtime), and
//! [`Client`] is the matching blocking client used by `overlap-cli`'s
//! `serve` / `submit` / `watch` / `runs` subcommands.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod daemon;
pub mod http;
pub mod store;
pub mod wire;

pub use cache::{CacheStats, PlanCache};
pub use client::{Client, ClientError};
pub use daemon::{Daemon, DaemonConfig, Event, SessionView, Status};
pub use http::{serve, Server};
pub use store::{JsonlStore, MemStore, RunRecord, RunStore};
