//! The server-side `ExecPlan` cache.
//!
//! Lowering a scenario — placement, routing tables, interned hot tables —
//! is the expensive, shareable part of a run (`BENCH_plan.json` measures
//! the 5–8× reuse win). The daemon lowers each distinct
//! `(guest, host, assignment, config)` exactly once and keeps the owned
//! plan (`ExecPlan<'static>`) plus the guest's unit-delay
//! [`ReferenceTrace`] behind the canonical scenario key from
//! [`ScenarioSpec::plan_key`]. Fault and compute-cost variants are
//! applied to the cached plan with `ExecPlan::apply_delta` — which is
//! differentially pinned bit-identical to a fresh lowering — and undone
//! with the returned inverse after the run, so the cached entry always
//! holds the *base* plan.
//!
//! Concurrency: the map lock is only held for lookups and empty-slot
//! insertion; lowering happens under the per-key slot lock, so a slow
//! lowering never blocks other keys. Runs on the same key serialize on
//! the slot lock (deltas mutate the plan in place); runs on different
//! keys proceed in parallel.

use overlap_core::{Error, ScenarioSpec};
use overlap_model::{ReferenceRun, ReferenceTrace};
use overlap_sim::ExecPlan;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A populated cache slot: the base plan (no faults, no cost overrides)
/// and the reference trace every run of this scenario validates against.
struct Entry {
    plan: ExecPlan<'static>,
    reference: ReferenceTrace,
}

/// One key's slot. Inserted empty under the map lock; populated (lowered)
/// by the first arrival under the slot lock, so concurrent first arrivals
/// lower exactly once and later arrivals block only on this key.
type Slot = Arc<Mutex<Option<Entry>>>;

/// Shared plan cache with hit/miss counters.
#[derive(Default)]
pub struct PlanCache {
    slots: Mutex<HashMap<String, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Cache occupancy and traffic, as reported by `GET /v1/cache`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups that found the key already present (lowering skipped).
    pub hits: u64,
    /// Lookups that had to lower the scenario.
    pub misses: u64,
    /// Distinct plans currently cached.
    pub entries: u64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::SeqCst),
            misses: self.misses.load(Ordering::SeqCst),
            entries: self.slots.lock().unwrap().len() as u64,
        }
    }

    /// Run `f` with the cached plan for `key`, lowering `spec` first if
    /// this is the key's first arrival. `f` receives the mutable base
    /// plan, the scenario's reference trace, and whether this lookup was
    /// a cache hit; it must leave the plan in its base state (apply the
    /// inverse of every delta it applied).
    pub fn with_plan<R>(
        &self,
        key: &str,
        spec: &ScenarioSpec,
        f: impl FnOnce(&mut ExecPlan<'static>, &ReferenceTrace, bool) -> R,
    ) -> Result<R, Error> {
        let (slot, hit) = {
            let mut map = self.slots.lock().unwrap();
            match map.get(key) {
                Some(slot) => (Arc::clone(slot), true),
                None => {
                    let slot: Slot = Arc::new(Mutex::new(None));
                    map.insert(key.to_string(), Arc::clone(&slot));
                    (slot, false)
                }
            }
        };
        if hit {
            self.hits.fetch_add(1, Ordering::SeqCst);
        } else {
            self.misses.fetch_add(1, Ordering::SeqCst);
        }
        let mut guard = slot.lock().unwrap();
        if guard.is_none() {
            let ready = spec.ready()?;
            let assignment = ready.assignment().clone();
            let plan = ExecPlan::build_owned(
                spec.guest.clone(),
                spec.host.clone(),
                assignment,
                spec.config,
            )
            .map_err(Error::Run)?;
            let reference = ReferenceRun::execute(&spec.guest);
            *guard = Some(Entry { plan, reference });
        }
        let entry = guard.as_mut().expect("slot populated above");
        Ok(f(&mut entry.plan, &entry.reference, hit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlap_model::{GuestSpec, ProgramKind};
    use overlap_net::topology::linear_array;
    use overlap_net::DelayModel;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new(
            GuestSpec::array(12, ProgramKind::KvWorkload, 3, 8),
            linear_array(4, DelayModel::uniform(1, 5), 7),
        )
    }

    #[test]
    fn second_lookup_is_a_hit_and_reuses_the_plan() {
        let cache = PlanCache::new();
        let spec = spec();
        let key = spec.plan_key().unwrap();
        let fp1 = cache
            .with_plan(&key, &spec, |plan, _, hit| {
                assert!(!hit);
                plan.fingerprint()
            })
            .unwrap();
        let fp2 = cache
            .with_plan(&key, &spec, |plan, _, hit| {
                assert!(hit);
                plan.fingerprint()
            })
            .unwrap();
        assert_eq!(fp1, fp2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_keys_get_distinct_slots() {
        let cache = PlanCache::new();
        let a = spec();
        let mut b = spec();
        b.guest.steps += 1;
        cache
            .with_plan(&a.plan_key().unwrap(), &a, |_, _, _| ())
            .unwrap();
        cache
            .with_plan(&b.plan_key().unwrap(), &b, |_, _, _| ())
            .unwrap();
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().misses, 2);
    }
}
