//! A minimal HTTP/1.1 front end over `std::net` (the toolchain is
//! offline — no async runtime; one short-lived thread per connection,
//! `Connection: close` semantics).
//!
//! Routes (all request/response bodies are JSON):
//!
//! | method | path | body → response |
//! |---|---|---|
//! | POST | `/v1/scenarios` | `ScenarioSpec` → `{"session": id}` |
//! | GET  | `/v1/sessions/{id}` | → `SessionView` |
//! | POST | `/v1/sessions/{id}/pause` | → `{"ok": true}` |
//! | POST | `/v1/sessions/{id}/resume` | → `{"ok": true}` |
//! | POST | `/v1/sessions/{id}/cancel` | → `{"ok": true}` |
//! | GET  | `/v1/sessions/{id}/events?since=N&wait_ms=M` | → `{"events": […], "next": n}` (long-poll) |
//! | GET  | `/v1/runs?hash=H` | → `{"runs": […]}` |
//! | GET  | `/v1/cache` | → `CacheStats` |
//! | POST | `/v1/shutdown` | → `{"ok": true}`, then the daemon and server stop |
//!
//! Invalid scenarios come back as HTTP 400 with `{"error": …}` carrying
//! the typed builder error's message; unknown sessions are 404.

use crate::daemon::Daemon;
use crate::wire::{ErrorResponse, EventsResponse, OkResponse, RunsResponse, SubmitResponse};
use overlap_core::ScenarioSpec;
use serde::Serialize;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Longest long-poll wait a client may request.
const MAX_WAIT_MS: u64 = 30_000;

/// A running HTTP server. Stops when [`stop`](Server::stop) is called,
/// a client POSTs `/v1/shutdown`, or the value is dropped.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// The bound address (useful with `addr = "127.0.0.1:0"`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept loop. The daemon
    /// itself keeps running (shut it down separately). Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind `addr` and serve `daemon` until stopped.
pub fn serve(daemon: Arc<Daemon>, addr: &str) -> io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let loop_stop = Arc::clone(&stop);
    let accept = std::thread::Builder::new()
        .name("overlap-daemon-http".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if loop_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let daemon = Arc::clone(&daemon);
                let stop = Arc::clone(&loop_stop);
                let _ = std::thread::Builder::new()
                    .name("overlap-daemon-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(stream, &daemon, &stop);
                    });
            }
        })?;
    Ok(Server {
        addr,
        stop,
        accept: Some(accept),
    })
}

fn handle_connection(mut stream: TcpStream, daemon: &Daemon, stop: &AtomicBool) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let (method, path, body) = match read_request(&mut stream) {
        Ok(req) => req,
        Err(e) => {
            return respond(
                &mut stream,
                400,
                &ErrorResponse {
                    error: format!("bad request: {e}"),
                },
            );
        }
    };
    let (raw_path, query) = match path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (path.as_str(), ""),
    };
    let parts: Vec<&str> = raw_path.trim_matches('/').split('/').collect();
    match (method.as_str(), parts.as_slice()) {
        ("POST", ["v1", "scenarios"]) => match serde_json::from_str::<ScenarioSpec>(&body) {
            Ok(spec) => match daemon.submit(spec) {
                Ok(session) => respond(&mut stream, 200, &SubmitResponse { session }),
                Err(e) => respond(
                    &mut stream,
                    400,
                    &ErrorResponse {
                        error: e.to_string(),
                    },
                ),
            },
            Err(e) => respond(
                &mut stream,
                400,
                &ErrorResponse {
                    error: format!("malformed scenario: {e}"),
                },
            ),
        },
        ("GET", ["v1", "sessions", id]) => {
            match id.parse::<u64>().ok().and_then(|i| daemon.status(i)) {
                Some(view) => respond(&mut stream, 200, &view),
                None => not_found(&mut stream),
            }
        }
        ("POST", ["v1", "sessions", id, verb @ ("pause" | "resume" | "cancel")]) => {
            let ok = id.parse::<u64>().is_ok_and(|i| match *verb {
                "pause" => daemon.pause(i),
                "resume" => daemon.resume(i),
                _ => daemon.cancel(i),
            });
            if ok {
                respond(&mut stream, 200, &OkResponse { ok: true })
            } else {
                not_found(&mut stream)
            }
        }
        ("GET", ["v1", "sessions", id, "events"]) => {
            let since = query_u64(query, "since").unwrap_or(0) as usize;
            let wait =
                Duration::from_millis(query_u64(query, "wait_ms").unwrap_or(0).min(MAX_WAIT_MS));
            match id
                .parse::<u64>()
                .ok()
                .and_then(|i| daemon.events_since(i, since, wait))
            {
                Some(events) => {
                    let next = since as u64 + events.len() as u64;
                    respond(&mut stream, 200, &EventsResponse { events, next })
                }
                None => not_found(&mut stream),
            }
        }
        ("GET", ["v1", "runs"]) => match daemon.runs(query_u64(query, "hash")) {
            Ok(runs) => respond(&mut stream, 200, &RunsResponse { runs }),
            Err(e) => respond(
                &mut stream,
                500,
                &ErrorResponse {
                    error: format!("store: {e}"),
                },
            ),
        },
        ("GET", ["v1", "cache"]) => respond(&mut stream, 200, &daemon.cache_stats()),
        ("POST", ["v1", "shutdown"]) => {
            let r = respond(&mut stream, 200, &OkResponse { ok: true });
            stop.store(true, Ordering::SeqCst);
            daemon.shutdown();
            // Unblock our own accept loop.
            if let Ok(addr) = stream.local_addr() {
                let _ = TcpStream::connect(addr);
            }
            r
        }
        _ => not_found(&mut stream),
    }
}

/// Parse one request: `(method, path-with-query, body)`.
fn read_request(stream: &mut TcpStream) -> io::Result<(String, String, String)> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut head = line.split_whitespace();
    let (method, path) = match (head.next(), head.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed request line",
            ))
        }
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not UTF-8"))?;
    Ok((method, path, body))
}

fn query_u64(query: &str, name: &str) -> Option<u64> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == name).then(|| v.parse().ok()).flatten()
    })
}

fn respond<T: Serialize>(stream: &mut TcpStream, status: u16, body: &T) -> io::Result<()> {
    let body = serde_json::to_string(body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Internal Server Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

fn not_found(stream: &mut TcpStream) -> io::Result<()> {
    respond(
        stream,
        404,
        &ErrorResponse {
            error: "not found".into(),
        },
    )
}
