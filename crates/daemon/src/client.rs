//! A small blocking client for the daemon's HTTP API (used by the
//! `overlap-cli` client subcommands and the integration tests).

use crate::cache::CacheStats;
use crate::daemon::SessionView;
use crate::store::RunRecord;
use crate::wire::{ErrorResponse, EventsResponse, OkResponse, RunsResponse, SubmitResponse};
use overlap_core::ScenarioSpec;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not reach or talk to the daemon.
    Io(std::io::Error),
    /// The daemon answered with a non-200 status.
    Api {
        /// HTTP status code.
        status: u16,
        /// The daemon's error message.
        message: String,
    },
    /// The response body did not parse.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "daemon unreachable: {e}"),
            ClientError::Api { status, message } => write!(f, "daemon error ({status}): {message}"),
            ClientError::Protocol(msg) => write!(f, "bad daemon response: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Blocking HTTP client bound to one daemon address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for the daemon at `addr` (e.g. `"127.0.0.1:7341"`).
    pub fn new(addr: impl Into<String>) -> Self {
        Self { addr: addr.into() }
    }

    /// Submit a scenario; returns its session id.
    pub fn submit(&self, spec: &ScenarioSpec) -> Result<u64, ClientError> {
        let body = serde_json::to_string(spec).map_err(|e| ClientError::Protocol(e.to_string()))?;
        let resp: SubmitResponse = self.call("POST", "/v1/scenarios", Some(&body))?;
        Ok(resp.session)
    }

    /// Current view of a session.
    pub fn status(&self, session: u64) -> Result<SessionView, ClientError> {
        self.call("GET", &format!("/v1/sessions/{session}"), None)
    }

    /// Pause a running session at its next checkpoint.
    pub fn pause(&self, session: u64) -> Result<(), ClientError> {
        let _: OkResponse = self.call("POST", &format!("/v1/sessions/{session}/pause"), None)?;
        Ok(())
    }

    /// Resume a paused session.
    pub fn resume(&self, session: u64) -> Result<(), ClientError> {
        let _: OkResponse = self.call("POST", &format!("/v1/sessions/{session}/resume"), None)?;
        Ok(())
    }

    /// Cancel a session.
    pub fn cancel(&self, session: u64) -> Result<(), ClientError> {
        let _: OkResponse = self.call("POST", &format!("/v1/sessions/{session}/cancel"), None)?;
        Ok(())
    }

    /// Events `since..` of a session, long-polling up to `wait_ms` for
    /// at least one new event.
    pub fn events(
        &self,
        session: u64,
        since: u64,
        wait_ms: u64,
    ) -> Result<EventsResponse, ClientError> {
        self.call(
            "GET",
            &format!("/v1/sessions/{session}/events?since={since}&wait_ms={wait_ms}"),
            None,
        )
    }

    /// Persisted runs, optionally filtered to one plan hash.
    pub fn runs(&self, plan_hash: Option<u64>) -> Result<Vec<RunRecord>, ClientError> {
        let path = match plan_hash {
            Some(h) => format!("/v1/runs?hash={h}"),
            None => "/v1/runs".into(),
        };
        let resp: RunsResponse = self.call("GET", &path, None)?;
        Ok(resp.runs)
    }

    /// Plan-cache counters.
    pub fn cache(&self) -> Result<CacheStats, ClientError> {
        self.call("GET", "/v1/cache", None)
    }

    /// Ask the daemon (and its HTTP server) to shut down.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        let _: OkResponse = self.call("POST", "/v1/shutdown", None)?;
        Ok(())
    }

    fn call<T: serde::de::DeserializeOwned>(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<T, ClientError> {
        let (status, text) = self.request(method, path, body)?;
        if status == 200 {
            serde_json::from_str(&text).map_err(|e| ClientError::Protocol(e.to_string()))
        } else {
            let message = serde_json::from_str::<ErrorResponse>(&text)
                .map(|e| e.error)
                .unwrap_or(text);
            Err(ClientError::Api { status, message })
        }
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), ClientError> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        let body = body.unwrap_or("");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            self.addr,
            body.len()
        )?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad status line: {status_line:?}")))?;
        let mut content_length = None;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse::<usize>().ok();
                }
            }
        }
        let text = match content_length {
            Some(n) => {
                let mut buf = vec![0u8; n];
                reader.read_exact(&mut buf)?;
                String::from_utf8(buf)
                    .map_err(|_| ClientError::Protocol("body is not UTF-8".into()))?
            }
            None => {
                let mut buf = String::new();
                reader.read_to_string(&mut buf)?;
                buf
            }
        };
        Ok((status, text))
    }
}
