//! The daemon proper: session registry, worker pool, and run lifecycle.
//!
//! A submission is validated up front (the same builder matrix as the
//! in-process API — invalid scenarios are rejected at the door, not at
//! run time), keyed for the plan cache, and queued. Worker threads pull
//! sessions off the queue, resolve the plan through [`PlanCache`]
//! (lowering at most once per key), apply the session's fault /
//! compute-cost deltas via `ExecPlan::apply_delta`, execute on the
//! requested engine under a [`RunControl`], validate against the cached
//! reference trace, persist a [`RunRecord`], and stream [`Event`]s to
//! subscribers.
//!
//! Session lifecycle: `Queued → Running ⇄ Paused → Done | Failed |
//! Cancelled`. Pause and cancel are cooperative — the engine observes
//! the control only at checkpoint boundaries, so a paused run holds all
//! simulation state intact and a resumed run is bit-identical to an
//! uninterrupted one. Nothing is persisted from a cancelled run.

use crate::cache::{CacheStats, PlanCache};
use crate::store::{MemStore, RunRecord, RunStore};
use overlap_core::{EngineKind, Error, ScenarioSpec};
use overlap_sim::engine::{Engine, RunError, RunOutcome};
use overlap_sim::trace::TraceConfig;
use overlap_sim::validate::validate_run;
use overlap_sim::{
    run_lockstep_controlled, run_sharded_controlled, run_stepped_controlled, ExecPlan, PlanDelta,
    RunControl,
};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Emit a `Progress` event every this many control checkpoints (the
/// progress *counter* still updates at every checkpoint; this only
/// throttles the event stream).
const PROGRESS_EVERY: u64 = 16;

/// A session's observable lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// Accepted, waiting for a worker.
    Queued,
    /// Executing on a worker.
    Running,
    /// Paused at a checkpoint; all simulation state held intact.
    Paused,
    /// Completed; a [`RunRecord`] was persisted.
    Done,
    /// The run errored; see the `Failed` event for the message.
    Failed,
    /// Cancelled before completion; nothing was persisted.
    Cancelled,
}

impl Status {
    /// Terminal states never change again.
    pub fn is_terminal(self) -> bool {
        matches!(self, Status::Done | Status::Failed | Status::Cancelled)
    }
}

/// One entry of a session's event stream, in order of occurrence.
///
/// `Done` carries the full persisted record and dominates the enum's
/// size; events live briefly in per-session logs, so the variance is
/// cheaper than boxing every terminal event.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// The session was accepted and queued.
    Queued,
    /// A worker began executing; `cache_hit` tells whether the plan came
    /// out of the cache or was lowered for this session.
    Started {
        /// Plan-cache verdict for this session.
        cache_hit: bool,
    },
    /// Periodic progress (dispatch units completed so far).
    Progress {
        /// Dispatch units completed.
        done: u64,
    },
    /// The run reached a checkpoint while a pause was requested.
    Paused,
    /// The run resumed.
    Resumed,
    /// Stall-attribution totals (traced runs only), streamed before
    /// `Done` so subscribers see where the ticks went.
    Stalls {
        /// Category totals over all copies.
        totals: overlap_sim::trace::StallBreakdown,
    },
    /// The run completed; the record has been persisted.
    Done {
        /// The persisted record.
        record: RunRecord,
    },
    /// The run errored.
    Failed {
        /// Human-readable error.
        error: String,
    },
    /// The run was cancelled after `at` dispatch units.
    Cancelled {
        /// Dispatch units completed when the cancel was observed.
        at: u64,
    },
}

/// Point-in-time view of a session, as returned by `GET /v1/sessions/:id`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionView {
    /// Session id.
    pub id: u64,
    /// Lifecycle state.
    pub status: Status,
    /// Dispatch units completed, as last published by the engine.
    pub progress: u64,
    /// FNV-1a hash of the session's plan-cache key.
    pub plan_hash: u64,
    /// Events recorded so far (poll `events_since` to read them).
    pub events: u64,
}

struct SessionState {
    status: Status,
    events: Vec<Event>,
}

/// The part of a session shared with the control's progress sink (the
/// sink closure is fixed at [`RunControl`] construction, so it captures
/// this `Arc` rather than the session that owns the control).
struct Shared {
    state: Mutex<SessionState>,
    cv: Condvar,
}

impl Shared {
    fn push(&self, event: Event) {
        let mut st = self.state.lock().unwrap();
        st.events.push(event);
        self.cv.notify_all();
    }

    fn set_status(&self, status: Status) {
        let mut st = self.state.lock().unwrap();
        st.status = status;
        self.cv.notify_all();
    }

    fn finish(&self, status: Status, event: Event) {
        let mut st = self.state.lock().unwrap();
        st.status = status;
        st.events.push(event);
        self.cv.notify_all();
    }
}

struct Session {
    id: u64,
    spec: ScenarioSpec,
    key: String,
    hash: u64,
    control: Arc<RunControl>,
    shared: Arc<Shared>,
}

impl std::ops::Deref for Session {
    type Target = Shared;

    fn deref(&self) -> &Shared {
        &self.shared
    }
}

/// Daemon construction options.
pub struct DaemonConfig {
    /// Worker threads executing simulations (≥ 1).
    pub workers: usize,
    /// Where completed runs are persisted.
    pub store: Box<dyn RunStore>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            store: Box::new(MemStore::new()),
        }
    }
}

struct Inner {
    cache: PlanCache,
    store: Box<dyn RunStore>,
    sessions: Mutex<HashMap<u64, Arc<Session>>>,
    queue: Mutex<VecDeque<u64>>,
    queue_cv: Condvar,
    next_session: AtomicU64,
    next_run: AtomicU64,
    shutdown: AtomicBool,
}

/// The simulation service. Cheap to share (`Arc<Daemon>`); all methods
/// take `&self`.
pub struct Daemon {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Daemon {
    /// Start a daemon with `config.workers` worker threads.
    pub fn start(config: DaemonConfig) -> Self {
        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            cache: PlanCache::new(),
            store: config.store,
            sessions: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            next_session: AtomicU64::new(1),
            next_run: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("overlap-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Self {
            inner,
            workers: Mutex::new(handles),
        }
    }

    /// Validate and enqueue a scenario. Returns the session id, or the
    /// same typed error the in-process builder would produce (invalid
    /// engine config, unsupported feature × engine combination, …).
    pub fn submit(&self, spec: ScenarioSpec) -> Result<u64, Error> {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(Error::Config("daemon is shutting down".into()));
        }
        // Admission: placement + full validation matrix. The key is the
        // canonical lowering input; the hash is its display form.
        let key = spec.plan_key()?;
        let hash = overlap_sim::fnv1a(key.as_bytes());
        let id = self.inner.next_session.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::new(Shared {
            state: Mutex::new(SessionState {
                status: Status::Queued,
                events: vec![Event::Queued],
            }),
            cv: Condvar::new(),
        });
        // Every engine checkpoint lands here; every PROGRESS_EVERY-th one
        // becomes a streamed Progress event.
        let sink_shared = Arc::clone(&shared);
        let checkpoints = AtomicU64::new(0);
        let control = RunControl::with_progress_sink(move |done| {
            if checkpoints
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(PROGRESS_EVERY)
            {
                sink_shared.push(Event::Progress { done });
            }
        });
        let session = Arc::new(Session {
            id,
            spec,
            key,
            hash,
            control: Arc::new(control),
            shared,
        });
        self.inner.sessions.lock().unwrap().insert(id, session);
        self.inner.queue.lock().unwrap().push_back(id);
        self.inner.queue_cv.notify_one();
        Ok(id)
    }

    fn session(&self, id: u64) -> Option<Arc<Session>> {
        self.inner.sessions.lock().unwrap().get(&id).cloned()
    }

    /// Current view of a session, `None` for unknown ids.
    pub fn status(&self, id: u64) -> Option<SessionView> {
        let s = self.session(id)?;
        let st = s.shared.state.lock().unwrap();
        Some(SessionView {
            id,
            status: st.status,
            progress: s.control.progress(),
            plan_hash: s.hash,
            events: st.events.len() as u64,
        })
    }

    /// Request a pause; the run holds at its next checkpoint. Returns
    /// false for unknown ids; no-op on terminal sessions.
    pub fn pause(&self, id: u64) -> bool {
        let Some(s) = self.session(id) else {
            return false;
        };
        let mut st = s.shared.state.lock().unwrap();
        if !st.status.is_terminal() && !s.control.is_paused() {
            s.control.pause();
            st.events.push(Event::Paused);
            if st.status == Status::Running {
                st.status = Status::Paused;
            }
            s.cv.notify_all();
        }
        true
    }

    /// Resume a paused session. Returns false for unknown ids.
    pub fn resume(&self, id: u64) -> bool {
        let Some(s) = self.session(id) else {
            return false;
        };
        let mut st = s.shared.state.lock().unwrap();
        if !st.status.is_terminal() && s.control.is_paused() {
            s.control.resume();
            st.events.push(Event::Resumed);
            if st.status == Status::Paused {
                st.status = Status::Running;
            }
            s.cv.notify_all();
        }
        true
    }

    /// Cancel a queued or running session (wakes it first if paused).
    /// Returns false for unknown ids; no-op on terminal sessions.
    pub fn cancel(&self, id: u64) -> bool {
        let Some(s) = self.session(id) else {
            return false;
        };
        s.control.cancel();
        true
    }

    /// Events `since..` of a session, blocking up to `wait` for at least
    /// one new event (long-poll). Returns `None` for unknown ids; an
    /// empty vec on timeout or when the session is terminal with no
    /// further events.
    pub fn events_since(&self, id: u64, since: usize, wait: Duration) -> Option<Vec<Event>> {
        let s = self.session(id)?;
        let mut st = s.shared.state.lock().unwrap();
        if st.events.len() <= since && !st.status.is_terminal() && !wait.is_zero() {
            let (guard, _timeout) =
                s.cv.wait_timeout_while(st, wait, |st| {
                    st.events.len() <= since && !st.status.is_terminal()
                })
                .unwrap();
            st = guard;
        }
        Some(st.events.get(since..).unwrap_or_default().to_vec())
    }

    /// Block until the session reaches a terminal state (up to `wait`).
    /// Returns the final status, or the current one on timeout.
    pub fn wait(&self, id: u64, wait: Duration) -> Option<Status> {
        let s = self.session(id)?;
        let st = s.shared.state.lock().unwrap();
        let (st, _timeout) =
            s.cv.wait_timeout_while(st, wait, |st| !st.status.is_terminal())
                .unwrap();
        Some(st.status)
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// Persisted runs, oldest first, optionally filtered to one plan
    /// hash (runs of the same lowered scenario across engines and
    /// daemon restarts).
    pub fn runs(&self, plan_hash: Option<u64>) -> std::io::Result<Vec<RunRecord>> {
        let mut all = self.inner.store.load_all()?;
        if let Some(h) = plan_hash {
            all.retain(|r| r.plan_hash == h);
        }
        Ok(all)
    }

    /// Has [`shutdown`](Self::shutdown) been called (e.g. via
    /// `POST /v1/shutdown`)?
    pub fn is_shut_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Stop accepting work, cancel in-flight sessions, and join the
    /// workers. Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for s in self.inner.sessions.lock().unwrap().values() {
            s.control.cancel();
        }
        self.inner.queue_cv.notify_all();
        for h in self.workers.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let id = {
            let mut q = inner.queue.lock().unwrap();
            loop {
                if let Some(id) = q.pop_front() {
                    break id;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = inner.queue_cv.wait(q).unwrap();
            }
        };
        let Some(session) = inner.sessions.lock().unwrap().get(&id).cloned() else {
            continue;
        };
        if session.control.is_cancelled() {
            session.finish(Status::Cancelled, Event::Cancelled { at: 0 });
            continue;
        }
        run_session(inner, &session);
    }
}

/// Execute one session end-to-end: plan resolution, delta application,
/// engine dispatch, validation, persistence, event emission.
fn run_session(inner: &Inner, session: &Arc<Session>) {
    session.set_status(Status::Running);
    let mut was_hit = false;
    let result: Result<(RunOutcome, u64), Error> = inner
        .cache
        .with_plan(&session.key, &session.spec, |plan, reference, hit| {
            was_hit = hit;
            session.push(Event::Started { cache_hit: hit });
            let outcome = run_on_plan(session, plan)?;
            // Validate inside the slot lock: the reference belongs to
            // the entry.
            let errors = validate_run(reference, &outcome);
            Ok((outcome, errors.len() as u64))
        })
        .and_then(|r| r);
    match result {
        Ok((outcome, mismatches)) => {
            let record = RunRecord {
                run_id: inner.next_run.fetch_add(1, Ordering::SeqCst),
                session: session.id,
                plan_hash: session.hash,
                cache_hit: was_hit,
                engine: engine_label(session.spec.engine),
                strategy: session.spec.strategy.label(),
                host: session.spec.host.name().to_string(),
                stats: outcome.stats,
                validated: mismatches == 0,
                mismatches,
                stalls: outcome.trace.as_ref().map(|t| t.totals),
            };
            if let Some(t) = &outcome.trace {
                session.push(Event::Stalls { totals: t.totals });
            }
            match inner.store.append(&record) {
                Ok(()) => session.finish(Status::Done, Event::Done { record }),
                Err(e) => session.finish(
                    Status::Failed,
                    Event::Failed {
                        error: format!("run completed but persisting failed: {e}"),
                    },
                ),
            }
        }
        Err(Error::Run(RunError::Cancelled { at })) => {
            session.finish(Status::Cancelled, Event::Cancelled { at });
        }
        Err(e) => {
            session.finish(
                Status::Failed,
                Event::Failed {
                    error: e.to_string(),
                },
            );
        }
    }
}

/// Apply the session's deltas to the cached base plan, run on the
/// session's engine under its control, and restore the base plan.
fn run_on_plan(session: &Arc<Session>, plan: &mut ExecPlan<'static>) -> Result<RunOutcome, Error> {
    let spec = &session.spec;
    // Cache-hit variants go through apply_delta — never re-lowered. Each
    // receipt's inverse restores the base plan afterwards (also on
    // error), keeping the entry canonical for the next session.
    let mut inverses = Vec::new();
    let mut apply = |plan: &mut ExecPlan<'static>, delta| -> Result<(), Error> {
        let receipt = plan.apply_delta(delta).map_err(Error::Run)?;
        inverses.push(receipt.inverse);
        Ok(())
    };
    let mut staged: Result<(), Error> = Ok(());
    if let Some(faults) = &spec.faults {
        staged = apply(plan, PlanDelta::Faults(Some(faults.clone())));
    }
    if staged.is_ok() {
        if let Some(costs) = &spec.compute_costs {
            staged = apply(plan, PlanDelta::ComputeCosts(Some(costs.clone())));
        }
    }
    let result = match staged {
        Ok(()) => dispatch(session, plan),
        Err(e) => Err(e),
    };
    for inverse in inverses.into_iter().rev() {
        plan.apply_delta(inverse)
            .expect("inverse delta must re-apply");
    }
    result
}

fn dispatch(session: &Arc<Session>, plan: &ExecPlan<'static>) -> Result<RunOutcome, Error> {
    let spec = &session.spec;
    let ctl = &*session.control;
    let out = match spec.engine {
        EngineKind::Event => {
            let eng = Engine::from_plan(plan).with_control(ctl);
            if spec.trace {
                eng.run_traced(TraceConfig::default())
            } else {
                eng.run()
            }
        }
        EngineKind::Stepped => run_stepped_controlled(plan, Some(ctl)),
        EngineKind::Lockstep => run_lockstep_controlled(plan, Some(ctl)),
        EngineKind::Sharded { threads } => {
            run_sharded_controlled(plan, threads, overlap_sim::Partition::DelayCut, Some(ctl))
        }
    };
    out.map_err(Error::Run)
}

fn engine_label(kind: EngineKind) -> String {
    match kind {
        EngineKind::Event => "event".into(),
        EngineKind::Stepped => "stepped".into(),
        EngineKind::Lockstep => "lockstep".into(),
        EngineKind::Sharded { threads } => format!("sharded({threads})"),
    }
}
