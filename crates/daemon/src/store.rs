//! Pluggable persistence for completed runs.
//!
//! Every finished simulation produces one [`RunRecord`] — stats,
//! makespan, validation verdict, stall totals when traced, and the plan
//! hash that ties it back to its cache entry — appended to a
//! [`RunStore`]. The daemon ships two stores behind the trait:
//! [`MemStore`] (tests, ephemeral serving) and [`JsonlStore`] (one JSON
//! object per line; survives daemon restarts, greppable, trivially
//! ingestible). A SQLite store slots in behind the same trait when the
//! toolchain gains the dependency.

use overlap_sim::stats::RunStats;
use overlap_sim::trace::StallBreakdown;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One completed run, as persisted and as returned by `GET /v1/runs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Monotone id assigned by the daemon at completion time.
    pub run_id: u64,
    /// The session that produced this run.
    pub session: u64,
    /// FNV-1a hash of the plan-cache key — groups runs of the same
    /// lowered scenario across engines, faults, and daemon restarts.
    pub plan_hash: u64,
    /// Whether the plan came out of the cache (`apply_delta` path) or
    /// was lowered fresh for this run.
    pub cache_hit: bool,
    /// Engine label (`"event"`, `"stepped"`, `"lockstep"`,
    /// `"sharded(t)"`).
    pub engine: String,
    /// Placement strategy label (see `Strategy::label`).
    pub strategy: String,
    /// Host graph name.
    pub host: String,
    /// Full engine statistics (makespan, slowdown, traffic, memory and
    /// fault counters).
    pub stats: RunStats,
    /// Did every database copy match the unit-delay reference?
    pub validated: bool,
    /// Number of mismatching copies (0 when `validated`).
    pub mismatches: u64,
    /// Stall-attribution totals when the run was traced.
    #[serde(default)]
    pub stalls: Option<StallBreakdown>,
}

/// Where completed runs go. Implementations must be safe to call from
/// many worker threads.
pub trait RunStore: Send + Sync {
    /// Persist one completed run.
    fn append(&self, record: &RunRecord) -> io::Result<()>;
    /// All persisted runs, oldest first (including runs persisted by
    /// previous daemon processes, for durable stores).
    fn load_all(&self) -> io::Result<Vec<RunRecord>>;
}

/// In-memory store: fast, gone when the daemon exits.
#[derive(Default)]
pub struct MemStore {
    records: Mutex<Vec<RunRecord>>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RunStore for MemStore {
    fn append(&self, record: &RunRecord) -> io::Result<()> {
        self.records.lock().unwrap().push(record.clone());
        Ok(())
    }

    fn load_all(&self) -> io::Result<Vec<RunRecord>> {
        Ok(self.records.lock().unwrap().clone())
    }
}

/// JSON-lines store: one `RunRecord` object per line, appended and
/// flushed per run, re-read from disk on every query so records written
/// by earlier daemon processes stay visible.
pub struct JsonlStore {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

impl JsonlStore {
    /// Open (or create) the store at `path`.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self {
            path,
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// The backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl RunStore for JsonlStore {
    fn append(&self, record: &RunRecord) -> io::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut w = self.writer.lock().unwrap();
        writeln!(w, "{line}")?;
        w.flush()
    }

    fn load_all(&self) -> io::Result<Vec<RunRecord>> {
        // Take the writer lock so a concurrent append's line is either
        // fully flushed or not started.
        let _w = self.writer.lock().unwrap();
        let mut text = String::new();
        File::open(&self.path)?.read_to_string(&mut text)?;
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let rec: RunRecord = serde_json::from_str(line).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{}: {e}", self.path.display(), i + 1),
                )
            })?;
            out.push(rec);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(run_id: u64) -> RunRecord {
        RunRecord {
            run_id,
            session: 1,
            plan_hash: 0xfeed,
            cache_hit: run_id > 0,
            engine: "event".into(),
            strategy: "overlap(c=4)".into(),
            host: "array-4".into(),
            stats: RunStats::default(),
            validated: true,
            mismatches: 0,
            stalls: None,
        }
    }

    #[test]
    fn mem_store_round_trips() {
        let s = MemStore::new();
        s.append(&record(0)).unwrap();
        s.append(&record(1)).unwrap();
        let all = s.load_all().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1], record(1));
    }

    #[test]
    fn jsonl_store_survives_reopen() {
        let path = std::env::temp_dir().join(format!(
            "overlap-daemon-store-test-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let s = JsonlStore::open(&path).unwrap();
            s.append(&record(0)).unwrap();
        }
        let s = JsonlStore::open(&path).unwrap();
        s.append(&record(1)).unwrap();
        let all = s.load_all().unwrap();
        assert_eq!(all.len(), 2, "records from the first open must persist");
        assert_eq!(all[0], record(0));
        assert_eq!(all[1], record(1));
        let _ = std::fs::remove_file(&path);
    }
}
