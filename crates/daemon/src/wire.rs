//! JSON envelopes shared by the HTTP server and the client.

use crate::daemon::Event;
use crate::store::RunRecord;
use serde::{Deserialize, Serialize};

/// `POST /v1/scenarios` success body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubmitResponse {
    /// The accepted session's id.
    pub session: u64,
}

/// Generic acknowledgement body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OkResponse {
    /// Always true on 200.
    pub ok: bool,
}

/// Error body carried on non-200 responses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Human-readable message (the typed builder error's `Display`).
    pub error: String,
}

/// `GET /v1/sessions/{id}/events` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventsResponse {
    /// Events at indices `since..next` of the session's stream.
    pub events: Vec<Event>,
    /// Pass as the next request's `since` to continue the stream.
    pub next: u64,
}

/// `GET /v1/runs` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunsResponse {
    /// Matching persisted runs, oldest first.
    pub runs: Vec<RunRecord>,
}
