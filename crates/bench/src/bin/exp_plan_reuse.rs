//! PLAN — sweep wall-clock with a shared ExecPlan vs per-run lowering.
//! Writes `BENCH_plan.json` at the workspace root.
//! Usage: `cargo run --release --bin exp_plan_reuse [--quick]`

use overlap_bench::experiments::plan_reuse;
use overlap_bench::{save_table, Scale};

fn main() {
    let t = plan_reuse::run(Scale::from_args());
    println!("{}", save_table(&t, "plan_reuse").expect("write results"));
}
