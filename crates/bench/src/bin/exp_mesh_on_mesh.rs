//! E11 — §7 open question: a 2-D guest on a 2-D host, measured.
//! Usage: `cargo run --release --bin exp_mesh_on_mesh [--quick]`

use overlap_bench::experiments::e11_mesh_on_mesh;
use overlap_bench::{save_table, Scale};

fn main() {
    let t = e11_mesh_on_mesh::run(Scale::from_args());
    println!(
        "{}",
        save_table(&t, "e11_mesh_on_mesh").expect("write results")
    );
}
