//! E5 — Theorem 6: line guests on arbitrary bounded-degree NOWs.
//! Usage: `cargo run --release --bin exp_t6_general [--quick]`

use overlap_bench::experiments::e5_general;
use overlap_bench::{save_table, Scale};

fn main() {
    let t = e5_general::run(Scale::from_args());
    println!("{}", save_table(&t, "e5_general").expect("write results"));
}
