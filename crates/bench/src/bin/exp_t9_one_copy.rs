//! E7 — Theorem 9: the single-copy √n lower bound on H1.
//! Usage: `cargo run --release --bin exp_t9_one_copy [--quick]`

use overlap_bench::experiments::e7_one_copy;
use overlap_bench::{save_table, Scale};

fn main() {
    let t = e7_one_copy::run(Scale::from_args());
    println!("{}", save_table(&t, "e7_one_copy").expect("write results"));
}
