//! E9 — §4: the clique-of-cliques unbounded-degree counterexample.
//! Usage: `cargo run --release --bin exp_s4_cliques [--quick]`

use overlap_bench::experiments::e9_cliques;
use overlap_bench::{save_table, Scale};

fn main() {
    let t = e9_cliques::run(Scale::from_args());
    println!("{}", save_table(&t, "e9_cliques").expect("write results"));
}
