//! E8 — Theorem 10: the two-copy Ω(log n) lower bound on H2.
//! Usage: `cargo run --release --bin exp_t10_two_copy [--quick]`

use overlap_bench::experiments::e8_two_copy;
use overlap_bench::{save_table, Scale};

fn main() {
    let t = e8_two_copy::run(Scale::from_args());
    println!("{}", save_table(&t, "e8_two_copy").expect("write results"));
}
