//! E17 — 2-D quadtree killing on mesh hosts with catastrophic pockets.
//! Usage: `cargo run --release --bin exp_adaptive2d [--quick]`

use overlap_bench::experiments::e17_adaptive2d;
use overlap_bench::{save_table, Scale};

fn main() {
    let t = e17_adaptive2d::run(Scale::from_args());
    println!(
        "{}",
        save_table(&t, "e17_adaptive2d").expect("write results")
    );
}
