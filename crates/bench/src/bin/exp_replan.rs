//! E16 — the cost of a stale OVERLAP plan when the NOW's delays change.
//! Usage: `cargo run --release --bin exp_replan [--quick]`

use overlap_bench::experiments::e16_replan;
use overlap_bench::{save_table, Scale};

fn main() {
    let t = e16_replan::run(Scale::from_args());
    println!("{}", save_table(&t, "e16_replan").expect("write results"));
}
