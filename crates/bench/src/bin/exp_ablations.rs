//! E12 — design-choice ablations: halo width, killing constant, bandwidth.
//! Usage: `cargo run --release --bin exp_ablations [--quick]`

use overlap_bench::experiments::e12_ablations;
use overlap_bench::{save_table, Scale};

fn main() {
    let scale = Scale::from_args();
    for (t, name) in [
        (e12_ablations::run_halo_width(scale), "e12a_halo_width"),
        (e12_ablations::run_c_constant(scale), "e12b_c_constant"),
        (e12_ablations::run_bandwidth(scale), "e12c_bandwidth"),
        (e12_ablations::run_multicast(scale), "e12d_multicast"),
        (e12_ablations::run_jitter(scale), "e12e_jitter"),
    ] {
        println!("{}", save_table(&t, name).expect("write results"));
    }
}
