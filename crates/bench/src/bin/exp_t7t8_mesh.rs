//! E6 — Theorems 7/8: 2-D array guests on linear hosts and NOWs.
//! Usage: `cargo run --release --bin exp_t7t8_mesh [--quick]`

use overlap_bench::experiments::e6_mesh;
use overlap_bench::{save_table, Scale};

fn main() {
    let t = e6_mesh::run(Scale::from_args());
    println!("{}", save_table(&t, "e6_mesh").expect("write results"));
}
