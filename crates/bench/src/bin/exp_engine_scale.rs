//! ENGINE — calendar-queue engine throughput vs the classic heap engine.
//! Writes `BENCH_engine.json` at the workspace root.
//! Usage: `cargo run --release --bin exp_engine_scale [--quick]`

use overlap_bench::experiments::engine_scale;
use overlap_bench::{save_table, Scale};

fn main() {
    let t = engine_scale::run(Scale::from_args());
    println!("{}", save_table(&t, "engine_scale").expect("write results"));
}
