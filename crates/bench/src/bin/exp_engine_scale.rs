//! ENGINE — calendar-queue engine throughput vs the classic heap engine,
//! plus the sharded-engine thread sweep.
//! Writes `BENCH_engine.json` at the workspace root.
//! Usage: `cargo run --release --bin exp_engine_scale [--quick | --gate]`
//!
//! `--gate` runs the CI smoke perf gate instead of the sweep: one
//! mid-size tier, failing (exit 1) if the sequential or sharded engine
//! regresses more than 30% below the checked-in floor in
//! `BENCH_engine_floor.json`, if the plan-reuse or delta-sweep speedups
//! fall below the ratio floors in `BENCH_plan_floor.json`, or if the
//! deterministic task-graph grid exceeds the makespan ceilings in
//! `BENCH_taskgraph_floor.json`.

use overlap_bench::experiments::engine_scale;
use overlap_bench::{save_table, Scale};

fn main() {
    if std::env::args().any(|a| a == "--gate") {
        match engine_scale::gate() {
            Ok(msg) => println!("{msg}"),
            Err(msg) => {
                eprintln!("perf gate FAILED: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }
    let t = engine_scale::run(Scale::from_args());
    println!("{}", save_table(&t, "engine_scale").expect("write results"));
}
