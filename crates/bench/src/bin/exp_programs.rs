//! E18 — workload independence of the simulation layer.
//! Usage: `cargo run --release --bin exp_programs [--quick]`

use overlap_bench::experiments::e18_programs;
use overlap_bench::{save_table, Scale};

fn main() {
    let t = e18_programs::run(Scale::from_args());
    println!("{}", save_table(&t, "e18_programs").expect("write results"));
}
