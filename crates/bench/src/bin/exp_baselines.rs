//! E10 — §1 baselines (lockstep / blocked / slackness) vs OVERLAP.
//! Usage: `cargo run --release --bin exp_baselines [--quick]`

use overlap_bench::experiments::e10_baselines;
use overlap_bench::{save_table, Scale};

fn main() {
    let t = e10_baselines::run(Scale::from_args());
    println!(
        "{}",
        save_table(&t, "e10_baselines").expect("write results")
    );
}
