//! Figures 1–6 regenerated as data tables.
//! Usage: `cargo run --release --bin exp_figures`

use overlap_bench::experiments::figures;
use overlap_bench::save_table;

fn main() {
    for (i, t) in figures::all().into_iter().enumerate() {
        let name = format!("figure{}", i + 1);
        println!("{}", save_table(&t, &name).expect("write results"));
    }
}
