//! E2 — Theorem 3: the work-efficient OVERLAP.
//! Usage: `cargo run --release --bin exp_t3_efficient [--quick]`

use overlap_bench::experiments::e2_efficient;
use overlap_bench::{save_table, Scale};

fn main() {
    let t = e2_efficient::run(Scale::from_args());
    println!("{}", save_table(&t, "e2_efficient").expect("write results"));
}
