//! E15 — binary-tree guests on a NOW (§7's closing wish).
//! Usage: `cargo run --release --bin exp_tree [--quick]`

use overlap_bench::experiments::e15_tree;
use overlap_bench::{save_table, Scale};

fn main() {
    let t = e15_tree::run(Scale::from_args());
    println!("{}", save_table(&t, "e15_tree").expect("write results"));
}
