//! E1 — Theorem 2: OVERLAP slowdown vs d_ave, and d_max robustness.
//! Usage: `cargo run --release --bin exp_t2_overlap [--quick]`

use overlap_bench::experiments::e1_overlap;
use overlap_bench::{save_table, Scale};

fn main() {
    let scale = Scale::from_args();
    for (t, name) in [
        (e1_overlap::run_dave_sweep(scale), "e1a_overlap_dave"),
        (e1_overlap::run_dmax_stress(scale), "e1b_overlap_dmax"),
    ] {
        println!("{}", save_table(&t, name).expect("write results"));
    }
}
