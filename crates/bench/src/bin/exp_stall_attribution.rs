//! TRACE — stall attribution (compute / dependency / bandwidth / db-order
//! / fault / drain) across delay ranges and placements.
//! Writes `BENCH_trace.json` at the workspace root.
//! Usage: `cargo run --release --bin exp_stall_attribution [--quick]`

use overlap_bench::experiments::stall_attribution;
use overlap_bench::{save_table, Scale};

fn main() {
    let t = stall_attribution::run(Scale::from_args());
    println!(
        "{}",
        save_table(&t, "stall_attribution").expect("write results")
    );
}
