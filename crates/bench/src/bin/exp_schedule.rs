//! E13 — Theorem 1 deadlines checked against measured completions.
//! Usage: `cargo run --release --bin exp_schedule [--quick]`

use overlap_bench::experiments::e13_schedule;
use overlap_bench::{save_table, Scale};

fn main() {
    let t = e13_schedule::run(Scale::from_args());
    println!("{}", save_table(&t, "e13_schedule").expect("write results"));
}
