//! E3 — Theorem 4: O(√d) on the uniform-delay host vs the Θ(d) baseline.
//! Usage: `cargo run --release --bin exp_t4_uniform [--quick]`

use overlap_bench::experiments::e3_uniform;
use overlap_bench::{save_table, Scale};

fn main() {
    let t = e3_uniform::run(Scale::from_args());
    println!("{}", save_table(&t, "e3_uniform").expect("write results"));
}
