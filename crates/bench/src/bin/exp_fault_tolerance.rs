//! FAULTS — OVERLAP's graceful degradation vs the single-copy baseline
//! under link outages and processor crashes.
//! Writes `BENCH_faults.json` at the workspace root.
//! Usage: `cargo run --release --bin exp_fault_tolerance [--quick]`

use overlap_bench::experiments::fault_tolerance;
use overlap_bench::{save_table, Scale};

fn main() {
    let t = fault_tolerance::run(Scale::from_args());
    println!(
        "{}",
        save_table(&t, "fault_tolerance").expect("write results")
    );
}
