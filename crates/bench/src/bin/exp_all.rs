//! Run every experiment and figure regeneration in sequence, writing all
//! tables to `results/`.
//! Usage: `cargo run --release --bin exp_all [--quick]`

use overlap_bench::experiments::*;
use overlap_bench::{save_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let tables = vec![
        (
            e1_overlap::run_dave_sweep(scale),
            "e1a_overlap_dave".to_string(),
        ),
        (
            e1_overlap::run_dmax_stress(scale),
            "e1b_overlap_dmax".to_string(),
        ),
        (e2_efficient::run(scale), "e2_efficient".to_string()),
        (e3_uniform::run(scale), "e3_uniform".to_string()),
        (e4_combined::run(scale), "e4_combined".to_string()),
        (e5_general::run(scale), "e5_general".to_string()),
        (e6_mesh::run(scale), "e6_mesh".to_string()),
        (e6_mesh::run_higher(scale), "e6b_higher_dim".to_string()),
        (e7_one_copy::run(scale), "e7_one_copy".to_string()),
        (e8_two_copy::run(scale), "e8_two_copy".to_string()),
        (e9_cliques::run(scale), "e9_cliques".to_string()),
        (e10_baselines::run(scale), "e10_baselines".to_string()),
        (e11_mesh_on_mesh::run(scale), "e11_mesh_on_mesh".to_string()),
        (
            e12_ablations::run_halo_width(scale),
            "e12a_halo_width".to_string(),
        ),
        (
            e12_ablations::run_c_constant(scale),
            "e12b_c_constant".to_string(),
        ),
        (
            e12_ablations::run_bandwidth(scale),
            "e12c_bandwidth".to_string(),
        ),
        (
            e12_ablations::run_multicast(scale),
            "e12d_multicast".to_string(),
        ),
        (e12_ablations::run_jitter(scale), "e12e_jitter".to_string()),
        (e13_schedule::run(scale), "e13_schedule".to_string()),
        (
            e14_heterogeneous::run(scale),
            "e14_heterogeneous".to_string(),
        ),
        (e15_tree::run(scale), "e15_tree".to_string()),
        (e16_replan::run(scale), "e16_replan".to_string()),
        (e17_adaptive2d::run(scale), "e17_adaptive2d".to_string()),
        (e18_programs::run(scale), "e18_programs".to_string()),
        (engine_scale::run(scale), "engine_scale".to_string()),
        (plan_reuse::run(scale), "plan_reuse".to_string()),
        (fault_tolerance::run(scale), "fault_tolerance".to_string()),
        (
            stall_attribution::run(scale),
            "stall_attribution".to_string(),
        ),
        (task_graphs::run(scale), "task_graphs".to_string()),
    ];
    let mut titles: Vec<(String, String)> = Vec::new();
    for (t, name) in tables {
        titles.push((t.title.clone(), name.clone()));
        println!("{}", save_table(&t, &name).expect("write results"));
    }
    let mut index = String::from(
        "# results index\n\nRegenerate everything with `cargo run --release --bin exp_all`.\n\n",
    );
    for (t, name) in &titles {
        index.push_str(&format!("- [{t}]({name}.md) ([csv]({name}.csv))\n"));
    }
    for (i, t) in figures::all().into_iter().enumerate() {
        let name = format!("figure{}", i + 1);
        index.push_str(&format!("- [{}]({name}.md)\n", t.title));
        println!("{}", save_table(&t, &name).expect("write results"));
    }
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::write(dir.join("INDEX.md"), index).expect("write index");
}
