//! E14 — heterogeneous workstation speeds (beyond the paper).
//! Usage: `cargo run --release --bin exp_heterogeneous [--quick]`

use overlap_bench::experiments::e14_heterogeneous;
use overlap_bench::{save_table, Scale};

fn main() {
    let t = e14_heterogeneous::run(Scale::from_args());
    println!(
        "{}",
        save_table(&t, "e14_heterogeneous").expect("write results")
    );
}
