//! TASKGRAPH — arbitrary task-graph guests: work-stealing vs OVERLAP vs
//! blocked placement, across latency regimes and memory budgets.
//! Writes `BENCH_taskgraph.json` at the workspace root.
//! Usage: `cargo run --release --bin exp_task_graphs [--quick]`

use overlap_bench::experiments::task_graphs;
use overlap_bench::{save_table, Scale};

fn main() {
    let t = task_graphs::run(Scale::from_args());
    println!("{}", save_table(&t, "task_graphs").expect("write results"));
}
