//! E4 — Theorem 5: the combined √d_ave·polylog simulation crossover.
//! Usage: `cargo run --release --bin exp_t5_combined [--quick]`

use overlap_bench::experiments::e4_combined;
use overlap_bench::{save_table, Scale};

fn main() {
    let t = e4_combined::run(Scale::from_args());
    println!("{}", save_table(&t, "e4_combined").expect("write results"));
}
