//! # overlap-bench
//!
//! The experiment harness that regenerates every result of the paper
//! (per-theorem "tables" — the paper is a theory extended abstract with no
//! experimental tables of its own, so each theorem's claimed bound is the
//! row we reproduce) and the six conceptual figures as data.
//!
//! Each experiment lives in [`experiments`] as a pure function returning a
//! [`Table`]; the `exp_*` binaries print them and write
//! `results/<name>.md`. Everything runs at two scales: [`Scale::Quick`]
//! (seconds; used by the test suite) and [`Scale::Full`] (the numbers in
//! EXPERIMENTS.md).

#![warn(missing_docs)]

pub mod experiments;
pub mod plot;
pub mod scale;
pub mod table;

pub use scale::Scale;
pub use table::Table;

/// Write a table to `results/<name>.md` (markdown) and
/// `results/<name>.csv` (raw data) under the workspace root and return
/// the rendered markdown.
pub fn save_table(table: &Table, name: &str) -> std::io::Result<String> {
    let md = table.to_markdown();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir)?;
    std::fs::write(dir.join(format!("{name}.md")), &md)?;
    std::fs::write(dir.join(format!("{name}.csv")), table.to_csv())?;
    Ok(md)
}
