//! Terminal-friendly ASCII plots for experiment results.
//!
//! The experiments' headline claims are growth *shapes* (√d vs d, polylog
//! vs linear); a small log-log scatter makes them visible directly in the
//! result files without any plotting toolchain.

/// One plotted series: (label, marker character, points).
pub type Series<'a> = (&'a str, char, &'a [(f64, f64)]);

/// Render a log-log scatter of one or more series into a fixed-size ASCII
/// grid. Each series gets a marker character; points outside the positive
/// quadrant are skipped.
pub fn ascii_loglog(title: &str, series: &[Series], width: usize, height: usize) -> String {
    let width = width.clamp(16, 120);
    let height = height.clamp(6, 48);
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, _, p)| p.iter())
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .copied()
        .collect();
    if pts.is_empty() {
        return format!("{title}\n(no positive data)\n");
    }
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for (x, y) in &pts {
        x0 = x0.min(x.ln());
        x1 = x1.max(x.ln());
        y0 = y0.min(y.ln());
        y1 = y1.max(y.ln());
    }
    // Avoid degenerate ranges.
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (_, marker, points) in series {
        for (x, y) in points.iter().filter(|(x, y)| *x > 0.0 && *y > 0.0) {
            let cx = (((x.ln() - x0) / (x1 - x0)) * (width as f64 - 1.0)).round() as usize;
            let cy = (((y.ln() - y0) / (y1 - y0)) * (height as f64 - 1.0)).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            let col = cx.min(width - 1);
            grid[row][col] = *marker;
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let y_hi = format!("{:.3e}", y1.exp());
    let y_lo = format!("{:.3e}", y0.exp());
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_hi:>10} ")
        } else if i == height - 1 {
            format!("{y_lo:>10} ")
        } else {
            " ".repeat(11)
        };
        out.push_str(&label);
        out.push('|');
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>11}+{}\n{:>12}{:<w$}{:>8}\n",
        "",
        "-".repeat(width),
        format!("{:.3e}", x0.exp()),
        "",
        format!("{:.3e}", x1.exp()),
        w = width.saturating_sub(18),
    ));
    for (name, marker, _) in series {
        out.push_str(&format!("  {marker} = {name}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sqrt_series() -> Vec<(f64, f64)> {
        (1..=6)
            .map(|i| {
                let x = 4f64.powi(i);
                (x, 5.0 * x.sqrt())
            })
            .collect()
    }

    fn linear_series() -> Vec<(f64, f64)> {
        (1..=6)
            .map(|i| {
                let x = 4f64.powi(i);
                (x, x)
            })
            .collect()
    }

    #[test]
    fn renders_markers_and_legend() {
        let a = sqrt_series();
        let b = linear_series();
        let plot = ascii_loglog(
            "slowdown vs d",
            &[("halo", 'o', &a), ("blocked", 'x', &b)],
            60,
            16,
        );
        assert!(plot.contains('o'));
        assert!(plot.contains('x'));
        assert!(plot.contains("o = halo"));
        assert!(plot.contains("x = blocked"));
        assert!(plot.lines().count() >= 16);
    }

    #[test]
    fn sqrt_series_sits_below_linear_at_the_right_edge() {
        // In log-log space the two series share the left edge and diverge
        // right: the last 'o' must be on a lower row... i.e. appear *after*
        // (further down) the last 'x' row-wise.
        let a = sqrt_series();
        let b = linear_series();
        let plot = ascii_loglog("t", &[("s", 'o', &a), ("l", 'x', &b)], 60, 20);
        let rows: Vec<&str> = plot.lines().collect();
        let last_col_of = |m: char| {
            rows.iter()
                .position(|r| r.rfind(m).map(|c| c > 50).unwrap_or(false))
        };
        let o_row = last_col_of('o');
        let x_row = last_col_of('x');
        if let (Some(o), Some(x)) = (o_row, x_row) {
            assert!(o > x, "sqrt series should plot below linear at right edge");
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let empty: &[(f64, f64)] = &[];
        let plot = ascii_loglog("t", &[("e", 'o', empty)], 40, 10);
        assert!(plot.contains("no positive data"));
        let single = [(5.0, 7.0)];
        let plot = ascii_loglog("t", &[("s", 'o', &single)], 40, 10);
        assert!(plot.contains('o'));
    }

    #[test]
    fn negative_points_are_skipped() {
        let mixed = [(-1.0, 5.0), (10.0, 20.0), (100.0, -3.0)];
        let plot = ascii_loglog("t", &[("m", 'o', &mixed)], 40, 10);
        assert_eq!(plot.matches('o').count() - 1, 1); // one point + legend
    }
}
