//! Experiment scales.

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sweeps for tests and smoke runs (seconds).
    Quick,
    /// The full sweeps recorded in EXPERIMENTS.md (minutes).
    Full,
}

impl Scale {
    /// Parse from a CLI argument (`--quick` / `--full`; default full).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Pick between the quick and full variants of a parameter.
    pub fn pick<T: Copy>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }
}
