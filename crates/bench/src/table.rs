//! Markdown result tables.

/// A result table: title, column headers, string rows, free-form notes.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Heading printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Notes rendered after the table (one bullet each).
    pub notes: Vec<String>,
    /// Preformatted blocks (e.g. ASCII plots) rendered fenced after notes.
    pub extra: Vec<String>,
}

impl Table {
    /// New table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            extra: Vec::new(),
        }
    }

    /// Append a row; panics if the width disagrees with the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in '{}'",
            self.title
        );
        self.rows.push(cells);
    }

    /// Append a note bullet.
    pub fn note(&mut self, n: impl Into<String>) {
        self.notes.push(n.into());
    }

    /// Append a preformatted block (rendered in a code fence).
    pub fn block(&mut self, b: impl Into<String>) {
        self.extra.push(b.into());
    }

    /// Render as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
        }
        for b in &self.extra {
            out.push_str(&format!("\n```text\n{b}```\n"));
        }
        out
    }

    /// Render as CSV (RFC-4180-ish: quotes around cells containing commas
    /// or quotes).
    pub fn to_csv(&self) -> String {
        fn cell(c: &str) -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| cell(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Fetch a numeric column by header name (for assertions in tests).
    pub fn column_f64(&self, header: &str) -> Vec<f64> {
        let idx = self
            .headers
            .iter()
            .position(|h| h == header)
            .unwrap_or_else(|| panic!("no column '{header}' in '{}'", self.title));
        self.rows
            .iter()
            .map(|r| r[idx].trim().parse::<f64>().unwrap_or(f64::NAN))
            .collect()
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("hello");
        let md = t.to_markdown();
        assert!(md.contains("## Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("- hello"));
    }

    #[test]
    fn blocks_render_fenced() {
        let mut t = Table::new("T", &["x"]);
        t.row(vec!["1".into()]);
        t.block("plot here\n");
        let md = t.to_markdown();
        assert!(md.contains("```text\nplot here\n```"));
    }

    #[test]
    fn csv_rendering_quotes_commas() {
        let mut t = Table::new("T", &["name", "v"]);
        t.row(vec!["a,b".into(), "1".into()]);
        t.row(vec!["plain".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("name,v\n"));
        assert!(csv.contains("\"a,b\",1"));
        assert!(csv.contains("plain,2"));
    }

    #[test]
    fn column_extraction() {
        let mut t = Table::new("T", &["x", "y"]);
        t.row(vec!["1".into(), "2.5".into()]);
        t.row(vec!["3".into(), "4.5".into()]);
        assert_eq!(t.column_f64("y"), vec![2.5, 4.5]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("T", &["x", "y"]);
        t.row(vec!["1".into()]);
    }
}
