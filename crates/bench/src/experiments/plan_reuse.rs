//! Plan-reuse benchmark: sweep wall-clock with a shared `ExecPlan` vs a
//! fresh lowering per run, for each of the three engines.
//!
//! A sweep repeats the same `(guest, host, assignment, config)` point —
//! across repeats, engines, and fault variants — so the lowering work
//! (per-consumer Dijkstra routing, interned dependency tables, multicast
//! trees) can be paid once and amortised. This experiment measures
//! exactly that amortisation: `repeats` back-to-back runs, once lowering
//! fresh every run (`Engine::new` style) and once sharing a single plan
//! (`Engine::from_plan`). Outcomes are asserted bit-identical before
//! timing, so the speedup is pure lowering cost. Results land in the
//! usual markdown table **and** in `BENCH_plan.json` at the workspace
//! root.
//!
//! A second section measures the *delta* sweep: varying a single link
//! delay across the sweep, which plan reuse alone cannot amortise (the
//! host changes, so every point needs its own lowering) but
//! [`ExecPlan::apply_delta`] patches in place on tree hosts. The
//! baseline is the best a reuse-only sweep can do — one fresh lowering
//! per point — against a single shared plan stepped through
//! delta/run/inverse.

use crate::Scale;
use crate::Table;
use overlap_model::{GuestSpec, ProgramKind};
use overlap_net::topology::{linear_array, mesh2d};
use overlap_net::{DelayModel, HostGraph};
use overlap_sim::engine::{Engine, EngineConfig, RunOutcome};
use overlap_sim::lockstep::run_lockstep;
use overlap_sim::stepped::run_stepped;
use overlap_sim::{Assignment, ExecPlan, PlanDelta};
use std::time::Instant;

/// One engine's measured sweep, with and without plan reuse.
pub struct ReuseResult {
    /// Engine label (`"event"`, `"stepped"`, `"lockstep"`).
    pub engine: &'static str,
    /// Runs per sweep.
    pub repeats: u32,
    /// Sweep wall-clock with one fresh lowering per run, seconds.
    pub fresh_secs: f64,
    /// Sweep wall-clock sharing a single lowered plan, seconds.
    pub shared_secs: f64,
}

impl ReuseResult {
    /// Fresh-lowering sweep time over shared-plan sweep time.
    pub fn speedup(&self) -> f64 {
        self.fresh_secs / self.shared_secs
    }
}

/// The delta-sweep measurement: a single-link delay sweep, fresh
/// lowering per point vs one shared plan varied with `apply_delta`.
pub struct DeltaResult {
    /// Sweep points (distinct delays of the varied link).
    pub points: u32,
    /// Sweep wall-clock with one fresh lowering per point, seconds.
    pub fresh_secs: f64,
    /// Sweep wall-clock applying/undoing a delta per point, seconds.
    pub delta_secs: f64,
}

impl DeltaResult {
    /// Fresh-lowering sweep time over delta-applied sweep time.
    pub fn speedup(&self) -> f64 {
        self.fresh_secs / self.delta_secs
    }
}

/// A lowering-heavy, run-light scenario: many processors (the routing
/// pass runs one Dijkstra per consumer) and few guest steps.
fn scenario(scale: Scale) -> (GuestSpec, HostGraph, Assignment) {
    let side = scale.pick(16u32, 24);
    let procs = side * side;
    let cells = procs * 2;
    let steps = 2;
    let guest = GuestSpec::array(cells, ProgramKind::Relaxation, 3, steps);
    let host = mesh2d(side, side, DelayModel::uniform(1, 5), 7);
    let assign = Assignment::blocked(procs, cells);
    (guest, host, assign)
}

/// Best-of-`reps` wall time of `f` in seconds.
fn time_best<T>(reps: u32, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Measure every engine's sweep with and without plan reuse.
pub fn measure(scale: Scale) -> Vec<ReuseResult> {
    let (guest, host, assign) = scenario(scale);
    let cfg = EngineConfig::default();
    let repeats = scale.pick(6u32, 10);
    let reps = scale.pick(3, 5);

    type Runner = fn(&ExecPlan) -> RunOutcome;
    let engines: &[(&'static str, Runner)] = &[
        ("event", |p| Engine::from_plan(p).run().expect("event")),
        ("stepped", |p| run_stepped(p).expect("stepped")),
        ("lockstep", |p| run_lockstep(p).expect("lockstep")),
    ];

    engines
        .iter()
        .map(|&(name, run)| {
            // Reused and fresh lowerings must be indistinguishable.
            let shared_plan = ExecPlan::build(&guest, &host, &assign, cfg).expect("plan");
            let a = run(&shared_plan);
            let fresh_plan = ExecPlan::build(&guest, &host, &assign, cfg).expect("plan");
            let b = run(&fresh_plan);
            assert_eq!(a, b, "{name}: shared vs fresh lowering diverge");

            let fresh_secs = time_best(reps, || {
                for _ in 0..repeats {
                    let plan = ExecPlan::build(&guest, &host, &assign, cfg).expect("plan");
                    std::hint::black_box(run(&plan));
                }
            });
            let shared_secs = time_best(reps, || {
                let plan = ExecPlan::build(&guest, &host, &assign, cfg).expect("plan");
                for _ in 0..repeats {
                    std::hint::black_box(run(&plan));
                }
            });
            ReuseResult {
                engine: name,
                repeats,
                fresh_secs,
                shared_secs,
            }
        })
        .collect()
}

/// Measure the single-link delay sweep: fresh lowering per point vs one
/// shared plan varied in place with [`ExecPlan::apply_delta`].
///
/// The host is a linear array — a tree, so routes are forced and every
/// delay edit takes the patch-in-place fast path. That is the honest
/// comparison: a reuse-only sweep *must* re-lower per point here (the
/// host differs at every point), while the delta sweep pays one
/// lowering for the whole sweep. Outcomes are asserted bit-identical to
/// fresh lowerings, point by point, before anything is timed.
pub fn measure_delta(scale: Scale) -> DeltaResult {
    let procs = scale.pick(256u32, 576);
    let cells = procs * 2;
    let guest = GuestSpec::array(cells, ProgramKind::Relaxation, 3, 2);
    let host = linear_array(procs, DelayModel::uniform(1, 5), 7);
    let assign = Assignment::blocked(procs, cells);
    let cfg = EngineConfig::default();
    let reps = scale.pick(3, 5);

    // Sweep the middle link over `points` distinct delays.
    let (a, b) = (procs / 2 - 1, procs / 2);
    let points = scale.pick(8u32, 16);
    let delays: Vec<u64> = (1..=u64::from(points)).collect();
    let fresh_point = |d: u64| -> RunOutcome {
        let mut h = host.clone();
        h.set_link_delay(a, b, d);
        let plan = ExecPlan::build(&guest, &h, &assign, cfg).expect("fresh plan");
        Engine::from_plan(&plan).run().expect("fresh run")
    };

    // Untimed: every delta-applied point must match its fresh lowering.
    let mut plan = ExecPlan::build(&guest, &host, &assign, cfg).expect("base plan");
    for &d in &delays {
        let receipt = plan
            .apply_delta(PlanDelta::LinkDelay { a, b, delay: d })
            .expect("delta");
        let got = Engine::from_plan(&plan).run().expect("delta run");
        assert_eq!(got, fresh_point(d), "delta sweep diverges at delay {d}");
        plan.apply_delta(receipt.inverse).expect("inverse");
    }

    let fresh_secs = time_best(reps, || {
        for &d in &delays {
            std::hint::black_box(fresh_point(d));
        }
    });
    let delta_secs = time_best(reps, || {
        let mut plan = ExecPlan::build(&guest, &host, &assign, cfg).expect("base plan");
        for &d in &delays {
            let receipt = plan
                .apply_delta(PlanDelta::LinkDelay { a, b, delay: d })
                .expect("delta");
            std::hint::black_box(Engine::from_plan(&plan).run().expect("delta run"));
            plan.apply_delta(receipt.inverse).expect("inverse");
        }
    });
    DeltaResult {
        points,
        fresh_secs,
        delta_secs,
    }
}

/// Render the results as `BENCH_plan.json` (hand-rolled; the bench crate
/// carries no JSON dependency).
pub fn to_json(results: &[ReuseResult], delta: &DeltaResult) -> String {
    let mut out = String::from(
        "{\n  \"benchmark\": \"plan_reuse\",\n  \"baseline\": \"fresh ExecPlan lowering per run\",\n  \"engines\": [\n",
    );
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"engine\": \"{}\", \"repeats\": {}, \"fresh_secs\": {:.6}, \"shared_secs\": {:.6}, \"speedup\": {:.2}}}{}\n",
            r.engine,
            r.repeats,
            r.fresh_secs,
            r.shared_secs,
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"delta\": {{\"host\": \"linear-array\", \"points\": {}, \"fresh_secs\": {:.6}, \"delta_secs\": {:.6}, \"delta_speedup\": {:.2}}}\n",
        delta.points,
        delta.fresh_secs,
        delta.delta_secs,
        delta.speedup()
    ));
    out.push_str("}\n");
    out
}

/// The experiment: measure, write `BENCH_plan.json`, return the table.
pub fn run(scale: Scale) -> Table {
    let results = measure(scale);
    let delta = measure_delta(scale);
    let json = to_json(&results, &delta);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_plan.json");
    std::fs::write(&path, &json).expect("write BENCH_plan.json");

    let mut t = Table::new(
        "PLAN · sweep wall-clock, shared ExecPlan vs per-run lowering",
        &["engine", "runs", "fresh (s)", "shared (s)", "speedup"],
    );
    for r in &results {
        t.row(vec![
            r.engine.to_string(),
            r.repeats.to_string(),
            format!("{:.4}", r.fresh_secs),
            format!("{:.4}", r.shared_secs),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    t.row(vec![
        "delta-sweep".to_string(),
        delta.points.to_string(),
        format!("{:.4}", delta.fresh_secs),
        format!("{:.4}", delta.delta_secs),
        format!("{:.2}x", delta.speedup()),
    ]);
    t.note(
        "outcomes are asserted bit-identical before timing; the speedup is purely the \
         amortised lowering (per-consumer Dijkstra routing + interned tables), paid once \
         per sweep point instead of once per run. The delta-sweep row varies one link \
         delay per point: the fresh column re-lowers every point (all plan reuse can do \
         when the host changes), the shared column patches one plan with \
         ExecPlan::apply_delta. JSON copy written to BENCH_plan.json.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_reuse_pays() {
        let results = measure(Scale::Quick);
        let delta = measure_delta(Scale::Quick);
        assert_eq!(results.len(), 3);
        let json = to_json(&results, &delta);
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"delta_speedup\""));
        assert_eq!(json.matches("{\"engine\"").count(), results.len());
        for r in &results {
            assert!(r.fresh_secs > 0.0 && r.shared_secs > 0.0);
            assert!(
                r.speedup() > 1.0,
                "{}: reuse should never lose ({:.2}x)",
                r.engine,
                r.speedup()
            );
        }
        assert!(
            results.iter().any(|r| r.speedup() >= 1.3),
            "at least one engine must show the 1.3x amortisation: {:?}",
            results.iter().map(|r| r.speedup()).collect::<Vec<_>>()
        );
        // The ISSUE acceptance bar: delta application buys at least 1.5x
        // over the best a reuse-only delay sweep can do.
        assert!(
            delta.speedup() >= 1.5,
            "delta sweep must beat per-point re-lowering by 1.5x, got {:.2}x",
            delta.speedup()
        );
    }
}
