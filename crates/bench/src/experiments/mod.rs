//! All experiments, one module per paper result.
//!
//! | module | reproduces |
//! |--------|------------|
//! | [`e1_overlap`]    | Theorem 2 — OVERLAP slowdown `O(d_ave·log³n)`, `d_max` independence |
//! | [`e2_efficient`]  | Theorem 3 — work-efficient OVERLAP: load & efficiency |
//! | [`e3_uniform`]    | Theorem 4 — uniform-delay `O(√d)` vs the `Θ(d)` baseline |
//! | [`e4_combined`]   | Theorem 5 — `O(√d_ave·log³n)` and its crossover vs OVERLAP |
//! | [`e5_general`]    | Theorem 6 — arbitrary bounded-degree hosts via embedding |
//! | [`e6_mesh`]       | Theorems 7/8 — 2-D guests on linear hosts and NOWs |
//! | [`e7_one_copy`]   | Theorem 9 — single-copy `√n` lower bound on `H1` |
//! | [`e8_two_copy`]   | Theorem 10 — two-copy `Ω(log n)` lower bound on `H2` |
//! | [`e9_cliques`]    | §4 — clique-of-cliques `n^{1/4}` counterexample |
//! | [`e10_baselines`] | §1 — lockstep / slackness / blocked vs OVERLAP |
//! | [`e11_mesh_on_mesh`] | §7 open question — 2-D guest on 2-D host, measured |
//! | [`e12_ablations`] | halo width, killing constant, bandwidth ablations |
//! | [`engine_scale`]  | simulator throughput: calendar-queue vs classic heap vs sharded parallel (thread sweep + CI perf gate) |
//! | [`plan_reuse`]    | sweep wall-clock: shared ExecPlan vs per-run lowering |
//! | [`fault_tolerance`] | graceful degradation: OVERLAP vs single-copy under link outages & crashes |
//! | [`stall_attribution`] | where the ticks go: stall categories vs `d_ave` across placements |
//! | [`task_graphs`]   | DAG guests: work-stealing vs OVERLAP vs blocked across latency regimes & memory budgets |
//! | [`figures`]       | Figures 1–6 regenerated as data |

use overlap_core::pipeline::{SimReport, Strategy};
use overlap_core::{Error, Simulation};
use overlap_model::{GuestSpec, ReferenceTrace};
use overlap_net::HostGraph;

/// Shared by the experiments: run a line/ring guest through the
/// [`Simulation`] builder, validating against a precomputed trace.
pub(crate) fn simulate_line_with_trace(
    guest: &GuestSpec,
    host: &HostGraph,
    strategy: Strategy,
    trace: &ReferenceTrace,
) -> Result<SimReport, Error> {
    Simulation::of(guest)
        .on(host)
        .strategy(strategy)
        .build()
        .and_then(|s| s.run_with_trace(trace))
}

pub mod e10_baselines;
pub mod e11_mesh_on_mesh;
pub mod e12_ablations;
pub mod e13_schedule;
pub mod e14_heterogeneous;
pub mod e15_tree;
pub mod e16_replan;
pub mod e17_adaptive2d;
pub mod e18_programs;
pub mod e1_overlap;
pub mod e2_efficient;
pub mod e3_uniform;
pub mod e4_combined;
pub mod e5_general;
pub mod e6_mesh;
pub mod e7_one_copy;
pub mod e8_two_copy;
pub mod e9_cliques;
pub mod engine_scale;
pub mod fault_tolerance;
pub mod figures;
pub mod plan_reuse;
pub mod stall_attribution;
pub mod task_graphs;
