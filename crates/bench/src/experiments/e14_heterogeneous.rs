//! E14 — beyond the paper: heterogeneous workstation speeds.
//!
//! The paper's motivation (§1) is NOWs whose *links* vary wildly; real
//! NOWs also mix workstation generations, which the unit-speed model
//! ignores. We add per-processor compute costs to the engine and measure:
//!
//! * naive blocked partitions collapse to the slowest machine's pace;
//! * the speed-weighted partition (cells ∝ 1/cost) restores near-uniform
//!   throughput — the compute-side analogue of delay-aware OVERLAP.

use crate::scale::Scale;
use crate::table::{f2, Table};
use overlap_core::baseline::weighted_blocked;
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap_net::topology::linear_array;
use overlap_net::DelayModel;
use overlap_sim::engine::{Engine, EngineConfig};
use overlap_sim::validate::validate_run;
use overlap_sim::Assignment;

/// Run the heterogeneous-speed table.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(32u32, 64);
    let steps = scale.pick(32u32, 64);
    let cells = 4 * n;
    let guest = GuestSpec::array(cells, ProgramKind::Relaxation, 3, steps);
    let trace = ReferenceRun::execute(&guest);
    let host = linear_array(n, DelayModel::constant(2), 0);

    // Speed profiles: every 8th workstation is `slow_factor`× slower.
    let profiles: Vec<(String, Vec<u32>)> = [1u32, 4, 16]
        .iter()
        .map(|&f| {
            let costs: Vec<u32> = (0..n).map(|p| if p % 8 == 7 { f } else { 1 }).collect();
            (format!("every 8th ×{f}"), costs)
        })
        .collect();

    let mut t = Table::new(
        format!("E14 · heterogeneous speeds (n = {n}, guest {cells} cells; beyond the paper)"),
        &[
            "profile",
            "blocked slowdown",
            "weighted slowdown",
            "blocked/weighted",
            "ideal (work-balance)",
            "valid",
        ],
    );
    for (name, costs) in profiles {
        let blocked = Assignment::blocked(n, cells);
        let weighted = weighted_blocked(&costs, cells);
        let run = |a: &Assignment| {
            let out = Engine::new(&guest, &host, a, EngineConfig::default())
                .with_compute_costs(costs.clone())
                .run()
                .expect("run");
            let ok = validate_run(&trace, &out).is_empty();
            (out.stats.slowdown, ok)
        };
        let (b, b_ok) = run(&blocked);
        let (w, w_ok) = run(&weighted);
        // Ideal: total work / total speed, per guest step.
        let total_speed: f64 = costs.iter().map(|&c| 1.0 / c as f64).sum();
        let ideal = cells as f64 / total_speed;
        t.row(vec![
            name,
            f2(b),
            f2(w),
            f2(b / w.max(1e-9)),
            f2(ideal),
            (b_ok && w_ok).to_string(),
        ]);
    }
    t.note(
        "blocked pays load × slow-cost per step (the slowest machine gates everything); \
         the speed-weighted partition tracks the work-balance ideal cells/Σ(1/cost) — \
         the compute-side analogue of the paper's delay-aware database placement.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_partition_beats_blocked_under_heterogeneity() {
        let t = run(Scale::Quick);
        for r in &t.rows {
            assert_eq!(r[5], "true");
        }
        // Homogeneous row: ratio ≈ 1.
        let first: f64 = t.rows[0][3].parse().unwrap();
        assert!((0.8..=1.3).contains(&first), "homogeneous ratio {first}");
        // ×16 row: weighted must win by ≥ 2×.
        let last: f64 = t.rows.last().unwrap()[3].parse().unwrap();
        assert!(last > 2.0, "expected ≥2× win at ×16 heterogeneity: {last}");
    }

    #[test]
    fn weighted_tracks_the_ideal_within_constant() {
        let t = run(Scale::Quick);
        for r in &t.rows {
            let w: f64 = r[2].parse().unwrap();
            let ideal: f64 = r[4].parse().unwrap();
            assert!(w <= 3.0 * ideal, "{}: weighted {w} vs ideal {ideal}", r[0]);
        }
    }
}
