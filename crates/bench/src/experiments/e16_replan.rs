//! E16 — adaptivity: what happens when a link degrades after planning
//! (beyond the paper, which plans once for fixed delays).
//!
//! We plan OVERLAP on a uniform host, then degrade one off-dyadic link.
//! Two findings:
//!
//! 1. **Re-running OVERLAP is a no-op for a single dominant spike.** Its
//!    overlaps live only at dyadic boundaries, and the stage-1 killing
//!    zone around the spike scales with `d_ave` — which the spike itself
//!    inflates — so the surviving interval stays below the integer-overlap
//!    threshold. Stale and fresh plans measure identically.
//! 2. **Switching strategy is the real adaptation**: `Auto` re-resolved on
//!    the new delay statistics picks wide halo regions, which bridge a
//!    spike anywhere, and wins by an order of magnitude.

use crate::scale::Scale;
use crate::table::{f2, Table};
use overlap_core::pipeline::plan_line_placement;
use overlap_core::pipeline::Strategy;
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap_net::topology::linear_array;
use overlap_net::{DelayModel, HostGraph};
use overlap_sim::engine::{Engine, EngineConfig};
use overlap_sim::validate::validate_run;

/// Run the replanning table.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(256u32, 512);
    let steps = scale.pick(48u32, 96);
    let guest = GuestSpec::array(4 * n, ProgramKind::Relaxation, 7, steps);
    let trace = ReferenceRun::execute(&guest);
    let original = linear_array(n, DelayModel::constant(1), 0);
    let stale = plan_line_placement(&guest, &original, Strategy::Overlap { c: 4.0 })
        .expect("original plan");

    let factors: Vec<u64> = match scale {
        Scale::Quick => vec![1, 256, 4096],
        Scale::Full => vec![1, 64, 256, 1024, 4096],
    };
    // Degrade a link away from every wide dyadic boundary.
    let spike_at = n / 3 + 1;
    let degraded_host = |f: u64| {
        let mut g = HostGraph::new(format!("degraded(@{spike_at},{f})"), n);
        for i in 0..n - 1 {
            g.add_link(i, i + 1, if i == spike_at { f } else { 1 });
        }
        g
    };
    let mut t = Table::new(
        format!("E16 · adaptation after an off-dyadic link degrades (n = {n})"),
        &[
            "degraded delay",
            "stale overlap",
            "re-planned overlap",
            "auto re-resolved",
            "stale/auto",
            "valid",
        ],
    );
    for &f in &factors {
        let degraded = degraded_host(f);
        let run_with = |placement: &overlap_core::pipeline::LinePlacement| {
            Engine::new(
                &guest,
                &degraded,
                &placement.assignment,
                EngineConfig::default(),
            )
            .run()
            .expect("run")
        };
        let stale_run = run_with(&stale);
        let fresh = plan_line_placement(&guest, &degraded, Strategy::Overlap { c: 4.0 })
            .expect("fresh plan");
        let fresh_run = run_with(&fresh);
        let auto = plan_line_placement(&guest, &degraded, Strategy::Auto).expect("auto plan");
        let auto_run = run_with(&auto);
        let ok = validate_run(&trace, &stale_run).is_empty()
            && validate_run(&trace, &fresh_run).is_empty()
            && validate_run(&trace, &auto_run).is_empty();
        t.row(vec![
            f.to_string(),
            f2(stale_run.stats.slowdown),
            f2(fresh_run.stats.slowdown),
            f2(auto_run.stats.slowdown),
            f2(stale_run.stats.slowdown / auto_run.stats.slowdown.max(1e-9)),
            ok.to_string(),
        ]);
    }
    t.note(
        "correctness is placement-independent (every run validates), but performance is \
         not. Re-planned OVERLAP ties the stale plan — its killing zone around the spike \
         scales with d_ave, which the spike itself inflates, so no integer overlap ever \
         bridges an off-dyadic spike. Re-resolving the *strategy* from the new delay \
         statistics (Auto → wide halo) is what actually adapts.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replanned_overlap_ties_but_auto_wins() {
        let t = run(Scale::Quick);
        for r in &t.rows {
            assert_eq!(r[5], "true");
        }
        // Finding 1: re-planned OVERLAP ≈ stale OVERLAP at every level.
        let stale = t.column_f64("stale overlap");
        let fresh = t.column_f64("re-planned overlap");
        for (s, f) in stale.iter().zip(&fresh) {
            let ratio = (s / f).max(f / s);
            assert!(
                ratio < 1.25,
                "overlap replanning should be a no-op: {s} vs {f}"
            );
        }
        // Finding 2: auto adaptation wins by ≥ 3× at the largest spike.
        let gain = t.column_f64("stale/auto");
        assert!(
            gain.last().unwrap() > &3.0,
            "auto should win big at extreme degradation: {gain:?}"
        );
    }
}
