//! E15 — §7's closing wish: tree guests on a NOW.
//!
//! Binary trees don't fold onto a line (no SlotMap exists), so OVERLAP's
//! interval machinery doesn't apply — the engine still executes any
//! complete assignment. We compare subtree-contiguous (DFS) placement with
//! scattered (heap-order) placement. The measured finding: locality cuts
//! *traffic* by 5–20×, but the slowdown barely moves — every placement
//! pays a per-step cross-processor dependency cycle on its critical path,
//! which only redundant computation could amortize, and no
//! dilation-preserving line fold exists for trees to derive it from the
//! paper's machinery. The §7 open problem for trees is genuinely open.

use crate::scale::Scale;
use crate::table::{f2, Table};
use overlap_core::tree_guest::{bfs_blocks, crossing_edges, dfs_blocks, simulate_tree_on_host};
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap_net::topology::linear_array;
use overlap_net::DelayModel;

/// Run the tree-guest table.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(8u32, 16);
    let steps = scale.pick(12u32, 24);
    let levels: Vec<u32> = match scale {
        Scale::Quick => vec![6, 8],
        Scale::Full => vec![6, 8, 10, 12],
    };
    let host = linear_array(n, DelayModel::uniform(2, 16), 9);

    let mut t = Table::new(
        format!("E15 · §7 — binary-tree guests on a {n}-workstation NOW"),
        &[
            "tree cells",
            "dfs crossing edges",
            "bfs crossing edges",
            "messages dfs/bfs",
            "dfs slowdown",
            "bfs slowdown",
            "valid",
        ],
    );
    for &lv in &levels {
        let guest = GuestSpec::tree(lv, ProgramKind::Relaxation, 3, steps);
        let trace = ReferenceRun::execute(&guest);
        let dfs = simulate_tree_on_host(&guest, &host, true, Some(&trace)).expect("dfs");
        let bfs = simulate_tree_on_host(&guest, &host, false, Some(&trace)).expect("bfs");
        t.row(vec![
            guest.num_cells().to_string(),
            crossing_edges(lv, &dfs_blocks(lv, n)).to_string(),
            crossing_edges(lv, &bfs_blocks(lv, n)).to_string(),
            format!("{} / {}", dfs.stats.messages, bfs.stats.messages),
            f2(dfs.stats.slowdown),
            f2(bfs.stats.slowdown),
            (dfs.validated && bfs.validated).to_string(),
        ]);
    }
    t.note(
        "subtree-contiguous placement cuts crossing edges and traffic by an order of \
         magnitude, yet the slowdowns stay within ~10% of each other: the per-step \
         parent↔child dependency cycles across processor boundaries dominate either \
         way. Breaking them needs redundant computation, and trees admit no \
         dilation-preserving line fold from which to inherit OVERLAP's — evidence that \
         §7's tree question is genuinely open, not just unimplemented.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_cuts_traffic_but_slowdowns_stay_close() {
        let t = run(Scale::Quick);
        for r in &t.rows {
            assert_eq!(r[6], "true");
            let dfs_x: f64 = r[1].parse().unwrap();
            let bfs_x: f64 = r[2].parse().unwrap();
            assert!(dfs_x < bfs_x, "dfs must cross fewer edges: {r:?}");
            let msgs: Vec<u64> = r[3].split('/').map(|p| p.trim().parse().unwrap()).collect();
            assert!(
                msgs[0] * 2 < msgs[1],
                "dfs must at least halve traffic: {r:?}"
            );
            // The headline finding: slowdowns within 2× of each other —
            // critical-path cycles, not traffic, dominate.
            let sd: f64 = r[4].parse().unwrap();
            let sb: f64 = r[5].parse().unwrap();
            let ratio = (sd / sb).max(sb / sd);
            assert!(ratio < 2.0, "slowdowns should be comparable: {r:?}");
        }
    }
}
