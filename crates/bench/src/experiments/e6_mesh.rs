//! E6 — Theorems 7/8: emulating an `N`-cell 2-D array on linear hosts and
//! NOWs.
//!
//! Sweep the guest side `m` (N = m²) on a fixed host; the paper predicts
//! slowdown `O(√N·log³N + N^{1/4}·√d_ave·log³N)` — at lab scale the √N
//! term dominates, so the log-log exponent of slowdown vs N should be
//! ≈ 0.5, and work efficiency should hold steady.

use crate::scale::Scale;
use crate::table::{f2, f3, Table};
use overlap_core::mesh::simulate_mesh_with_trace;
use overlap_core::theory;
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap_net::topology::{linear_array, mesh2d};
use overlap_net::DelayModel;
use overlap_sim::sweep::par_map;

/// Run the mesh-emulation sweep.
pub fn run(scale: Scale) -> Table {
    let sides: Vec<u32> = match scale {
        Scale::Quick => vec![6, 12, 24],
        Scale::Full => vec![8, 16, 32, 64, 96],
    };
    let n_host = scale.pick(8u32, 16);
    let steps = scale.pick(12u32, 24);

    let mut t = Table::new(
        format!("E6 · Theorems 7/8 — m×m guest arrays on hosts of {n_host} workstations"),
        &[
            "N = m²",
            "host",
            "slowdown",
            "predicted shape",
            "efficiency",
            "valid",
        ],
    );
    let line_host = linear_array(n_host, DelayModel::uniform(1, 7), 5);
    let mesh_host = mesh2d(
        (n_host as f64).sqrt().ceil() as u32,
        (n_host as f64).sqrt().ceil() as u32,
        DelayModel::uniform(1, 7),
        5,
    );
    let mut pts = Vec::new();
    let runs = par_map(&sides, |&m| {
        let guest = GuestSpec::mesh(m, m, ProgramKind::Relaxation, 3, steps);
        let trace = ReferenceRun::execute(&guest);
        let a = simulate_mesh_with_trace(&guest, &line_host, 4.0, 2, &trace).expect("line host");
        let b = simulate_mesh_with_trace(&guest, &mesh_host, 4.0, 2, &trace).expect("mesh host");
        (m, a, b)
    });
    for (m, a, b) in runs {
        let n_cells = (m as u64) * (m as u64);
        pts.push((n_cells as f64, a.stats.slowdown));
        for (host, r) in [("line", a), ("mesh", b)] {
            t.row(vec![
                n_cells.to_string(),
                host.to_string(),
                f2(r.stats.slowdown),
                f2(theory::t8_predicted(n_cells, r.d_ave)),
                f3(r.stats.efficiency()),
                r.validated.to_string(),
            ]);
        }
    }
    t.note(format!(
        "log-log exponent of slowdown vs N (line host): {:.2}. With the host size fixed, \
         Theorem 7's O(m + m²/n₀) has exponent 0.5 (the √N term) while m ≤ n₀ and 1.0 \
         (the N/n₀ term) beyond — the measured exponent sits between, and the \
         work-preserving N^½ shape is recovered when hosts scale with the guest.",
        theory::loglog_slope(&pts)
    ));
    t
}

/// Higher-dimensional and wraparound grids (the paper's final remark:
/// "Theorem 8 can be generalized to higher dimensional arrays").
pub fn run_higher(scale: Scale) -> Table {
    let n_host = scale.pick(8u32, 16);
    let steps = scale.pick(8u32, 16);
    let host = linear_array(n_host, DelayModel::uniform(1, 7), 5);
    let mut t = Table::new(
        format!("E6b · higher-dimensional guests on a {n_host}-workstation line"),
        &["guest", "cells", "slowdown", "efficiency", "valid"],
    );
    let side = scale.pick(8u32, 16);
    let guests = vec![
        (
            format!("{side}×{side} torus"),
            GuestSpec::torus(side, side, ProgramKind::Relaxation, 3, steps),
        ),
        (
            format!("{side}×{side} mesh"),
            GuestSpec::mesh(side, side, ProgramKind::Relaxation, 3, steps),
        ),
        (
            format!("{s3}×{s3}×{s3} mesh", s3 = side / 2),
            GuestSpec::mesh3(
                side / 2,
                side / 2,
                side / 2,
                ProgramKind::Relaxation,
                3,
                steps,
            ),
        ),
    ];
    for (name, guest) in guests {
        let trace = ReferenceRun::execute(&guest);
        let r = simulate_mesh_with_trace(&guest, &host, 4.0, 2, &trace).expect("grid run");
        t.row(vec![
            name,
            guest.num_cells().to_string(),
            f2(r.stats.slowdown),
            f3(r.stats.efficiency()),
            r.validated.to_string(),
        ]);
    }
    t.note(
        "the torus folds onto the line with the same ring fold as 1-D (slot width 2h); \
         the 3-D mesh assigns whole x-slabs — both validate bit-for-bit against the \
         unit-delay reference and keep the strip-emulation slowdown shape.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_dimensional_guests_validate() {
        let t = run_higher(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        for r in &t.rows {
            assert_eq!(r[4], "true", "{} failed", r[0]);
        }
    }

    #[test]
    fn mesh_emulation_validates_and_scales_like_sqrt_n() {
        let t = run(Scale::Quick);
        for r in &t.rows {
            assert_eq!(r[5], "true", "row {r:?}");
        }
        // N grows 16× between first and last side; slowdown should grow
        // roughly 4× (√N), well under 10×.
        let line_rows: Vec<f64> = t
            .rows
            .iter()
            .filter(|r| r[1] == "line")
            .map(|r| r[2].parse().unwrap())
            .collect();
        let growth = line_rows.last().unwrap() / line_rows[0];
        assert!(
            growth < 10.0 && growth > 1.5,
            "√N shape violated: {line_rows:?}"
        );
    }
}
