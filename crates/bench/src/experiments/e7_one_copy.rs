//! E7 — Theorem 9: with one copy per database, host `H1` forces slowdown
//! `d_max = √n` even though `d_ave = O(1)`.
//!
//! For each `n`: the *certificate* (a machine-checked lower bound on any
//! execution) of three single-copy layout families — all must be ≥ √n —
//! plus the engine-measured slowdown of the blocked single-copy layout
//! and of OVERLAP's multi-copy assignment on the same host. Redundant
//! copies are exactly what escapes the bound.

use super::simulate_line_with_trace;
use crate::scale::Scale;
use crate::table::{f2, Table};
use overlap_core::lower::{one_copy_certificate, one_copy_layout, OneCopyLayout};
use overlap_core::pipeline::Strategy;
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap_net::topology::h1_lower_bound;
use overlap_sim::engine::{Engine, EngineConfig};
use overlap_sim::validate::validate_run;
use overlap_sim::Assignment;

/// Run the Theorem 9 table.
pub fn run(scale: Scale) -> Table {
    let sizes: Vec<u32> = match scale {
        Scale::Quick => vec![256, 1024],
        Scale::Full => vec![64, 256, 1024, 4096],
    };
    let steps = scale.pick(24u32, 48);

    let mut t = Table::new(
        "E7 · Theorem 9 — one copy per database on H1 (√n spikes, d_ave = O(1))",
        &[
            "n",
            "√n",
            "cert(blocked)",
            "cert(island)",
            "cert(scatter)",
            "measured 1-copy",
            "measured halo (multi-copy)",
            "valid",
        ],
    );
    for &n in &sizes {
        let host = h1_lower_bound(n);
        let m = n;
        let sqrt_n = (n as f64).sqrt();
        let certs: Vec<f64> = [
            OneCopyLayout::Blocked,
            OneCopyLayout::OneIsland,
            OneCopyLayout::Scatter { stride: 7 },
        ]
        .iter()
        .map(|&l| one_copy_certificate(&host, &one_copy_layout(l, n, m)))
        .collect();

        // Engine-measured: blocked single-copy vs OVERLAP multi-copy.
        let guest = GuestSpec::array(m, ProgramKind::Relaxation, 1, steps);
        let trace = ReferenceRun::execute(&guest);
        let holders = one_copy_layout(OneCopyLayout::Blocked, n, m);
        let single = Assignment::from_holders(n, m, holders.iter().map(|&p| vec![p]).collect());
        let one = Engine::new(&guest, &host, &single, EngineConfig::default())
            .run()
            .expect("single-copy run");
        let one_ok = validate_run(&trace, &one).is_empty();
        // The multi-copy escape: halo regions of width w ≈ n^(1/4) ≈ √d_max
        // around every processor (the Theorem 4/5 redundancy structure):
        // adjacent regions share 2w columns, so each spike is paid once per
        // 2w rows at the price of 2w+1 database copies per processor.
        let w = (sqrt_n.sqrt().ceil() as u32).max(2);
        let ov = simulate_line_with_trace(&guest, &host, Strategy::Halo { halo: w }, &trace)
            .expect("halo");
        t.row(vec![
            n.to_string(),
            f2(sqrt_n),
            f2(certs[0]),
            f2(certs[1]),
            f2(certs[2]),
            f2(one.stats.slowdown),
            f2(ov.stats.slowdown),
            (one_ok && ov.validated).to_string(),
        ]);
    }
    t.note(
        "every single-copy certificate is ≥ √n (the Theorem 9 dichotomy: few processors ⇒ \
         work bound; many ⇒ adjacent databases across a √n-delay spike). The multi-copy \
         halo assignment — redundancy the theorem forbids — drops below √n: redundant \
         computation is *necessary* to hide latency in the database model.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certificates_meet_sqrt_n_and_measured_respects_certificate() {
        let t = run(Scale::Quick);
        for r in &t.rows {
            let sqrt_n: f64 = r[1].parse().unwrap();
            for cell in &r[2..5] {
                let cert: f64 = cell.parse().unwrap();
                assert!(cert >= 0.9 * sqrt_n, "cert {cert} < √n {sqrt_n}");
            }
            // measured single-copy slowdown should be at least a large
            // fraction of the certificate (certificate is a lower bound;
            // startup effects can only add).
            let cert: f64 = r[2].parse().unwrap();
            let measured: f64 = r[5].parse().unwrap();
            assert!(
                measured >= 0.5 * cert,
                "measured {measured} far below certificate {cert}"
            );
            assert_eq!(r[7], "true");
        }
    }

    #[test]
    fn multi_copy_halo_beats_single_copy_at_scale() {
        let t = run(Scale::Quick);
        // At the largest quick size (n = 1024) the multi-copy strategy
        // must drop clearly below the single-copy √n floor.
        let last = t.rows.last().unwrap();
        let single: f64 = last[5].parse().unwrap();
        let multi: f64 = last[6].parse().unwrap();
        assert!(
            multi < 0.75 * single,
            "halo {multi} should beat single-copy {single} on H1"
        );
    }
}
