//! E1 — Theorem 2: OVERLAP slowdown is `O(d_ave·log³n)` and *independent
//! of `d_max`*.
//!
//! Two sweeps:
//!
//! * `slowdown vs d_ave` at fixed `n`, uniform delays — the slope should
//!   be ≈ linear in `d_ave` (log-log exponent ≈ 1);
//! * `d_max` stress: hosts with identical `d_ave ≈ 2` but `d_max` rising
//!   by orders of magnitude (spike delays). OVERLAP's measured slowdown
//!   must stay flat while the blocked baseline tracks `d_max`.

use super::simulate_line_with_trace;
use crate::scale::Scale;
use crate::table::{f2, Table};
use overlap_core::pipeline::Strategy;
use overlap_core::theory;
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap_net::topology::linear_array;
use overlap_net::{DelayModel, HostGraph};
use overlap_sim::sweep::par_map;

fn host_stats(h: &HostGraph) -> (f64, u64) {
    let s = overlap_net::metrics::DelayStats::of(h);
    (s.d_ave, s.d_max)
}

/// Sweep slowdown against `d_ave` at fixed host size.
pub fn run_dave_sweep(scale: Scale) -> Table {
    let n = scale.pick(128u32, 512);
    let steps = scale.pick(48u32, 128);
    let daves: Vec<u64> = match scale {
        Scale::Quick => vec![1, 4, 16],
        Scale::Full => vec![1, 2, 4, 8, 16, 32, 64],
    };
    let guest = GuestSpec::array(n / 2, ProgramKind::Relaxation, 7, steps);
    let trace = ReferenceRun::execute(&guest);

    let mut t = Table::new(
        format!("E1a · Theorem 2 — OVERLAP slowdown vs d_ave (n = {n} hosts)"),
        &[
            "d_ave",
            "d_max",
            "slowdown",
            "predicted O(d·log³n)",
            "load",
            "valid",
        ],
    );
    let rows = par_map(&daves, |&d| {
        let host = linear_array(n, DelayModel::uniform(1, 2 * d.max(1) - 1), 11);
        let (d_ave, d_max) = host_stats(&host);
        let r = simulate_line_with_trace(&guest, &host, Strategy::Overlap { c: 4.0 }, &trace)
            .expect("overlap run");
        (d_ave, d_max, r)
    });
    let mut pts = Vec::new();
    for (d_ave, d_max, r) in rows {
        pts.push((d_ave, r.stats.slowdown));
        t.row(vec![
            f2(d_ave),
            d_max.to_string(),
            f2(r.stats.slowdown),
            f2(theory::t2_predicted(n, d_ave)),
            r.stats.load.to_string(),
            r.validated.to_string(),
        ]);
    }
    let slope = theory::loglog_slope(&pts);
    t.note(format!(
        "log-log slope of slowdown vs d_ave: {slope:.2} (paper predicts ≈ 1 for the \
         O(d_ave·log³n) regime)"
    ));
    t.block(crate::plot::ascii_loglog(
        "OVERLAP slowdown vs d_ave (log-log)",
        &[("measured", 'o', &pts)],
        64,
        16,
    ));
    t
}

/// The `d_max` robustness stress: host families with the *same total
/// delay* (same `d_ave`) but wildly different `d_max` — uniform, bursty
/// (the budget concentrated in periodic spikes), and a single giant
/// mid-array spike. The paper's bound depends only on `d_ave`, so
/// OVERLAP's slowdown must vary far less across the families than the
/// blocked baseline's, which tracks `d_max`.
pub fn run_dmax_stress(scale: Scale) -> Table {
    let n = scale.pick(256u32, 512);
    let steps = scale.pick(48u32, 128);
    let d_bar = 8u64; // per-link delay budget
    let links = (n - 1) as u64;
    // Work-efficient sizing: a guest 4× the host gives the overlap
    // regions real width (in cells), which is what amortizes the spikes.
    let guest = GuestSpec::array(4 * n, ProgramKind::Relaxation, 7, steps);
    let trace = ReferenceRun::execute(&guest);

    // Three hosts with total delay ≈ links·d_bar.
    let period = 16u64;
    let burst_spike = d_bar * period - (period - 1);
    let giant = links * d_bar - (links - 1);
    let hosts: Vec<HostGraph> = vec![
        linear_array(n, DelayModel::constant(d_bar), 0),
        linear_array(
            n,
            DelayModel::Spike {
                base: 1,
                spike: burst_spike,
                period,
            },
            0,
        ),
        overlap_net::topology::line_with_middle_spike(n, giant),
    ];

    let mut t = Table::new(
        format!("E1b · Theorem 2 — d_max robustness at fixed d_ave ≈ {d_bar} (n = {n} hosts)"),
        &[
            "host",
            "d_ave",
            "d_max",
            "overlap slowdown",
            "blocked slowdown",
            "blocked/overlap",
            "valid",
        ],
    );
    let rows = par_map(&hosts, |host| {
        let (d_ave, d_max) = host_stats(host);
        let o = simulate_line_with_trace(&guest, host, Strategy::Overlap { c: 4.0 }, &trace)
            .expect("overlap");
        let b = simulate_line_with_trace(&guest, host, Strategy::Blocked, &trace).expect("blocked");
        (host.name().to_string(), d_ave, d_max, o, b)
    });
    let mut overlap_slow = Vec::new();
    let mut blocked_slow = Vec::new();
    for (name, d_ave, d_max, o, b) in rows {
        overlap_slow.push(o.stats.slowdown);
        blocked_slow.push(b.stats.slowdown);
        t.row(vec![
            name,
            f2(d_ave),
            d_max.to_string(),
            f2(o.stats.slowdown),
            f2(b.stats.slowdown),
            f2(b.stats.slowdown / o.stats.slowdown.max(1e-9)),
            (o.validated && b.validated).to_string(),
        ]);
    }
    let spread = |v: &[f64]| {
        v.iter().cloned().fold(f64::MIN, f64::max)
            / v.iter().cloned().fold(f64::MAX, f64::min).max(1e-9)
    };
    t.note(format!(
        "same d_ave, d_max varies {:.0}×: OVERLAP slowdown spread {:.2}× vs blocked spread \
         {:.2}× — the bound depends on d_ave, not d_max",
        giant as f64 / d_bar as f64,
        spread(&overlap_slow),
        spread(&blocked_slow),
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dave_sweep_shape() {
        let t = run_dave_sweep(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        // all validated
        for r in &t.rows {
            assert_eq!(r[5], "true");
        }
        // slowdown grows with d_ave
        let s = t.column_f64("slowdown");
        assert!(s[0] < s[2], "slowdown must rise with d_ave: {s:?}");
    }

    #[test]
    fn dmax_stress_overlap_is_flatter_than_blocked() {
        let t = run_dmax_stress(Scale::Quick);
        for r in &t.rows {
            assert_eq!(r[6], "true", "row {r:?}");
        }
        let o = t.column_f64("overlap slowdown");
        let b = t.column_f64("blocked slowdown");
        // Across hosts of equal d_ave, d_max rises by orders of magnitude:
        // OVERLAP's spread must be a fraction of the blocked baseline's.
        let spread = |v: &[f64]| {
            v.iter().cloned().fold(f64::MIN, f64::max) / v.iter().cloned().fold(f64::MAX, f64::min)
        };
        assert!(
            spread(&o) < spread(&b) / 2.0,
            "overlap spread {:.2} vs blocked spread {:.2}",
            spread(&o),
            spread(&b)
        );
        // And OVERLAP must win outright on the giant-spike host.
        let last = t.rows.last().unwrap();
        let ratio: f64 = last[5].parse().unwrap();
        assert!(ratio > 1.5, "blocked/overlap on giant spike: {ratio}");
    }
}
