//! E17 — 2-D killing: the paper's stage-1 idea lifted to mesh hosts.
//!
//! A NOW-shaped mesh host has a catastrophic 2×2 pocket (all internal
//! links ≈ 10⁶ ticks — a broken switch). The plain 2-D halo placement
//! forces the pocket's processors to exchange with each other every ω
//! steps across those links; the adaptive placement (quadtree killing +
//! Voronoi redistribution, `core::direct2d`) gives them nothing, and their
//! guest blocks go to nearby live processors. Same engine, same guest,
//! validated both ways.

use crate::scale::Scale;
use crate::table::{f2, Table};
use overlap_core::direct2d::{adaptive2d_assignment, halo2d_assignment, kill2d};
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap_net::HostGraph;
use overlap_sim::engine::{Engine, EngineConfig};
use overlap_sim::validate::validate_run;

fn pocket_host(w: u32, h: u32, pocket_delay: u64) -> HostGraph {
    let mut g = HostGraph::new(format!("mesh-pocket({w}x{h})"), w * h);
    let in_pocket = |v: u32| {
        let (x, y) = (v / h, v % h);
        x < 2 && y < 2
    };
    for x in 0..w {
        for y in 0..h {
            let v = x * h + y;
            if y + 1 < h {
                let d = if in_pocket(v) && in_pocket(v + 1) {
                    pocket_delay
                } else {
                    2
                };
                g.add_link(v, v + 1, d);
            }
            if x + 1 < w {
                let d = if in_pocket(v) && in_pocket(v + h) {
                    pocket_delay
                } else {
                    2
                };
                g.add_link(v, v + h, d);
            }
        }
    }
    g
}

/// Run the adaptive-2-D table.
pub fn run(scale: Scale) -> Table {
    let (w, h) = (16u32, 16u32);
    let g = 2u32;
    let omega = 1u32;
    let steps = scale.pick(12u32, 24);
    let pockets: Vec<u64> = match scale {
        Scale::Quick => vec![2, 2_048],
        Scale::Full => vec![2, 128, 2_048, 65_536],
    };
    let guest = GuestSpec::mesh(w * g, h * g, ProgramKind::Relaxation, 7, steps);
    let trace = ReferenceRun::execute(&guest);

    let mut t = Table::new(
        format!("E17 · 2-D killing on a {w}×{h} mesh host with a catastrophic 2×2 pocket"),
        &[
            "pocket delay",
            "killed procs",
            "plain halo slowdown",
            "adaptive slowdown",
            "plain/adaptive",
            "valid",
        ],
    );
    for &pd in &pockets {
        let host = pocket_host(w, h, pd);
        let killed = kill2d(&host, w, h, 4.0).iter().filter(|&&a| !a).count();
        let plain = halo2d_assignment(w, h, g, omega);
        let adaptive = adaptive2d_assignment(&host, w, h, g, omega, 4.0);
        let run = |a: &overlap_sim::Assignment| {
            let out = Engine::new(&guest, &host, a, EngineConfig::default())
                .run()
                .expect("run");
            let ok = validate_run(&trace, &out).is_empty();
            (out.stats.slowdown, ok)
        };
        let (ps, p_ok) = run(&plain);
        let (as_, a_ok) = run(&adaptive);
        t.row(vec![
            pd.to_string(),
            killed.to_string(),
            f2(ps),
            f2(as_),
            f2(ps / as_.max(1e-9)),
            (p_ok && a_ok).to_string(),
        ]);
    }
    t.note(
        "the quadtree killing removes exactly the pocket (the paper's Lemma-1 algebra \
         carries over: only regions under n/(c·log n) of the area can ever die); the \
         Voronoi redistribution hands their guest blocks to neighbours, trading a small \
         load increase for removing the catastrophic links from every dependency cycle.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_wins_once_the_pocket_is_catastrophic() {
        let t = run(Scale::Quick);
        for r in &t.rows {
            assert_eq!(r[5], "true");
        }
        // Benign pocket: nothing killed, plans comparable.
        let first_killed: u32 = t.rows[0][1].parse().unwrap();
        assert_eq!(first_killed, 0, "benign host must not be killed");
        let ratio0: f64 = t.rows[0][4].parse().unwrap();
        assert!((0.5..=2.0).contains(&ratio0), "benign ratio {ratio0}");
        // Catastrophic pocket: killed, and adaptive wins big.
        let last = t.rows.last().unwrap();
        let killed: u32 = last[1].parse().unwrap();
        assert!(killed >= 4, "pocket must be killed: {killed}");
        let ratio: f64 = last[4].parse().unwrap();
        assert!(ratio > 3.0, "adaptive must win: {ratio}");
    }
}
