//! Fault tolerance: OVERLAP's graceful degradation vs the single-copy
//! baseline, as a function of link downtime.
//!
//! Seeded random link outages (via [`FaultPlan::with_random_outages`]) are
//! injected at growing downtime fractions. OVERLAP's replicated databases
//! mean a downed route only costs retries — the run completes and still
//! validates bit-exactly against the unit-delay reference. The blocked
//! single-copy placement has no redundancy: the same outage schedule
//! stalls it far longer (every lost transfer blocks the only holder of
//! the destination column), and a processor crash loses its columns
//! outright — the run aborts with `ColumnLost`, while OVERLAP reroutes
//! the orphaned subscriptions to surviving copies and finishes.
//!
//! Results land in the markdown table **and** in `BENCH_faults.json` at
//! the workspace root: per downtime fraction, slowdown inflation, retry
//! and stall counts for both placements, plus the crash scenario.

use crate::{Scale, Table};
use overlap_core::pipeline::Strategy;
use overlap_core::{Error, Simulation};
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap_net::topology::linear_array;
use overlap_net::{DelayModel, HostGraph};
use overlap_sim::engine::RunError;
use overlap_sim::{FaultPlan, FaultStats};

/// One placement's behaviour under one fault schedule.
pub struct Arm {
    /// `makespan / guest_steps`, or `None` if the run aborted.
    pub slowdown: Option<f64>,
    /// Slowdown relative to the same placement's fault-free run.
    pub inflation: Option<f64>,
    /// Engine fault counters (zeroed on abort).
    pub faults: FaultStats,
    /// Did every surviving copy validate against the reference?
    pub validated: bool,
    /// The abort error, when the run did not complete.
    pub abort: Option<String>,
}

/// One downtime fraction: OVERLAP vs the single-copy blocked baseline.
pub struct FaultRow {
    /// Per-link downtime fraction, percent.
    pub downtime_pct: u32,
    /// OVERLAP (redundant copies).
    pub overlap: Arm,
    /// Blocked (exactly one copy per database).
    pub baseline: Arm,
}

fn run_arm(
    guest: &GuestSpec,
    host: &HostGraph,
    strategy: Strategy,
    faults: Option<FaultPlan>,
    clean_slowdown: f64,
    trace: &overlap_model::ReferenceTrace,
) -> Arm {
    let mut builder = Simulation::of(guest).on(host).strategy(strategy);
    if let Some(plan) = faults {
        builder = builder.faults(plan);
    }
    match builder.build().and_then(|sim| sim.run_with_trace(trace)) {
        Ok(r) => Arm {
            slowdown: Some(r.stats.slowdown),
            inflation: Some(r.stats.slowdown / clean_slowdown),
            faults: r.stats.faults,
            validated: r.validated,
            abort: None,
        },
        Err(Error::Run(e)) => Arm {
            slowdown: None,
            inflation: None,
            faults: FaultStats::default(),
            validated: false,
            abort: Some(match e {
                RunError::ColumnLost { cell, tick } => {
                    format!("ColumnLost{{cell {cell}, tick {tick}}}")
                }
                other => other.to_string(),
            }),
        },
        Err(e) => panic!("planning failed: {e}"),
    }
}

/// The measured sweep: downtime fractions plus the crash scenario
/// (encoded as the final row, `downtime_pct == CRASH_ROW`).
pub const CRASH_ROW: u32 = u32::MAX;

/// Run the sweep and return one row per downtime fraction, then the
/// crash row.
pub fn measure(scale: Scale) -> Vec<FaultRow> {
    let (procs, cells, steps) = scale.pick((12, 48, 40), (16, 96, 64));
    // A NOW: mostly fast local links, a few slow wide-area hops — the
    // regime where the paper's redundant placements replicate databases
    // across the slow boundaries.
    let dm = DelayModel::Bimodal {
        lo: 1,
        hi: scale.pick(120, 200),
        p_hi: 0.2,
    };
    let host = linear_array(procs, dm, 9);
    let guest = GuestSpec::array(cells, ProgramKind::KvWorkload, 7, steps);
    let trace = ReferenceRun::execute(&guest);

    let clean = |strategy: Strategy| -> f64 {
        Simulation::of(&guest)
            .on(&host)
            .strategy(strategy)
            .build()
            .and_then(|s| s.run_with_trace(&trace))
            .expect("clean run")
            .stats
            .slowdown
    };
    // Theorem 5's combined strategy is the OVERLAP composition that
    // actually replicates at lab scale (pure OVERLAP's interval overlap
    // vanishes at a dozen processors).
    let overlap_strat = Strategy::Combined {
        c: 4.0,
        expansion: 2,
    };
    let clean_overlap = clean(overlap_strat);
    let clean_blocked = clean(Strategy::Blocked);
    // Outages must actually intersect the *redundant* run — scale the
    // horizon to its fault-free makespan (with slack for degradation).
    // The baseline runs longer still, so it sees at least this exposure.
    let horizon = (clean_overlap * steps as f64 * 6.0) as u64;
    let mean_outage = (horizon / 24).max(8);

    let mut rows: Vec<FaultRow> = [0u32, 5, 10, 20, 30]
        .iter()
        .map(|&pct| {
            let plan = (pct > 0).then(|| {
                FaultPlan::new().with_random_outages(
                    &host,
                    77,
                    pct as f64 / 100.0,
                    mean_outage,
                    horizon,
                )
            });
            FaultRow {
                downtime_pct: pct,
                overlap: run_arm(
                    &guest,
                    &host,
                    overlap_strat,
                    plan.clone(),
                    clean_overlap,
                    &trace,
                ),
                baseline: run_arm(
                    &guest,
                    &host,
                    Strategy::Blocked,
                    plan,
                    clean_blocked,
                    &trace,
                ),
            }
        })
        .collect();

    // Crash scenario: kill one processor a third of the way into the
    // clean makespan. The victim must be a processor whose every column
    // has a surviving copy, so the redundant placement can recover; the
    // single-copy baseline loses the columns no matter whom we kill.
    // OVERLAP's interval overlap only replicates boundary columns, so if
    // no processor is fully covered we fall back to the block-wide halo
    // placement, which doubly covers everything.
    let find_victim = |assign: &overlap_sim::Assignment| {
        (0..procs).find(|&p| {
            !assign.cells_of(p).is_empty()
                && assign
                    .cells_of(p)
                    .iter()
                    .all(|&c| assign.holders(c).len() >= 2)
        })
    };
    let planned = Simulation::of(&guest)
        .on(&host)
        .strategy(overlap_strat)
        .build()
        .expect("plan");
    let (crash_strat, victim) = match find_victim(planned.assignment()) {
        Some(v) => (overlap_strat, v),
        None => {
            let halo = Strategy::Halo {
                halo: cells.div_ceil(procs),
            };
            let p = Simulation::of(&guest)
                .on(&host)
                .strategy(halo)
                .build()
                .expect("plan halo");
            let v = find_victim(p.assignment())
                .expect("a block-wide halo doubly covers every processor");
            (halo, v)
        }
    };
    let clean_crash = if crash_strat == overlap_strat {
        clean_overlap
    } else {
        clean(crash_strat)
    };
    // The crash must land while *both* placements are still running.
    let crash_at = (clean_crash.min(clean_blocked) * steps as f64 / 3.0).max(2.0) as u64;
    let plan = FaultPlan::new().crash(victim, crash_at);
    rows.push(FaultRow {
        downtime_pct: CRASH_ROW,
        overlap: run_arm(
            &guest,
            &host,
            crash_strat,
            Some(plan.clone()),
            clean_crash,
            &trace,
        ),
        baseline: run_arm(
            &guest,
            &host,
            Strategy::Blocked,
            Some(plan),
            clean_blocked,
            &trace,
        ),
    });
    rows
}

fn json_arm(a: &Arm) -> String {
    match (&a.abort, a.slowdown) {
        (Some(err), _) => format!(
            "{{\"completed\": false, \"abort\": \"{err}\", \"validated\": false}}"
        ),
        (None, Some(s)) => format!(
            "{{\"completed\": true, \"slowdown\": {:.2}, \"inflation\": {:.2}, \"retries\": {}, \"rerouted_subscriptions\": {}, \"fault_stall_ticks\": {}, \"crashed_procs\": {}, \"lost_copies\": {}, \"validated\": {}}}",
            s,
            a.inflation.unwrap_or(1.0),
            a.faults.retries,
            a.faults.rerouted_subscriptions,
            a.faults.fault_stall_ticks,
            a.faults.crashed_procs,
            a.faults.lost_copies,
            a.validated
        ),
        _ => unreachable!("completed runs carry a slowdown"),
    }
}

/// Render the sweep as `BENCH_faults.json`.
pub fn to_json(rows: &[FaultRow]) -> String {
    let mut out = String::from(
        "{\n  \"benchmark\": \"fault_tolerance\",\n  \"baseline\": \"blocked single-copy placement, same fault schedule\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        let scenario = if r.downtime_pct == CRASH_ROW {
            "\"crash\"".to_string()
        } else {
            format!("{}", r.downtime_pct)
        };
        out.push_str(&format!(
            "    {{\"downtime_pct\": {}, \"overlap\": {}, \"single_copy\": {}}}{}\n",
            scenario,
            json_arm(&r.overlap),
            json_arm(&r.baseline),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn fmt_arm(a: &Arm) -> (String, String) {
    match (&a.abort, a.slowdown) {
        (Some(err), _) => ("ABORT".into(), err.clone()),
        (None, Some(s)) => (
            format!("{s:.2} ({:.2}x)", a.inflation.unwrap_or(1.0)),
            format!(
                "{} retries, {} rerouted, {} stall",
                a.faults.retries, a.faults.rerouted_subscriptions, a.faults.fault_stall_ticks
            ),
        ),
        _ => unreachable!(),
    }
}

/// The experiment: measure, write `BENCH_faults.json`, return the table.
pub fn run(scale: Scale) -> Table {
    let rows = measure(scale);
    let json = to_json(&rows);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_faults.json");
    std::fs::write(&path, &json).expect("write BENCH_faults.json");

    let mut t = Table::new(
        "FAULTS · OVERLAP graceful degradation vs single-copy baseline",
        &[
            "scenario",
            "overlap slowdown",
            "overlap recovery",
            "overlap ok",
            "1-copy slowdown",
            "1-copy recovery",
        ],
    );
    for r in &rows {
        let (os, orec) = fmt_arm(&r.overlap);
        let (bs, brec) = fmt_arm(&r.baseline);
        let scenario = if r.downtime_pct == CRASH_ROW {
            "proc crash".into()
        } else {
            format!("{}% downtime", r.downtime_pct)
        };
        t.row(vec![
            scenario,
            os,
            orec,
            format!("{}", r.overlap.validated),
            bs,
            brec,
        ]);
    }
    t.note(
        "seeded random link outages (identical schedule for both placements); slowdown \
         inflation is vs the same placement's fault-free run. OVERLAP's redundant copies \
         turn outages into retries and a crash into re-subscription to surviving holders; \
         the single-copy baseline stalls on every outage and aborts (ColumnLost) on the \
         crash. JSON copy written to BENCH_faults.json.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_survives_what_kills_the_single_copy_baseline() {
        let rows = measure(Scale::Quick);
        assert_eq!(rows.len(), 6);
        // Every OVERLAP arm completes and validates, outages included.
        for r in &rows {
            assert!(r.overlap.validated, "scenario {}", r.downtime_pct);
            assert!(r.overlap.abort.is_none());
        }
        // ≥10% downtime: OVERLAP still validates while paying retries.
        let ten = rows.iter().find(|r| r.downtime_pct == 10).unwrap();
        assert!(ten.overlap.faults.retries > 0);
        // The crash aborts the single-copy baseline but not OVERLAP.
        let crash = rows.last().unwrap();
        assert_eq!(crash.downtime_pct, CRASH_ROW);
        assert!(crash
            .baseline
            .abort
            .as_deref()
            .unwrap_or("")
            .contains("ColumnLost"));
        assert!(crash.overlap.faults.rerouted_subscriptions > 0);
        let json = to_json(&rows);
        assert!(json.contains("\"crash\""));
        assert!(json.contains("ColumnLost"));
    }
}
