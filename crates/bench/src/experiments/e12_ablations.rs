//! E12 — ablations of the design choices DESIGN.md calls out.
//!
//! * **A1 — halo width**: Theorem 4 fixes the region at 3 blocks
//!   (halo = 1). Sweeping the halo at fixed `d` shows the U-shape:
//!   too little redundancy pays latency, too much pays compute.
//! * **A2 — the killing constant `c`**: Lemma 1 kills ≤ n/c processors;
//!   larger `c` keeps more alive but shrinks every overlap `m_k`.
//! * **A3 — bandwidth**: the paper assumes host links carry `log n`
//!   pebbles/tick and remarks that dropping it costs "an extra factor of
//!   log n". We measure LogN vs Fixed(1).

use super::simulate_line_with_trace;
use crate::scale::Scale;
use crate::table::{f2, Table};
use overlap_core::pipeline::Strategy;
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap_net::topology::linear_array;
use overlap_net::DelayModel;
use overlap_sim::engine::{Engine, EngineConfig, Jitter};
use overlap_sim::validate::validate_run;
use overlap_sim::{Assignment, BandwidthMode};

/// A1: halo width sweep at fixed uniform delay.
pub fn run_halo_width(scale: Scale) -> Table {
    let n = scale.pick(8u32, 16);
    let d = scale.pick(256u64, 1024);
    let r = (d as f64).sqrt() as u32;
    let steps = 4 * r;
    let guest = GuestSpec::array(n * r, ProgramKind::Relaxation, 9, steps);
    let trace = ReferenceRun::execute(&guest);
    let host = linear_array(n, DelayModel::constant(d), 0);

    let mut t = Table::new(
        format!("E12-A1 · halo width ablation (n = {n}, d = {d}, r = √d = {r})"),
        &[
            "halo (blocks)",
            "slowdown",
            "redundancy",
            "work overhead",
            "valid",
        ],
    );
    for halo in [0u32, 1, 2, 3] {
        let rep = simulate_line_with_trace(&guest, &host, Strategy::Halo { halo }, &trace)
            .expect("halo run");
        t.row(vec![
            halo.to_string(),
            f2(rep.stats.slowdown),
            f2(rep.stats.redundancy),
            f2(rep.stats.work_overhead()),
            rep.validated.to_string(),
        ]);
    }
    t.note(
        "halo = 0 pays the Θ(d) dependency cycle; halo = 1 is the paper's choice (regions \
         of 3 blocks, Figure 4); larger halos only add redundant compute once the latency \
         is already amortized — the U-shape bottoms at 1–2.",
    );
    t
}

/// A2: the killing constant `c`.
pub fn run_c_constant(scale: Scale) -> Table {
    let n = scale.pick(256u32, 512);
    let steps = scale.pick(48u32, 96);
    let guest = GuestSpec::array(2 * n, ProgramKind::Relaxation, 7, steps);
    let trace = ReferenceRun::execute(&guest);
    let host = linear_array(
        n,
        DelayModel::HeavyTail {
            min: 1,
            alpha: 0.7,
            cap: 1 << 16,
        },
        3,
    );

    let mut t = Table::new(
        format!("E12-A2 · killing constant c (n = {n}, heavy-tail host)"),
        &["c", "slowdown", "valid"],
    );
    for c in [2.5f64, 3.0, 4.0, 6.0, 10.0] {
        let rep = simulate_line_with_trace(&guest, &host, Strategy::Overlap { c }, &trace)
            .expect("overlap run");
        t.row(vec![
            format!("{c}"),
            f2(rep.stats.slowdown),
            rep.validated.to_string(),
        ]);
    }
    t.note(
        "any c > 2 satisfies the lemmas; small c kills aggressively (risking capacity), \
         large c shrinks the overlaps m_k = n/(c·2^k·log n) that amortize slow links — \
         mid-range c is the sweet spot, and correctness holds throughout.",
    );
    t
}

/// A3: bandwidth ablation — the paper's log n assumption.
pub fn run_bandwidth(scale: Scale) -> Table {
    let n = scale.pick(64u32, 128);
    let steps = scale.pick(48u32, 96);
    let cells = 4 * n;
    let guest = GuestSpec::array(cells, ProgramKind::Relaxation, 5, steps);
    let trace = ReferenceRun::execute(&guest);
    let host = linear_array(n, DelayModel::uniform(1, 15), 3);
    let assign = Assignment::blocked(n, cells);

    let mut t = Table::new(
        format!("E12-A3 · link bandwidth (n = {n}, blocked assignment)"),
        &["bandwidth", "pebbles/tick", "slowdown", "valid"],
    );
    for (label, bw) in [
        ("log n (paper)", BandwidthMode::LogN),
        ("4", BandwidthMode::Fixed(4)),
        ("1 (no assumption)", BandwidthMode::Fixed(1)),
    ] {
        let cfg = EngineConfig {
            bandwidth: bw,
            ..Default::default()
        };
        let out = Engine::new(&guest, &host, &assign, cfg).run().expect("run");
        let ok = validate_run(&trace, &out).is_empty();
        t.row(vec![
            label.to_string(),
            bw.per_tick(n).to_string(),
            f2(out.stats.slowdown),
            ok.to_string(),
        ]);
    }
    t.note(
        "§2: \"P pebbles can be passed along a d-delay link in d + ⌈P/log n⌉ − 1 steps. \
         This assumption can be removed by paying an extra factor of log n in the \
         slowdown\" — serialization at bw = 1 costs more, bounded by that factor.",
    );
    t
}

/// A4: unicast vs multicast column distribution.
pub fn run_multicast(scale: Scale) -> Table {
    use overlap_core::pipeline::plan_line_placement;
    let n = scale.pick(64u32, 128);
    let steps = scale.pick(32u32, 64);
    let guest = GuestSpec::array(4 * n, ProgramKind::Relaxation, 5, steps);
    let trace = ReferenceRun::execute(&guest);
    let host = linear_array(n, DelayModel::uniform(1, 15), 3);
    let placement =
        plan_line_placement(&guest, &host, Strategy::Overlap { c: 4.0 }).expect("placement");

    let mut t = Table::new(
        format!("E12-A4 · unicast vs multicast column distribution (n = {n}, OVERLAP)"),
        &["mode", "slowdown", "messages", "pebble link-hops", "valid"],
    );
    for (label, multicast) in [("unicast", false), ("multicast", true)] {
        let cfg = EngineConfig {
            multicast,
            ..Default::default()
        };
        let out = Engine::new(&guest, &host, &placement.assignment, cfg)
            .run()
            .expect("run");
        let ok = validate_run(&trace, &out).is_empty();
        t.row(vec![
            label.to_string(),
            f2(out.stats.slowdown),
            out.stats.messages.to_string(),
            out.stats.pebble_hops.to_string(),
            ok.to_string(),
        ]);
    }
    t.note(
        "shortest-path trees share route prefixes, so each pebble crosses every tree          link once — the paper's interval scheme does this implicitly; with the log n          bandwidth assumption the makespan difference is small, but the traffic saving          is real and matters at bandwidth 1.",
    );
    t
}

/// A5: time-varying link jitter — correctness is timing-independent; the
/// makespan degrades gracefully with the fluctuation amplitude.
pub fn run_jitter(scale: Scale) -> Table {
    let n = scale.pick(32u32, 64);
    let steps = scale.pick(48u32, 96);
    let cells = 4 * n;
    let guest = GuestSpec::array(cells, ProgramKind::Relaxation, 5, steps);
    let trace = ReferenceRun::execute(&guest);
    let host = linear_array(n, DelayModel::constant(8), 0);
    let assign = Assignment::blocked(n, cells);

    let mut t = Table::new(
        format!("E12-A5 · link-delay jitter (n = {n}, base delay 8)"),
        &["jitter amplitude", "slowdown", "vs steady", "valid"],
    );
    let mut base = 0.0;
    for amp in [0u8, 25, 50, 100] {
        let cfg = EngineConfig {
            jitter: if amp == 0 {
                Jitter::None
            } else {
                Jitter::Periodic {
                    amplitude_pct: amp,
                    period: 32,
                }
            },
            ..Default::default()
        };
        let out = Engine::new(&guest, &host, &assign, cfg).run().expect("run");
        let ok = validate_run(&trace, &out).is_empty();
        if amp == 0 {
            base = out.stats.slowdown;
        }
        t.row(vec![
            format!("±{amp}%"),
            f2(out.stats.slowdown),
            f2(out.stats.slowdown / base.max(1e-9)),
            ok.to_string(),
        ]);
    }
    t.note(
        "every run validates bit-for-bit regardless of timing — the database model's          correctness is placement- and latency-independent — and the makespan moves          sub-linearly in the amplitude because slow phases on some links overlap fast          phases on others.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halo_ablation_is_u_shaped_with_minimum_at_paper_choice() {
        let t = run_halo_width(Scale::Quick);
        let s = t.column_f64("slowdown");
        // halo=1 beats halo=0 decisively and halo=3 is no better than 1.
        assert!(s[1] < 0.7 * s[0], "{s:?}");
        assert!(s[3] >= 0.8 * s[1], "{s:?}");
        for r in &t.rows {
            assert_eq!(r[4], "true");
        }
    }

    #[test]
    fn c_ablation_validates_for_every_c() {
        let t = run_c_constant(Scale::Quick);
        for r in &t.rows {
            assert_eq!(r[2], "true", "c = {}", r[0]);
        }
    }

    #[test]
    fn multicast_never_increases_traffic_and_validates() {
        let t = run_multicast(Scale::Quick);
        for r in &t.rows {
            assert_eq!(r[4], "true");
        }
        let hops = t.column_f64("pebble link-hops");
        assert!(hops[1] <= hops[0], "multicast must not add hops: {hops:?}");
    }

    #[test]
    fn jitter_validates_and_degrades_gracefully() {
        let t = run_jitter(Scale::Quick);
        for r in &t.rows {
            assert_eq!(r[3], "true");
        }
        let rel = t.column_f64("vs steady");
        assert!((rel[0] - 1.0).abs() < 1e-9);
        // ±100% jitter should stay within 2.5× of steady.
        assert!(rel.last().unwrap() < &2.5, "{rel:?}");
    }

    #[test]
    fn bandwidth_one_is_slower_but_bounded_by_log_n_factor() {
        let t = run_bandwidth(Scale::Quick);
        let s = t.column_f64("slowdown");
        assert!(s[2] >= s[0], "bw=1 cannot be faster: {s:?}");
        let log_n = (64f64).log2();
        assert!(
            s[2] <= s[0] * log_n * 2.0,
            "bw=1 slowdown must stay within ~log n of the paper's: {s:?}"
        );
        for r in &t.rows {
            assert_eq!(r[3], "true");
        }
    }
}
