//! E3 — Theorem 4: `O(√d)` slowdown on the uniform-delay host.
//!
//! Sweep the link delay `d`; the guest is `n·√d` cells (the paper's
//! work-preserving size). Three strategies:
//!
//! * `halo(1)` — the paper's 3-block regions (Theorem 4): expected `Θ(√d)`;
//! * `blocked` — no redundancy: the adjacent-block dependency cycle pays
//!   `Θ(d)`;
//! * predicted `5√d`.
//!
//! The log-log exponents are the headline: ≈ 0.5 vs ≈ 1.0.

use super::simulate_line_with_trace;
use crate::scale::Scale;
use crate::table::{f2, Table};
use overlap_core::pipeline::Strategy;
use overlap_core::theory;
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap_net::topology::linear_array;
use overlap_net::DelayModel;
use overlap_sim::sweep::par_map;

/// Run the Theorem 4 sweep.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(8u32, 16);
    let ds: Vec<u64> = match scale {
        Scale::Quick => vec![16, 64, 256],
        Scale::Full => vec![4, 16, 64, 256, 1024, 4096],
    };

    let mut t = Table::new(
        format!("E3 · Theorem 4 — uniform-delay host, n = {n} processors"),
        &[
            "d",
            "guest cells",
            "halo slowdown",
            "blocked slowdown",
            "predicted 5√d",
            "halo redundancy",
            "valid",
        ],
    );
    let rows = par_map(&ds, |&d| {
        let r = (d as f64).sqrt().floor() as u32;
        let m = n * r;
        // enough steps to reach steady state: several exchange rounds
        let steps = (4 * r).max(32);
        let guest = GuestSpec::array(m, ProgramKind::Relaxation, 9, steps);
        let trace = ReferenceRun::execute(&guest);
        let host = linear_array(n, DelayModel::constant(d), 0);
        let halo = simulate_line_with_trace(&guest, &host, Strategy::Halo { halo: 1 }, &trace)
            .expect("halo");
        let blocked =
            simulate_line_with_trace(&guest, &host, Strategy::Blocked, &trace).expect("blocked");
        (d, m, halo, blocked)
    });
    let mut halo_pts = Vec::new();
    let mut blocked_pts = Vec::new();
    for (d, m, halo, blocked) in rows {
        halo_pts.push((d as f64, halo.stats.slowdown));
        blocked_pts.push((d as f64, blocked.stats.slowdown));
        t.row(vec![
            d.to_string(),
            m.to_string(),
            f2(halo.stats.slowdown),
            f2(blocked.stats.slowdown),
            f2(theory::t4_predicted(d as f64)),
            f2(halo.stats.redundancy),
            (halo.validated && blocked.validated).to_string(),
        ]);
    }
    t.note(format!(
        "log-log exponents: halo {:.2} (paper: 0.5), blocked {:.2} (paper: 1.0)",
        theory::loglog_slope(&halo_pts),
        theory::loglog_slope(&blocked_pts)
    ));
    t.note(
        "the [2] lower bound is Ω(√d): the halo strategy is within a constant of optimal, \
         and redundancy ≈ 3 is the price (the three-block regions of Figure 4)",
    );
    t.block(crate::plot::ascii_loglog(
        "slowdown vs d (log-log)",
        &[
            ("halo (√d)", 'o', &halo_pts),
            ("blocked (d)", 'x', &blocked_pts),
        ],
        64,
        18,
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqrt_vs_linear_shape() {
        let t = run(Scale::Quick);
        for r in &t.rows {
            assert_eq!(r[6], "true");
        }
        let halo = t.column_f64("halo slowdown");
        let blocked = t.column_f64("blocked slowdown");
        // At the largest d, halo must be far ahead.
        assert!(
            halo.last().unwrap() * 2.0 < *blocked.last().unwrap(),
            "halo {halo:?} vs blocked {blocked:?}"
        );
        // Halo growth from d=16 to d=256 (16×) should be ≈ 4× (√), surely < 8×.
        let growth = halo.last().unwrap() / halo[0];
        assert!(growth < 8.0, "halo growth {growth}");
        // Blocked growth should be ≈ 16× (linear), surely > 6×.
        let bgrowth = blocked.last().unwrap() / blocked[0];
        assert!(bgrowth > 6.0, "blocked growth {bgrowth}");
    }
}
