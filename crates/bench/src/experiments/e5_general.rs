//! E5 — Theorem 6: simulating a line guest on arbitrary connected
//! bounded-degree hosts through the dilation-3 embedding (Fact 3).
//!
//! For each host family: the embedding dilation (must be ≤ 3), the
//! embedded array's average delay vs `δ·d_ave`, and the end-to-end
//! validated OVERLAP slowdown.

use super::simulate_line_with_trace;
use crate::scale::Scale;
use crate::table::{f2, Table};
use overlap_core::general::embedded_array_stats;
use overlap_core::pipeline::Strategy;
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap_net::topology::{
    binary_tree, butterfly, cube_connected_cycles, hypercube, mesh2d, random_regular, ring, torus2d,
};
use overlap_net::{DelayModel, HostGraph};

fn hosts(scale: Scale) -> Vec<HostGraph> {
    let dm = DelayModel::uniform(1, 9);
    match scale {
        Scale::Quick => vec![
            mesh2d(4, 4, dm, 1),
            ring(16, dm, 1),
            binary_tree(4, dm, 1),
            random_regular(16, 3, dm, 1),
        ],
        Scale::Full => vec![
            mesh2d(8, 8, dm, 1),
            torus2d(8, 8, dm, 1),
            ring(64, dm, 1),
            binary_tree(6, dm, 1),
            hypercube(6, dm, 1),
            random_regular(64, 3, dm, 1),
            random_regular(64, 4, dm, 2),
            butterfly(4, dm, 1),
            cube_connected_cycles(4, dm, 1),
        ],
    }
}

/// Run the general-host sweep.
pub fn run(scale: Scale) -> Table {
    let steps = scale.pick(32u32, 96);
    let mut t = Table::new(
        "E5 · Theorem 6 — line guests on arbitrary bounded-degree NOWs",
        &[
            "host",
            "δ (max degree)",
            "host d_ave",
            "array d_ave",
            "dilation",
            "slowdown",
            "valid",
        ],
    );
    for host in hosts(scale) {
        let st = embedded_array_stats(&host);
        let m = host.num_nodes() / 2;
        let guest = GuestSpec::array(m.max(4), ProgramKind::Relaxation, 3, steps);
        let trace = ReferenceRun::execute(&guest);
        let r = simulate_line_with_trace(&guest, &host, Strategy::Overlap { c: 4.0 }, &trace)
            .expect("run");
        t.row(vec![
            host.name().to_string(),
            st.max_degree.to_string(),
            f2(st.host_d_ave),
            f2(st.array_d_ave),
            st.dilation.to_string(),
            f2(r.stats.slowdown),
            r.validated.to_string(),
        ]);
    }
    t.note(
        "Fact 3: dilation ≤ 3 on every connected host; §4: the embedded array's average \
         delay is O(δ·d_ave), so Theorem 5's bound carries over with δ in the constant.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_host_family_validates_with_small_dilation() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 4);
        for r in &t.rows {
            assert_eq!(r[6], "true", "{} failed validation", r[0]);
            let dil: u32 = r[4].parse().unwrap();
            assert!(dil <= 3, "{}: dilation {dil}", r[0]);
        }
    }

    #[test]
    fn embedded_delay_bounded_by_degree_times_host_delay() {
        let t = run(Scale::Quick);
        for r in &t.rows {
            let delta: f64 = r[1].parse().unwrap();
            let host_d: f64 = r[2].parse().unwrap();
            let arr_d: f64 = r[3].parse().unwrap();
            assert!(
                arr_d <= 3.0 * delta * host_d,
                "{}: {arr_d} > 3·{delta}·{host_d}",
                r[0]
            );
        }
    }
}
