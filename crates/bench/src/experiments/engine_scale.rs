//! Engine-scale benchmark: events/sec of the calendar-queue engine vs the
//! frozen classic heap engine, across growing scenario sizes.
//!
//! The outcomes are asserted bit-identical before timing, so the speedup
//! is a pure implementation delta. Results land in the usual markdown
//! table **and** in `BENCH_engine.json` at the workspace root: per scale,
//! events/sec for both engines, the makespan, and the peak event-queue
//! depth (the engine's dominant dynamic allocation — a proxy for peak
//! memory).

use crate::Scale;
use crate::Table;
use overlap_model::{GuestSpec, ProgramKind};
use overlap_net::topology::linear_array;
use overlap_net::DelayModel;
use overlap_sim::engine::{Engine, EngineConfig, RunOutcome};
use overlap_sim::engine_classic::run_classic;
use overlap_sim::Assignment;
use std::time::Instant;

/// One measured scale.
pub struct ScaleResult {
    /// Host processors.
    pub procs: u32,
    /// Guest cells.
    pub cells: u32,
    /// Guest steps.
    pub steps: u32,
    /// Events dispatched per run (identical for both engines).
    pub events: u64,
    /// Simulated makespan in ticks.
    pub makespan: u64,
    /// Peak pending events (memory-footprint proxy).
    pub peak_queue_depth: u64,
    /// Calendar-queue engine throughput, events per second.
    pub events_per_sec: f64,
    /// Classic heap engine throughput, events per second (the baseline).
    pub classic_events_per_sec: f64,
}

impl ScaleResult {
    /// Calendar throughput over classic throughput.
    pub fn speedup(&self) -> f64 {
        self.events_per_sec / self.classic_events_per_sec
    }
}

fn scenario(procs: u32, cells: u32, steps: u32) -> (GuestSpec, overlap_net::HostGraph, Assignment) {
    let guest = GuestSpec::line(cells, ProgramKind::Relaxation, 3, steps);
    let host = linear_array(procs, DelayModel::uniform(1, 7), 5);
    let assign = Assignment::blocked(procs, cells);
    (guest, host, assign)
}

/// Best-of-`reps` wall time of `f` in seconds.
fn time_best<T>(reps: u32, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Run the sweep and return per-scale results.
pub fn measure(scale: Scale) -> Vec<ScaleResult> {
    let scales: &[(u32, u32, u32)] = match scale {
        Scale::Quick => &[(16, 64, 32), (32, 128, 32), (64, 256, 32)],
        Scale::Full => &[
            (16, 64, 64),
            (64, 256, 128),
            (128, 1024, 128),
            (256, 2048, 128),
        ],
    };
    let reps = scale.pick(3, 5);
    scales
        .iter()
        .map(|&(procs, cells, steps)| {
            let (guest, host, assign) = scenario(procs, cells, steps);
            let cfg = EngineConfig::default();
            let run_new =
                || -> RunOutcome { Engine::new(&guest, &host, &assign, cfg).run().expect("run") };
            let run_old =
                || -> RunOutcome { run_classic(&guest, &host, &assign, cfg, None).expect("run") };
            let out = run_new();
            assert_eq!(out, run_old(), "engines diverge at {procs}x{cells}x{steps}");
            let t_new = time_best(reps, run_new);
            let t_old = time_best(reps, run_old);
            ScaleResult {
                procs,
                cells,
                steps,
                events: out.stats.events_processed,
                makespan: out.stats.makespan,
                peak_queue_depth: out.stats.peak_queue_depth,
                events_per_sec: out.stats.events_processed as f64 / t_new,
                classic_events_per_sec: out.stats.events_processed as f64 / t_old,
            }
        })
        .collect()
}

/// Render the results as `BENCH_engine.json` (hand-rolled; the bench crate
/// carries no JSON dependency).
pub fn to_json(results: &[ScaleResult]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"engine_scale\",\n  \"baseline\": \"classic heap engine (engine_classic)\",\n  \"scales\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"procs\": {}, \"cells\": {}, \"steps\": {}, \"events\": {}, \"makespan\": {}, \"peak_queue_depth\": {}, \"events_per_sec\": {:.0}, \"classic_events_per_sec\": {:.0}, \"speedup\": {:.2}}}{}\n",
            r.procs,
            r.cells,
            r.steps,
            r.events,
            r.makespan,
            r.peak_queue_depth,
            r.events_per_sec,
            r.classic_events_per_sec,
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The experiment: measure, write `BENCH_engine.json`, return the table.
pub fn run(scale: Scale) -> Table {
    let results = measure(scale);
    let json = to_json(&results);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json");
    std::fs::write(&path, &json).expect("write BENCH_engine.json");

    let mut t = Table::new(
        "ENGINE · calendar-queue engine vs classic heap engine",
        &[
            "procs",
            "cells",
            "steps",
            "events",
            "peak queue",
            "events/s (calendar)",
            "events/s (classic)",
            "speedup",
        ],
    );
    for r in &results {
        t.row(vec![
            r.procs.to_string(),
            r.cells.to_string(),
            r.steps.to_string(),
            r.events.to_string(),
            r.peak_queue_depth.to_string(),
            format!("{:.0}", r.events_per_sec),
            format!("{:.0}", r.classic_events_per_sec),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    t.note(
        "outcomes are asserted bit-identical before timing; the speedup is purely the \
         hot-path rewrite (calendar queue, interned dependency tables, zero steady-state \
         allocation). JSON copy written to BENCH_engine.json.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_engines_agree() {
        let results = measure(Scale::Quick);
        assert!(results.len() >= 3);
        let json = to_json(&results);
        assert!(json.contains("\"events_per_sec\""));
        assert_eq!(json.matches("{\"procs\"").count(), results.len());
        for r in &results {
            assert!(r.events > 0 && r.events_per_sec > 0.0);
        }
    }
}
