//! Engine-scale benchmark: events/sec of the calendar-queue engine vs the
//! frozen classic heap engine, plus a thread-count sweep of the sharded
//! conservative-parallel engine, across growing scenario sizes.
//!
//! The outcomes are asserted bit-identical before timing, so every
//! speedup is a pure implementation delta. Results land in the usual
//! markdown table **and** in `BENCH_engine.json` at the workspace root:
//! per scale, events/sec for the sequential engines and for the sharded
//! engine at each thread count, the makespan, and the peak event-queue
//! depth. The JSON also records the host's core count — sharded scaling
//! numbers are meaningless without it.
//!
//! [`gate`] is the CI smoke perf gate (first slice of the regression-gate
//! roadmap item): it re-measures one mid-size tier plus a task-graph
//! tier (a non-uniform DAG guest through the dynamic-table event path)
//! and fails if the sequential, sharded, or task-graph throughput drops
//! more than 30% below the checked-in floor in `BENCH_engine_floor.json`.
//! It also re-measures the plan-reuse and delta-sweep speedups against
//! the ratio floors in `BENCH_plan_floor.json`, replays the quick
//! task-graph grid against the deterministic makespan ceilings in
//! `BENCH_taskgraph_floor.json`, and re-times a micro-smoke subset of
//! the criterion benches (`crates/bench/benches/`) against the floors
//! in `BENCH_micro_floor.json` — those benches are write-only in CI, so
//! without the mirror here a regression in embedding, overlap planning,
//! or the mesh/Theorem-4 pipelines would land silently.

use crate::Scale;
use crate::Table;
use overlap_model::{GuestSpec, ProgramKind, TaskGraph};
use overlap_net::topology::linear_array;
use overlap_net::DelayModel;
use overlap_sim::engine::{Engine, EngineConfig, RunOutcome};
use overlap_sim::engine_classic::run_classic;
use overlap_sim::{run_sharded, Assignment, ExecPlan};
use std::time::Instant;

/// Thread counts swept for the sharded engine at every scale.
pub const THREAD_SWEEP: &[usize] = &[1, 2, 4, 8];

/// Sharded-engine throughput at one thread count.
pub struct ShardedPoint {
    /// Worker threads (= shards).
    pub threads: usize,
    /// Events per second.
    pub events_per_sec: f64,
}

/// One measured scale.
pub struct ScaleResult {
    /// Host processors.
    pub procs: u32,
    /// Guest cells.
    pub cells: u32,
    /// Guest steps.
    pub steps: u32,
    /// Events dispatched per run (identical for all engines).
    pub events: u64,
    /// Simulated makespan in ticks.
    pub makespan: u64,
    /// Peak pending events (memory-footprint proxy).
    pub peak_queue_depth: u64,
    /// Calendar-queue engine throughput, events per second.
    pub events_per_sec: f64,
    /// Classic heap engine throughput, events per second (the baseline).
    pub classic_events_per_sec: f64,
    /// Sharded-engine throughput per swept thread count.
    pub sharded: Vec<ShardedPoint>,
}

impl ScaleResult {
    /// Calendar throughput over classic throughput.
    pub fn speedup(&self) -> f64 {
        self.events_per_sec / self.classic_events_per_sec
    }

    /// Sharded throughput at `threads` over the sequential calendar
    /// engine — the parallel-scaling curve.
    pub fn sharded_speedup(&self, threads: usize) -> Option<f64> {
        self.sharded
            .iter()
            .find(|p| p.threads == threads)
            .map(|p| p.events_per_sec / self.events_per_sec)
    }
}

fn scenario(procs: u32, cells: u32, steps: u32) -> (GuestSpec, overlap_net::HostGraph, Assignment) {
    let guest = GuestSpec::array(cells, ProgramKind::Relaxation, 3, steps);
    let host = linear_array(procs, DelayModel::uniform(1, 7), 5);
    let assign = Assignment::blocked(procs, cells);
    (guest, host, assign)
}

/// Best-of-`reps` wall time of `f` in seconds.
fn time_best<T>(reps: u32, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Run the sweep and return per-scale results.
pub fn measure(scale: Scale) -> Vec<ScaleResult> {
    let scales: &[(u32, u32, u32)] = match scale {
        Scale::Quick => &[(16, 64, 32), (32, 128, 32), (64, 256, 32)],
        Scale::Full => &[
            (16, 64, 64),
            (64, 256, 128),
            (128, 1024, 128),
            (256, 2048, 128),
            (512, 8192, 64),
            // The million-cell tier: ~8.4M events per run.
            (1024, 1 << 20, 8),
        ],
    };
    let reps = scale.pick(3, 5);
    scales
        .iter()
        .map(|&(procs, cells, steps)| measure_tier(procs, cells, steps, reps))
        .collect()
}

fn measure_tier(procs: u32, cells: u32, steps: u32, reps: u32) -> ScaleResult {
    let (guest, host, assign) = scenario(procs, cells, steps);
    let cfg = EngineConfig::default();
    // Lower once; every engine consumes the shared plan (classic excepted —
    // it predates the plan and rebuilds internally, part of its baseline).
    let plan = ExecPlan::build(&guest, &host, &assign, cfg).expect("lower");
    let run_new = || -> RunOutcome { Engine::from_plan(&plan).run().expect("run") };
    let run_old = || -> RunOutcome { run_classic(&guest, &host, &assign, cfg, None).expect("run") };
    let out = run_new();
    assert_eq!(out, run_old(), "engines diverge at {procs}x{cells}x{steps}");
    // Identity first, timing after: the sharded engine must match bit for
    // bit at every thread count, peak_queue_depth included.
    for &t in THREAD_SWEEP {
        let sh = run_sharded(&plan, t).expect("sharded run");
        assert_eq!(sh, out, "sharded({t}) diverges at {procs}x{cells}x{steps}");
    }
    // Keep the giant tiers affordable: above a million events per run the
    // best-of window shrinks to 2.
    let reps = if out.stats.events_processed > 1_000_000 {
        reps.min(2)
    } else {
        reps
    };
    let events = out.stats.events_processed;
    let t_new = time_best(reps, run_new);
    let t_old = time_best(reps, run_old);
    let sharded = THREAD_SWEEP
        .iter()
        .map(|&t| {
            let dt = time_best(reps, || run_sharded(&plan, t).expect("sharded run"));
            ShardedPoint {
                threads: t,
                events_per_sec: events as f64 / dt,
            }
        })
        .collect();
    ScaleResult {
        procs,
        cells,
        steps,
        events,
        makespan: out.stats.makespan,
        peak_queue_depth: out.stats.peak_queue_depth,
        events_per_sec: events as f64 / t_new,
        classic_events_per_sec: events as f64 / t_old,
        sharded,
    }
}

/// Physical parallelism of the machine the numbers were taken on.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Render the results as `BENCH_engine.json` (hand-rolled; the bench crate
/// carries no JSON dependency).
pub fn to_json(results: &[ScaleResult]) -> String {
    let mut out = format!(
        "{{\n  \"benchmark\": \"engine_scale\",\n  \"baseline\": \"classic heap engine (engine_classic)\",\n  \"host_cores\": {},\n  \"scales\": [\n",
        host_cores()
    );
    for (i, r) in results.iter().enumerate() {
        let sharded: Vec<String> = r
            .sharded
            .iter()
            .map(|p| {
                format!(
                    "{{\"threads\": {}, \"events_per_sec\": {:.0}, \"speedup_vs_event\": {:.2}}}",
                    p.threads,
                    p.events_per_sec,
                    p.events_per_sec / r.events_per_sec
                )
            })
            .collect();
        out.push_str(&format!(
            "    {{\"procs\": {}, \"cells\": {}, \"steps\": {}, \"events\": {}, \"makespan\": {}, \"peak_queue_depth\": {}, \"events_per_sec\": {:.0}, \"classic_events_per_sec\": {:.0}, \"speedup\": {:.2}, \"sharded\": [{}]}}{}\n",
            r.procs,
            r.cells,
            r.steps,
            r.events,
            r.makespan,
            r.peak_queue_depth,
            r.events_per_sec,
            r.classic_events_per_sec,
            r.speedup(),
            sharded.join(", "),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The experiment: measure, write `BENCH_engine.json`, return the table.
pub fn run(scale: Scale) -> Table {
    let results = measure(scale);
    let json = to_json(&results);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json");
    std::fs::write(&path, &json).expect("write BENCH_engine.json");

    let mut t = Table::new(
        "ENGINE · calendar-queue vs classic heap vs sharded parallel",
        &[
            "procs",
            "cells",
            "events",
            "peak queue",
            "events/s (event)",
            "events/s (classic)",
            "events/s sharded 1/2/4/8",
            "speedup@8",
        ],
    );
    for r in &results {
        let sweep: Vec<String> = r
            .sharded
            .iter()
            .map(|p| format!("{:.2}M", p.events_per_sec / 1e6))
            .collect();
        t.row(vec![
            r.procs.to_string(),
            r.cells.to_string(),
            r.events.to_string(),
            r.peak_queue_depth.to_string(),
            format!("{:.0}", r.events_per_sec),
            format!("{:.0}", r.classic_events_per_sec),
            sweep.join("/"),
            format!("{:.2}x", r.sharded_speedup(8).unwrap_or(0.0)),
        ]);
    }
    t.note(format!(
        "outcomes are asserted bit-identical before timing, peak_queue_depth included; \
         speedup@8 is sharded-at-8-threads over the sequential \
         calendar engine, measured on a {}-core host — expect ~1x or below on a single core, \
         where only the window batching can help. JSON copy written to BENCH_engine.json.",
        host_cores()
    ));
    t
}

/// Extract `"key": <number>` from the hand-rolled floor JSON.
fn json_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The gate's task-graph tier: a non-uniform layered-random DAG guest,
/// which forces the event engine down the dynamic per-(cell,step) table
/// path instead of the static uniform tables the grid tier exercises.
/// Asserts event/sharded bit-agreement first, then returns events/sec of
/// the sequential event engine.
fn measure_taskgraph_tier(reps: u32) -> f64 {
    let guest = GuestSpec::dag(
        TaskGraph::layered_random(256, 32, 2, 3, 7),
        ProgramKind::KvWorkload,
        3,
    );
    let host = linear_array(64, DelayModel::uniform(1, 7), 5);
    let assign = Assignment::blocked(64, guest.topology.num_cells());
    let plan = ExecPlan::build(&guest, &host, &assign, EngineConfig::default()).expect("lower");
    let run = || -> RunOutcome { Engine::from_plan(&plan).run().expect("run") };
    let out = run();
    let sh = run_sharded(&plan, 2).expect("sharded run");
    assert_eq!(sh, out, "sharded diverges on the task-graph gate tier");
    out.stats.events_processed as f64 / time_best(reps, run)
}

/// The gate's mirror of the criterion micro-benches: one representative
/// workload per bench file in `crates/bench/benches/`, measured as
/// operations per second. The criterion harness itself never runs in CI
/// (it is write-only tuning tooling), so this subset is what actually
/// guards the embedding, overlap-planning, Theorem-4, and mesh-emulation
/// hot paths against regressions.
fn measure_micro(reps: u32) -> Vec<(&'static str, f64)> {
    use overlap_core::mesh::simulate_mesh_with_trace;
    use overlap_core::overlap::plan_overlap;
    use overlap_core::pipeline::Strategy;
    use overlap_core::Simulation;
    use overlap_model::ReferenceRun;
    use overlap_net::embed::embed_linear_array;
    use overlap_net::topology::mesh2d;

    let mut out = Vec::new();
    // bench_embed: Fact 3 embedding on the 32x32 mesh host. Fast per
    // call, so batch enough iterations for a stable sample.
    let embed_host = mesh2d(32, 32, DelayModel::uniform(1, 9), 1);
    let iters = 64u32;
    let t = time_best(reps, || {
        for _ in 0..iters {
            std::hint::black_box(embed_linear_array(&embed_host));
        }
    });
    out.push(("embed_mesh32x32", iters as f64 / t));
    // bench_overlap: interval-tree kill/label + recursive database
    // assignment over 4096 heavy-tail delays.
    let overlap_host = linear_array(
        4096,
        DelayModel::HeavyTail {
            min: 1,
            alpha: 0.8,
            cap: 1 << 20,
        },
        7,
    );
    let delays: Vec<u64> = overlap_host.links().iter().map(|l| l.delay).collect();
    let iters = 8u32;
    let t = time_best(reps, || {
        for _ in 0..iters {
            std::hint::black_box(plan_overlap(&delays, 4.0, 1).expect("plan"));
        }
    });
    out.push(("overlap_plan_4096", iters as f64 / t));
    // bench_uniform: the Theorem 4 halo-1 scenario (n=16, d=64),
    // builder included — this is the whole user-facing pipeline.
    let d = 64u64;
    let n = 16u32;
    let r = (d as f64).sqrt() as u32;
    let t4_guest = GuestSpec::array(n * r, ProgramKind::Relaxation, 9, 4 * r);
    let t4_trace = ReferenceRun::execute(&t4_guest);
    let t4_host = linear_array(n, DelayModel::constant(d), 0);
    let t = time_best(reps, || {
        Simulation::of(&t4_guest)
            .on(&t4_host)
            .strategy(Strategy::Halo { halo: 1 })
            .build()
            .and_then(|sim| sim.run_with_trace(&t4_trace))
            .expect("theorem4 run")
    });
    out.push(("theorem4_halo1", 1.0 / t));
    // bench_mesh: Theorem 7/8 emulation of an 8x8 guest mesh on the
    // 8-processor linear host.
    let mesh_guest = GuestSpec::mesh(8, 8, ProgramKind::Relaxation, 3, 12);
    let mesh_trace = ReferenceRun::execute(&mesh_guest);
    let mesh_host = linear_array(8, DelayModel::uniform(1, 5), 3);
    let t = time_best(reps, || {
        simulate_mesh_with_trace(&mesh_guest, &mesh_host, 4.0, 2, &mesh_trace).expect("mesh run")
    });
    out.push(("mesh_trace_8x8", 1.0 / t));
    out
}

/// Read and parse one numeric field from a checked-in floor file at the
/// workspace root.
fn floor_field(file: &str, key: &str) -> Result<f64, String> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../{file}"));
    let json = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    json_number(&json, key).ok_or_else(|| format!("{file} missing {key}"))
}

/// CI smoke perf gate: re-measure the mid Quick tier plus the task-graph
/// tier and fail if the sequential, sharded, or task-graph throughput
/// regresses more than 30% below the floor checked in at
/// `BENCH_engine_floor.json`. Also enforces the machine-independent
/// floors in `BENCH_plan_floor.json` (plan-reuse and delta-sweep speedup
/// ratios — both arms are measured in the same process, so no tolerance
/// is needed), the deterministic ceilings in
/// `BENCH_taskgraph_floor.json` (the quick task-graph grid's makespans
/// are exact, so any increase is a real scheduling regression), and the
/// criterion micro-smoke mirror (`measure_micro`) against the
/// throughput floors in `BENCH_micro_floor.json`. Returns a
/// human-readable summary on pass, the violations on fail.
pub fn gate() -> Result<String, String> {
    let floor_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine_floor.json");
    let floor = std::fs::read_to_string(&floor_path)
        .map_err(|e| format!("cannot read {}: {e}", floor_path.display()))?;
    let f_event = json_number(&floor, "event_events_per_sec")
        .ok_or("floor file missing event_events_per_sec")?;
    let f_sharded = json_number(&floor, "sharded_events_per_sec")
        .ok_or("floor file missing sharded_events_per_sec")?;
    let f_taskgraph = json_number(&floor, "taskgraph_events_per_sec")
        .ok_or("floor file missing taskgraph_events_per_sec")?;

    let r = measure_tier(64, 256, 32, 3);
    let taskgraph = measure_taskgraph_tier(3);
    let sharded = r
        .sharded
        .iter()
        .find(|p| p.threads == 2)
        .map(|p| p.events_per_sec)
        .ok_or("no sharded@2 measurement")?;

    let mut violations = Vec::new();
    for (name, got, floor) in [
        ("event", r.events_per_sec, f_event),
        ("sharded@2", sharded, f_sharded),
        ("task-graph", taskgraph, f_taskgraph),
    ] {
        if got < floor * 0.70 {
            violations.push(format!(
                "{name} engine: {got:.0} events/s is more than 30% below the floor {floor:.0}"
            ));
        }
    }
    // Plan-reuse / delta-sweep ratio floors: both arms of each ratio are
    // timed in the same process, so the speedups are machine-independent
    // and checked without tolerance.
    let f_reuse = floor_field("BENCH_plan_floor.json", "reuse_min_speedup")?;
    let f_delta = floor_field("BENCH_plan_floor.json", "delta_min_speedup")?;
    let reuse = super::plan_reuse::measure(Scale::Quick);
    let best_reuse = reuse.iter().map(|p| p.speedup()).fold(0.0, f64::max);
    if best_reuse < f_reuse {
        violations.push(format!(
            "plan reuse: best speedup {best_reuse:.2}x is below the floor {f_reuse:.2}x"
        ));
    }
    let delta = super::plan_reuse::measure_delta(Scale::Quick);
    if delta.speedup() < f_delta {
        violations.push(format!(
            "delta sweep: speedup {:.2}x is below the floor {f_delta:.2}x",
            delta.speedup()
        ));
    }

    // Task-graph makespan ceilings: the quick grid is deterministic, so
    // the checked-in totals must be reproduced exactly (improvements —
    // lower makespans — pass).
    let f_cases = floor_field("BENCH_taskgraph_floor.json", "cases")?;
    let f_span = floor_field("BENCH_taskgraph_floor.json", "total_makespan_ceiling")?;
    let grid = super::task_graphs::measure(Scale::Quick);
    let total_span: u64 = grid.iter().map(|c| c.makespan).sum();
    if grid.len() != f_cases as usize {
        violations.push(format!(
            "task-graph grid: {} cases measured, floor expects {}",
            grid.len(),
            f_cases as usize
        ));
    }
    if let Some(bad) = grid.iter().find(|c| !c.validated) {
        violations.push(format!(
            "task-graph grid: {}/{}/{}/{} failed reference validation",
            bad.graph, bad.regime, bad.budget, bad.strategy
        ));
    }
    if total_span > f_span as u64 {
        violations.push(format!(
            "task-graph grid: total makespan {total_span} exceeds the deterministic ceiling {}",
            f_span as u64
        ));
    }

    // Criterion micro-smoke mirror: same 30% tolerance as the engine
    // tiers, floors in BENCH_micro_floor.json keyed `<name>_ops_per_sec`.
    let micro = measure_micro(3);
    let mut micro_summary = Vec::new();
    for (name, ops) in &micro {
        let key = format!("{name}_ops_per_sec");
        let floor = floor_field("BENCH_micro_floor.json", &key)?;
        if *ops < floor * 0.70 {
            violations.push(format!(
                "micro {name}: {ops:.1} ops/s is more than 30% below the floor {floor:.1}"
            ));
        }
        micro_summary.push(format!("{name} {ops:.0}/s (floor {floor:.0})"));
    }

    if violations.is_empty() {
        Ok(format!(
            "perf gate OK: event {:.0} events/s (floor {:.0}), sharded@2 {:.0} events/s (floor {:.0}), task-graph {:.0} events/s (floor {:.0}), tolerance 30%; \
             plan reuse {best_reuse:.2}x (floor {f_reuse:.2}x), delta sweep {:.2}x (floor {f_delta:.2}x); \
             task-graph grid {} cases all validated, total makespan {total_span} (ceiling {}); \
             micro {}",
            r.events_per_sec,
            f_event,
            sharded,
            f_sharded,
            taskgraph,
            f_taskgraph,
            delta.speedup(),
            grid.len(),
            f_span as u64,
            micro_summary.join(", ")
        ))
    } else {
        Err(violations.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_engines_agree() {
        let results = measure(Scale::Quick);
        assert!(results.len() >= 3);
        let json = to_json(&results);
        assert!(json.contains("\"events_per_sec\""));
        assert!(json.contains("\"host_cores\""));
        assert!(json.contains("\"sharded\""));
        assert_eq!(json.matches("{\"procs\"").count(), results.len());
        for r in &results {
            assert!(r.events > 0 && r.events_per_sec > 0.0);
            assert_eq!(r.sharded.len(), THREAD_SWEEP.len());
            for p in &r.sharded {
                assert!(p.events_per_sec > 0.0);
            }
        }
    }

    #[test]
    fn micro_smoke_covers_every_criterion_bench_file() {
        // One workload per bench file in crates/bench/benches/ (the
        // engine bench is covered by measure_tier itself).
        let micro = measure_micro(1);
        let names: Vec<&str> = micro.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "embed_mesh32x32",
                "overlap_plan_4096",
                "theorem4_halo1",
                "mesh_trace_8x8"
            ]
        );
        for (name, ops) in &micro {
            assert!(*ops > 0.0, "{name} measured no throughput");
        }
    }

    #[test]
    fn json_number_parses_hand_rolled_floor() {
        let j = "{\"event_events_per_sec\": 123456, \"sharded_events_per_sec\": 7.5}";
        assert_eq!(json_number(j, "event_events_per_sec"), Some(123456.0));
        assert_eq!(json_number(j, "sharded_events_per_sec"), Some(7.5));
        assert_eq!(json_number(j, "missing"), None);
    }
}
