//! E9 — the §4 counterexample: Theorem 6 fails for unbounded degree.
//!
//! The clique-of-cliques host (√n cliques of √n nodes, clique edges delay
//! 1, inter-clique edges delay n) has `d_ave < 4`, yet any simulation of
//! an `n`-step line guest pays `max(√n/m, m) ≥ n^{1/4}` over every choice
//! of `m` used cliques — far above the `O(√d_ave·log³n)` that bounded
//! degree would give.

use super::simulate_line_with_trace;
use crate::scale::Scale;
use crate::table::{f2, Table};
use overlap_core::general::{cliques_best_bound, cliques_slowdown_bound};
use overlap_core::pipeline::Strategy;
use overlap_core::theory;
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap_net::metrics::DelayStats;
use overlap_net::topology::clique_of_cliques;

/// Run the clique-of-cliques table.
pub fn run(scale: Scale) -> Table {
    let ks: Vec<u32> = match scale {
        Scale::Quick => vec![4, 8],
        Scale::Full => vec![4, 8, 16, 32],
    };
    let steps = scale.pick(16u32, 32);

    let mut t = Table::new(
        "E9 · §4 counterexample — clique-of-cliques (unbounded degree)",
        &[
            "k (n = k²)",
            "d_ave",
            "n^(1/4)",
            "bound(m=1)",
            "bound(m=√k)",
            "bound(m=k)",
            "best bound",
            "measured overlap",
            "valid",
        ],
    );
    for &k in &ks {
        let host = clique_of_cliques(k);
        let stats = DelayStats::of(&host);
        let n = k * k;
        let guest = GuestSpec::array(n / 2, ProgramKind::Relaxation, 3, steps);
        let trace = ReferenceRun::execute(&guest);
        let r = simulate_line_with_trace(&guest, &host, Strategy::Overlap { c: 4.0 }, &trace)
            .expect("run");
        let msqrt = (k as f64).sqrt().round().max(1.0) as u32;
        t.row(vec![
            k.to_string(),
            f2(stats.d_ave),
            f2(theory::cliques_lower(n)),
            f2(cliques_slowdown_bound(k, 1)),
            f2(cliques_slowdown_bound(k, msqrt)),
            f2(cliques_slowdown_bound(k, k)),
            f2(cliques_best_bound(k)),
            f2(r.stats.slowdown),
            r.validated.to_string(),
        ]);
    }
    t.note(
        "d_ave < 4 for every k, yet the best achievable bound is n^{1/4} — measured \
         slowdowns (which include constant factors) stay above it. This is why Theorem 6 \
         requires bounded degree.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d_ave_constant_but_bound_grows() {
        let t = run(Scale::Quick);
        for r in &t.rows {
            let d_ave: f64 = r[1].parse().unwrap();
            assert!(d_ave < 4.0, "d_ave {d_ave}");
            let best: f64 = r[6].parse().unwrap();
            let fourth: f64 = r[2].parse().unwrap();
            assert!(best >= fourth - 1e-9, "best {best} < n^¼ {fourth}");
            assert_eq!(r[8], "true");
        }
    }

    #[test]
    fn measured_exceeds_analytic_floor() {
        let t = run(Scale::Quick);
        for r in &t.rows {
            let best: f64 = r[6].parse().unwrap();
            let measured: f64 = r[7].parse().unwrap();
            assert!(
                measured >= 0.5 * best,
                "measured {measured} far below floor {best}"
            );
        }
    }
}
