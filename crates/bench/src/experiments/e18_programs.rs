//! E18 — workload independence of the simulation layer.
//!
//! In the database model every pebble costs one unit regardless of what it
//! computes, so the measured slowdown must be *identical* across guest
//! programs on the same host and placement — from the pure-dataflow
//! stencil (\[2\]'s model) through vector automata to remove-heavy KV
//! churn — while the computed values, update logs and final databases all
//! differ. A cheap but sharp regression check on the whole stack: any
//! workload-dependent timing leak would break the equality.

use super::simulate_line_with_trace;
use crate::scale::Scale;
use crate::table::{f2, Table};
use overlap_core::pipeline::Strategy;
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap_net::topology::linear_array;
use overlap_net::DelayModel;

/// Run the program-sensitivity table.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(32u32, 64);
    let steps = scale.pick(32u32, 64);
    let cells = 4 * n;
    let host = linear_array(n, DelayModel::uniform(1, 12), 9);

    let programs: Vec<(&str, ProgramKind)> = vec![
        ("stencil-sum (dataflow)", ProgramKind::StencilSum),
        ("rule-automaton", ProgramKind::RuleAutomaton { db_size: 16 }),
        ("kv-workload", ProgramKind::KvWorkload),
        ("relaxation", ProgramKind::Relaxation),
        ("histogram", ProgramKind::Histogram { buckets: 16 }),
        ("cache-churn", ProgramKind::CacheChurn),
    ];
    let mut t = Table::new(
        format!("E18 · workload independence (n = {n}, guest {cells} cells, OVERLAP)"),
        &["program", "slowdown", "final-db digest of cell 0", "valid"],
    );
    for (name, pk) in programs {
        let guest = GuestSpec::array(cells, pk, 7, steps);
        let trace = ReferenceRun::execute(&guest);
        let r = simulate_line_with_trace(&guest, &host, Strategy::Overlap { c: 4.0 }, &trace)
            .expect("run");
        t.row(vec![
            name.to_string(),
            f2(r.stats.slowdown),
            format!("{:016x}", trace.final_db_digest[0]),
            r.validated.to_string(),
        ]);
    }
    t.note(
        "identical slowdowns, all-different state: pebble timing depends only on the \
         dependency structure and placement — the database model's time behaviour is \
         workload-independent, so every slowdown table in this reproduction holds for \
         any guest program.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdowns_are_identical_and_states_differ() {
        let t = run(Scale::Quick);
        let slowdowns = t.column_f64("slowdown");
        for s in &slowdowns {
            assert_eq!(
                s, &slowdowns[0],
                "workload-dependent timing leak: {slowdowns:?}"
            );
        }
        // All digests distinct.
        let digests: Vec<&String> = t.rows.iter().map(|r| &r[2]).collect();
        for i in 0..digests.len() {
            for j in (i + 1)..digests.len() {
                assert_ne!(digests[i], digests[j]);
            }
        }
        for r in &t.rows {
            assert_eq!(r[3], "true");
        }
    }
}
