//! E8 — Theorem 10: with at most two copies per database and constant
//! load, host `H2` forces slowdown `Ω(log n)`.
//!
//! For each `n`: Fact 4 verification (inter-segment delay ≥
//! `α·min(u,v)·log n` on the real construction), the certificate of the
//! natural two-copy assignment, and the engine-measured slowdown — all
//! against the `log n` reference column.

use crate::scale::Scale;
use crate::table::{f2, f3, Table};
use overlap_core::lower::{fact4_min_ratio, h2_two_copy_assignment, multi_copy_certificate};
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap_net::topology::h2_recursive_boxes;
use overlap_sim::engine::{Engine, EngineConfig};
use overlap_sim::validate::validate_run;

/// Run the Theorem 10 table.
pub fn run(scale: Scale) -> Table {
    let sizes: Vec<u32> = match scale {
        Scale::Quick => vec![256, 1024],
        Scale::Full => vec![256, 1024, 4096, 16384],
    };
    let steps = scale.pick(12u32, 24);

    let mut t = Table::new(
        "E8 · Theorem 10 — ≤2 copies, constant load, on the recursive-box host H2",
        &[
            "n (target)",
            "procs",
            "log₂ n",
            "fact4 ratio",
            "certificate",
            "measured slowdown",
            "load",
            "valid",
        ],
    );
    for &n in &sizes {
        let h2 = h2_recursive_boxes(n);
        let procs = h2.graph.num_nodes();
        let log_n = (procs as f64).log2();
        let ratio = fact4_min_ratio(&h2, 48);
        // Columns: enough to spread across segments at constant load.
        let m = (procs / 4).max(16);
        let assignment = h2_two_copy_assignment(&h2, m);
        let cert = multi_copy_certificate(&h2.graph, &assignment);
        let guest = GuestSpec::array(m, ProgramKind::Relaxation, 2, steps);
        let trace = ReferenceRun::execute(&guest);
        let out = Engine::new(&guest, &h2.graph, &assignment, EngineConfig::default())
            .run()
            .expect("H2 run");
        let ok = validate_run(&trace, &out).is_empty();
        t.row(vec![
            n.to_string(),
            procs.to_string(),
            f2(log_n),
            f3(ratio),
            f2(cert),
            f2(out.stats.slowdown),
            assignment.load().to_string(),
            ok.to_string(),
        ]);
    }
    t.note(
        "Fact 4 holds on the construction (ratio stays bounded away from 0): processors \
         in different segments are ≥ α·min(|I|,|J|)·log n apart. Theorem 10's Ω(log n) is \
         a *floor* on every ≤2-copy constant-load execution; both the certificate and the \
         measured slowdown respect it — and in fact sit far above it, because on H2 any \
         cross-segment hop costs ≥ d = √n. The theorem's point stands: unlike the \
         dataflow model, the database model admits hosts of constant average delay that \
         no bounded-copy simulation can run at constant slowdown.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fact4_holds_and_measured_grows() {
        let t = run(Scale::Quick);
        for r in &t.rows {
            let ratio: f64 = r[3].parse().unwrap();
            assert!(ratio > 0.02, "Fact 4 ratio {ratio}");
            assert_eq!(r[7], "true");
        }
        let measured = t.column_f64("measured slowdown");
        assert!(
            measured.last().unwrap() >= &measured[0],
            "slowdown must not shrink with n: {measured:?}"
        );
    }

    #[test]
    fn assignments_have_constant_load_and_two_copies() {
        let h2 = h2_recursive_boxes(512);
        let a = h2_two_copy_assignment(&h2, 128);
        assert!(a.max_copies() <= 2);
        assert!(a.load() <= 4);
    }
}
