//! E2 — Theorem 3: the work-efficient OVERLAP.
//!
//! With a guest of `≈ d_ave·n·log³n` cells (lab-scaled), the simulation
//! must keep load `O(d_ave·log³n)` per processor, slowdown of the same
//! order, and *work efficiency* `Ω(1/polylog)`: guest work per host
//! processor-tick must not collapse as the guest grows.

use super::simulate_line_with_trace;
use crate::scale::Scale;
use crate::table::{f2, f3, Table};
use overlap_core::pipeline::Strategy;
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap_net::topology::linear_array;
use overlap_net::DelayModel;
use overlap_sim::sweep::par_map;

/// Sweep guest size multipliers at fixed host.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(64u32, 256);
    let steps = scale.pick(32u32, 96);
    let d_ave = 4u64;
    let multipliers: Vec<u32> = match scale {
        Scale::Quick => vec![1, 4, 8],
        Scale::Full => vec![1, 2, 4, 8, 16, 32],
    };
    let host = linear_array(n, DelayModel::uniform(1, 2 * d_ave - 1), 3);

    let mut t = Table::new(
        format!("E2 · Theorem 3 — work-efficient OVERLAP (n = {n}, d_ave ≈ {d_ave})"),
        &[
            "guest cells",
            "guest/host ratio",
            "slowdown",
            "load",
            "efficiency",
            "work overhead",
            "valid",
        ],
    );
    let rows = par_map(&multipliers, |&k| {
        let guest = GuestSpec::array(n * k, ProgramKind::Relaxation, 5, steps);
        let trace = ReferenceRun::execute(&guest);
        simulate_line_with_trace(&guest, &host, Strategy::Overlap { c: 4.0 }, &trace).expect("run")
    });
    for (k, r) in multipliers.iter().zip(rows) {
        t.row(vec![
            (n * k).to_string(),
            k.to_string(),
            f2(r.stats.slowdown),
            r.stats.load.to_string(),
            f3(r.stats.efficiency()),
            f2(r.stats.work_overhead()),
            r.validated.to_string(),
        ]);
    }
    t.note(
        "Theorem 3: with guest size Θ(d_ave·n·log³n) the simulation is work efficient — \
         efficiency must grow toward Ω(1/polylog) as the guest/host ratio rises, and the \
         redundant-work overhead stays O(1).",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_improves_with_guest_size() {
        let t = run(Scale::Quick);
        let eff = t.column_f64("efficiency");
        assert!(
            eff.last().unwrap() > &(eff[0] * 1.5),
            "bigger guests must amortize latency: {eff:?}"
        );
        let over = t.column_f64("work overhead");
        assert!(
            over.iter().all(|&o| o < 4.0),
            "redundancy stays O(1): {over:?}"
        );
        for r in &t.rows {
            assert_eq!(r[6], "true");
        }
    }

    #[test]
    fn load_scales_with_guest() {
        let t = run(Scale::Quick);
        let loads = t.column_f64("load");
        assert!(loads.last().unwrap() > &loads[0]);
    }
}
