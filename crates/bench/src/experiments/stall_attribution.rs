//! Stall attribution: where OVERLAP's ticks actually go as the average
//! link delay grows.
//!
//! Every run is executed with the stall-attribution tracer enabled
//! ([`TraceConfig`]), so each tick of each copy's lifetime lands in
//! exactly one bucket — compute, dependency, bandwidth, db-order, fault,
//! or drain — and the buckets partition `[0, makespan)` per copy (the
//! conservation invariant, re-checked here for every row). Sweeping the
//! host's uniform delay range `[1, hi]` across three placements shows the
//! paper's regime change directly in the accounting: at small `d_ave` the
//! redundant placements are *dependency-bound* (waiting on producers),
//! and as `d_ave` grows the stall mass migrates into the *bandwidth*
//! bucket (ticks in flight on slow links) — the very latency OVERLAP's
//! pipelining is designed to hide behind useful work.
//!
//! Results land in the markdown table **and** in `BENCH_trace.json` at
//! the workspace root: per (delay, strategy), the absolute tick totals
//! and each category's share of the copy-time budget.

use crate::{Scale, Table};
use overlap_core::pipeline::Strategy;
use overlap_core::Simulation;
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun, ReferenceTrace};
use overlap_net::topology::linear_array;
use overlap_net::{DelayModel, HostGraph};
use overlap_sim::{StallBreakdown, TraceConfig};

/// One traced run: a (delay range, strategy) cell of the sweep.
pub struct TraceRow {
    /// Upper end of the uniform link-delay range `[1, hi]`.
    pub d_hi: u64,
    /// Measured mean link delay of the generated host.
    pub d_ave: f64,
    /// Placement strategy label.
    pub strategy: &'static str,
    /// `makespan / guest_steps`.
    pub slowdown: f64,
    /// Makespan of the traced run.
    pub makespan: u64,
    /// Database copies the placement materialised.
    pub copies: u64,
    /// The attributed tick totals, summed over all copies.
    pub breakdown: StallBreakdown,
    /// Bit-exact validation against the unit-delay reference.
    pub validated: bool,
}

impl TraceRow {
    /// `category / (makespan × copies)` — the share of the total copy-time
    /// budget a bucket claimed.
    pub fn share(&self, ticks: u64) -> f64 {
        ticks as f64 / (self.makespan as f64 * self.copies as f64)
    }
}

fn run_cell(
    guest: &GuestSpec,
    host: &HostGraph,
    strategy: Strategy,
    label: &'static str,
    d_hi: u64,
    d_ave: f64,
    trace: &ReferenceTrace,
) -> TraceRow {
    let r = Simulation::of(guest)
        .on(host)
        .strategy(strategy)
        .trace(TraceConfig::default())
        .build()
        .and_then(|s| s.run_with_trace(trace))
        .expect("traced run");
    let report = r.outcome.trace.as_ref().expect("tracing was enabled");
    TraceRow {
        d_hi,
        d_ave,
        strategy: label,
        slowdown: r.stats.slowdown,
        makespan: r.stats.makespan,
        copies: report.per_copy.len() as u64,
        breakdown: report.totals,
        validated: r.validated,
    }
}

/// The placements the sweep compares.
pub fn arms() -> Vec<(&'static str, Strategy)> {
    vec![
        ("overlap", Strategy::Overlap { c: 4.0 }),
        (
            "combined",
            Strategy::Combined {
                c: 4.0,
                expansion: 2,
            },
        ),
        ("blocked", Strategy::Blocked),
    ]
}

/// Run the sweep: one row per (delay range, strategy).
pub fn measure(scale: Scale) -> Vec<TraceRow> {
    let (procs, cells, steps) = scale.pick((8u32, 32, 24), (16, 96, 48));
    let his: &[u64] = if matches!(scale, Scale::Quick) {
        &[2, 8, 24, 60]
    } else {
        &[2, 16, 64, 160]
    };
    let guest = GuestSpec::array(cells, ProgramKind::KvWorkload, 11, steps);
    let trace = ReferenceRun::execute(&guest);

    let mut rows = Vec::new();
    for &hi in his {
        let host = linear_array(procs, DelayModel::uniform(1, hi), 13);
        let d_ave =
            host.links().iter().map(|l| l.delay).sum::<u64>() as f64 / host.links().len() as f64;
        for (label, strategy) in arms() {
            rows.push(run_cell(&guest, &host, strategy, label, hi, d_ave, &trace));
        }
    }
    rows
}

/// Render the sweep as `BENCH_trace.json`.
pub fn to_json(rows: &[TraceRow]) -> String {
    let mut out = String::from(
        "{\n  \"benchmark\": \"stall_attribution\",\n  \"invariant\": \"compute + dependency + bandwidth + db_order + fault + drained == makespan x copies\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        let b = &r.breakdown;
        out.push_str(&format!(
            "    {{\"d_hi\": {}, \"d_ave\": {:.2}, \"strategy\": \"{}\", \"slowdown\": {:.2}, \"makespan\": {}, \"copies\": {}, \"validated\": {}, \"ticks\": {{\"compute\": {}, \"dependency\": {}, \"bandwidth\": {}, \"db_order\": {}, \"fault\": {}, \"drained\": {}}}, \"share\": {{\"compute\": {:.4}, \"dependency\": {:.4}, \"bandwidth\": {:.4}, \"db_order\": {:.4}, \"fault\": {:.4}, \"drained\": {:.4}}}}}{}\n",
            r.d_hi,
            r.d_ave,
            r.strategy,
            r.slowdown,
            r.makespan,
            r.copies,
            r.validated,
            b.compute_ticks,
            b.stall_dependency,
            b.stall_bandwidth,
            b.stall_db_order,
            b.stall_fault,
            b.stall_drained,
            r.share(b.compute_ticks),
            r.share(b.stall_dependency),
            r.share(b.stall_bandwidth),
            r.share(b.stall_db_order),
            r.share(b.stall_fault),
            r.share(b.stall_drained),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The experiment: measure, write `BENCH_trace.json`, return the table.
pub fn run(scale: Scale) -> Table {
    let rows = measure(scale);
    let json = to_json(&rows);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_trace.json");
    std::fs::write(&path, &json).expect("write BENCH_trace.json");

    let mut t = Table::new(
        "TRACE · stall attribution vs average link delay",
        &[
            "d_ave",
            "strategy",
            "slowdown",
            "compute %",
            "dependency %",
            "bandwidth %",
            "db-order %",
            "drained %",
        ],
    );
    for r in &rows {
        let b = &r.breakdown;
        t.row(vec![
            format!("{:.1}", r.d_ave),
            r.strategy.to_string(),
            format!("{:.2}", r.slowdown),
            format!("{:.1}", 100.0 * r.share(b.compute_ticks)),
            format!("{:.1}", 100.0 * r.share(b.stall_dependency)),
            format!("{:.1}", 100.0 * r.share(b.stall_bandwidth)),
            format!("{:.1}", 100.0 * r.share(b.stall_db_order)),
            format!("{:.1}", 100.0 * r.share(b.stall_drained)),
        ]);
    }
    t.note(
        "every tick of every copy's lifetime is attributed to exactly one category \
         (fault is 0.0% throughout — the sweep injects no faults — and is elided from \
         the table); the per-copy totals equal the makespan exactly, re-checked per row. \
         As d_ave grows, OVERLAP's stall mass shifts from the dependency bucket (waiting \
         on producers) into the bandwidth bucket (ticks in flight) — the latency its \
         pipelining hides. At lab scale pure OVERLAP's interval overlap vanishes, so its \
         rows coincide with the single-copy blocked placement; the combined strategy is \
         the composition that actually replicates here, and its db-order share shows the \
         price: redundant copies serialise their update streams. JSON copy written to \
         BENCH_trace.json.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_conserves_and_overlap_goes_bandwidth_bound() {
        let rows = measure(Scale::Quick);
        assert_eq!(rows.len(), 4 * arms().len());
        for r in &rows {
            assert!(r.validated, "{} at d_hi {}", r.strategy, r.d_hi);
            // The conservation invariant: categories partition the budget.
            assert_eq!(
                r.breakdown.total(),
                r.makespan * r.copies,
                "{} at d_hi {}",
                r.strategy,
                r.d_hi
            );
            assert!(r.breakdown.stall_fault == 0, "no faults were injected");
        }
        // The headline trend: OVERLAP's bandwidth share of the budget grows
        // with d_ave — the stalls migrate from dependency-bound (producer
        // not done) to bandwidth-bound (pebble in flight on slow links).
        let overlap: Vec<&TraceRow> = rows.iter().filter(|r| r.strategy == "overlap").collect();
        let first = overlap.first().expect("overlap rows");
        let last = overlap.last().expect("overlap rows");
        assert!(first.d_hi < last.d_hi);
        assert!(
            last.share(last.breakdown.stall_bandwidth)
                > first.share(first.breakdown.stall_bandwidth),
            "bandwidth share should grow with d_ave: {:.3} -> {:.3}",
            first.share(first.breakdown.stall_bandwidth),
            last.share(last.breakdown.stall_bandwidth)
        );
        let json = to_json(&rows);
        assert!(json.contains("\"benchmark\": \"stall_attribution\""));
        assert!(json.contains("\"bandwidth\""));
    }
}
