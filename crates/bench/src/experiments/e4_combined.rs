//! E4 — Theorem 5: the combined `O(√d_ave·log³n)` simulation and its
//! crossover against plain OVERLAP (`O(d_ave·log³n)`).
//!
//! On hosts of rising uniform delay the combined strategy's advantage is
//! the `√d_ave` factor: both are comparable at small `d_ave` and the
//! combined strategy must win by a widening factor as `d_ave` grows.

use super::simulate_line_with_trace;
use crate::scale::Scale;
use crate::table::{f2, Table};
use overlap_core::pipeline::Strategy;
use overlap_core::theory;
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap_net::topology::linear_array;
use overlap_net::DelayModel;
use overlap_sim::sweep::par_map;

/// Run the Theorem 5 crossover sweep.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(32u32, 64);
    let expansion = scale.pick(2u32, 4);
    let ds: Vec<u64> = match scale {
        Scale::Quick => vec![4, 64, 576],
        Scale::Full => vec![4, 16, 64, 256, 1024, 4096],
    };

    let mut t = Table::new(
        format!("E4 · Theorem 5 — combined √d_ave·polylog vs OVERLAP (n = {n}, L = {expansion})"),
        &[
            "d_ave",
            "overlap slowdown",
            "combined slowdown",
            "overlap/combined",
            "predicted ratio ≈ √d/5",
            "valid",
        ],
    );
    let mut o_pts = Vec::new();
    let mut c_pts = Vec::new();
    let rows = par_map(&ds, |&d| {
        let r = (d as f64).sqrt().floor().max(1.0) as u32;
        // guest sized for the combined pipeline: n·L·√d cells (lab scale)
        let m = (n * expansion * r).min(scale.pick(2048, 16384));
        let steps = (3 * r).max(24);
        let guest = GuestSpec::array(m, ProgramKind::Relaxation, 13, steps);
        let trace = ReferenceRun::execute(&guest);
        let host = linear_array(n, DelayModel::constant(d), 0);
        let o = simulate_line_with_trace(&guest, &host, Strategy::Overlap { c: 4.0 }, &trace)
            .expect("overlap");
        let c = simulate_line_with_trace(
            &guest,
            &host,
            Strategy::Combined { c: 4.0, expansion },
            &trace,
        )
        .expect("combined");
        (d, o, c)
    });
    for (d, o, c) in rows {
        o_pts.push((d as f64, o.stats.slowdown));
        c_pts.push((d as f64, c.stats.slowdown));
        t.row(vec![
            d.to_string(),
            f2(o.stats.slowdown),
            f2(c.stats.slowdown),
            f2(o.stats.slowdown / c.stats.slowdown.max(1e-9)),
            f2((d as f64).sqrt() / 5.0),
            (o.validated && c.validated).to_string(),
        ]);
    }
    t.note(format!(
        "theory: overlap O(d·log³n) = {} vs combined O(√d·log³n) = {} at d = {} — the \
         measured ratio should grow like √d",
        f2(theory::t2_predicted(n, *ds.last().unwrap() as f64)),
        f2(theory::t5_predicted(
            n,
            *ds.last().unwrap() as f64,
            4.0,
            expansion
        )),
        ds.last().unwrap()
    ));
    t.block(crate::plot::ascii_loglog(
        "slowdown vs d_ave (log-log): the Theorem 5 crossover",
        &[("overlap (d)", 'x', &o_pts), ("combined (√d)", 'o', &c_pts)],
        64,
        16,
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_wins_at_high_delay() {
        let t = run(Scale::Quick);
        for r in &t.rows {
            assert_eq!(r[5], "true");
        }
        let ratio = t.column_f64("overlap/combined");
        // Advantage must widen with d_ave and exceed 1.5× at the top.
        assert!(
            ratio.last().unwrap() > &1.5,
            "combined should win at high d_ave: {ratio:?}"
        );
        assert!(
            ratio.last().unwrap() > &ratio[0],
            "advantage must widen: {ratio:?}"
        );
    }
}
