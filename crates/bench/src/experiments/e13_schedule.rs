//! E13 — Theorem 1 checked against the clock.
//!
//! Theorem 1's proof exhibits deadlines `s_t^{(k)}`: by time `s_t^{(0)}`
//! *every copy* of every pebble in guest row `t` has been computed. We
//! build the deadline table for the host's actual parameters (verifying
//! the paper's definitional identities), run OVERLAP's exact load-1
//! assignment with per-pebble timing enabled, and compare the measured
//! row-completion times against the deadlines, row by row.

use crate::scale::Scale;
use crate::table::{f2, Table};
use overlap_core::overlap::plan_overlap;
use overlap_core::schedule::ScheduleTable;
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap_net::topology::linear_array;
use overlap_net::DelayModel;
use overlap_sim::engine::{Engine, EngineConfig};
use overlap_sim::validate::validate_run;
use overlap_sim::Assignment;

/// Run the Theorem 1 deadline check.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(128u32, 512);
    let d = scale.pick(4u64, 8);
    let host = linear_array(n, DelayModel::constant(d), 0);
    let delays: Vec<u64> = host.links().iter().map(|l| l.delay).collect();
    let c = 4.0;
    let plan = plan_overlap(&delays, c, 1).expect("plan");
    let table = ScheduleTable::build(n, plan.kill.d_ave, c, 1.0);
    let violations = table.verify();

    // Execute the exact plan (guest = the plan's own slot count).
    let m0 = table.m[0].ceil() as u32;
    let steps = 2 * m0; // two rounds of the box B_0
    let guest = GuestSpec::array(plan.guest_cells, ProgramKind::Relaxation, 3, steps);
    let assignment = Assignment::from_cells_of(n, plan.guest_cells, plan.cells_of_position.clone());
    let cfg = EngineConfig {
        record_timing: true,
        ..Default::default()
    };
    let out = Engine::new(&guest, &host, &assignment, cfg)
        .run()
        .expect("overlap run");
    let trace = ReferenceRun::execute(&guest);
    let valid = validate_run(&trace, &out).is_empty();
    let timing = out.timing.as_ref().expect("timing");

    let mut t = Table::new(
        format!("E13 · Theorem 1 deadlines vs measured (n = {n}, uniform d = {d})"),
        &[
            "guest row t",
            "measured completion",
            "deadline s_t⁰",
            "measured/deadline",
        ],
    );
    let sample_rows: Vec<u32> = [1u32, m0 / 4, m0 / 2, m0, m0 + m0 / 2, 2 * m0]
        .into_iter()
        .filter(|&r| r >= 1 && r <= steps)
        .collect();
    let mut worst = 0f64;
    for &row in &sample_rows {
        // Deadline: within a round, s_row; later rounds repeat the table.
        let round = (row - 1) / m0;
        let within = (row - 1) % m0 + 1;
        let deadline = table.box_deadline(0) * round as f64
            + table.rows[0][(within as usize - 1).min(table.rows[0].len() - 1)];
        let measured = timing.row_completion(row).expect("row within trace") as f64;
        worst = worst.max(measured / deadline);
        t.row(vec![
            row.to_string(),
            f2(measured),
            f2(deadline),
            format!("{:.2e}", measured / deadline),
        ]);
    }
    t.note(format!(
        "schedule identities verified: {} violations; every measured row completion is \
         within {worst:.2}× of the Theorem 1 deadline (≤ 1 means the greedy execution \
         beats the paper's schedule, as expected — the deadlines carry the proof's 2·D_k \
         slack per level); run validated: {valid}",
        violations.len()
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_times_respect_theorem_1_deadlines() {
        let t = run(Scale::Quick);
        let ratios = t.column_f64("measured/deadline");
        for r in &ratios {
            assert!(
                *r <= 1.0 + 1e-9,
                "a measured completion exceeded its Theorem 1 deadline: {ratios:?}"
            );
        }
        assert!(t.notes[0].contains("0 violations"));
        assert!(t.notes[0].contains("validated: true"));
    }
}
