//! E11 — §7 open question: G and H both 2-D arrays.
//!
//! The paper says this case is "very intriguing but currently beyond our
//! abilities" (to analyze). We measure it: a `(W·g)×(H·g)` guest mesh on a
//! `W×H` host mesh with uniform link delay `d`, under 2-D halo regions of
//! width ω. Prediction from the area-vs-length halo cost:
//! `slowdown ≈ (g+2ω)² + 2d/ω`, optimal `ω ≈ (d/4)^{1/3}` — a `d^{1/3}`
//! advantage over no redundancy, *weaker* than the 1-D √d because 2-D
//! halos cost area.

use crate::scale::Scale;
use crate::table::{f2, Table};
use overlap_core::direct2d::{optimal_omega, predicted_2d, simulate_mesh_on_mesh};
use overlap_core::theory;
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};

/// Run the mesh-on-mesh sweep.
pub fn run(scale: Scale) -> Table {
    let (w, h, g) = (6u32, 6u32, 4u32);
    let steps = scale.pick(24u32, 48);
    let ds: Vec<u64> = match scale {
        Scale::Quick => vec![64, 1024],
        Scale::Full => vec![16, 64, 256, 1024, 4096],
    };

    let mut t = Table::new(
        format!(
            "E11 · §7 open question — {w}×{h} host mesh simulating a {}×{} guest mesh",
            w * g,
            h * g
        ),
        &[
            "d",
            "ω*",
            "blocked slowdown",
            "best halo slowdown",
            "best ω",
            "predicted (g+2ω)²+2d/ω",
            "blocked/halo",
            "valid",
        ],
    );
    let mut halo_pts = Vec::new();
    let mut blocked_pts = Vec::new();
    for &d in &ds {
        let guest = GuestSpec::mesh(w * g, h * g, ProgramKind::Relaxation, 5, steps);
        let trace = ReferenceRun::execute(&guest);
        let blocked = simulate_mesh_on_mesh(
            w,
            h,
            g,
            d,
            0,
            ProgramKind::Relaxation,
            5,
            steps,
            Some(&trace),
        )
        .expect("blocked");
        let omegas: Vec<u32> = vec![1, 2, optimal_omega(d), 2 * optimal_omega(d)]
            .into_iter()
            .filter(|&o| o >= 1 && o <= 2 * g)
            .collect();
        let best = omegas
            .iter()
            .map(|&om| {
                simulate_mesh_on_mesh(
                    w,
                    h,
                    g,
                    d,
                    om,
                    ProgramKind::Relaxation,
                    5,
                    steps,
                    Some(&trace),
                )
                .expect("halo")
            })
            .min_by(|a, b| a.stats.slowdown.total_cmp(&b.stats.slowdown))
            .expect("non-empty");
        halo_pts.push((d as f64, best.stats.slowdown));
        blocked_pts.push((d as f64, blocked.stats.slowdown));
        t.row(vec![
            d.to_string(),
            optimal_omega(d).to_string(),
            f2(blocked.stats.slowdown),
            f2(best.stats.slowdown),
            best.omega.to_string(),
            f2(predicted_2d(g, best.omega, d)),
            f2(blocked.stats.slowdown / best.stats.slowdown.max(1e-9)),
            (blocked.validated && best.validated).to_string(),
        ]);
    }
    t.note(format!(
        "log-log exponents vs d: halo {:.2} (area-cost model predicts 2/3 once d ≫ g²), \
         blocked {:.2} (predicts 1)",
        theory::loglog_slope(&halo_pts),
        theory::loglog_slope(&blocked_pts)
    ));
    t.note(
        "the 2-D analogue of Theorem 4 hides latency by d^{1/3}, not √d: redundant halos \
         cost area (4ωg + 4ω²) while their benefit is still one exchange per ω steps — a \
         concrete data point on the paper's open question.",
    );
    t.block(crate::plot::ascii_loglog(
        "2-D slowdown vs d (log-log)",
        &[
            ("best halo", 'o', &halo_pts),
            ("blocked", 'x', &blocked_pts),
        ],
        64,
        18,
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redundancy_wins_and_gap_grows_with_d() {
        let t = run(Scale::Quick);
        for r in &t.rows {
            assert_eq!(r[7], "true");
        }
        let gap = t.column_f64("blocked/halo");
        assert!(
            gap.last().unwrap() > &1.5,
            "2-D halo must win at d = 1024: {gap:?}"
        );
        assert!(
            gap.last().unwrap() >= &gap[0],
            "gap must not shrink: {gap:?}"
        );
    }
}
