//! TASKGRAPH — arbitrary task-graph guests across placement strategies
//! and memory budgets.
//!
//! The paper's guests are lines and meshes; the task-graph extension
//! runs arbitrary layered DAGs through the same engines. This experiment
//! asks the scheduling question that extension opens: once the guest is
//! an irregular DAG, does the paper's OVERLAP redundancy still beat a
//! plain blocked placement, and how does a deterministic work-stealing
//! placement compare — under both cheap and expensive links, and with
//! the per-processor copy budget (red-blue pebbling) squeezed?
//!
//! Grid: {layered-random, wavefront} guests × ≥2 latency regimes ×
//! ≥2 memory budgets × {work-stealing, OVERLAP, blocked}. Every run is
//! validated against the unit-delay reference before its numbers count.
//! Results land in the usual markdown table **and** in
//! `BENCH_taskgraph.json` at the workspace root.

use crate::Scale;
use crate::Table;
use overlap_core::pipeline::Strategy;
use overlap_core::Simulation;
use overlap_model::{GuestSpec, ProgramKind, TaskGraph};
use overlap_net::topology::linear_array;
use overlap_net::DelayModel;
use overlap_sim::engine::MemBudget;

/// A link-latency regime for the host array.
struct Regime {
    name: &'static str,
    delays: DelayModel,
}

/// Memory budgets swept: unbounded, then two finite copy caps with an
/// 8-tick reload charge (roomy rarely thrashes, tight always does).
const RELOAD_COST: u32 = 8;

fn budgets() -> [(&'static str, Option<MemBudget>); 3] {
    [
        ("unbounded", None),
        (
            "budget=4",
            Some(MemBudget {
                budget: 4,
                reload_cost: RELOAD_COST,
            }),
        ),
        (
            "budget=1",
            Some(MemBudget {
                budget: 1,
                reload_cost: RELOAD_COST,
            }),
        ),
    ]
}

fn regimes() -> [Regime; 2] {
    [
        Regime {
            name: "short",
            delays: DelayModel::uniform(1, 4),
        },
        // The paper's "particularly impressive" regime: cheap links with
        // periodic 256-tick spikes (d_max ≫ d_ave).
        Regime {
            name: "spiky",
            delays: DelayModel::Spike {
                base: 1,
                spike: 256,
                period: 8,
            },
        },
    ]
}

fn strategies() -> [Strategy; 3] {
    [
        Strategy::WorkStealing { chunk: 0 },
        Strategy::Overlap { c: 4.0 },
        Strategy::Blocked,
    ]
}

/// One measured cell of the grid.
pub struct CaseResult {
    /// Guest task-graph family.
    pub graph: &'static str,
    /// Latency regime name.
    pub regime: &'static str,
    /// Host average link delay.
    pub d_ave: f64,
    /// Memory-budget label.
    pub budget: &'static str,
    /// Strategy label (from the report).
    pub strategy: String,
    /// Simulated makespan in ticks.
    pub makespan: u64,
    /// Copies reloaded into fast memory after evictions.
    pub reloads: u64,
    /// Extra compute ticks charged for those reloads.
    pub reload_ticks: u64,
    /// The run matched the unit-delay reference bit for bit.
    pub validated: bool,
}

/// DAG guests in the work-efficient regime: ~4.5 lanes per processor
/// (Theorem 3's sizing, so redundancy buffers have real width), with the
/// half-block remainder making the blocked deques uneven — the only
/// situation where the offline work-stealing schedule can deviate from a
/// plain blocked placement.
fn guests(dbs: u32, layers: u32) -> Vec<(&'static str, GuestSpec)> {
    vec![
        (
            "layered-random",
            GuestSpec::dag(
                TaskGraph::layered_random(dbs, layers, 2, 3, 0xDA6),
                ProgramKind::KvWorkload,
                11,
            ),
        ),
        (
            "wavefront",
            GuestSpec::dag(
                TaskGraph::wavefront(dbs, layers),
                ProgramKind::StencilSum,
                7,
            ),
        ),
    ]
}

/// Run the full grid and return one row per (graph, regime, budget,
/// strategy) cell.
pub fn measure(scale: Scale) -> Vec<CaseResult> {
    let procs = scale.pick(16, 32);
    let layers = scale.pick(16, 48);
    let dbs = 4 * procs + procs / 2;
    let mut out = Vec::new();
    for (graph, guest) in guests(dbs, layers) {
        let trace = overlap_model::ReferenceRun::execute(&guest);
        for regime in regimes() {
            let host = linear_array(procs, regime.delays, 5);
            for (budget_name, mem) in budgets() {
                for strategy in strategies() {
                    let mut b = Simulation::of(&guest).on(&host).strategy(strategy);
                    if let Some(m) = mem {
                        b = b.memory_budget(m);
                    }
                    let report = b
                        .build()
                        .and_then(|s| s.run_with_trace(&trace))
                        .unwrap_or_else(|e| panic!("{graph}/{}/{budget_name}: {e}", regime.name));
                    out.push(CaseResult {
                        graph,
                        regime: regime.name,
                        d_ave: report.d_ave,
                        budget: budget_name,
                        strategy: report.strategy.clone(),
                        makespan: report.stats.makespan,
                        reloads: report.stats.mem.reloads,
                        reload_ticks: report.stats.mem.reload_ticks,
                        validated: report.validated,
                    });
                }
            }
        }
    }
    out
}

/// Render the grid as `BENCH_taskgraph.json` (hand-rolled; the bench
/// crate carries no JSON dependency).
pub fn to_json(results: &[CaseResult]) -> String {
    let mut out = String::from(
        "{\n  \"benchmark\": \"task_graphs\",\n  \"comment\": \"work-stealing vs OVERLAP vs blocked on DAG guests; two latency regimes x three memory budgets; every run validated against the unit-delay reference\",\n  \"cases\": [\n",
    );
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"graph\": \"{}\", \"regime\": \"{}\", \"d_ave\": {:.2}, \"budget\": \"{}\", \"strategy\": \"{}\", \"makespan\": {}, \"reloads\": {}, \"reload_ticks\": {}, \"validated\": {}}}{}\n",
            r.graph,
            r.regime,
            r.d_ave,
            r.budget,
            r.strategy,
            r.makespan,
            r.reloads,
            r.reload_ticks,
            r.validated,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The experiment: measure, write `BENCH_taskgraph.json`, return the
/// table.
pub fn run(scale: Scale) -> Table {
    let results = measure(scale);
    let json = to_json(&results);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_taskgraph.json");
    std::fs::write(&path, &json).expect("write BENCH_taskgraph.json");

    let mut t = Table::new(
        "TASKGRAPH · work-stealing vs OVERLAP vs blocked on DAG guests",
        &[
            "graph",
            "regime",
            "d_ave",
            "budget",
            "strategy",
            "makespan",
            "reloads",
            "reload ticks",
            "valid",
        ],
    );
    for r in &results {
        t.row(vec![
            r.graph.to_string(),
            r.regime.to_string(),
            format!("{:.1}", r.d_ave),
            r.budget.to_string(),
            r.strategy.clone(),
            r.makespan.to_string(),
            r.reloads.to_string(),
            r.reload_ticks.to_string(),
            r.validated.to_string(),
        ]);
    }
    t.note(
        "every run is validated bit-for-bit against the unit-delay reference before its \
         makespan counts; reload ticks are the pebbling cost of the copy budget (8 ticks \
         per reload). Work-stealing places whole slots, so its makespan is the offline \
         deterministic steal schedule's — compare within a column, not across budgets. \
         JSON copy written to BENCH_taskgraph.json.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_strategies_regimes_and_budgets_and_validates() {
        let results = measure(Scale::Quick);
        // 2 graphs x 2 regimes x 3 budgets x 3 strategies.
        assert_eq!(results.len(), 36);
        assert!(
            results.iter().all(|r| r.validated),
            "a run failed validation"
        );
        assert!(results.iter().all(|r| r.makespan > 0));
        // The tight budget must actually thrash somewhere, and the
        // unbounded rows must never reload.
        assert!(results
            .iter()
            .filter(|r| r.budget == "budget=1")
            .any(|r| r.reloads > 0));
        assert!(results
            .iter()
            .filter(|r| r.budget == "unbounded")
            .all(|r| r.reloads == 0 && r.reload_ticks == 0));
        // Reload accounting is consistent.
        assert!(results
            .iter()
            .all(|r| r.reload_ticks == r.reloads * u64::from(RELOAD_COST)));
        // All three strategy families appear.
        for needle in ["work-stealing", "overlap", "blocked"] {
            assert!(
                results.iter().any(|r| r.strategy.contains(needle)),
                "missing strategy {needle}"
            );
        }
        let json = to_json(&results);
        assert_eq!(json.matches("{\"graph\"").count(), results.len());
        assert!(json.contains("\"reload_ticks\""));
    }
}
