//! E10 — the §1 baseline comparison: who wins, by what factor, in the
//! regime `d_max ≫ √d_ave·log³n` where the paper says its slowdown "is
//! particularly impressive".
//!
//! Hosts: spike-delay lines with `d_ave` pinned ≈ 2 and `d_max` swept.
//! Strategies: lockstep (analytic `d_max+1`), blocked, complementary
//! slackness, OVERLAP and combined.

use super::simulate_line_with_trace;
use crate::scale::Scale;
use crate::table::{f2, Table};
use overlap_core::pipeline::Strategy;
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap_net::topology::linear_array;
use overlap_net::DelayModel;
use overlap_sim::engine::EngineConfig;
use overlap_sim::lockstep::run_lockstep;
use overlap_sim::sweep::par_map;
use overlap_sim::{Assignment, ExecPlan};

/// Run the baseline-comparison table.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(128u32, 256);
    let steps = scale.pick(64u32, 128);
    let spikes: Vec<u64> = match scale {
        Scale::Quick => vec![16, 256],
        Scale::Full => vec![16, 64, 256, 1024, 4096],
    };
    // The work-efficient regime: the guest is several times larger than
    // the host, so redundancy buffers have real width (Theorem 3's
    // sizing; without it, no strategy can amortize anything).
    let guest = GuestSpec::array(8 * n, ProgramKind::Relaxation, 21, steps);
    let trace = ReferenceRun::execute(&guest);

    let mut t = Table::new(
        format!("E10 · §1 baselines vs OVERLAP (n = {n} spike hosts, guest 8n)"),
        &[
            "d_max",
            "lockstep",
            "blocked",
            "slackness",
            "overlap",
            "combined",
            "best baseline / overlap",
            "valid",
        ],
    );
    let rows = par_map(&spikes, |&spike| {
        // Cap the period so spikes exist at every size: at most n/4 links
        // between spikes keeps several spikes in the array.
        let host = linear_array(
            n,
            DelayModel::Spike {
                base: 1,
                spike,
                period: spike.clamp(2, n as u64 / 4),
            },
            0,
        );
        let blocked_assign = Assignment::blocked(n, guest.num_cells());
        let lock_plan =
            ExecPlan::build(&guest, &host, &blocked_assign, EngineConfig::default()).unwrap();
        let lock = run_lockstep(&lock_plan).unwrap();
        let b = simulate_line_with_trace(&guest, &host, Strategy::Blocked, &trace).unwrap();
        let s = simulate_line_with_trace(&guest, &host, Strategy::Slackness, &trace).unwrap();
        let o =
            simulate_line_with_trace(&guest, &host, Strategy::Overlap { c: 4.0 }, &trace).unwrap();
        let c = simulate_line_with_trace(
            &guest,
            &host,
            Strategy::Combined {
                c: 4.0,
                expansion: 2,
            },
            &trace,
        )
        .unwrap();
        (spike, lock.stats.slowdown, b, s, o, c)
    });
    for (spike, lockstep, b, s, o, c) in rows {
        let best_baseline = lockstep.min(b.stats.slowdown).min(s.stats.slowdown);
        let ours = o.stats.slowdown.min(c.stats.slowdown);
        t.row(vec![
            spike.to_string(),
            f2(lockstep),
            f2(b.stats.slowdown),
            f2(s.stats.slowdown),
            f2(o.stats.slowdown),
            f2(c.stats.slowdown),
            f2(best_baseline / ours.max(1e-9)),
            (b.validated && s.validated && o.validated && c.validated).to_string(),
        ]);
    }
    t.note(
        "all baselines pay Θ(d_max) per step; OVERLAP pays O(d_ave·log³n) — the win \
         factor must grow linearly with d_max once d_max ≫ √d_ave·log³n.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_wins_and_gap_widens_with_dmax() {
        let t = run(Scale::Quick);
        for r in &t.rows {
            assert_eq!(r[7], "true");
        }
        let gap = t.column_f64("best baseline / overlap");
        assert!(
            gap.last().unwrap() > &1.5,
            "overlap must win at large d_max: {gap:?}"
        );
        assert!(gap.last().unwrap() > &gap[0], "gap must widen: {gap:?}");
    }

    #[test]
    fn baselines_track_dmax() {
        let t = run(Scale::Quick);
        let blocked = t.column_f64("blocked");
        let dmax = t.column_f64("d_max");
        let growth = blocked.last().unwrap() / blocked[0];
        let dgrowth = dmax.last().unwrap() / dmax[0];
        assert!(
            growth > 0.3 * dgrowth,
            "blocked should track d_max: {growth} vs {dgrowth}"
        );
    }
}
