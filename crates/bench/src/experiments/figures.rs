//! Figures 1–6 regenerated as data.
//!
//! The paper's figures are conceptual diagrams; each function here emits
//! the underlying structure as a table so the construction can be
//! inspected and diffed.

use crate::table::{f2, f3, Table};
use overlap_core::killing::{kill_and_label, verify_lemmas, KillParams};
use overlap_core::lower::zigzag_path;
use overlap_core::uniform::region_census;
use overlap_model::{Dep, GuestSpec, ProgramKind};
use overlap_net::metrics::DelayStats;
use overlap_net::topology::{h2_recursive_boxes, linear_array};
use overlap_net::DelayModel;

/// Figure 1 — the computation of pebbles: dependency lists of a sample of
/// pebbles of a line guest.
pub fn figure1() -> Table {
    let spec = GuestSpec::array(6, ProgramKind::StencilSum, 1, 3);
    let mut t = Table::new(
        "F1 · Figure 1 — pebble dependencies, 6-cell line guest",
        &["pebble (cell,t)", "depends on"],
    );
    for cell in 0..spec.num_cells() {
        let deps: Vec<String> = spec
            .topology
            .deps(cell)
            .iter()
            .map(|d| match d {
                Dep::Cell(c) => format!("({c},t−1)"),
                Dep::Boundary { side, offset } => format!("virtual[{side:?},{offset}]"),
            })
            .collect();
        t.row(vec![format!("({cell},t)"), deps.join(", ")]);
    }
    t.note("edge cells depend on virtual boundary pebbles known at time 0 (§3.2)");
    t
}

/// Figure 2 — killed processors and tree labels on a sample host.
pub fn figure2() -> Table {
    let n = 64u32;
    let host = linear_array(
        n,
        DelayModel::Bimodal {
            lo: 1,
            hi: 4000,
            p_hi: 0.06,
        },
        13,
    );
    let delays: Vec<u64> = host.links().iter().map(|l| l.delay).collect();
    let out = kill_and_label(&delays, &KillParams::default());
    let mut t = Table::new(
        format!("F2 · Figure 2 — killing & labeling, n = {n} bimodal host"),
        &["depth", "intervals", "removed", "min label₃", "max label₃"],
    );
    let max_depth = out.tree.height;
    for depth in 0..=max_depth {
        let nodes: Vec<usize> = (0..out.tree.len())
            .filter(|&i| out.tree.nodes[i].depth == depth)
            .collect();
        let removed = nodes.iter().filter(|&&i| out.removed[i]).count();
        let labels: Vec<i64> = nodes
            .iter()
            .filter(|&&i| !out.removed[i])
            .map(|&i| out.label3[i])
            .collect();
        t.row(vec![
            depth.to_string(),
            nodes.len().to_string(),
            removed.to_string(),
            labels.iter().min().map_or("—".into(), |x| x.to_string()),
            labels.iter().max().map_or("—".into(), |x| x.to_string()),
        ]);
    }
    t.note(format!(
        "stage-1 killed {} processors, stage-2 killed {}, root label n' = {} of n = {n}; \
         Lemma 1–4 checker: {} violations",
        out.stage1_killed,
        out.stage2_killed,
        out.root_label(),
        verify_lemmas(&out).len()
    ));
    t
}

/// Figure 3 — the recursive boxes `B_{k+1}`, `B'_{k+1}` and the overlap.
pub fn figure3() -> Table {
    let n = 256u32;
    let delays = vec![2u64; n as usize - 1];
    let out = kill_and_label(&delays, &KillParams::default());
    let mut t = Table::new(
        "F3 · Figure 3 — recursive box structure at the top of the tree (uniform host)",
        &["depth k", "interval len", "label x", "overlap m_{k+1}"],
    );
    // Walk the leftmost spine of the tree.
    let mut id = 0u32;
    loop {
        let node = &out.tree.nodes[id as usize];
        let m_child = out.m_of_len(node.len().div_ceil(2));
        t.row(vec![
            node.depth.to_string(),
            node.len().to_string(),
            out.label3[id as usize].to_string(),
            if node.is_leaf() {
                "—".into()
            } else {
                m_child.to_string()
            },
        ]);
        match node.left {
            Some(l) if !out.removed[l as usize] => id = l,
            _ => break,
        }
        if out.tree.nodes[id as usize].depth > 6 {
            break;
        }
    }
    t.note(
        "x = x₁ + x₂ − m_{k+1}: the m_{k+1} middle databases are held by both child \
         intervals — the overlap of boxes B_{k+1} and B'_{k+1} in Figure 3",
    );
    t
}

/// Figure 4 — the Theorem 4 regions: trapezium/triangle census.
pub fn figure4() -> Table {
    let mut t = Table::new(
        "F4 · Figure 4 — Theorem 4 region census per √d-step round",
        &[
            "r = √d",
            "region |P_j|",
            "trapezium T",
            "triangle L",
            "triangle R",
            "exchanged/side",
        ],
    );
    for r in [2u32, 4, 8, 16, 32] {
        let c = region_census(r);
        t.row(vec![
            r.to_string(),
            c.region.to_string(),
            c.trapezium.to_string(),
            c.left_triangle.to_string(),
            c.right_triangle.to_string(),
            c.exchanged_per_side.to_string(),
        ]);
    }
    t.note(
        "T computes without communication (2d steps); columns B/C out and A/D in \
            (pipelined, < 2d); then L and R (d steps): 5d per √d guest steps = 5√d slowdown",
    );
    t
}

/// Figure 5 — the H2 construction: per-level edge inventory.
pub fn figure5() -> Table {
    let n = 4096u32;
    let h2 = h2_recursive_boxes(n);
    let stats = DelayStats::of(&h2.graph);
    let mut t = Table::new(
        format!("F5 · Figure 5 — H2({n}): recursive boxes, d = {}", h2.d),
        &[
            "level ℓ",
            "segments",
            "segment size",
            "delay-1 edges",
            "delay-d edges in level",
        ],
    );
    for l in 1..=h2.k {
        let segs: Vec<_> = h2.segments.iter().filter(|s| s.level == l).collect();
        let seg_size = segs.first().map_or(0, |s| s.nodes.len());
        let delay1 = segs.iter().map(|s| 2 * s.nodes.len()).sum::<usize>();
        t.row(vec![
            l.to_string(),
            segs.len().to_string(),
            seg_size.to_string(),
            delay1.to_string(),
            (1u64 << l).to_string(),
        ]);
    }
    t.note(format!(
        "{} processors, d_ave = {} (constant), d_max = {} — \"H2 has Θ(n) processors and \
         constant average delay\"",
        h2.graph.num_nodes(),
        f2(stats.d_ave),
        stats.d_max
    ));
    t
}

/// Figure 6 — the 4j-pebble zigzag path.
pub fn figure6() -> Table {
    let (i, j, time) = (10i64, 4i64, 50i64);
    let path = zigzag_path(i, j, time);
    let mut t = Table::new(
        format!("F6 · Figure 6 — the 4j-pebble path (i = {i}, j = {j}, t = {time})"),
        &["k", "set", "column", "step"],
    );
    for (k, p) in path.iter().enumerate() {
        t.row(vec![
            (k + 1).to_string(),
            p.set.to_string(),
            p.col.to_string(),
            p.step.to_string(),
        ]);
    }
    t.note(
        "τ₁ ← … ← τ₄ⱼ goes backwards in time, zigzagging on the overlap boundary \
         columns (sets B/C and E/F); computing it forces either one Ω(j·log n) delay or \
         Ω(j) delays of log n (Theorem 10 case 1)",
    );
    t
}

/// Figure 7 (ours) — processor utilization under OVERLAP vs blocked on a
/// spiky host: where the latency hiding actually goes.
pub fn figure7() -> Table {
    use overlap_core::pipeline::{plan_line_placement, Strategy};
    use overlap_model::GuestSpec;
    use overlap_net::topology::line_with_middle_spike;
    use overlap_sim::engine::{Engine, EngineConfig};

    let n = 64u32;
    let host = line_with_middle_spike(n, 512);
    let guest = GuestSpec::array(4 * n, ProgramKind::Relaxation, 3, 32);
    let mut t = Table::new(
        "F7 · processor utilization (ours) — giant-spike host, guest 4n",
        &["strategy", "slowdown", "median utilization", "min", "max"],
    );
    for strategy in [Strategy::Overlap { c: 4.0 }, Strategy::Blocked] {
        let placement = plan_line_placement(&guest, &host, strategy).expect("placement");
        let cfg = EngineConfig {
            record_timing: true,
            ..Default::default()
        };
        let out = Engine::new(&guest, &host, &placement.assignment, cfg)
            .run()
            .expect("run");
        let timing = out.timing.as_ref().expect("timing");
        let mut util = timing.utilization(&out.copies, n, out.stats.makespan, None);
        util.retain(|&u| u > 0.0);
        util.sort_by(f64::total_cmp);
        t.row(vec![
            strategy.label(),
            f2(out.stats.slowdown),
            f3(util[util.len() / 2]),
            f3(*util.first().unwrap()),
            f3(*util.last().unwrap()),
        ]);
    }
    t.note(
        "blocked processors idle waiting on the spike (low utilization, high slowdown); \
         OVERLAP keeps them busy on redundant overlap columns — complementary slackness \
         found automatically.",
    );
    t
}

/// Figure 8 (ours) — the OVERLAP assignment map: which host positions hold
/// which guest columns, with the dyadic overlap regions visible as
/// double-held columns.
pub fn figure8() -> Table {
    use overlap_core::overlap::plan_overlap;

    let n = 64u32;
    let delays = vec![2u64; n as usize - 1];
    let plan = plan_overlap(&delays, 4.0, 1).expect("plan");
    let mut t = Table::new(
        format!("F8 · assignment map (ours) — OVERLAP on a uniform {n}-processor line"),
        &["host position", "held guest columns"],
    );
    // Sample positions around the root boundary where the overlap lives.
    let mut holders = vec![0u32; plan.guest_cells as usize];
    for cells in &plan.cells_of_position {
        for &c in cells {
            holders[c as usize] += 1;
        }
    }
    let shared: Vec<u32> = (0..plan.guest_cells)
        .filter(|&c| holders[c as usize] >= 2)
        .collect();
    for pos in (0..n as usize).step_by(8) {
        let cells = &plan.cells_of_position[pos];
        t.row(vec![
            pos.to_string(),
            if cells.is_empty() {
                "(killed)".into()
            } else {
                format!("{cells:?}")
            },
        ]);
    }
    t.note(format!(
        "{} of {} guest columns are held by ≥ 2 processors (the m_k overlaps): {:?}",
        shared.len(),
        plan.guest_cells,
        shared
    ));
    t
}

/// All figures (the paper's six plus the utilization and assignment maps).
pub fn all() -> Vec<Table> {
    vec![
        figure1(),
        figure2(),
        figure3(),
        figure4(),
        figure5(),
        figure6(),
        figure7(),
        figure8(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figures_render() {
        let figs = all();
        assert_eq!(figs.len(), 8);
        for f in &figs {
            assert!(!f.rows.is_empty(), "{} has no rows", f.title);
            let md = f.to_markdown();
            assert!(md.contains("|"));
        }
    }

    #[test]
    fn figure1_marks_boundaries() {
        let t = figure1();
        assert!(t.rows[0][1].contains("virtual"));
        assert!(t.rows.last().unwrap()[1].contains("virtual"));
        assert!(!t.rows[2][1].contains("virtual"));
    }

    #[test]
    fn figure4_census_sums() {
        let t = figure4();
        for r in &t.rows {
            let region: u64 = r[1].parse().unwrap();
            let parts: u64 = r[2].parse::<u64>().unwrap()
                + r[3].parse::<u64>().unwrap()
                + r[4].parse::<u64>().unwrap();
            assert_eq!(region, parts);
        }
    }

    #[test]
    fn figure6_path_length() {
        let t = figure6();
        assert_eq!(t.rows.len(), 16); // 4j with j = 4
    }

    #[test]
    fn figure7_overlap_is_busier_and_faster() {
        let t = figure7();
        let slow = t.column_f64("slowdown");
        let med = t.column_f64("median utilization");
        assert!(slow[0] < slow[1], "overlap must beat blocked: {slow:?}");
        assert!(
            med[0] > med[1],
            "overlap must keep processors busier: {med:?}"
        );
    }

    #[test]
    fn figure8_shows_overlap_columns() {
        let t = figure8();
        assert!(t.notes[0].contains("≥ 2 processors"));
        // On a uniform 64-host line with c = 4 there is at least one
        // overlap column (m_0 = 64/24 ≥ 2).
        let count: u32 = t.notes[0]
            .split(" of ")
            .next()
            .unwrap()
            .parse()
            .unwrap_or(0);
        assert!(count >= 1, "{}", t.notes[0]);
    }

    #[test]
    fn figure2_reports_zero_lemma_violations() {
        let t = figure2();
        assert!(t.notes[0].contains("0 violations"), "{}", t.notes[0]);
    }
}
