//! Fact 3 embedding cost on the host families of Theorem 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use overlap_net::embed::embed_linear_array;
use overlap_net::topology::{hypercube, linear_array, mesh2d, random_regular};
use overlap_net::DelayModel;

fn bench_embed(c: &mut Criterion) {
    let mut g = c.benchmark_group("embed");
    let dm = DelayModel::uniform(1, 9);
    let hosts = vec![
        ("mesh32x32", mesh2d(32, 32, dm, 1)),
        ("hypercube10", hypercube(10, dm, 1)),
        ("rreg1024x3", random_regular(1024, 3, dm, 1)),
        ("path4096", linear_array(4096, dm, 1)),
    ];
    for (name, host) in hosts {
        g.bench_with_input(BenchmarkId::from_parameter(name), &host, |b, h| {
            b.iter(|| embed_linear_array(h))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_embed);
criterion_main!(benches);
