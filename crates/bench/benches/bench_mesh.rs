//! Theorem 7/8 mesh-emulation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use overlap_core::mesh::simulate_mesh_with_trace;
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap_net::topology::linear_array;
use overlap_net::DelayModel;

fn bench_mesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("mesh");
    let host = linear_array(8, DelayModel::uniform(1, 5), 3);
    for &m in &[8u32, 16, 32] {
        let guest = GuestSpec::mesh(m, m, ProgramKind::Relaxation, 3, 12);
        let trace = ReferenceRun::execute(&guest);
        g.bench_with_input(BenchmarkId::from_parameter(m), &guest, |b, gu| {
            b.iter(|| simulate_mesh_with_trace(gu, &host, 4.0, 2, &trace).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mesh);
criterion_main!(benches);
