//! Theorem 4 scenario cost: halo vs blocked execution on a uniform-delay
//! host (wall-clock of the simulator itself, not the simulated makespan).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use overlap_core::pipeline::Strategy;
use overlap_core::Simulation;
use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap_net::topology::linear_array;
use overlap_net::DelayModel;

fn bench_uniform(c: &mut Criterion) {
    let mut g = c.benchmark_group("theorem4");
    let d = 64u64;
    let n = 16u32;
    let r = (d as f64).sqrt() as u32;
    let guest = GuestSpec::array(n * r, ProgramKind::Relaxation, 9, 4 * r);
    let trace = ReferenceRun::execute(&guest);
    let host = linear_array(n, DelayModel::constant(d), 0);
    for (label, strat) in [
        ("halo1", Strategy::Halo { halo: 1 }),
        ("halo2", Strategy::Halo { halo: 2 }),
        ("blocked", Strategy::Blocked),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &strat, |b, &s| {
            b.iter(|| {
                Simulation::of(&guest)
                    .on(&host)
                    .strategy(s)
                    .build()
                    .and_then(|sim| sim.run_with_trace(&trace))
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_uniform);
criterion_main!(benches);
