//! Engine throughput: pebbles simulated per second for a standard
//! (guest, host, assignment) scenario, across bandwidth models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use overlap_model::{GuestSpec, ProgramKind};
use overlap_net::topology::linear_array;
use overlap_net::DelayModel;
use overlap_sim::engine::{Engine, EngineConfig};
use overlap_sim::engine_classic::run_classic;
use overlap_sim::lockstep::run_lockstep;
use overlap_sim::stepped::run_stepped;
use overlap_sim::{Assignment, BandwidthMode, ExecPlan};

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    for &(n, cells, steps) in &[(16u32, 64u32, 64u32), (64, 256, 64), (128, 1024, 64)] {
        let guest = GuestSpec::array(cells, ProgramKind::Relaxation, 3, steps);
        let host = linear_array(n, DelayModel::uniform(1, 7), 5);
        let assign = Assignment::blocked(n, cells);
        let pebbles = cells as u64 * steps as u64;
        g.throughput(Throughput::Elements(pebbles));
        g.bench_with_input(
            BenchmarkId::new("blocked", format!("{n}x{cells}x{steps}")),
            &(),
            |b, _| {
                b.iter(|| {
                    Engine::new(&guest, &host, &assign, EngineConfig::default())
                        .run()
                        .unwrap()
                })
            },
        );
    }
    // Engine-implementation comparison at fixed scenario.
    {
        let guest = GuestSpec::array(256, ProgramKind::Relaxation, 3, 64);
        let host = linear_array(64, DelayModel::uniform(1, 7), 5);
        let assign = Assignment::blocked(64, 256);
        g.bench_function("impl/event", |b| {
            b.iter(|| {
                Engine::new(&guest, &host, &assign, EngineConfig::default())
                    .run()
                    .unwrap()
            })
        });
        let plan = ExecPlan::build(&guest, &host, &assign, EngineConfig::default()).unwrap();
        g.bench_function("impl/stepped", |b| b.iter(|| run_stepped(&plan).unwrap()));
        g.bench_function("impl/lockstep", |b| b.iter(|| run_lockstep(&plan).unwrap()));
        g.bench_function("impl/event-shared-plan", |b| {
            b.iter(|| Engine::from_plan(&plan).run().unwrap())
        });
        g.bench_function("impl/event-classic", |b| {
            b.iter(|| run_classic(&guest, &host, &assign, EngineConfig::default(), None).unwrap())
        });
        g.bench_function("impl/event-multicast", |b| {
            let cfg = EngineConfig {
                multicast: true,
                ..Default::default()
            };
            b.iter(|| Engine::new(&guest, &host, &assign, cfg).run().unwrap())
        });
    }

    // Bandwidth-model comparison at fixed scenario.
    let guest = GuestSpec::array(256, ProgramKind::Relaxation, 3, 64);
    let host = linear_array(64, DelayModel::uniform(1, 7), 5);
    let assign = Assignment::blocked(64, 256);
    for bw in [BandwidthMode::LogN, BandwidthMode::Fixed(1)] {
        g.bench_with_input(
            BenchmarkId::new("bandwidth", format!("{bw:?}")),
            &bw,
            |b, &bw| {
                let cfg = EngineConfig {
                    bandwidth: bw,
                    ..Default::default()
                };
                b.iter(|| Engine::new(&guest, &host, &assign, cfg).run().unwrap())
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
