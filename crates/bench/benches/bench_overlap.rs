//! OVERLAP planning cost: killing/labeling the interval tree and running
//! the recursive database assignment, as a function of host size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use overlap_core::overlap::plan_overlap;
use overlap_net::topology::linear_array;
use overlap_net::DelayModel;

fn bench_plan(c: &mut Criterion) {
    let mut g = c.benchmark_group("overlap_plan");
    for &n in &[1024u32, 4096, 16384, 65536] {
        let host = linear_array(
            n,
            DelayModel::HeavyTail {
                min: 1,
                alpha: 0.8,
                cap: 1 << 20,
            },
            7,
        );
        let delays: Vec<u64> = host.links().iter().map(|l| l.delay).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &delays, |b, d| {
            b.iter(|| plan_overlap(d, 4.0, 1).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_plan);
criterion_main!(benches);
