//! Property-based tests for the simulator.

use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
use overlap_net::topology::linear_array;
use overlap_net::DelayModel;
use overlap_sim::engine::{Engine, EngineConfig};
use overlap_sim::lockstep::run_lockstep;
use overlap_sim::stepped::run_stepped;
use overlap_sim::validate::validate_run;
use overlap_sim::{Assignment, BandwidthMode, ExecPlan};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bandwidth_law_matches_paper_formula(
        d in 1u64..1000,
        p in 1u64..1000,
        bw in 1u32..64,
    ) {
        let m = BandwidthMode::Fixed(bw);
        let t = m.batch_transit(0, d, p);
        prop_assert_eq!(t, d + p.div_ceil(bw as u64) - 1);
        // Monotonicity in every argument.
        prop_assert!(m.batch_transit(0, d + 1, p) > t || p == 0);
        prop_assert!(m.batch_transit(0, d, p + 1) >= t);
        prop_assert!(BandwidthMode::Fixed(bw + 1).batch_transit(0, d, p) <= t);
    }

    #[test]
    fn blocked_assignments_cover_everything(procs in 1u32..40, cells in 1u32..200) {
        let a = Assignment::blocked(procs, cells);
        prop_assert!(a.is_complete());
        prop_assert_eq!(a.total_copies() as u32, cells);
        // Load is balanced to within one.
        let max = a.load();
        let min = (0..procs)
            .map(|p| a.cells_of(p).len())
            .filter(|&l| l > 0)
            .min()
            .unwrap();
        prop_assert!(max - min <= 1, "load {max} vs {min}");
    }

    #[test]
    fn assignment_representations_roundtrip(
        procs in 1u32..10,
        cells in 1u32..30,
        seed in any::<u64>(),
    ) {
        // random-ish complete assignment
        let mut cells_of = vec![Vec::new(); procs as usize];
        let mut x = seed | 1;
        for c in 0..cells {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let p = ((x >> 33) % procs as u64) as usize;
            cells_of[p].push(c);
            // sometimes a second copy
            if x % 3 == 0 {
                let q = ((x >> 17) % procs as u64) as usize;
                if q != p {
                    cells_of[q].push(c);
                }
            }
        }
        let a = Assignment::from_cells_of(procs, cells, cells_of);
        let holders: Vec<Vec<u32>> = (0..cells).map(|c| a.holders(c).to_vec()).collect();
        let b = Assignment::from_holders(procs, cells, holders);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn engine_agrees_with_reference_on_random_scenarios(
        procs in 1u32..8,
        cells_per in 1u32..4,
        steps in 0u32..14,
        d in 1u64..60,
        seed in any::<u64>(),
    ) {
        let cells = procs * cells_per;
        let guest = GuestSpec::array(cells, ProgramKind::RuleAutomaton { db_size: 8 }, seed, steps);
        let host = linear_array(procs, DelayModel::uniform(1, d), seed);
        let assign = Assignment::blocked(procs, cells);
        let out = Engine::new(&guest, &host, &assign, EngineConfig::default())
            .run()
            .expect("complete");
        let trace = ReferenceRun::execute(&guest);
        prop_assert!(validate_run(&trace, &out).is_empty());
        prop_assert_eq!(out.stats.total_compute, cells as u64 * steps as u64);
    }

    #[test]
    fn event_and_stepped_engines_agree_on_all_state(
        procs in 2u32..7,
        cells_per in 1u32..4,
        steps in 1u32..12,
        d in 1u64..50,
        seed in any::<u64>(),
    ) {
        let cells = procs * cells_per;
        let guest = GuestSpec::array(cells, ProgramKind::KvWorkload, seed, steps);
        let host = linear_array(procs, DelayModel::uniform(1, d), seed);
        let assign = Assignment::blocked(procs, cells);
        let cfg = EngineConfig::default();
        let plan = ExecPlan::build(&guest, &host, &assign, cfg).expect("plan");
        let ev = Engine::from_plan(&plan).run().expect("event");
        let st = run_stepped(&plan).expect("stepped");
        let mut a = ev.copies.clone();
        let mut b = st.copies.clone();
        a.sort_by_key(|c| (c.cell, c.proc));
        b.sort_by_key(|c| (c.cell, c.proc));
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.value_fold, y.value_fold);
            prop_assert_eq!(x.db_digest, y.db_digest);
            prop_assert_eq!(x.update_fold, y.update_fold);
        }
        prop_assert_eq!(ev.stats.messages, st.stats.messages);
    }

    #[test]
    fn multicast_agrees_with_unicast_and_never_adds_traffic(
        procs in 2u32..7,
        cells_per in 1u32..4,
        steps in 1u32..10,
        d in 1u64..40,
        seed in any::<u64>(),
        extra_copies in 0u32..6,
    ) {
        let cells = procs * cells_per;
        let guest = GuestSpec::array(cells, ProgramKind::Relaxation, seed, steps);
        let host = linear_array(procs, DelayModel::uniform(1, d), seed);
        // blocked + a few deterministic extra copies for fan-out
        let base = Assignment::blocked(procs, cells);
        let mut cells_of: Vec<Vec<u32>> =
            (0..procs).map(|p| base.cells_of(p).to_vec()).collect();
        let mut x = seed | 1;
        for _ in 0..extra_copies {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let p = ((x >> 33) % procs as u64) as usize;
            let c = ((x >> 13) % cells as u64) as u32;
            if !cells_of[p].contains(&c) {
                cells_of[p].push(c);
            }
        }
        let assign = Assignment::from_cells_of(procs, cells, cells_of);
        let uni = Engine::new(&guest, &host, &assign, EngineConfig::default())
            .run()
            .expect("unicast");
        let mc_cfg = EngineConfig { multicast: true, ..Default::default() };
        let mc = Engine::new(&guest, &host, &assign, mc_cfg).run().expect("multicast");
        let mut a = uni.copies.clone();
        let mut b = mc.copies.clone();
        a.sort_by_key(|c| (c.cell, c.proc));
        b.sort_by_key(|c| (c.cell, c.proc));
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.value_fold, y.value_fold);
            prop_assert_eq!(x.db_digest, y.db_digest);
        }
        prop_assert!(mc.stats.pebble_hops <= uni.stats.pebble_hops);
    }

    #[test]
    fn lockstep_agrees_on_state_and_never_beats_greedy(
        procs in 2u32..6,
        cells_per in 1u32..4,
        steps in 1u32..10,
        d in 1u64..40,
        seed in any::<u64>(),
    ) {
        let cells = procs * cells_per;
        let guest = GuestSpec::array(cells, ProgramKind::KvWorkload, seed, steps);
        let host = linear_array(procs, DelayModel::uniform(1, d), seed);
        let assign = Assignment::blocked(procs, cells);
        let plan = ExecPlan::build(&guest, &host, &assign, EngineConfig::default()).expect("plan");
        let greedy = Engine::from_plan(&plan).run().expect("greedy");
        let lock = run_lockstep(&plan).expect("lockstep");
        prop_assert!(lock.stats.makespan >= greedy.stats.makespan);
        let trace = ReferenceRun::execute(&guest);
        prop_assert!(validate_run(&trace, &lock).is_empty());
    }

    #[test]
    fn makespan_monotone_in_steps(
        procs in 2u32..6,
        d in 1u64..40,
        seed in any::<u64>(),
    ) {
        let host = linear_array(procs, DelayModel::constant(d), 0);
        let assign = Assignment::blocked(procs, procs * 2);
        let mut last = 0;
        for steps in [2u32, 4, 8] {
            let guest = GuestSpec::array(procs * 2, ProgramKind::Relaxation, seed, steps);
            let out = Engine::new(&guest, &host, &assign, EngineConfig::default())
                .run()
                .unwrap();
            prop_assert!(out.stats.makespan >= last);
            last = out.stats.makespan;
        }
    }
}
