//! Stall attribution: *where* does a run's slowdown come from?
//!
//! The paper's whole argument is about where latency goes — OVERLAP
//! (Theorem 2) wins because pebble `(i, t)` stalls on dependencies,
//! bandwidth, or database-update order, and the deadlines `s_t^{(k)}`
//! bound those stalls. `RunStats` alone cannot say *why* a slowdown is
//! `4.2×` instead of `3.1×`. This module attributes every tick of every
//! copy's lifetime to exactly one category:
//!
//! * **compute** — the pebble was being computed (`cost_of(p)` ticks);
//! * **dependency** — the copy's next pebble could not start because a
//!   producer (local sibling or remote holder) had not yet *computed* the
//!   value it needs;
//! * **bandwidth** — the last missing dependency was computed but still in
//!   flight: link latency plus pipelined-injection slot waits
//!   (`d + ⌈P/bw⌉ − 1`, the paper's bandwidth law);
//! * **db-order** — the pebble was ready but queued behind the same
//!   processor's other columns (§2's in-order database updates serialize
//!   one pebble per tick per processor);
//! * **fault** — timeout and exponential-backoff ticks of the last missing
//!   dependency's transfer (zero without a fault plan);
//! * **drained** — the copy had finished all its steps and idled until the
//!   run's makespan.
//!
//! The categories partition `[0, makespan)` for every copy, so the
//! conservation invariant
//!
//! ```text
//! compute + dependency + bandwidth + db_order + fault + drained
//!     == makespan × copies
//! ```
//!
//! holds exactly for every completed run — it is cross-checked against the
//! classic oracle engine in the test suite and in `exp_stall_attribution`.
//!
//! # Mechanics
//!
//! The engine's dispatch loop is generic over a [`Tracer`]; the default
//! [`NoopTracer`] has empty `#[inline]` hooks, so the untraced engine
//! monomorphizes to the exact event schedule it had before this module
//! existed (the golden determinism tests pin this bit-for-bit).
//! [`StallTracer`] implements the attribution: for each copy it records
//! when a pebble became *ready* (and why — [`ReadyCause`]), when it was
//! *popped* for compute, and when it *finished*; the window between two
//! completions is then split as
//!
//! ```text
//! done(s−1) ····· send ········ ready ······ start ········ done(s)
//!           │ dependency │ bw+fault │ db-order │  compute  │
//! ```
//!
//! where `send` is the completion tick of the last-arriving dependency on
//! its producer copy. Per-link occupancy and per-processor ready-queue
//! depth are additionally sampled into time series at a configurable
//! stride ([`TraceConfig::series_stride`]).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of an opt-in traced run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Bin width, in ticks, of the per-link occupancy and per-processor
    /// queue-depth time series (≥ 1). Attribution totals are exact
    /// regardless of the stride; only the series are sampled.
    pub series_stride: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { series_stride: 64 }
    }
}

/// Where every tick of every copy went, summed over copies. Produced by a
/// traced run; see the module docs for the category definitions and the
/// conservation invariant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallBreakdown {
    /// Ticks spent computing pebbles.
    pub compute_ticks: u64,
    /// Ticks stalled because a producer had not yet computed the needed
    /// value (includes waits on same-processor sibling columns).
    pub stall_dependency: u64,
    /// Ticks the last missing dependency spent in flight: link latency
    /// plus bandwidth-slot waits.
    pub stall_bandwidth: u64,
    /// Ticks a ready pebble waited behind the same processor's other
    /// columns (in-order database updates, one pebble per tick).
    pub stall_db_order: u64,
    /// Timeout + backoff ticks of the last missing dependency's transfer.
    pub stall_fault: u64,
    /// Ticks after a copy finished all steps, waiting for the makespan.
    pub stall_drained: u64,
}

impl StallBreakdown {
    /// Sum of every category — equals `makespan × copies` for a completed
    /// traced run.
    pub fn total(&self) -> u64 {
        self.compute_ticks
            + self.stall_dependency
            + self.stall_bandwidth
            + self.stall_db_order
            + self.stall_fault
            + self.stall_drained
    }

    /// Sum of the four stall categories (everything but compute and the
    /// post-completion drain).
    pub fn total_stalled(&self) -> u64 {
        self.stall_dependency + self.stall_bandwidth + self.stall_db_order + self.stall_fault
    }

    /// Accumulate another breakdown into this one.
    pub fn add(&mut self, other: &StallBreakdown) {
        self.compute_ticks += other.compute_ticks;
        self.stall_dependency += other.stall_dependency;
        self.stall_bandwidth += other.stall_bandwidth;
        self.stall_db_order += other.stall_db_order;
        self.stall_fault += other.stall_fault;
        self.stall_drained += other.stall_drained;
    }
}

/// Identifies one in-flight pebble message for fault accounting: a
/// subscription (or multicast tree) carrying one step's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKey {
    /// Unicast (or dynamic) subscription `sub` carrying step `step`.
    Sub {
        /// Subscription id (dynamic re-subscriptions extend the id space).
        sub: u32,
        /// The pebble step being carried.
        step: u32,
    },
    /// Multicast tree `tree` carrying step `step`.
    Tree {
        /// Multicast tree id.
        tree: u32,
        /// The pebble step being carried.
        step: u32,
    },
}

/// Why a pebble became ready — the event that flipped its last unmet
/// dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadyCause {
    /// Progress on the same processor (seed-time readiness or a local
    /// sibling column completing).
    Local,
    /// A remote dependency was delivered by this message.
    Delivered(MsgKey),
}

/// Hooks the engine's dispatch loop calls on a traced run. Every method
/// has an empty `#[inline]` default, so a no-op implementor compiles to
/// the untraced engine.
///
/// Ticks are engine event ticks; `proc`/`own_idx` identify a copy the way
/// the engine does (processor id + index into its held-cell list).
pub trait Tracer {
    /// Copy `(proc, own_idx)`'s step `step` became ready at `tick`.
    #[inline]
    fn on_enqueued(
        &mut self,
        _proc: u32,
        _own_idx: u32,
        _step: u32,
        _tick: u64,
        _cause: ReadyCause,
    ) {
    }

    /// Copy `(proc, own_idx)`'s step `step` was popped from the ready
    /// queue at `tick` and starts computing.
    #[inline]
    fn on_start(&mut self, _proc: u32, _own_idx: u32, _step: u32, _tick: u64) {}

    /// Copy `(proc, own_idx)` finished computing step `step` at `tick`.
    #[inline]
    fn on_compute_done(&mut self, _proc: u32, _own_idx: u32, _step: u32, _tick: u64) {}

    /// A pebble was injected on directed link `link`, departing at
    /// `depart`.
    #[inline]
    fn on_link_inject(&mut self, _link: u32, _depart: u64) {}

    /// Message `msg` timed out on a downed link and will retry: `ticks` =
    /// wasted transfer time plus backoff.
    #[inline]
    fn on_fault_wait(&mut self, _msg: MsgKey, _ticks: u64) {}

    /// Processor `proc` crashed (its copies leave the accounting).
    #[inline]
    fn on_crash(&mut self, _proc: u32) {}

    /// Subscription `sub` now sources from copy `src_idx` of processor
    /// `src_proc` (crash recovery re-subscription; `sub` may be new).
    #[inline]
    fn on_reroute(&mut self, _sub: u32, _src_proc: u32, _src_idx: u32) {}
}

/// The do-nothing tracer: `Engine::run` uses it, and the monomorphized
/// result schedules exactly the same events as the pre-trace engine.
pub struct NoopTracer;

impl Tracer for NoopTracer {}

/// Everything a traced run measured: the totals, the per-copy splits, and
/// the sampled time series.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Category totals over all surviving copies.
    pub totals: StallBreakdown,
    /// Per-copy breakdowns, aligned with `RunOutcome::copies`.
    pub per_copy: Vec<StallBreakdown>,
    /// The run's makespan (denominator of the conservation invariant).
    pub makespan: u64,
    /// Bin width of the time series, in ticks.
    pub series_stride: u64,
    /// Pebble injections per directed link per time bin.
    pub link_occupancy: Vec<Vec<u64>>,
    /// Maximum ready-queue depth per processor per time bin (bins without
    /// queue activity carry the depth held through them).
    pub queue_depth: Vec<Vec<u32>>,
}

/// Per-copy bookkeeping of the step currently in flight.
#[derive(Clone, Copy, Default)]
struct Pending {
    /// Tick the step became ready.
    ready: u64,
    /// Completion tick of the last-arriving dependency on its producer.
    send: u64,
    /// Fault (timeout + backoff) ticks of that dependency's transfer.
    fault: u64,
    /// Tick the step was popped for compute.
    start: u64,
}

/// The [`Tracer`] implementing stall attribution. Build one with
/// [`Engine::run_traced`](crate::engine::Engine::run_traced) — it needs
/// the engine's interned copy/route tables to map subscriptions to their
/// producing copies.
pub struct StallTracer {
    /// `steps + 1`: stride of the per-copy completion-tick table.
    stride: usize,
    /// Global copy id of processor `p`'s first copy (prefix sums).
    copy_off: Vec<u32>,
    /// Subscription id → producing copy id (extended by re-subscription).
    sub_src: Vec<u32>,
    /// Multicast tree id → producing copy id.
    tree_src: Vec<u32>,
    /// Completion tick per copy per step (`done[cid·stride + s]`; step 0
    /// is the initial value, "completed" at tick 0).
    done: Vec<u64>,
    /// In-flight step per copy.
    pending: Vec<Pending>,
    /// Accumulated attribution per copy.
    per_copy: Vec<StallBreakdown>,
    /// Fault ticks accumulated per in-flight message (touched only when
    /// faults fire, so the fault-free traced path never hashes).
    fault_ticks: HashMap<MsgKey, u64>,
    /// Crashed processors (their copies leave the accounting).
    crashed: Vec<bool>,
    /// Series bin width in ticks.
    series_stride: u64,
    /// Injections per link per bin.
    link_occupancy: Vec<Vec<u64>>,
    /// Current ready-queue depth per processor.
    depth: Vec<u32>,
    /// Max ready-queue depth per processor per bin.
    queue_depth: Vec<Vec<u32>>,
}

impl StallTracer {
    /// A tracer for a run of `steps` steps over the given copy layout.
    /// `copy_off` are the engine's per-processor copy-id prefix sums;
    /// `sub_src`/`tree_src` map each route to the copy that feeds it.
    pub(crate) fn new(
        cfg: TraceConfig,
        steps: u32,
        copy_off: Vec<u32>,
        sub_src: Vec<u32>,
        tree_src: Vec<u32>,
        n_links: usize,
    ) -> Self {
        let n_copies = *copy_off.last().unwrap_or(&0) as usize;
        let n_procs = copy_off.len().saturating_sub(1);
        let stride = steps as usize + 1;
        Self {
            stride,
            copy_off,
            sub_src,
            tree_src,
            done: vec![0; n_copies * stride],
            pending: vec![Pending::default(); n_copies],
            per_copy: vec![StallBreakdown::default(); n_copies],
            fault_ticks: HashMap::new(),
            crashed: vec![false; n_procs],
            series_stride: cfg.series_stride.max(1),
            link_occupancy: vec![Vec::new(); n_links],
            depth: vec![0; n_procs],
            queue_depth: vec![Vec::new(); n_procs],
        }
    }

    #[inline]
    fn cid(&self, proc: u32, own_idx: u32) -> usize {
        (self.copy_off[proc as usize] + own_idx) as usize
    }

    /// Record processor `p`'s current queue depth into its series bin,
    /// padding skipped bins with the depth that was held through them.
    fn sample_depth(&mut self, p: usize, tick: u64) {
        let bin = (tick / self.series_stride) as usize;
        let series = &mut self.queue_depth[p];
        if series.len() <= bin {
            let held = series.last().copied().unwrap_or(0).min(self.depth[p]);
            series.resize(bin, held);
            series.push(self.depth[p]);
        } else {
            series[bin] = series[bin].max(self.depth[p]);
        }
    }

    /// Close the books: fold the post-completion drain of every surviving
    /// copy and assemble the report. `makespan` is the completed run's
    /// final tick.
    pub(crate) fn finish(mut self, makespan: u64) -> TraceReport {
        let mut totals = StallBreakdown::default();
        let mut per_copy = Vec::with_capacity(self.per_copy.len());
        for p in 0..self.crashed.len() {
            if self.crashed[p] {
                continue;
            }
            for cid in self.copy_off[p] as usize..self.copy_off[p + 1] as usize {
                let mut b = self.per_copy[cid];
                let finished = self.done[cid * self.stride + self.stride - 1];
                b.stall_drained += makespan - finished;
                totals.add(&b);
                per_copy.push(b);
            }
        }
        for series in &mut self.link_occupancy {
            if makespan > 0 {
                series.resize(((makespan / self.series_stride) + 1) as usize, 0);
            }
        }
        TraceReport {
            totals,
            per_copy,
            makespan,
            series_stride: self.series_stride,
            link_occupancy: self.link_occupancy,
            queue_depth: self.queue_depth,
        }
    }
}

impl Tracer for StallTracer {
    fn on_enqueued(&mut self, proc: u32, own_idx: u32, _step: u32, tick: u64, cause: ReadyCause) {
        let cid = self.cid(proc, own_idx);
        let (send, fault) = match cause {
            // Local readiness: the whole pre-ready wait is a dependency
            // stall (a sibling producer on the same processor was late).
            ReadyCause::Local => (tick, 0),
            ReadyCause::Delivered(msg) => {
                let (src, dep_step) = match msg {
                    MsgKey::Sub { sub, step } => (self.sub_src[sub as usize], step),
                    MsgKey::Tree { tree, step } => (self.tree_src[tree as usize], step),
                };
                let send = self.done[src as usize * self.stride + dep_step as usize];
                let fault = if self.fault_ticks.is_empty() {
                    0
                } else {
                    self.fault_ticks.remove(&msg).unwrap_or(0)
                };
                (send, fault)
            }
        };
        self.pending[cid] = Pending {
            ready: tick,
            send,
            fault,
            start: 0,
        };
        let p = proc as usize;
        self.depth[p] += 1;
        self.sample_depth(p, tick);
    }

    fn on_start(&mut self, proc: u32, own_idx: u32, _step: u32, tick: u64) {
        let cid = self.cid(proc, own_idx);
        self.pending[cid].start = tick;
        let p = proc as usize;
        self.depth[p] -= 1;
        self.sample_depth(p, tick);
    }

    fn on_compute_done(&mut self, proc: u32, own_idx: u32, step: u32, tick: u64) {
        let cid = self.cid(proc, own_idx);
        let prev = self.done[cid * self.stride + step as usize - 1];
        let Pending {
            ready,
            send,
            fault,
            start,
        } = self.pending[cid];
        let b = &mut self.per_copy[cid];
        b.compute_ticks += tick - start;
        b.stall_db_order += start - ready;
        // Pre-ready wait, split at the last dependency's production tick:
        // before it the pebble waited on compute elsewhere (dependency),
        // after it the value was in flight (bandwidth), minus any fault
        // timeout/backoff ticks the transfer accumulated.
        let pre = ready - prev;
        let dep = send.saturating_sub(prev).min(pre);
        let fault = fault.min(pre - dep);
        b.stall_dependency += dep;
        b.stall_fault += fault;
        b.stall_bandwidth += pre - dep - fault;
        self.done[cid * self.stride + step as usize] = tick;
    }

    fn on_link_inject(&mut self, link: u32, depart: u64) {
        let bin = (depart / self.series_stride) as usize;
        let series = &mut self.link_occupancy[link as usize];
        if series.len() <= bin {
            series.resize(bin + 1, 0);
        }
        series[bin] += 1;
    }

    fn on_fault_wait(&mut self, msg: MsgKey, ticks: u64) {
        *self.fault_ticks.entry(msg).or_default() += ticks;
    }

    fn on_crash(&mut self, proc: u32) {
        self.crashed[proc as usize] = true;
    }

    fn on_reroute(&mut self, sub: u32, src_proc: u32, src_idx: u32) {
        let cid = self.copy_off[src_proc as usize] + src_idx;
        let sub = sub as usize;
        if sub == self.sub_src.len() {
            self.sub_src.push(cid);
        } else {
            self.sub_src[sub] = cid;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two copies on one processor, one remote dependency: drive the
    /// tracer by hand and check the attribution arithmetic.
    #[test]
    fn attribution_splits_the_window() {
        let cfg = TraceConfig { series_stride: 8 };
        // proc 0 holds copies 0 and 1; proc 1 holds copy 2.
        // sub 0 feeds from copy 2.
        let mut tr = StallTracer::new(cfg, 2, vec![0, 2, 3], vec![2], vec![], 2);

        // Seed: copy 0 ready at 0, starts at 0, done at 3.
        tr.on_enqueued(0, 0, 1, 0, ReadyCause::Local);
        tr.on_start(0, 0, 1, 0);
        // Copy 1 becomes ready at 1 (local), but proc busy until 3.
        tr.on_enqueued(0, 1, 1, 1, ReadyCause::Local);
        tr.on_compute_done(0, 0, 1, 3);
        tr.on_start(0, 1, 1, 3);
        tr.on_compute_done(0, 1, 1, 5);

        // Copy 2 on proc 1: done step 1 at tick 2 (its producer role).
        tr.on_enqueued(1, 0, 1, 0, ReadyCause::Local);
        tr.on_start(1, 0, 1, 0);
        tr.on_compute_done(1, 0, 1, 2);

        // Copy 0 step 2 waits on the remote value: produced at 2 (send),
        // delivered at 9 with 3 fault ticks, starts at 10, done at 12.
        tr.on_fault_wait(MsgKey::Sub { sub: 0, step: 1 }, 3);
        tr.on_enqueued(
            0,
            0,
            2,
            9,
            ReadyCause::Delivered(MsgKey::Sub { sub: 0, step: 1 }),
        );
        tr.on_start(0, 0, 2, 10);
        tr.on_compute_done(0, 0, 2, 12);

        let b = tr.per_copy[0];
        // Window [3, 12): send 2 < window start ⇒ dependency 0 for this
        // step, pre-ready wait 9−3 = 6 → fault 3, bandwidth 3; db-order
        // 10−9 = 1; compute 3 (step 1) + 2 (step 2).
        assert_eq!(b.compute_ticks, 5);
        assert_eq!(b.stall_dependency, 0);
        assert_eq!(b.stall_fault, 3);
        assert_eq!(b.stall_bandwidth, 3);
        assert_eq!(b.stall_db_order, 1);

        // Copy 1: ready at 1, started at 3 ⇒ dependency 1 (local wait up
        // to ready), db-order 2, compute 2.
        let b1 = tr.per_copy[1];
        assert_eq!(b1.stall_dependency, 1);
        assert_eq!(b1.stall_db_order, 2);
        assert_eq!(b1.compute_ticks, 2);
    }

    #[test]
    fn finish_drains_to_the_makespan_and_conserves() {
        let cfg = TraceConfig::default();
        let mut tr = StallTracer::new(cfg, 1, vec![0, 1, 2], vec![], vec![], 1);
        for p in 0..2u32 {
            tr.on_enqueued(p, 0, 1, 0, ReadyCause::Local);
            tr.on_start(p, 0, 1, 0);
        }
        tr.on_compute_done(0, 0, 1, 4);
        tr.on_compute_done(1, 0, 1, 10);
        let report = tr.finish(10);
        assert_eq!(report.per_copy.len(), 2);
        assert_eq!(report.per_copy[0].stall_drained, 6);
        assert_eq!(report.per_copy[1].stall_drained, 0);
        // Conservation: every copy's categories cover [0, makespan).
        assert_eq!(report.totals.total(), 10 * 2);
    }

    #[test]
    fn crashed_processors_leave_the_accounting() {
        let cfg = TraceConfig::default();
        let mut tr = StallTracer::new(cfg, 1, vec![0, 1, 2], vec![], vec![], 1);
        tr.on_enqueued(0, 0, 1, 0, ReadyCause::Local);
        tr.on_start(0, 0, 1, 0);
        tr.on_compute_done(0, 0, 1, 3);
        tr.on_crash(1);
        let report = tr.finish(3);
        assert_eq!(report.per_copy.len(), 1);
        assert_eq!(report.totals.total(), 3);
    }

    #[test]
    fn series_bins_by_stride() {
        let cfg = TraceConfig { series_stride: 10 };
        let mut tr = StallTracer::new(cfg, 1, vec![0, 1], vec![], vec![], 2);
        tr.on_link_inject(0, 3);
        tr.on_link_inject(0, 7);
        tr.on_link_inject(0, 25);
        tr.on_link_inject(1, 99);
        tr.on_enqueued(0, 0, 1, 0, ReadyCause::Local);
        tr.on_start(0, 0, 1, 35);
        tr.on_compute_done(0, 0, 1, 40);
        let report = tr.finish(99);
        assert_eq!(report.link_occupancy[0][0], 2);
        assert_eq!(report.link_occupancy[0][2], 1);
        assert_eq!(report.link_occupancy[1][9], 1);
        // Same padded length for every link.
        assert_eq!(
            report.link_occupancy[0].len(),
            report.link_occupancy[1].len()
        );
        assert_eq!(report.queue_depth[0][0], 1);
        assert_eq!(report.queue_depth[0][3], 0);
    }

    #[test]
    fn breakdown_totals_and_add() {
        let mut a = StallBreakdown {
            compute_ticks: 1,
            stall_dependency: 2,
            stall_bandwidth: 3,
            stall_db_order: 4,
            stall_fault: 5,
            stall_drained: 6,
        };
        assert_eq!(a.total(), 21);
        assert_eq!(a.total_stalled(), 14);
        let b = a;
        a.add(&b);
        assert_eq!(a.total(), 42);
    }
}
