//! Link bandwidth model.
//!
//! Paper §2: "We assume that the bandwidth available on the links of the
//! host network H is log n times larger than the bandwidth on the links of
//! the guest network G. … Hence, P pebbles can be passed along a d-delay
//! link in d + ⌈P / log n⌉ − 1 steps. This assumption can be removed by
//! paying an extra factor of log n in the slowdown."

use serde::{Deserialize, Serialize};

/// How many pebbles a host link carries per tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BandwidthMode {
    /// The paper's assumption: `⌈log₂ n⌉` pebbles per tick (`n` = host
    /// size), minimum 1.
    LogN,
    /// A fixed bandwidth; `Fixed(1)` reproduces the "pay an extra log n"
    /// regime.
    Fixed(u32),
}

impl BandwidthMode {
    /// Pebbles per tick for a host with `n` processors.
    pub fn per_tick(&self, n: u32) -> u32 {
        match *self {
            BandwidthMode::LogN => ((n.max(2) as f64).log2().ceil() as u32).max(1),
            BandwidthMode::Fixed(b) => b.max(1),
        }
    }

    /// Transit time of a batch of `p` pebbles over a delay-`d` link:
    /// `d + ⌈p/bw⌉ − 1` (the paper's formula). `p = 0` returns 0.
    ///
    /// ```
    /// use overlap_sim::BandwidthMode;
    /// // 100 pebbles over a delay-5 link with log₂(1024) = 10 pebbles/tick:
    /// assert_eq!(BandwidthMode::LogN.batch_transit(1024, 5, 100), 14);
    /// ```
    pub fn batch_transit(&self, n: u32, d: u64, p: u64) -> u64 {
        if p == 0 {
            return 0;
        }
        let bw = self.per_tick(n) as u64;
        d + p.div_ceil(bw) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_n_bandwidth() {
        assert_eq!(BandwidthMode::LogN.per_tick(2), 1);
        assert_eq!(BandwidthMode::LogN.per_tick(1024), 10);
        assert_eq!(BandwidthMode::LogN.per_tick(1000), 10);
        assert_eq!(BandwidthMode::LogN.per_tick(1), 1);
    }

    #[test]
    fn fixed_bandwidth_clamps_to_one() {
        assert_eq!(BandwidthMode::Fixed(0).per_tick(64), 1);
        assert_eq!(BandwidthMode::Fixed(7).per_tick(64), 7);
    }

    #[test]
    fn batch_transit_matches_paper_formula() {
        // P pebbles over a d-delay link in d + ceil(P/bw) - 1 steps.
        let m = BandwidthMode::Fixed(4);
        assert_eq!(m.batch_transit(0, 10, 1), 10);
        assert_eq!(m.batch_transit(0, 10, 4), 10);
        assert_eq!(m.batch_transit(0, 10, 5), 11);
        assert_eq!(m.batch_transit(0, 10, 8), 11);
        assert_eq!(m.batch_transit(0, 10, 0), 0);
    }

    #[test]
    fn log_n_transit_for_1024_hosts() {
        let m = BandwidthMode::LogN;
        // bw = 10: 100 pebbles over delay-5 link: 5 + 10 - 1 = 14.
        assert_eq!(m.batch_transit(1024, 5, 100), 14);
    }
}
