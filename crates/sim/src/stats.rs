//! Aggregate statistics of a simulation run.

use crate::trace::StallBreakdown;
use serde::{Deserialize, Serialize};

/// Measured quantities of one host simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Number of guest cells (databases).
    pub guest_cells: u32,
    /// Guest steps simulated (`t` in the paper).
    pub guest_steps: u32,
    /// Host processors.
    pub host_procs: u32,
    /// Tick at which the last pebble was computed.
    pub makespan: u64,
    /// `makespan / guest_steps` — the paper's slowdown.
    pub slowdown: f64,
    /// Pebbles computed across all processors (counts redundancy).
    pub total_compute: u64,
    /// Pebbles the guest itself computes (`cells × steps`).
    pub guest_work: u64,
    /// Average database copies per cell.
    pub redundancy: f64,
    /// Maximum databases on one processor (§2's load).
    pub load: usize,
    /// Processors holding at least one database.
    pub active_procs: usize,
    /// Column pebbles sent over subscriptions.
    pub messages: u64,
    /// Total link traversals by pebbles.
    pub pebble_hops: u64,
    /// Number of (consumer, column) subscriptions.
    pub subscriptions: usize,
    /// Link bandwidth used (pebbles/tick).
    pub bandwidth_per_link: u32,
    /// Pebble injections on the busiest directed link (0 when no traffic).
    pub busiest_link_pebbles: u64,
    /// Mean pebble injections per directed link that carried any traffic.
    pub mean_link_pebbles: f64,
    /// Events dispatched by the engine's queue (compute completions, route
    /// hops, deliveries) — the denominator for events/sec throughput.
    #[serde(default)]
    pub events_processed: u64,
    /// Largest number of simultaneously pending events — a proxy for the
    /// engine's peak memory footprint.
    ///
    /// The sharded engine reports the *same* value as the sequential
    /// event engine: each window's merge replays the global
    /// `(tick, prio, seq)` pop order and reconstructs the single-queue
    /// depth from per-event child counts, so this field is bit-comparable
    /// across every [`EngineKind`](crate::engine). The stepped and
    /// lockstep engines have no event queue and report 0.
    #[serde(default)]
    pub peak_queue_depth: u64,
    /// Past-tick pushes the event calendar had to clamp forward to its
    /// cursor — an anomaly counter, always zero on a healthy run. A
    /// non-zero value means an engine tried to schedule work in the past
    /// (silent time-travel); debug builds assert instead of counting.
    #[serde(default)]
    pub queue_clamped_pushes: u64,
    /// Fault-recovery counters (all zero when the run had no fault plan).
    #[serde(default)]
    pub faults: FaultStats,
    /// Stall attribution totals, populated only by traced runs
    /// ([`Engine::run_traced`](crate::engine::Engine::run_traced)) —
    /// `None` otherwise, so untraced stats compare equal across engines.
    #[serde(default)]
    pub stalls: Option<StallBreakdown>,
    /// Memory-budget eviction/reload accounting (all zero when the run had
    /// no [`MemBudget`](crate::engine::MemBudget), so equality with
    /// unbounded-memory engines is unaffected).
    #[serde(default)]
    pub mem: MemStats,
}

/// Counters for the red-blue pebbling memory budget: how often database
/// copies were evicted from a processor's fast memory and how many extra
/// ticks reloads cost. All zero for unbounded runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Database copies evicted from fast memory.
    pub evictions: u64,
    /// Copies reloaded into fast memory after an eviction.
    pub reloads: u64,
    /// Extra compute ticks charged for reloads (summed over processors).
    pub reload_ticks: u64,
}

/// Counters describing how much fault recovery a run performed. All zero
/// for a fault-free run, so `RunStats` equality with fault-free engines is
/// unaffected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Transfer attempts that timed out on a downed link and were retried.
    pub retries: u64,
    /// Subscriptions rerouted to a surviving holder after a crash.
    pub rerouted_subscriptions: u64,
    /// Extra ticks pebbles spent waiting out timeouts and backoff —
    /// latency attributable to faults, summed over retried transfers.
    pub fault_stall_ticks: u64,
    /// Processors that crashed during the run.
    pub crashed_procs: u32,
    /// Database copies lost to crashes.
    pub lost_copies: u32,
}

impl RunStats {
    /// Work efficiency: guest work per host processor-tick consumed.
    /// `efficiency = guest_work / (host_procs × makespan)`; a
    /// *work-preserving* simulation keeps this Ω(1/polylog).
    pub fn efficiency(&self) -> f64 {
        if self.makespan == 0 || self.host_procs == 0 {
            return 0.0;
        }
        self.guest_work as f64 / (self.host_procs as f64 * self.makespan as f64)
    }

    /// Redundant-work overhead: host compute / guest work.
    pub fn work_overhead(&self) -> f64 {
        if self.guest_work == 0 {
            return 0.0;
        }
        self.total_compute as f64 / self.guest_work as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> RunStats {
        RunStats {
            guest_cells: 8,
            guest_steps: 10,
            host_procs: 4,
            makespan: 40,
            slowdown: 4.0,
            total_compute: 120,
            guest_work: 80,
            redundancy: 1.5,
            load: 3,
            active_procs: 4,
            messages: 60,
            pebble_hops: 70,
            subscriptions: 6,
            bandwidth_per_link: 2,
            busiest_link_pebbles: 30,
            mean_link_pebbles: 10.0,
            events_processed: 250,
            peak_queue_depth: 12,
            queue_clamped_pushes: 0,
            faults: FaultStats::default(),
            stalls: None,
            mem: MemStats::default(),
        }
    }

    #[test]
    fn efficiency_formula() {
        let s = stats();
        assert!((s.efficiency() - 80.0 / 160.0).abs() < 1e-12);
    }

    #[test]
    fn work_overhead_formula() {
        let s = stats();
        assert!((s.work_overhead() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_are_zero() {
        let mut s = stats();
        s.makespan = 0;
        assert_eq!(s.efficiency(), 0.0);
        s.guest_work = 0;
        assert_eq!(s.work_overhead(), 0.0);
    }
}
