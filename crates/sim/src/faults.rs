//! Deterministic, seeded fault plans and graceful degradation.
//!
//! Real NOWs do not just have *slow* links — they have links that go down
//! for a while, links whose delay transiently spikes (congestion storms,
//! re-routing), and workstations that die outright. The paper's redundant
//! database copies ("every holder computes every pebble of its columns")
//! are an untapped fault-tolerance mechanism: when a holder crashes, any
//! surviving copy of the same database can serve its subscribers.
//!
//! A [`FaultPlan`] is a fully deterministic schedule of such faults,
//! injected into the event engine via `Engine::with_faults` (or the
//! `Simulation` builder's `.faults(..)`). Semantics:
//!
//! * **Link outage** `[from, until)`: a pebble whose transfer over the
//!   link overlaps the outage is *lost*. The sender detects the loss after
//!   the transfer's expected latency (a timeout) and retries with
//!   exponential backoff ([`RetryPolicy`]). Failed attempts still consume
//!   the link's injection bandwidth.
//! * **Delay spike** `[from, until)`: transfers injected during the spike
//!   take `factor ×` their base (jittered) delay.
//! * **Processor crash** at tick `t`: the processor computes nothing from
//!   tick `t` on and its database copies are lost. Subscriptions it was
//!   serving are *re-subscribed* at runtime to the nearest surviving
//!   holder of the same database, which backfills every pebble the
//!   consumer has not yet received. If a crash leaves some column with no
//!   surviving copy anywhere, the run aborts with
//!   `RunError::ColumnLost` — the fate of every single-copy layout.
//!   A crash scheduled after an engine's last pebble still destroys the
//!   processor's copies (storage is gone at the fault plan's horizon),
//!   so the surviving set is a function of the plan alone and every
//!   engine reports identical copies regardless of its timing model; a
//!   post-completion crash cannot, however, retroactively abort a run
//!   that already finished.
//!
//! Crashes kill *computation and storage*; the store-and-forward fabric
//! (links, forwarding) stays up, as in a NOW whose switches are separate
//! from the workstations. An **empty plan is free**: the engine's event
//! stream, outcome, and statistics are bit-identical to a run without a
//! plan (property-tested in `tests/faults.rs`).
//!
//! Everything is deterministic: hand-built plans trivially so, and the
//! seeded generators ([`FaultPlan::with_random_outages`],
//! [`FaultPlan::with_random_crashes`]) derive every interval from a
//! SplitMix64 stream keyed by `(seed, link)`.

use crate::engine::RunError;
use overlap_net::{HostGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A link unavailable for `[from, until)` (both directions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkOutage {
    /// One endpoint of the host link.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// First tick of the outage.
    pub from: u64,
    /// First tick after the outage (exclusive).
    pub until: u64,
}

/// A transient delay spike: transfers injected in `[from, until)` take
/// `factor ×` their base delay (both directions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelaySpike {
    /// One endpoint of the host link.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// First tick of the spike.
    pub from: u64,
    /// First tick after the spike (exclusive).
    pub until: u64,
    /// Delay multiplier (≥ 1).
    pub factor: u32,
}

/// A permanent processor crash at tick `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcCrash {
    /// The dying processor.
    pub proc: NodeId,
    /// Crash tick: no pebble of this processor completes at or after `at`.
    pub at: u64,
}

/// Exponential-backoff retry policy for timed-out transfers: attempt `k`
/// (1-based) waits `min(base · 2^(k−1), cap)` ticks after the timeout
/// before re-injecting; after `max_attempts` failures the run aborts with
/// `RunError::RetriesExhausted`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// First backoff in ticks.
    pub base: u64,
    /// Backoff ceiling in ticks.
    pub cap: u64,
    /// Give up (abort the run) after this many failed attempts on one
    /// transfer.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base: 2,
            cap: 1 << 12,
            max_attempts: 48,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based):
    /// `min(base · 2^(attempt−1), cap)`. A zero `base` always yields zero;
    /// attempts whose exponent would overflow a `u64` shift (`attempt ≥
    /// 65`, where `2^(attempt−1)` already exceeds any cap) return `cap`
    /// directly instead of shifting out of range.
    pub fn backoff(&self, attempt: u32) -> u64 {
        if self.base == 0 {
            return 0;
        }
        let exp = attempt.saturating_sub(1);
        if exp >= 64 {
            return self.cap;
        }
        self.base.saturating_mul(1u64 << exp).min(self.cap)
    }
}

/// A deterministic schedule of link outages, delay spikes, and processor
/// crashes, plus the retry policy used to recover from them.
///
/// ```
/// use overlap_sim::faults::FaultPlan;
/// let plan = FaultPlan::new()
///     .link_down(0, 1, 100, 180)
///     .delay_spike(1, 2, 50, 90, 8)
///     .crash(3, 400);
/// assert!(!plan.is_empty());
/// assert!(FaultPlan::new().is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Link outage intervals.
    pub outages: Vec<LinkOutage>,
    /// Transient delay spikes.
    pub spikes: Vec<DelaySpike>,
    /// Permanent processor crashes.
    pub crashes: Vec<ProcCrash>,
    /// Retry/backoff policy (None = [`RetryPolicy::default`]).
    pub retry: Option<RetryPolicy>,
}

impl FaultPlan {
    /// An empty plan (injects nothing; the engine's fast path).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the plan schedules no fault at all.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty() && self.spikes.is_empty() && self.crashes.is_empty()
    }

    /// Take link `a–b` down for `[from, until)`.
    pub fn link_down(mut self, a: NodeId, b: NodeId, from: u64, until: u64) -> Self {
        assert!(from < until, "outage interval must be non-empty");
        self.outages.push(LinkOutage { a, b, from, until });
        self
    }

    /// Multiply link `a–b`'s delay by `factor` for `[from, until)`.
    pub fn delay_spike(mut self, a: NodeId, b: NodeId, from: u64, until: u64, factor: u32) -> Self {
        assert!(from < until, "spike interval must be non-empty");
        assert!(factor >= 1, "spike factor must be ≥ 1");
        self.spikes.push(DelaySpike {
            a,
            b,
            from,
            until,
            factor,
        });
        self
    }

    /// Crash processor `proc` permanently at tick `at`.
    pub fn crash(mut self, proc: NodeId, at: u64) -> Self {
        self.crashes.push(ProcCrash { proc, at });
        self
    }

    /// Override the retry policy.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// The effective retry policy.
    pub fn retry(&self) -> RetryPolicy {
        self.retry.unwrap_or_default()
    }

    /// Add seeded random outages to every host link so that each link is
    /// down for roughly `downtime` (a fraction in `(0, 1)`) of
    /// `[0, horizon)`, in outages of mean length `mean_outage` ticks.
    /// Outage starts are phase-shifted per link so the network never loses
    /// every link at once. Fully deterministic in `(seed, link index)`.
    pub fn with_random_outages(
        mut self,
        host: &HostGraph,
        seed: u64,
        downtime: f64,
        mean_outage: u64,
        horizon: u64,
    ) -> Self {
        assert!(
            downtime > 0.0 && downtime < 1.0,
            "downtime must be a fraction in (0, 1)"
        );
        let mean_outage = mean_outage.max(1);
        // mean up-time between outages so that down / (down + up) ≈ downtime
        let mean_up = ((mean_outage as f64) * (1.0 - downtime) / downtime).max(1.0) as u64;
        for (li, l) in host.links().iter().enumerate() {
            let mut rng = SplitMix64::new(seed ^ (0x9E37_79B9 + li as u64));
            // random initial phase inside one up+down period
            let mut t = rng.below(mean_up + mean_outage);
            while t < horizon {
                // outage length in [mean/2, 3·mean/2]
                let len = (mean_outage / 2 + rng.below(mean_outage.max(1))).max(1);
                self.outages.push(LinkOutage {
                    a: l.a,
                    b: l.b,
                    from: t,
                    until: t + len,
                });
                let up = (mean_up / 2 + rng.below(mean_up.max(1))).max(1);
                t += len + up;
            }
        }
        self
    }

    /// Check the plan against a concrete host: every outage and spike must
    /// name an existing link, every crash an existing processor. Called by
    /// [`ExecPlan::with_faults`] and the `Simulation` builder so a typo'd
    /// fault spec surfaces as an error long before lowering (it used to be
    /// a panic inside `FaultRt::build`).
    ///
    /// [`ExecPlan::with_faults`]: crate::plan::ExecPlan::with_faults
    pub fn validate(&self, host: &HostGraph) -> Result<(), RunError> {
        for (a, b) in self
            .outages
            .iter()
            .map(|o| (o.a, o.b))
            .chain(self.spikes.iter().map(|s| (s.a, s.b)))
        {
            if !host.has_link(a, b) {
                return Err(RunError::MissingLink { from: a, to: b });
            }
        }
        let procs = host.num_nodes();
        for c in &self.crashes {
            if c.proc >= procs {
                return Err(RunError::NoSuchProcessor {
                    proc: c.proc,
                    procs,
                });
            }
        }
        Ok(())
    }

    /// Add `count` seeded random crashes among processors `0..procs`,
    /// uniformly spread over `[horizon/4, 3·horizon/4)`. Distinct victims.
    pub fn with_random_crashes(mut self, procs: u32, seed: u64, count: u32, horizon: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xC2A5u64.rotate_left(17));
        let mut victims: Vec<NodeId> = Vec::new();
        while victims.len() < count.min(procs) as usize {
            let p = rng.below(procs as u64) as NodeId;
            if !victims.contains(&p) {
                victims.push(p);
            }
        }
        for p in victims {
            let at = horizon / 4 + rng.below((horizon / 2).max(1));
            self.crashes.push(ProcCrash { proc: p, at });
        }
        self
    }
}

/// SplitMix64 — the standard 64-bit mixing PRNG; deterministic and
/// dependency-free.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)` (`n ≥ 1`).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// When and how a fault or recovery action fired during a run — recorded
/// in `TimingTrace::fault_timeline` when `record_timing` is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultMark {
    /// Tick at which the event fired.
    pub tick: u64,
    /// What happened.
    pub kind: FaultMarkKind,
}

/// The kind of a [`FaultMark`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMarkKind {
    /// A transfer on the directed link timed out (will be retried).
    LinkTimeout {
        /// Directed link id.
        link: u32,
    },
    /// A processor crashed.
    Crash {
        /// The dead processor.
        proc: NodeId,
    },
    /// A subscription was rerouted to a surviving holder.
    Reroute {
        /// The guest column whose subscription moved.
        cell: u32,
        /// The new source holder.
        to: NodeId,
    },
}

/// The fault plan compiled against a concrete host: per-directed-link
/// interval tables in the engine's link-id space (forward `2i`, reverse
/// `2i+1`, in `host.links()` order), plus the crash schedule.
#[derive(Debug, Clone)]
pub(crate) struct FaultRt {
    /// Sorted, merged down intervals per directed link id.
    down: Vec<Vec<(u64, u64)>>,
    /// Sorted spike intervals `(from, until, factor)` per directed link id.
    spike: Vec<Vec<(u64, u64, u64)>>,
    /// Crash tick per processor (`u64::MAX` = never).
    pub crash_at: Vec<u64>,
    /// Directed link ids by endpoint pair (for building recovery routes).
    pub link_ids: HashMap<(NodeId, NodeId), u32>,
    /// Retry policy.
    pub retry: RetryPolicy,
}

impl FaultRt {
    /// Compile `plan` against `host`. A fault naming a non-existent link
    /// or processor is reported as [`RunError::MissingLink`] /
    /// [`RunError::NoSuchProcessor`] (it used to abort the process).
    pub fn build(plan: &FaultPlan, host: &HostGraph) -> Result<Self, RunError> {
        let mut link_ids: HashMap<(NodeId, NodeId), u32> = HashMap::new();
        let mut num_dirs = 0u32;
        for l in host.links() {
            link_ids.insert((l.a, l.b), num_dirs);
            link_ids.insert((l.b, l.a), num_dirs + 1);
            num_dirs += 2;
        }
        let mut down = vec![Vec::new(); num_dirs as usize];
        for o in &plan.outages {
            for (u, v) in [(o.a, o.b), (o.b, o.a)] {
                let lid = *link_ids
                    .get(&(u, v))
                    .ok_or(RunError::MissingLink { from: u, to: v })?;
                down[lid as usize].push((o.from, o.until));
            }
        }
        for iv in down.iter_mut() {
            iv.sort_unstable();
            // merge overlapping/adjacent intervals
            let mut merged: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
            for &(f, u) in iv.iter() {
                match merged.last_mut() {
                    Some(last) if f <= last.1 => last.1 = last.1.max(u),
                    _ => merged.push((f, u)),
                }
            }
            *iv = merged;
        }
        let mut spike = vec![Vec::new(); num_dirs as usize];
        for s in &plan.spikes {
            for (u, v) in [(s.a, s.b), (s.b, s.a)] {
                let lid = *link_ids
                    .get(&(u, v))
                    .ok_or(RunError::MissingLink { from: u, to: v })?;
                spike[lid as usize].push((s.from, s.until, s.factor as u64));
            }
        }
        for iv in spike.iter_mut() {
            iv.sort_unstable();
        }
        let mut crash_at = vec![u64::MAX; host.num_nodes() as usize];
        for c in &plan.crashes {
            if (c.proc as usize) >= crash_at.len() {
                return Err(RunError::NoSuchProcessor {
                    proc: c.proc,
                    procs: host.num_nodes(),
                });
            }
            let e = &mut crash_at[c.proc as usize];
            *e = (*e).min(c.at);
        }
        Ok(Self {
            down,
            spike,
            crash_at,
            link_ids,
            retry: plan.retry(),
        })
    }

    /// Does any down interval of directed link `lid` intersect the
    /// transfer window `[t0, t1]`?
    #[inline]
    pub fn down_overlap(&self, lid: u32, t0: u64, t1: u64) -> bool {
        let iv = &self.down[lid as usize];
        // first interval ending after t0
        let i = iv.partition_point(|&(_, until)| until <= t0);
        matches!(iv.get(i), Some(&(from, _)) if from <= t1)
    }

    /// Delay multiplier in effect on directed link `lid` at tick `t`
    /// (1 when no spike covers `t`; overlapping spikes take the max).
    #[inline]
    pub fn spike_factor(&self, lid: u32, t: u64) -> u64 {
        let mut f = 1u64;
        for &(from, until, factor) in &self.spike[lid as usize] {
            if from > t {
                break;
            }
            if t < until {
                f = f.max(factor);
            }
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlap_net::topology::linear_array;
    use overlap_net::DelayModel;

    fn host(n: u32) -> HostGraph {
        linear_array(n, DelayModel::constant(3), 0)
    }

    #[test]
    fn empty_plan_is_empty() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert_eq!(p.retry(), RetryPolicy::default());
    }

    #[test]
    fn builder_accumulates_faults() {
        let p = FaultPlan::new()
            .link_down(0, 1, 10, 20)
            .delay_spike(1, 2, 5, 9, 4)
            .crash(2, 100);
        assert!(!p.is_empty());
        assert_eq!(p.outages.len(), 1);
        assert_eq!(p.spikes.len(), 1);
        assert_eq!(p.crashes.len(), 1);
    }

    #[test]
    fn runtime_compiles_both_directions_and_merges() {
        let h = host(4);
        let p = FaultPlan::new()
            .link_down(0, 1, 10, 20)
            .link_down(1, 0, 15, 30) // overlaps, reversed endpoints
            .link_down(0, 1, 50, 60);
        let rt = FaultRt::build(&p, &h).unwrap();
        for lid in [0u32, 1] {
            // both directed ids of link 0–1
            assert!(rt.down_overlap(lid, 12, 13));
            assert!(rt.down_overlap(lid, 25, 26), "merged interval");
            assert!(rt.down_overlap(lid, 5, 10), "touches start");
            assert!(!rt.down_overlap(lid, 30, 49));
            assert!(rt.down_overlap(lid, 55, 100));
            assert!(!rt.down_overlap(lid, 60, 100), "until is exclusive");
        }
        // other links untouched
        assert!(!rt.down_overlap(2, 0, 1000));
    }

    #[test]
    fn spike_factor_applies_inside_interval_only() {
        let h = host(3);
        let p = FaultPlan::new().delay_spike(1, 2, 10, 20, 6);
        let rt = FaultRt::build(&p, &h).unwrap();
        let lid = rt.link_ids[&(1, 2)];
        assert_eq!(rt.spike_factor(lid, 9), 1);
        assert_eq!(rt.spike_factor(lid, 10), 6);
        assert_eq!(rt.spike_factor(lid, 19), 6);
        assert_eq!(rt.spike_factor(lid, 20), 1);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let r = RetryPolicy {
            base: 2,
            cap: 16,
            max_attempts: 10,
        };
        assert_eq!(r.backoff(1), 2);
        assert_eq!(r.backoff(2), 4);
        assert_eq!(r.backoff(3), 8);
        assert_eq!(r.backoff(4), 16);
        assert_eq!(r.backoff(9), 16, "capped");
        // Attempt 0 behaves like attempt 1 (no negative exponent).
        assert_eq!(r.backoff(0), 2);
        // Attempts at and beyond the shift width return the cap cleanly
        // instead of overflowing the `1 << (attempt-1)` exponent.
        assert_eq!(r.backoff(64), 16);
        assert_eq!(r.backoff(65), 16);
        assert_eq!(r.backoff(1000), 16);
        assert_eq!(r.backoff(u32::MAX), 16);
        // A saturated multiply still lands on the cap.
        let wide = RetryPolicy {
            base: u64::MAX,
            cap: 1 << 40,
            max_attempts: 10,
        };
        assert_eq!(wide.backoff(2), 1 << 40);
        // Zero base means "retry immediately" at every attempt, even the
        // deep ones where the exponent path would have returned the cap.
        let zero = RetryPolicy {
            base: 0,
            cap: 16,
            max_attempts: 10,
        };
        assert_eq!(zero.backoff(1), 0);
        assert_eq!(zero.backoff(100), 0);
    }

    #[test]
    fn random_outages_hit_the_requested_downtime() {
        let h = host(8);
        let horizon = 100_000u64;
        let frac = 0.2;
        let p = FaultPlan::new().with_random_outages(&h, 7, frac, 200, horizon);
        assert!(!p.outages.is_empty());
        // per-link measured downtime within a loose band of the target
        for li in 0..7u32 {
            let (a, b) = (li, li + 1);
            let total: u64 = p
                .outages
                .iter()
                .filter(|o| (o.a, o.b) == (a, b))
                .map(|o| o.until.min(horizon) - o.from.min(horizon))
                .sum();
            let measured = total as f64 / horizon as f64;
            assert!(
                (0.25 * frac..=2.5 * frac).contains(&measured),
                "link {a}-{b}: downtime {measured:.3} vs target {frac}"
            );
        }
        // deterministic
        let q = FaultPlan::new().with_random_outages(&h, 7, frac, 200, horizon);
        assert_eq!(p, q);
    }

    #[test]
    fn random_crashes_are_distinct_and_in_window() {
        let p = FaultPlan::new().with_random_crashes(8, 3, 3, 1000);
        assert_eq!(p.crashes.len(), 3);
        let mut procs: Vec<_> = p.crashes.iter().map(|c| c.proc).collect();
        procs.sort_unstable();
        procs.dedup();
        assert_eq!(procs.len(), 3, "victims distinct");
        for c in &p.crashes {
            assert!((250..750).contains(&c.at));
        }
    }

    #[test]
    fn outage_on_missing_link_is_an_error_not_a_panic() {
        let h = host(3);
        let p = FaultPlan::new().link_down(0, 2, 1, 2);
        let err = FaultRt::build(&p, &h).unwrap_err();
        assert!(matches!(err, RunError::MissingLink { from: 0, to: 2 }));
        assert_eq!(p.validate(&h).unwrap_err(), err);
    }

    #[test]
    fn spike_on_missing_link_is_an_error() {
        let h = host(3);
        let p = FaultPlan::new().delay_spike(0, 2, 1, 2, 4);
        assert!(matches!(
            FaultRt::build(&p, &h).unwrap_err(),
            RunError::MissingLink { from: 0, to: 2 }
        ));
        assert!(p.validate(&h).is_err());
    }

    #[test]
    fn crash_on_missing_processor_is_an_error() {
        let h = host(3);
        let p = FaultPlan::new().crash(7, 10);
        let err = FaultRt::build(&p, &h).unwrap_err();
        assert!(matches!(
            err,
            RunError::NoSuchProcessor { proc: 7, procs: 3 }
        ));
        assert_eq!(p.validate(&h).unwrap_err(), err);
        assert!(err.to_string().contains("processor 7"));
    }

    #[test]
    fn validate_accepts_well_formed_plans() {
        let h = host(4);
        let p = FaultPlan::new()
            .link_down(0, 1, 10, 20)
            .delay_spike(2, 3, 5, 9, 4)
            .crash(3, 100);
        assert!(p.validate(&h).is_ok());
        assert!(FaultPlan::new().validate(&h).is_ok());
    }
}
