//! The greedy dependency-driven execution engine.
//!
//! Executes a guest computation on a host NOW under a database
//! [`Assignment`], cycle-accurately:
//!
//! * Each host processor computes **one pebble per tick**. Within one
//!   processor, each held column's pebbles are computed in step order
//!   (database updates must be applied in order, §2); among ready pebbles
//!   the lowest `(step, cell)` wins.
//! * A pebble `(c, t)` is ready on `p` once every dependency `(c', t−1)` is
//!   locally known — computed by `p` itself, delivered by a subscription,
//!   or a virtual boundary/initial value.
//! * On completion, the pebble is streamed to every subscriber of its
//!   column over the fixed route; each link holds `bw` injections per tick
//!   (pipelined), so `P` pebbles cross a delay-`d` link in
//!   `d + ⌈P/bw⌉ − 1` ticks — the paper's bandwidth law.
//! * The run ends when every holder has computed all `T` steps of all its
//!   columns. The makespan is the last compute-completion tick.
//!
//! The engine is deterministic: events fire in ascending tick order, ties
//! in push order ([`CalendarQueue`]'s FIFO-within-a-tick contract, which
//! reproduces the original `(tick, sequence-number)` heap order exactly —
//! `engine_classic` keeps that heap implementation as the oracle).
//!
//! # Hot-path layout
//!
//! All identity resolution is interned into dense index tables when the
//! [`ExecPlan`] is lowered: per-(processor, cell) dependency gather and
//! readiness-check lists, per-subscription link-id arrays, per-tree-edge
//! link ids, and per-copy outbound route lists. The steady-state loop
//! performs no `HashMap` probes, no `Dep` matching, and no allocation:
//! event payloads live inline in the calendar buckets (recycled as the
//! ring wraps), per-copy value/receive histories are flat arrays indexed
//! by `copy × (steps + 1) + step`, and the dependency gather reuses one
//! scratch buffer. See DESIGN.md § Engine internals.

use crate::assignment::Assignment;
use crate::bandwidth::BandwidthMode;
use crate::calendar::CalendarQueue;
use crate::control::RunControl;
use crate::faults::{FaultMark, FaultMarkKind, FaultPlan, FaultRt};
use crate::plan::{DepSrc, ExecPlan, ProcTables, Routes, SUB_BIT};
use crate::routing::RoutingTable;
use crate::stats::{FaultStats, RunStats};
use crate::trace::{MsgKey, NoopTracer, ReadyCause, StallTracer, TraceConfig, TraceReport, Tracer};
use overlap_model::{fold64, Db, GuestSpec, PebbleValue, ProgramRef};
use overlap_net::paths::dijkstra;
use overlap_net::{HostGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Deterministic time-varying link-delay jitter: NOW latencies fluctuate
/// (congestion, re-routing); the model's correctness is timing-independent
/// but the makespan is not. The effective delay of a link at injection
/// tick `t` is `d · (1 + amplitude · wave(t))` where `wave` is a
/// square-ish ±1 oscillation with the given period, phase-shifted per
/// link — fully deterministic, so runs remain reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Jitter {
    /// Fixed delays (the paper's model).
    None,
    /// Periodic fluctuation by ±`amplitude_pct` percent.
    Periodic {
        /// Amplitude in percent of the base delay (≤ 100).
        amplitude_pct: u8,
        /// Oscillation period in ticks (≥ 1).
        period: u32,
    },
}

impl Jitter {
    /// Effective delay of a base-`d` link (id `lid`) entered at tick `t`.
    pub fn effective(&self, d: u64, lid: u32, t: u64) -> u64 {
        match *self {
            Jitter::None => d,
            Jitter::Periodic {
                amplitude_pct,
                period,
            } => {
                let period = period.max(1) as u64;
                // phase-shift links so they don't all spike together
                let phase = (t / period + lid as u64 * 7) % 4;
                let amp = (d as i128 * amplitude_pct.min(100) as i128) / 100;
                let delta: i128 = match phase {
                    1 => amp,
                    3 => -amp,
                    _ => 0,
                };
                ((d as i128 + delta).max(1)) as u64
            }
        }
    }
}

/// Per-processor memory budget on database copies — the red-blue pebbling
/// mode. Each processor keeps at most `budget` of its copies in fast
/// memory; starting a compute on a non-resident copy first *evicts* the
/// least-recently-used resident copy and charges `reload_cost` extra ticks
/// to re-materialize the database (values are never altered — the budget
/// is pure timing and accounting, so validation and cross-engine
/// bit-identity hold unchanged). Counters land in
/// [`RunStats::mem`](crate::stats::RunStats::mem).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemBudget {
    /// Database copies that fit in fast memory per processor (a budget of
    /// 0 is clamped to 1 — a processor must hold the copy it computes on).
    pub budget: u32,
    /// Extra ticks charged per reload of an evicted copy.
    pub reload_cost: u32,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Link bandwidth model (default: the paper's `log n`).
    pub bandwidth: BandwidthMode,
    /// Safety cap on simulated ticks; exceeded ⇒ [`RunError::TickLimit`].
    pub max_ticks: u64,
    /// Record the completion tick of every pebble on every copy
    /// (`RunOutcome::timing`); costs one u64 per computed pebble.
    pub record_timing: bool,
    /// Distribute columns over shortest-path multicast trees instead of
    /// per-subscriber unicast routes (each pebble crosses every tree link
    /// once, duplicating at branch points).
    pub multicast: bool,
    /// Time-varying link-delay jitter.
    pub jitter: Jitter,
    /// Per-processor memory budget on database copies (`None` = unbounded,
    /// the paper's model).
    #[serde(default)]
    pub mem: Option<MemBudget>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            bandwidth: BandwidthMode::LogN,
            max_ticks: 1 << 42,
            record_timing: false,
            multicast: false,
            jitter: Jitter::None,
            mem: None,
        }
    }
}

/// Why a run could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// Some guest cells have no database copy anywhere.
    IncompleteAssignment(Vec<u32>),
    /// The tick cap was exceeded.
    TickLimit(u64),
    /// No event can fire yet work remains (should be impossible for a
    /// complete assignment; kept as a defensive diagnostic).
    Deadlock {
        /// Tick at which the queue drained.
        tick: u64,
        /// Pebbles still uncomputed.
        remaining: u64,
    },
    /// A transfer exhausted its retry budget on a downed link
    /// (see `FaultPlan` / `RetryPolicy`).
    RetriesExhausted {
        /// Directed link id of the downed link.
        link: u32,
        /// Tick of the final timeout.
        tick: u64,
    },
    /// A processor crash left a guest column with no surviving database
    /// copy — unrecoverable without redundancy.
    ColumnLost {
        /// The orphaned guest column.
        cell: u32,
        /// Tick of the fatal crash.
        tick: u64,
    },
    /// A routing table references a host link that does not exist
    /// (malformed route; previously a panic in `lockstep::round_cost`).
    /// Also reported when a fault plan names a link absent from the host
    /// (previously a panic in fault-plan lowering).
    MissingLink {
        /// Claimed link source.
        from: NodeId,
        /// Claimed link destination.
        to: NodeId,
    },
    /// A fault plan names a processor the host does not have.
    NoSuchProcessor {
        /// The named processor.
        proc: NodeId,
        /// Number of processors the host actually has.
        procs: u32,
    },
    /// Crash recovery found a surviving holder for an orphaned consumer,
    /// but the host graph has no path between them (disconnected host
    /// with the only same-component copies destroyed). Previously a panic
    /// (`expect("connected host")`) in all three fault-capable engines.
    NoRouteToHolder {
        /// The guest column being re-subscribed.
        cell: u32,
        /// The surviving holder picked for the re-subscription.
        holder: NodeId,
        /// The consumer left without a reachable source.
        consumer: NodeId,
        /// Tick of the crash being recovered from.
        tick: u64,
    },
    /// The run was cancelled through its [`RunControl`] — no outcome was
    /// produced and no simulation state escaped the engine.
    ///
    /// [`RunControl`]: crate::control::RunControl
    Cancelled {
        /// Dispatch units (events/ticks/rounds/windows) completed when the
        /// cancellation was observed.
        at: u64,
    },
    /// The plan carries a feature this engine does not implement (e.g. a
    /// memory budget on the lockstep engine). The builder's validation
    /// matrix catches these at `build()`; engines also check at entry so a
    /// hand-built plan fails cleanly instead of asserting mid-run.
    UnsupportedFeature {
        /// Engine that rejected the plan.
        engine: &'static str,
        /// The unsupported plan feature.
        feature: &'static str,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::IncompleteAssignment(cells) => {
                write!(f, "assignment misses holders for {} cells", cells.len())
            }
            RunError::TickLimit(t) => write!(f, "tick limit {t} exceeded"),
            RunError::Deadlock { tick, remaining } => {
                write!(f, "deadlock at tick {tick} with {remaining} pebbles left")
            }
            RunError::RetriesExhausted { link, tick } => {
                write!(f, "retries exhausted on downed link {link} at tick {tick}")
            }
            RunError::ColumnLost { cell, tick } => {
                write!(f, "column {cell} lost every database copy at tick {tick}")
            }
            RunError::MissingLink { from, to } => {
                write!(f, "route uses non-existent host link {from} -> {to}")
            }
            RunError::NoSuchProcessor { proc, procs } => {
                write!(
                    f,
                    "fault plan names processor {proc}, but the host has only {procs}"
                )
            }
            RunError::NoRouteToHolder {
                cell,
                holder,
                consumer,
                tick,
            } => {
                write!(
                    f,
                    "no host path from surviving holder {holder} of column {cell} \
                     to consumer {consumer} after crash at tick {tick}"
                )
            }
            RunError::Cancelled { at } => {
                write!(f, "run cancelled after {at} dispatch units")
            }
            RunError::UnsupportedFeature { engine, feature } => {
                write!(f, "the {engine} engine does not support {feature}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Per-copy audit record used by the validator: one entry per
/// (column, holder) pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CopyRecord {
    /// Guest column.
    pub cell: u32,
    /// Holder processor.
    pub proc: NodeId,
    /// Order-sensitive fold of the computed pebble values, steps `1..=T`.
    pub value_fold: u64,
    /// Digest of the final database contents of this copy.
    pub db_digest: u64,
    /// Order-sensitive fold of the applied update log.
    pub update_fold: u64,
    /// Tick at which this copy finished its last step.
    pub finished_at: u64,
}

/// Per-copy pebble completion ticks, aligned with `RunOutcome::copies`:
/// `ticks[i][t-1]` = tick at which copy `i` computed its step `t`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimingTrace {
    /// Completion ticks per copy per step.
    pub ticks: Vec<Vec<u64>>,
    /// Fault and recovery events in tick order (timeouts, crashes,
    /// re-subscriptions). Empty for fault-free runs.
    pub fault_timeline: Vec<FaultMark>,
}

impl TimingTrace {
    /// Completion time of guest row `t` (1-based): the tick by which
    /// **every** copy has computed step `t` — the quantity Theorem 1's
    /// deadlines `s_t^{(k)}` bound.
    ///
    /// Returns `None` for `t == 0` (row 0 is the initial values, never
    /// computed), for a `t` beyond what any copy has recorded, and for an
    /// empty trace — previously these silently reported `0`, which reads
    /// as "completed instantly".
    pub fn row_completion(&self, t: u32) -> Option<u64> {
        if t == 0 {
            return None;
        }
        self.ticks
            .iter()
            .filter_map(|c| c.get(t as usize - 1))
            .copied()
            .max()
    }

    /// Fraction of `[0, makespan)` each processor spent computing, given
    /// the copy records. Pass the run's `compute_costs` (if any) so a
    /// pebble on processor `p` is weighted by its `cost_of(p)` ticks —
    /// without the weight, slow processors look mostly idle even when they
    /// never stop computing.
    ///
    /// The busy estimate is `pebbles × nominal cost`, so a cost table that
    /// overstates the run's actual costs can push the ratio past 1; values
    /// are clamped to 1.0. For exact accounting use a traced run's
    /// [`StallBreakdown`](crate::trace::StallBreakdown) instead.
    ///
    /// # Panics
    ///
    /// Panics if `copies` is not aligned with this trace (one record per
    /// `ticks` row), if a record references a processor `≥ procs`, or if
    /// `costs` covers fewer than `procs` processors — each of these
    /// previously produced an unchecked index or silently wrong ratios.
    pub fn utilization(
        &self,
        copies: &[CopyRecord],
        procs: u32,
        makespan: u64,
        costs: Option<&[u32]>,
    ) -> Vec<f64> {
        assert_eq!(
            self.ticks.len(),
            copies.len(),
            "timing trace has {} copies but {} copy records were passed",
            self.ticks.len(),
            copies.len()
        );
        if let Some(cs) = costs {
            assert!(
                cs.len() >= procs as usize,
                "compute-cost table covers {} processors, utilization asked for {}",
                cs.len(),
                procs
            );
        }
        let mut busy = vec![0u64; procs as usize];
        for (i, c) in copies.iter().enumerate() {
            let p = c.proc as usize;
            assert!(
                p < procs as usize,
                "copy record references processor {}, but only {} were passed",
                p,
                procs
            );
            let w = costs.map_or(1, |cs| cs[p] as u64);
            busy[p] += self.ticks[i].len() as u64 * w;
        }
        busy.iter()
            .map(|&b| {
                if makespan == 0 {
                    0.0
                } else {
                    (b as f64 / makespan as f64).min(1.0)
                }
            })
            .collect()
    }
}

/// A completed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Aggregate statistics.
    pub stats: RunStats,
    /// One record per database copy, for validation.
    pub copies: Vec<CopyRecord>,
    /// Pebble completion ticks when `record_timing` was set.
    pub timing: Option<TimingTrace>,
    /// Stall-attribution report when the run was traced
    /// ([`Engine::run_traced`]); `None` otherwise.
    pub trace: Option<TraceReport>,
}

/// Event payload, stored inline in the calendar buckets. Shared with the
/// sharded engine ([`crate::sharded`]), which schedules the exact same
/// events per shard.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    /// Processor `proc` finishes computing its `own_idx`-th column's next
    /// step at the event tick.
    ComputeDone { proc: NodeId, own_idx: u32 },
    /// A streamed pebble reaches `path[hop]` of subscription `sub`.
    Arrival {
        sub: u32,
        hop: u16,
        step: u32,
        value: PebbleValue,
    },
    /// A multicast pebble reaches tree node `node` of tree `tree`.
    TreeHop {
        tree: u32,
        node: u32,
        step: u32,
        value: PebbleValue,
    },
    /// Retry a timed-out transfer toward `Arrival { sub, hop }` (the link
    /// used is the one *into* `hop`). Only scheduled under a fault plan.
    Resend {
        sub: u32,
        hop: u16,
        step: u32,
        value: PebbleValue,
        attempt: u32,
    },
    /// Retry a timed-out transfer on the tree edge into `node`.
    TreeResend {
        tree: u32,
        node: u32,
        step: u32,
        value: PebbleValue,
        attempt: u32,
    },
    /// Processor `proc` crashes permanently at the event tick. Scheduled
    /// at seed time, so it fires before same-tick compute/arrival events.
    Crash { proc: NodeId },
}

/// Mutable per-processor run state. Step-indexed arrays are flat with
/// stride `steps + 1` (index 0 = initial value). Shared with the sharded
/// engine, which owns a disjoint subset of these per shard.
pub(crate) struct ProcState {
    /// Next step (1-based) to compute per held cell; `T+1` = done.
    pub(crate) next_step: Vec<u32>,
    /// Value history per held cell: `history[i·stride + s]`.
    pub(crate) history: Vec<PebbleValue>,
    /// Database copy per held cell.
    pub(crate) dbs: Vec<Db>,
    /// Value/update folds per held cell (validator food).
    pub(crate) value_fold: Vec<u64>,
    pub(crate) update_fold: Vec<u64>,
    pub(crate) finished_at: Vec<u64>,
    /// Per held cell: completion tick per step (only when timing).
    pub(crate) times: Vec<Vec<u64>>,
    /// Receive buffers per dependency column: `dep_values[k·stride + s]`.
    pub(crate) dep_values: Vec<PebbleValue>,
    pub(crate) dep_have: Vec<bool>,
    /// Highest contiguous step received per dependency column.
    pub(crate) dep_watermark: Vec<u32>,
    /// Ready-pebble queue: `(step, own_idx)` min-heap; at most one entry
    /// per held cell (its next step).
    pub(crate) ready: BinaryHeap<Reverse<(u32, u32)>>,
    /// Whether each held cell currently sits in `ready` or is being
    /// computed.
    pub(crate) queued: Vec<bool>,
    /// Processor is computing until the pending `ComputeDone` fires.
    pub(crate) busy: bool,
}

impl ProcState {
    /// Fresh state for the processor described by `pt`, exactly as the
    /// sequential engine seeds it (initial values at step 0, dependency
    /// step 0 pre-delivered). Factored out so the sharded engine starts
    /// from bit-identical state.
    pub(crate) fn seed(
        pt: &ProcTables,
        plan: &ExecPlan<'_>,
        stride: usize,
        kind: overlap_model::DbKind,
    ) -> Self {
        let steps = plan.guest.steps;
        let record_timing = plan.config.record_timing;
        let nc = pt.cells.len();
        let nd = pt.dep_cells.len();
        let mut history = vec![0 as PebbleValue; nc * stride];
        for (i, &c) in pt.cells.iter().enumerate() {
            history[i * stride] = plan.guest.initial_value(c);
        }
        let mut dep_values = vec![0 as PebbleValue; nd * stride];
        let mut dep_have = vec![false; nd * stride];
        for (k, &c) in pt.dep_cells.iter().enumerate() {
            dep_values[k * stride] = plan.guest.initial_value(c);
            dep_have[k * stride] = true;
        }
        ProcState {
            next_step: vec![1; nc],
            history,
            dbs: pt
                .cells
                .iter()
                .map(|&c| kind.instantiate(c, plan.guest.seed))
                .collect(),
            value_fold: vec![0xF01Du64; nc],
            update_fold: vec![0xD16u64; nc],
            finished_at: vec![0; nc],
            times: if record_timing {
                (0..nc)
                    .map(|_| Vec::with_capacity(steps as usize))
                    .collect()
            } else {
                vec![Vec::new(); nc]
            },
            dep_values,
            dep_have,
            dep_watermark: vec![0; nd],
            ready: BinaryHeap::new(),
            queued: vec![false; nc],
            busy: false,
        }
    }
}

/// Directed-link injection bookkeeping for pipelined bandwidth.
#[derive(Clone, Copy, Default)]
pub(crate) struct LinkSlot {
    tick: u64,
    count: u32,
}

/// Deterministic per-processor LRU over database copies, driven by the
/// compute schedule (touched once per compute *start*, in schedule order).
/// Shared by the event, sharded and stepped engines; because the sharded
/// engine replays the sequential per-processor compute order exactly, the
/// LRU evolves bit-identically there too. Cloneable so the sharded engine
/// can snapshot it at window barriers.
#[derive(Clone)]
pub(crate) struct MemLru {
    cap: usize,
    reload: u64,
    resident: Vec<bool>,
    last_use: Vec<u64>,
    clock: u64,
    pub(crate) evictions: u64,
    pub(crate) reloads: u64,
    pub(crate) reload_ticks: u64,
}

impl MemLru {
    /// Seed residency: the first `budget` copies in held-cell order are
    /// resident with ascending use stamps (so stamps are always unique and
    /// the eviction choice is total-ordered).
    pub(crate) fn new(num_cells: usize, budget: u32, reload_cost: u32) -> Self {
        let cap = (budget.max(1) as usize).min(num_cells.max(1));
        let mut resident = vec![false; num_cells];
        let mut last_use = vec![0u64; num_cells];
        let mut clock = 0u64;
        for (i, r) in resident.iter_mut().enumerate().take(cap) {
            *r = true;
            last_use[i] = clock;
            clock += 1;
        }
        Self {
            cap,
            reload: reload_cost as u64,
            resident,
            last_use,
            clock,
            evictions: 0,
            reloads: 0,
            reload_ticks: 0,
        }
    }

    /// Charge a compute start on held cell `i`: 0 extra ticks when the
    /// copy is resident, else evict the LRU resident copy and charge the
    /// reload cost. Returns the extra ticks.
    pub(crate) fn touch(&mut self, i: usize) -> u64 {
        if self.cap >= self.resident.len() {
            return 0; // every copy fits; no accounting needed
        }
        if self.resident[i] {
            self.last_use[i] = self.clock;
            self.clock += 1;
            return 0;
        }
        let victim = self
            .resident
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r)
            .min_by_key(|&(j, _)| (self.last_use[j], j))
            .map(|(j, _)| j)
            .expect("cap ≥ 1 resident copies");
        self.resident[victim] = false;
        self.evictions += 1;
        self.resident[i] = true;
        self.last_use[i] = self.clock;
        self.clock += 1;
        self.reloads += 1;
        self.reload_ticks += self.reload;
        self.reload
    }
}

/// Sum LRU counters over processors into the run's [`MemStats`].
pub(crate) fn mem_stats_of(lrus: Option<&[MemLru]>) -> crate::stats::MemStats {
    let mut out = crate::stats::MemStats::default();
    if let Some(ms) = lrus {
        for m in ms {
            out.evictions += m.evictions;
            out.reloads += m.reloads;
            out.reload_ticks += m.reload_ticks;
        }
    }
    out
}

/// Is held cell `i` ready to compute its next step? Pure table walk over
/// the interned check list — no hashing, no `Dep` matching.
#[inline]
pub(crate) fn is_ready(pt: &ProcTables, st: &ProcState, i: usize, steps: u32) -> bool {
    let s = st.next_step[i];
    if s > steps {
        return false;
    }
    for &enc in pt.checks_at(i, s) {
        if enc & SUB_BIT != 0 {
            if st.dep_watermark[(enc & !SUB_BIT) as usize] < s - 1 {
                return false;
            }
        } else if st.next_step[enc as usize] < s {
            return false;
        }
    }
    true
}

/// Queue held cell `j` if it is ready and not already queued/being run.
/// `try_enqueue` succeeds at most once per (cell, step) — the `queued`
/// flag — so the successful call's context is exactly the event that made
/// the pebble ready, which is what `tracer` gets told.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_enqueue<T: Tracer>(
    pt: &ProcTables,
    st: &mut ProcState,
    j: usize,
    steps: u32,
    proc: NodeId,
    tick: u64,
    cause: ReadyCause,
    tracer: &mut T,
) {
    if !st.queued[j] && is_ready(pt, st, j, steps) {
        st.ready.push(Reverse((st.next_step[j], j as u32)));
        st.queued[j] = true;
        tracer.on_enqueued(proc, j as u32, st.next_step[j], tick, cause);
    }
}

/// Store a delivered pebble, advance the column watermark, and unblock the
/// held cells waiting on it. `msg` identifies the delivering message for
/// stall attribution.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn deliver<T: Tracer>(
    pt: &ProcTables,
    st: &mut ProcState,
    k: usize,
    step: u32,
    value: PebbleValue,
    steps: u32,
    stride: usize,
    proc: NodeId,
    tick: u64,
    msg: MsgKey,
    tracer: &mut T,
) {
    let base = k * stride;
    st.dep_values[base + step as usize] = value;
    st.dep_have[base + step as usize] = true;
    while (st.dep_watermark[k] as usize) < steps as usize
        && st.dep_have[base + st.dep_watermark[k] as usize + 1]
    {
        st.dep_watermark[k] += 1;
    }
    for idx in pt.dep_dep_off[k] as usize..pt.dep_dep_off[k + 1] as usize {
        let j = pt.dep_dependents[idx] as usize;
        try_enqueue(
            pt,
            st,
            j,
            steps,
            proc,
            tick,
            ReadyCause::Delivered(msg),
            tracer,
        );
    }
}

/// The simulator: executes a guest under a database assignment on a host
/// NOW, cycle-accurately (see the module docs for the exact semantics).
///
/// All lowering lives in [`ExecPlan`]: [`Engine::new`] builds a private
/// plan for one-shot runs, while [`Engine::from_plan`] borrows a shared
/// one so sweeps amortize the lowering across repeats, engines, and fault
/// variants.
pub struct Engine<'a> {
    /// The lowered plan, or the lowering error reported when the engine
    /// runs (incomplete assignment).
    plan: Result<PlanRef<'a>, RunError>,
    /// Processor count, kept for cost-table validation.
    nprocs: u32,
    /// Ticks per pebble per processor (default all 1): models NOWs that
    /// mix workstation generations. Beyond the paper's unit-speed model.
    /// Overrides the plan's cost table when set.
    compute_costs: Option<Vec<u32>>,
    /// Deterministic fault schedule; `None` or an empty plan takes the
    /// fault-free fast path (bit-identical to the plain engine).
    /// Overrides the plan's fault schedule when set.
    faults: Option<FaultPlan>,
    /// Cooperative pause/cancel control, observed every
    /// [`CHECK_EVERY`](crate::control::CHECK_EVERY) events.
    control: Option<&'a RunControl>,
}

/// An owned or borrowed execution plan (boxed when owned: the lowered
/// tables are large, and `Engine` moves by value through the builder).
enum PlanRef<'a> {
    Owned(Box<ExecPlan<'a>>),
    Shared(&'a ExecPlan<'a>),
}

impl<'a> PlanRef<'a> {
    fn get(&self) -> &ExecPlan<'a> {
        match self {
            PlanRef::Owned(p) => p,
            PlanRef::Shared(p) => p,
        }
    }
}

/// A runtime re-subscription created when a holder crashed: `source`
/// streams `cell` to `dest` over `links` (directed link ids in route
/// order), delivering into the consumer's dependency slot `dest_dep`.
/// `Clone` because the sharded engine snapshots these per window.
#[derive(Clone)]
pub(crate) struct DynSub {
    pub(crate) cell: u32,
    pub(crate) source: NodeId,
    pub(crate) dest: NodeId,
    pub(crate) dest_dep: u32,
    pub(crate) links: Vec<u32>,
}

impl<'a> Engine<'a> {
    /// Create an engine, lowering a private [`ExecPlan`]. When the
    /// assignment misses cells the error is deferred: `run` reports
    /// [`RunError::IncompleteAssignment`].
    pub fn new(
        guest: &'a GuestSpec,
        host: &'a HostGraph,
        assign: &'a Assignment,
        config: EngineConfig,
    ) -> Self {
        Self {
            plan: ExecPlan::build(guest, host, assign, config).map(|p| PlanRef::Owned(Box::new(p))),
            nprocs: host.num_nodes(),
            compute_costs: None,
            faults: None,
            control: None,
        }
    }

    /// Execute a pre-lowered plan. The plan's compute costs and fault
    /// schedule apply unless overridden on this engine, so one plan can be
    /// shared across repeats, engines, and fault variants.
    pub fn from_plan(plan: &'a ExecPlan<'a>) -> Self {
        Self {
            nprocs: plan.host().num_nodes(),
            plan: Ok(PlanRef::Shared(plan)),
            compute_costs: None,
            faults: None,
            control: None,
        }
    }

    /// Give each processor its own compute cost (ticks per pebble, ≥ 1).
    /// Models heterogeneous workstation speeds — an extension beyond the
    /// paper's unit-speed processors.
    pub fn with_compute_costs(mut self, costs: Vec<u32>) -> Self {
        assert_eq!(costs.len() as u32, self.nprocs);
        assert!(costs.iter().all(|&c| c >= 1), "costs must be ≥ 1");
        self.compute_costs = Some(costs);
        self
    }

    /// Inject a deterministic fault plan (link outages, delay spikes,
    /// processor crashes) with graceful degradation: timed-out transfers
    /// are retried with exponential backoff, and subscriptions whose
    /// holder crashed are rerouted to the nearest surviving copy. An
    /// empty plan leaves the run bit-identical to a fault-free engine.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attach a cooperative [`RunControl`]: the dispatch loop honours
    /// pause/resume and returns [`RunError::Cancelled`] on cancel, checked
    /// every [`CHECK_EVERY`](crate::control::CHECK_EVERY) events. Control
    /// never perturbs the schedule — a paused-and-resumed run is
    /// bit-identical to an uninterrupted one.
    pub fn with_control(mut self, control: &'a RunControl) -> Self {
        self.control = Some(control);
        self
    }

    /// Access the unicast routing table (for reporting). `None` when the
    /// assignment is incomplete or the engine runs in multicast mode.
    pub fn routing(&self) -> Option<&RoutingTable> {
        self.plan.as_ref().ok().and_then(|p| p.get().routing())
    }

    /// Execute the simulation.
    pub fn run(&self) -> Result<RunOutcome, RunError> {
        self.run_with_tracer(&mut NoopTracer)
    }

    /// Execute the simulation with stall attribution: every tick of every
    /// copy's lifetime is attributed to compute / dependency / bandwidth /
    /// db-order / fault / drain (see [`crate::trace`]). The outcome's
    /// `stats.stalls` and `trace` are populated; the event schedule — and
    /// therefore every other stat — is identical to an untraced [`run`].
    ///
    /// [`run`]: Engine::run
    pub fn run_traced(&self, cfg: TraceConfig) -> Result<RunOutcome, RunError> {
        let plan = match &self.plan {
            Ok(p) => p.get(),
            Err(e) => return Err(e.clone()),
        };
        // The stall tracer's per-copy conservation law assumes every pebble
        // of processor `p` takes exactly `cost_of(p)` ticks; memory-budget
        // reload penalties and per-task costs break that invariant, so
        // traced runs reject them (the builder's validation matrix reports
        // the same error at build()).
        if plan.config.mem.is_some() {
            return Err(RunError::UnsupportedFeature {
                engine: "event (traced)",
                feature: "memory budget",
            });
        }
        if plan.guest.has_nonunit_task_costs() || !plan.guest.is_static() {
            return Err(RunError::UnsupportedFeature {
                engine: "event (traced)",
                feature: "non-uniform task graph",
            });
        }
        let hot = &plan.hot;
        let cid_of = |proc: NodeId, cell: u32| -> u32 {
            let p = proc as usize;
            let pos = hot.procs[p]
                .cells
                .binary_search(&cell)
                .expect("route source holds its cell");
            hot.copy_off[p] + pos as u32
        };
        let (sub_src, tree_src) = match &plan.routes {
            Routes::Unicast(rt) => (
                rt.subs.iter().map(|s| cid_of(s.source, s.cell)).collect(),
                Vec::new(),
            ),
            Routes::Multicast(mt) => (
                Vec::new(),
                mt.trees.iter().map(|t| cid_of(t.source, t.cell)).collect(),
            ),
        };
        let mut tracer = StallTracer::new(
            cfg,
            plan.guest.steps,
            hot.copy_off.clone(),
            sub_src,
            tree_src,
            hot.link_delay.len(),
        );
        let mut out = self.run_with_tracer(&mut tracer)?;
        let report = tracer.finish(out.stats.makespan);
        out.stats.stalls = Some(report.totals);
        out.trace = Some(report);
        Ok(out)
    }

    /// Execute the simulation, reporting dispatch-loop events to `tracer`.
    /// [`NoopTracer`]'s hooks are empty `#[inline]` defaults, so the
    /// monomorphized untraced engine schedules bit-identical events to the
    /// pre-tracing engine (pinned by the golden determinism tests).
    pub fn run_with_tracer<T: Tracer>(&self, tracer: &mut T) -> Result<RunOutcome, RunError> {
        let plan = match &self.plan {
            Ok(p) => p.get(),
            Err(e) => return Err(e.clone()),
        };
        let routing = &plan.routes;
        let hot = &plan.hot;
        let n = plan.host.num_nodes();
        let steps = plan.guest.steps;
        let stride = steps as usize + 1;
        let program: ProgramRef = plan.guest.program.instantiate();
        let boundary = plan.guest.boundary();
        let bw = plan.config.bandwidth.per_tick(n) as u64;
        let record_timing = plan.config.record_timing;
        let kind = program.db_kind();

        // ---- per-processor mutable state ----
        let mut state: Vec<ProcState> = hot
            .procs
            .iter()
            .map(|pt| ProcState::seed(pt, plan, stride, kind))
            .collect();

        // ---- link slots for bandwidth accounting ----
        let mut link_slots: Vec<LinkSlot> = vec![LinkSlot::default(); hot.link_delay.len()];
        let mut link_traffic: Vec<u64> = vec![0; hot.link_delay.len()];

        // ---- fault runtime (compiled only for a non-empty plan, so the
        // fault-free path schedules the exact same events in the exact
        // same order as an engine without a plan) ----
        let frt: Option<FaultRt> = match self.faults.as_ref().or(plan.faults.as_ref()) {
            Some(fp) if !fp.is_empty() => Some(FaultRt::build(fp, &plan.host)?),
            _ => None,
        };
        let n_orig_subs = hot.sub_link_off.len() - 1;
        let mut crashed: Vec<bool> = vec![false; if frt.is_some() { n as usize } else { 0 }];
        let mut dyn_subs: Vec<DynSub> = Vec::new();
        // Dynamic outbound routes per copy id (allocated on first crash).
        let mut dyn_out: Vec<Vec<u32>> = Vec::new();
        let mut fstats = FaultStats::default();
        let mut fault_timeline: Vec<FaultMark> = Vec::new();
        let mut total_forfeited = 0u64;

        // ---- event queue ----
        let mut queue: CalendarQueue<Ev> = CalendarQueue::new();
        let mut peak_queue: usize = 0;
        macro_rules! sched {
            ($tick:expr, $ev:expr) => {{
                queue.push($tick, $ev);
                let l = queue.len();
                if l > peak_queue {
                    peak_queue = l;
                }
            }};
        }

        // Transmit one pebble over the link leading into `Arrival { sub,
        // hop }` (original or dynamic subscription), charging bandwidth.
        // Under a fault plan: delay spikes multiply the jittered delay, and
        // a transfer overlapping a down interval is lost — the sender times
        // out at the expected arrival tick and retries after exponential
        // backoff ([`RetryPolicy`]); failed attempts still consume slots.
        macro_rules! send_sub_hop {
            ($now:expr, $sid:expr, $hop:expr, $step:expr, $value:expr, $attempt:expr) => {{
                let sid = $sid as usize;
                let lid = if sid < n_orig_subs {
                    hot.sub_links[hot.sub_link_off[sid] as usize + $hop as usize - 1]
                } else {
                    dyn_subs[sid - n_orig_subs].links[$hop as usize - 1]
                };
                link_traffic[lid as usize] += 1;
                let depart = inject(&mut link_slots[lid as usize], $now, bw);
                tracer.on_link_inject(lid, depart);
                let base = plan
                    .config
                    .jitter
                    .effective(hot.link_delay[lid as usize], lid, depart);
                match frt.as_ref() {
                    None => sched!(
                        depart + base,
                        Ev::Arrival {
                            sub: $sid,
                            hop: $hop,
                            step: $step,
                            value: $value,
                        }
                    ),
                    Some(f) => {
                        let arrive = depart + base * f.spike_factor(lid, depart);
                        if !f.down_overlap(lid, depart, arrive) {
                            sched!(
                                arrive,
                                Ev::Arrival {
                                    sub: $sid,
                                    hop: $hop,
                                    step: $step,
                                    value: $value,
                                }
                            );
                        } else {
                            let attempt = $attempt + 1;
                            if attempt > f.retry.max_attempts {
                                return Err(RunError::RetriesExhausted {
                                    link: lid,
                                    tick: arrive,
                                });
                            }
                            let back = f.retry.backoff(attempt);
                            fstats.retries += 1;
                            fstats.fault_stall_ticks += arrive - $now + back;
                            tracer.on_fault_wait(
                                MsgKey::Sub {
                                    sub: $sid,
                                    step: $step,
                                },
                                arrive - $now + back,
                            );
                            if record_timing {
                                fault_timeline.push(FaultMark {
                                    tick: arrive,
                                    kind: FaultMarkKind::LinkTimeout { link: lid },
                                });
                            }
                            sched!(
                                arrive + back,
                                Ev::Resend {
                                    sub: $sid,
                                    hop: $hop,
                                    step: $step,
                                    value: $value,
                                    attempt,
                                }
                            );
                        }
                    }
                }
            }};
        }

        // Same transmit logic for the multicast tree edge into `node`.
        macro_rules! send_tree_hop {
            ($now:expr, $tid:expr, $node:expr, $step:expr, $value:expr, $attempt:expr) => {{
                let lid = hot.tree_edge_lid[$tid as usize][$node as usize];
                link_traffic[lid as usize] += 1;
                let depart = inject(&mut link_slots[lid as usize], $now, bw);
                tracer.on_link_inject(lid, depart);
                let base = plan
                    .config
                    .jitter
                    .effective(hot.link_delay[lid as usize], lid, depart);
                match frt.as_ref() {
                    None => sched!(
                        depart + base,
                        Ev::TreeHop {
                            tree: $tid,
                            node: $node,
                            step: $step,
                            value: $value,
                        }
                    ),
                    Some(f) => {
                        let arrive = depart + base * f.spike_factor(lid, depart);
                        if !f.down_overlap(lid, depart, arrive) {
                            sched!(
                                arrive,
                                Ev::TreeHop {
                                    tree: $tid,
                                    node: $node,
                                    step: $step,
                                    value: $value,
                                }
                            );
                        } else {
                            let attempt = $attempt + 1;
                            if attempt > f.retry.max_attempts {
                                return Err(RunError::RetriesExhausted {
                                    link: lid,
                                    tick: arrive,
                                });
                            }
                            let back = f.retry.backoff(attempt);
                            fstats.retries += 1;
                            fstats.fault_stall_ticks += arrive - $now + back;
                            tracer.on_fault_wait(
                                MsgKey::Tree {
                                    tree: $tid,
                                    step: $step,
                                },
                                arrive - $now + back,
                            );
                            if record_timing {
                                fault_timeline.push(FaultMark {
                                    tick: arrive,
                                    kind: FaultMarkKind::LinkTimeout { link: lid },
                                });
                            }
                            sched!(
                                arrive + back,
                                Ev::TreeResend {
                                    tree: $tid,
                                    node: $node,
                                    step: $step,
                                    value: $value,
                                    attempt,
                                }
                            );
                        }
                    }
                }
            }};
        }

        // Crash events go in first, so at their tick they pop before any
        // same-tick compute completion or arrival (FIFO within a tick):
        // a pebble finishing exactly at the crash tick does not complete.
        if let Some(f) = frt.as_ref() {
            for (p, &at) in f.crash_at.iter().enumerate() {
                if at != u64::MAX {
                    sched!(at, Ev::Crash { proc: p as NodeId });
                }
            }
        }

        let mut remaining: u64 = hot
            .procs
            .iter()
            .map(|pt| pt.cells.len() as u64 * steps as u64)
            .sum();
        let total_compute = remaining;
        let mut makespan = 0u64;
        let mut messages = 0u64;
        let mut pebble_hops = 0u64;
        let mut events_processed = 0u64;

        let costs = self
            .compute_costs
            .as_deref()
            .or(plan.compute_costs.as_deref());
        let cost_of = |p: usize| -> u64 { costs.map(|c| c[p] as u64).unwrap_or(1) };

        // Task-graph extensions: per-task cost multipliers, relay slots,
        // and the per-processor memory budget. All three are `false`/`None`
        // for grid guests, so the static path is unchanged.
        let has_task_costs = plan.guest.has_nonunit_task_costs();
        let has_relays = plan.guest.graph.is_some();
        let mut mem: Option<Vec<MemLru>> = plan.config.mem.map(|m| {
            hot.procs
                .iter()
                .map(|pt| MemLru::new(pt.cells.len(), m.budget, m.reload_cost))
                .collect()
        });
        // Ticks to compute held cell `j` of processor `p` starting now:
        // processor speed × task cost, plus the memory-budget reload
        // penalty (which also advances the LRU — call once per start).
        macro_rules! compute_dur {
            ($p:expr, $j:expr, $st:expr) => {{
                let jj = $j as usize;
                let mut d = cost_of($p);
                if has_task_costs {
                    d *= plan
                        .guest
                        .task_cost(hot.procs[$p].cells[jj], $st.next_step[jj])
                        as u64;
                }
                if let Some(ms) = mem.as_mut() {
                    d += ms[$p].touch(jj);
                }
                d
            }};
        }

        // Seed: enqueue every initially-ready pebble and start processors.
        for (p, (pt, st)) in hot.procs.iter().zip(state.iter_mut()).enumerate() {
            for i in 0..pt.cells.len() {
                try_enqueue(pt, st, i, steps, p as NodeId, 0, ReadyCause::Local, tracer);
            }
            if let Some(Reverse((_s, i))) = st.ready.pop() {
                st.busy = true;
                tracer.on_start(p as NodeId, i, _s, 0);
                let d = compute_dur!(p, i, st);
                sched!(
                    d,
                    Ev::ComputeDone {
                        proc: p as NodeId,
                        own_idx: i,
                    }
                );
            }
        }

        let mut deps_buf: Vec<PebbleValue> = Vec::with_capacity(plan.guest.max_deps());

        // ---- main loop ----
        while let Some((tick, ev)) = queue.pop() {
            if tick > plan.config.max_ticks {
                return Err(RunError::TickLimit(plan.config.max_ticks));
            }
            if remaining == 0 {
                break;
            }
            events_processed += 1;
            if events_processed.is_multiple_of(crate::control::CHECK_EVERY) {
                if let Some(ctl) = self.control {
                    ctl.checkpoint(events_processed)?;
                }
            }
            match ev {
                Ev::ComputeDone { proc, own_idx } => {
                    let p = proc as usize;
                    // A crashed processor's in-flight pebble never
                    // completes (its work was forfeited at crash time).
                    if frt.is_some() && crashed[p] {
                        continue;
                    }
                    let i = own_idx as usize;
                    let pt = &hot.procs[p];
                    let (cell, s) = (pt.cells[i], state[p].next_step[i]);
                    debug_assert!(s <= steps);
                    // Gather dependency values at step s-1 via the
                    // interned source table.
                    deps_buf.clear();
                    {
                        let st = &state[p];
                        let sm1 = s as usize - 1;
                        for &src in pt.gather_at(i, s) {
                            deps_buf.push(match src {
                                DepSrc::Boundary { side, offset } => {
                                    boundary.value(side, offset, s)
                                }
                                DepSrc::Own(j) => st.history[j as usize * stride + sm1],
                                DepSrc::Sub(k) => {
                                    debug_assert!(st.dep_have[k as usize * stride + sm1]);
                                    st.dep_values[k as usize * stride + sm1]
                                }
                            });
                        }
                    }
                    let (v, u) = if has_relays && plan.guest.is_relay(cell, s) {
                        // Relay slots repeat the lane's previous value and
                        // leave the database untouched; DbUpdate::None still
                        // folds into the update log (as in the reference).
                        (deps_buf[0], overlap_model::DbUpdate::None)
                    } else {
                        program.compute(cell, s, &state[p].dbs[i], &deps_buf)
                    };
                    {
                        let st = &mut state[p];
                        st.dbs[i].apply(&u);
                        st.history[i * stride + s as usize] = v;
                        st.value_fold[i] = fold64(st.value_fold[i], v);
                        st.update_fold[i] = fold64(st.update_fold[i], u.digest());
                        st.next_step[i] = s + 1;
                        st.queued[i] = false;
                        st.busy = false;
                        if record_timing {
                            st.times[i].push(tick);
                        }
                        if s == steps {
                            st.finished_at[i] = tick;
                        }
                    }
                    tracer.on_compute_done(proc, own_idx, s, tick);
                    remaining -= 1;
                    makespan = makespan.max(tick);

                    // Stream to subscribers: the per-copy route list holds
                    // exactly this column's routes, in classic scan order.
                    let cid = hot.copy_off[p] as usize + i;
                    let routes =
                        &hot.out_ids[hot.out_off[cid] as usize..hot.out_off[cid + 1] as usize];
                    match routing {
                        Routes::Unicast(_) => {
                            for &sid in routes {
                                messages += 1;
                                let llo = hot.sub_link_off[sid as usize] as usize;
                                let lhi = hot.sub_link_off[sid as usize + 1] as usize;
                                pebble_hops += (lhi - llo) as u64;
                                send_sub_hop!(tick, sid, 1u16, s, v, 0u32);
                            }
                        }
                        Routes::Multicast(mt) => {
                            for &tid in routes {
                                messages += 1;
                                let tree = &mt.trees[tid as usize];
                                for &child in &tree.children[tree.root as usize] {
                                    pebble_hops += 1;
                                    send_tree_hop!(tick, tid, child, s, v, 0u32);
                                }
                            }
                        }
                    }
                    // Stream to re-subscribed consumers (crash recovery).
                    if !dyn_out.is_empty() {
                        for &dsid in &dyn_out[cid] {
                            messages += 1;
                            pebble_hops += dyn_subs[dsid as usize - n_orig_subs].links.len() as u64;
                            send_sub_hop!(tick, dsid, 1u16, s, v, 0u32);
                        }
                    }

                    // Unblock: this column's next step, then the held
                    // dependents — walked in place, no scratch list.
                    {
                        let st = &mut state[p];
                        try_enqueue(pt, st, i, steps, proc, tick, ReadyCause::Local, tracer);
                        for idx in pt.own_dep_off[i] as usize..pt.own_dep_off[i + 1] as usize {
                            let j = pt.own_dependents[idx] as usize;
                            try_enqueue(pt, st, j, steps, proc, tick, ReadyCause::Local, tracer);
                        }
                        if !st.busy {
                            if let Some(Reverse((_s, j))) = st.ready.pop() {
                                st.busy = true;
                                tracer.on_start(proc, j, _s, tick);
                                let d = compute_dur!(p, j, st);
                                sched!(tick + d, Ev::ComputeDone { proc, own_idx: j });
                            }
                        }
                    }
                }
                Ev::Arrival {
                    sub,
                    hop,
                    step,
                    value,
                } => {
                    let sid = sub as usize;
                    let (nlinks, dest, dep) = if sid < n_orig_subs {
                        let llo = hot.sub_link_off[sid] as usize;
                        let lhi = hot.sub_link_off[sid + 1] as usize;
                        (
                            lhi - llo,
                            hot.sub_dest[sid] as usize,
                            hot.sub_dest_dep[sid] as usize,
                        )
                    } else {
                        let ds = &dyn_subs[sid - n_orig_subs];
                        (ds.links.len(), ds.dest as usize, ds.dest_dep as usize)
                    };
                    if (hop as usize) < nlinks {
                        // Forward along the route (intermediate processors
                        // store-and-forward even if crashed: the fabric
                        // outlives the workstation's compute).
                        send_sub_hop!(tick, sub, hop + 1, step, value, 0u32);
                    } else if !(frt.is_some() && crashed[dest]) {
                        // Delivery at the consumer.
                        let p = dest;
                        let pt = &hot.procs[p];
                        let st = &mut state[p];
                        deliver(
                            pt,
                            st,
                            dep,
                            step,
                            value,
                            steps,
                            stride,
                            p as NodeId,
                            tick,
                            MsgKey::Sub { sub, step },
                            tracer,
                        );
                        if !st.busy {
                            if let Some(Reverse((_s2, j))) = st.ready.pop() {
                                st.busy = true;
                                tracer.on_start(p as NodeId, j, _s2, tick);
                                let d = compute_dur!(p, j, st);
                                sched!(
                                    tick + d,
                                    Ev::ComputeDone {
                                        proc: p as NodeId,
                                        own_idx: j,
                                    }
                                );
                            }
                        }
                    }
                }
                Ev::TreeHop {
                    tree,
                    node,
                    step,
                    value,
                } => {
                    let Routes::Multicast(mt) = routing else {
                        unreachable!("tree hop in unicast mode");
                    };
                    let t = &mt.trees[tree as usize];
                    // Forward to children (store-and-forward survives a
                    // crash of the intermediate workstation).
                    for &child in &t.children[node as usize] {
                        pebble_hops += 1;
                        send_tree_hop!(tick, tree, child, step, value, 0u32);
                    }
                    // Deliver locally if this node subscribes.
                    let kdep = hot.tree_deliver_dep[tree as usize][node as usize];
                    if kdep != u32::MAX {
                        let p = t.nodes[node as usize] as usize;
                        if !(frt.is_some() && crashed[p]) {
                            let pt = &hot.procs[p];
                            let st = &mut state[p];
                            deliver(
                                pt,
                                st,
                                kdep as usize,
                                step,
                                value,
                                steps,
                                stride,
                                p as NodeId,
                                tick,
                                MsgKey::Tree { tree, step },
                                tracer,
                            );
                            if !st.busy {
                                if let Some(Reverse((_s2, j))) = st.ready.pop() {
                                    st.busy = true;
                                    tracer.on_start(p as NodeId, j, _s2, tick);
                                    let d = compute_dur!(p, j, st);
                                    sched!(
                                        tick + d,
                                        Ev::ComputeDone {
                                            proc: p as NodeId,
                                            own_idx: j,
                                        }
                                    );
                                }
                            }
                        }
                    }
                }
                Ev::Resend {
                    sub,
                    hop,
                    step,
                    value,
                    attempt,
                } => {
                    send_sub_hop!(tick, sub, hop, step, value, attempt);
                }
                Ev::TreeResend {
                    tree,
                    node,
                    step,
                    value,
                    attempt,
                } => {
                    send_tree_hop!(tick, tree, node, step, value, attempt);
                }
                Ev::Crash { proc } => {
                    let p = proc as usize;
                    let f = frt.as_ref().expect("crash event implies fault plan");
                    if crashed[p] {
                        continue;
                    }
                    crashed[p] = true;
                    tracer.on_crash(proc);
                    fstats.crashed_procs += 1;
                    let pt = &hot.procs[p];
                    fstats.lost_copies += pt.cells.len() as u32;
                    if record_timing {
                        fault_timeline.push(FaultMark {
                            tick,
                            kind: FaultMarkKind::Crash { proc },
                        });
                    }
                    // Forfeit this processor's uncomputed pebbles — its
                    // pending ComputeDone (if any) is dropped by the crash
                    // guard, so subtract the in-flight pebble too.
                    let forfeited: u64 = state[p]
                        .next_step
                        .iter()
                        .map(|&ns| (steps + 1 - ns) as u64)
                        .sum();
                    remaining -= forfeited;
                    total_forfeited += forfeited;

                    // A column whose every copy is gone is unrecoverable.
                    for &c in &pt.cells {
                        let alive = plan.assign.holders(c).iter().any(|&q| !crashed[q as usize]);
                        if !alive {
                            return Err(RunError::ColumnLost { cell: c, tick });
                        }
                    }

                    // Graceful degradation: every consumer this processor
                    // was serving re-subscribes to the nearest surviving
                    // holder of the same database (the paper's redundancy,
                    // exploited for recovery).
                    let mut orphans: Vec<(u32, NodeId, u32)> = Vec::new();
                    match routing {
                        Routes::Unicast(rt) => {
                            for (sid, sub) in rt.subs.iter().enumerate() {
                                if sub.source == proc && !crashed[sub.dest as usize] {
                                    orphans.push((sub.cell, sub.dest, hot.sub_dest_dep[sid]));
                                }
                            }
                        }
                        Routes::Multicast(mt) => {
                            for (tid, t) in mt.trees.iter().enumerate() {
                                if t.source != proc {
                                    continue;
                                }
                                for (v, &del) in t.deliver.iter().enumerate() {
                                    if del && !crashed[t.nodes[v] as usize] {
                                        orphans.push((
                                            t.cell,
                                            t.nodes[v],
                                            hot.tree_deliver_dep[tid][v],
                                        ));
                                    }
                                }
                            }
                        }
                    }
                    for ds in &dyn_subs {
                        if ds.source == proc && !crashed[ds.dest as usize] {
                            orphans.push((ds.cell, ds.dest, ds.dest_dep));
                        }
                    }

                    if !orphans.is_empty() && dyn_out.is_empty() {
                        dyn_out = vec![Vec::new(); *hot.copy_off.last().unwrap() as usize];
                    }
                    // One Dijkstra per distinct consumer (consumer-rooted:
                    // the host is undirected, so the reversed path serves
                    // holder → consumer).
                    let mut sp_cache: HashMap<NodeId, overlap_net::paths::PathResult> =
                        HashMap::new();
                    for (cell, dest, dest_dep) in orphans {
                        let sp = sp_cache
                            .entry(dest)
                            .or_insert_with(|| dijkstra(&plan.host, dest));
                        let best = plan
                            .assign
                            .holders(cell)
                            .iter()
                            .copied()
                            .filter(|&q| !crashed[q as usize])
                            .min_by_key(|&q| (sp.dist[q as usize], q))
                            .expect("surviving holder checked above");
                        let Some(mut path) = sp.path_to(best) else {
                            return Err(RunError::NoRouteToHolder {
                                cell,
                                holder: best,
                                consumer: dest,
                                tick,
                            });
                        };
                        path.reverse();
                        let links: Vec<u32> =
                            path.windows(2).map(|w| f.link_ids[&(w[0], w[1])]).collect();
                        let nhops = links.len() as u64;
                        let src_pt = &hot.procs[best as usize];
                        let pos = src_pt
                            .cells
                            .binary_search(&cell)
                            .expect("holder holds cell");
                        let src_cid = hot.copy_off[best as usize] as usize + pos;
                        let sid = (n_orig_subs + dyn_subs.len()) as u32;
                        let computed = state[best as usize].next_step[pos] - 1;
                        dyn_subs.push(DynSub {
                            cell,
                            source: best,
                            dest,
                            dest_dep,
                            links,
                        });
                        dyn_out[src_cid].push(sid);
                        tracer.on_reroute(sid, best, pos as u32);
                        fstats.rerouted_subscriptions += 1;
                        if record_timing {
                            fault_timeline.push(FaultMark {
                                tick,
                                kind: FaultMarkKind::Reroute { cell, to: best },
                            });
                        }
                        // Backfill every pebble the consumer may still be
                        // missing, from its contiguous watermark up to the
                        // new source's progress; later pebbles flow via the
                        // dynamic route as the source computes them.
                        // Duplicate deliveries are idempotent.
                        let w = state[dest as usize].dep_watermark[dest_dep as usize];
                        for s2 in (w + 1)..=computed {
                            let value = state[best as usize].history[pos * stride + s2 as usize];
                            messages += 1;
                            pebble_hops += nhops;
                            send_sub_hop!(tick, sid, 1u16, s2, value, 0u32);
                        }
                    }
                }
            }
        }

        if remaining > 0 {
            return Err(RunError::Deadlock {
                tick: makespan,
                remaining,
            });
        }

        // Crashes scheduled beyond the last pebble still destroy their
        // processor's databases: the surviving set depends only on the
        // fault plan, never on an engine's timing model, so the event,
        // stepped and classic engines report identical copies even when
        // their makespans straddle a crash tick. No work is left to
        // forfeit and the run already completed, so a late crash cannot
        // retroactively make a column unrecoverable.
        if let Some(f) = frt.as_ref() {
            for (p, &at) in f.crash_at.iter().enumerate() {
                if at != u64::MAX && !crashed[p] {
                    crashed[p] = true;
                    tracer.on_crash(p as NodeId);
                    fstats.crashed_procs += 1;
                    fstats.lost_copies += hot.procs[p].cells.len() as u32;
                    if record_timing {
                        fault_timeline.push(FaultMark {
                            tick: at,
                            kind: FaultMarkKind::Crash { proc: p as NodeId },
                        });
                    }
                }
            }
        }

        // ---- collect outcome (crashed processors' copies are lost) ----
        let mut copies = Vec::with_capacity(plan.assign.total_copies());
        let mut timing = record_timing.then(TimingTrace::default);
        for (p, (st, pt)) in state.iter().zip(&hot.procs).enumerate() {
            if frt.is_some() && crashed[p] {
                continue;
            }
            for (i, &c) in pt.cells.iter().enumerate() {
                copies.push(CopyRecord {
                    cell: c,
                    proc: p as NodeId,
                    value_fold: st.value_fold[i],
                    db_digest: st.dbs[i].digest(),
                    update_fold: st.update_fold[i],
                    finished_at: st.finished_at[i],
                });
                if let Some(t) = timing.as_mut() {
                    t.ticks.push(st.times[i].clone());
                }
            }
        }
        if let Some(t) = timing.as_mut() {
            t.fault_timeline = fault_timeline;
        }
        let stats = RunStats {
            guest_cells: plan.guest.num_cells(),
            guest_steps: steps,
            host_procs: n,
            makespan,
            slowdown: if steps == 0 {
                0.0
            } else {
                makespan as f64 / steps as f64
            },
            total_compute: total_compute - total_forfeited,
            guest_work: plan.guest.total_work(),
            redundancy: plan.assign.redundancy(),
            load: plan.assign.load(),
            active_procs: plan.assign.active_procs(),
            messages,
            pebble_hops,
            subscriptions: routing.num_subscriptions(),
            bandwidth_per_link: bw as u32,
            busiest_link_pebbles: link_traffic.iter().copied().max().unwrap_or(0),
            mean_link_pebbles: {
                let active: Vec<u64> = link_traffic.iter().copied().filter(|&t| t > 0).collect();
                if active.is_empty() {
                    0.0
                } else {
                    active.iter().sum::<u64>() as f64 / active.len() as f64
                }
            },
            events_processed,
            peak_queue_depth: peak_queue as u64,
            queue_clamped_pushes: queue.clamped(),
            faults: fstats,
            stalls: None,
            mem: mem_stats_of(mem.as_deref()),
        };
        Ok(RunOutcome {
            stats,
            copies,
            timing,
            trace: None,
        })
    }
}

/// Reserve an injection slot on a directed link: at most `bw` injections
/// per tick, FIFO, never before `now`. Returns the departure tick.
pub(crate) fn inject(slot: &mut LinkSlot, now: u64, bw: u64) -> u64 {
    if slot.tick < now {
        slot.tick = now;
        slot.count = 0;
    }
    if (slot.count as u64) < bw {
        slot.count += 1;
    } else {
        slot.tick += 1;
        slot.count = 1;
    }
    slot.tick
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine_classic::run_classic;
    use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
    use overlap_net::topology::linear_array;
    use overlap_net::DelayModel;

    fn run(
        guest: &GuestSpec,
        host: &HostGraph,
        assign: &Assignment,
        bandwidth: BandwidthMode,
    ) -> RunOutcome {
        let cfg = EngineConfig {
            bandwidth,
            ..Default::default()
        };
        Engine::new(guest, host, assign, cfg).run().expect("run ok")
    }

    fn check_against_reference(guest: &GuestSpec, out: &RunOutcome) {
        let trace = ReferenceRun::execute(guest);
        for c in &out.copies {
            // Reconstruct the reference fold for this column.
            let mut vf = 0xF01Du64;
            for t in 1..=guest.steps {
                vf = fold64(vf, trace.grid.get(overlap_model::PebbleId::new(c.cell, t)));
            }
            assert_eq!(
                c.value_fold, vf,
                "values of column {} on proc {}",
                c.cell, c.proc
            );
            assert_eq!(
                c.db_digest, trace.final_db_digest[c.cell as usize],
                "db of column {} on proc {}",
                c.cell, c.proc
            );
            assert_eq!(
                c.update_fold, trace.update_log_digest[c.cell as usize],
                "updates of column {} on proc {}",
                c.cell, c.proc
            );
        }
    }

    #[test]
    fn single_processor_runs_sequentially() {
        let guest = GuestSpec::array(4, ProgramKind::KvWorkload, 3, 5);
        let host = linear_array(1, DelayModel::constant(1), 0);
        let assign = Assignment::blocked(1, 4);
        let out = run(&guest, &host, &assign, BandwidthMode::Fixed(1));
        // 20 pebbles at 1/tick: makespan exactly 20.
        assert_eq!(out.stats.makespan, 20);
        assert_eq!(out.stats.slowdown, 4.0);
        check_against_reference(&guest, &out);
    }

    #[test]
    fn unit_delay_host_line_matches_guest_speed() {
        // Host = guest-sized line with unit delays, load 1: the simulation
        // is the guest itself. Communication of each boundary pebble takes
        // 1 tick, computation 1 tick: slowdown ≈ 2 (compute+exchange).
        let guest = GuestSpec::array(8, ProgramKind::Relaxation, 1, 16);
        let host = linear_array(8, DelayModel::constant(1), 0);
        let assign = Assignment::blocked(8, 8);
        let out = run(&guest, &host, &assign, BandwidthMode::Fixed(1));
        check_against_reference(&guest, &out);
        assert!(
            out.stats.slowdown <= 3.0,
            "slowdown {} too high for unit-delay host",
            out.stats.slowdown
        );
    }

    #[test]
    fn all_programs_validate_on_multiproc_hosts() {
        for pk in [
            ProgramKind::StencilSum,
            ProgramKind::RuleAutomaton { db_size: 8 },
            ProgramKind::KvWorkload,
            ProgramKind::Relaxation,
        ] {
            let guest = GuestSpec::array(12, pk, 5, 10);
            let host = linear_array(4, DelayModel::uniform(1, 6), 9);
            let assign = Assignment::blocked(4, 12);
            let out = run(&guest, &host, &assign, BandwidthMode::LogN);
            check_against_reference(&guest, &out);
        }
    }

    #[test]
    fn ring_guest_validates() {
        let guest = GuestSpec::ring(10, ProgramKind::KvWorkload, 2, 8);
        let host = linear_array(5, DelayModel::constant(2), 0);
        // fold the ring: slot j = {j, 9-j}
        let fold = overlap_model::ring_fold(10);
        let cells_of = fold.slots.clone();
        let assign = Assignment::from_cells_of(5, 10, cells_of);
        let out = run(&guest, &host, &assign, BandwidthMode::LogN);
        check_against_reference(&guest, &out);
    }

    #[test]
    fn mesh_guest_validates() {
        let guest = GuestSpec::mesh(6, 4, ProgramKind::RuleAutomaton { db_size: 4 }, 8, 6);
        let host = linear_array(3, DelayModel::constant(3), 0);
        // two mesh columns (strips) per host processor
        let strips = overlap_model::mesh_columns(6, 4);
        let mut cells_of = vec![Vec::new(); 3];
        for (x, cells) in strips.slots.iter().enumerate() {
            cells_of[x / 2].extend_from_slice(cells);
        }
        let assign = Assignment::from_cells_of(3, 24, cells_of);
        let out = run(&guest, &host, &assign, BandwidthMode::LogN);
        check_against_reference(&guest, &out);
    }

    #[test]
    fn redundant_copies_all_validate() {
        // Overlapping assignment: middle cells held twice.
        let guest = GuestSpec::array(8, ProgramKind::KvWorkload, 11, 12);
        let host = linear_array(2, DelayModel::constant(10), 0);
        let assign =
            Assignment::from_cells_of(2, 8, vec![vec![0, 1, 2, 3, 4], vec![3, 4, 5, 6, 7]]);
        let out = run(&guest, &host, &assign, BandwidthMode::LogN);
        assert_eq!(out.copies.len(), 10);
        check_against_reference(&guest, &out);
    }

    #[test]
    fn redundancy_hides_latency_on_high_delay_link() {
        // Two processors joined by a delay-64 link, 8-column guest.
        // Blocked (no redundancy): every step each side waits ~64 ticks for
        // the boundary column. With a 2-column overlap the engine can run
        // ahead; slowdown must drop substantially.
        let guest = GuestSpec::array(8, ProgramKind::Relaxation, 4, 64);
        let host = linear_array(2, DelayModel::constant(64), 0);
        let blocked = Assignment::blocked(2, 8);
        let overlapped =
            Assignment::from_cells_of(2, 8, vec![vec![0, 1, 2, 3, 4, 5], vec![2, 3, 4, 5, 6, 7]]);
        let out_b = run(&guest, &host, &blocked, BandwidthMode::LogN);
        let out_o = run(&guest, &host, &overlapped, BandwidthMode::LogN);
        check_against_reference(&guest, &out_b);
        check_against_reference(&guest, &out_o);
        assert!(
            out_o.stats.slowdown < 0.55 * out_b.stats.slowdown,
            "overlap {} vs blocked {}",
            out_o.stats.slowdown,
            out_b.stats.slowdown
        );
    }

    #[test]
    fn incomplete_assignment_is_rejected() {
        let guest = GuestSpec::array(4, ProgramKind::StencilSum, 0, 2);
        let host = linear_array(2, DelayModel::constant(1), 0);
        let assign = Assignment::from_cells_of(2, 4, vec![vec![0, 1], vec![3]]);
        let err = Engine::new(&guest, &host, &assign, EngineConfig::default())
            .run()
            .unwrap_err();
        assert_eq!(err, RunError::IncompleteAssignment(vec![2]));
    }

    #[test]
    fn makespan_reflects_link_delay_for_blocked_assignment() {
        // Two procs, delay-d link, one column each, T steps: each step of
        // column 1 needs column 0's previous pebble and vice versa; the
        // critical path pays d per step: makespan ≥ T·d (roughly).
        let d = 32;
        let t = 8;
        let guest = GuestSpec::array(2, ProgramKind::StencilSum, 0, t);
        let host = linear_array(2, DelayModel::constant(d), 0);
        let assign = Assignment::blocked(2, 2);
        let out = run(&guest, &host, &assign, BandwidthMode::LogN);
        assert!(
            out.stats.makespan >= (t as u64 - 1) * d,
            "makespan {} < {}",
            out.stats.makespan,
            (t as u64 - 1) * d
        );
        check_against_reference(&guest, &out);
    }

    #[test]
    fn bandwidth_one_serializes_messages() {
        // One source column feeding a consumer over a single link; with
        // bw=1 the T pebbles serialize: arrival of pebble T at ≥ T ticks
        // after the first. We detect it through a larger makespan vs LogN.
        let guest = GuestSpec::array(6, ProgramKind::StencilSum, 3, 40);
        let host = linear_array(2, DelayModel::constant(2), 0);
        let assign = Assignment::blocked(2, 6);
        let fast = run(&guest, &host, &assign, BandwidthMode::Fixed(8));
        let slow = run(&guest, &host, &assign, BandwidthMode::Fixed(1));
        assert!(slow.stats.makespan >= fast.stats.makespan);
        check_against_reference(&guest, &slow);
    }

    #[test]
    fn engine_is_deterministic() {
        let guest = GuestSpec::array(16, ProgramKind::KvWorkload, 7, 20);
        let host = linear_array(4, DelayModel::uniform(1, 20), 3);
        let assign = Assignment::from_cells_of(
            4,
            16,
            vec![
                vec![0, 1, 2, 3, 4, 5],
                vec![4, 5, 6, 7, 8],
                vec![8, 9, 10, 11, 12],
                vec![12, 13, 14, 15],
            ],
        );
        let a = run(&guest, &host, &assign, BandwidthMode::LogN);
        let b = run(&guest, &host, &assign, BandwidthMode::LogN);
        assert_eq!(a.stats.makespan, b.stats.makespan);
        assert_eq!(a.copies, b.copies);
    }

    #[test]
    fn zero_steps_guest_completes_instantly() {
        let guest = GuestSpec::array(4, ProgramKind::StencilSum, 0, 0);
        let host = linear_array(2, DelayModel::constant(5), 0);
        let assign = Assignment::blocked(2, 4);
        let out = run(&guest, &host, &assign, BandwidthMode::LogN);
        assert_eq!(out.stats.makespan, 0);
        assert_eq!(out.stats.total_compute, 0);
    }

    #[test]
    fn timing_trace_records_every_pebble_in_order() {
        let guest = GuestSpec::array(6, ProgramKind::Relaxation, 2, 8);
        let host = linear_array(3, DelayModel::constant(4), 0);
        let assign = Assignment::blocked(3, 6);
        let cfg = EngineConfig {
            record_timing: true,
            ..Default::default()
        };
        let out = Engine::new(&guest, &host, &assign, cfg).run().unwrap();
        let timing = out.timing.as_ref().expect("timing recorded");
        assert_eq!(timing.ticks.len(), out.copies.len());
        for ticks in &timing.ticks {
            assert_eq!(ticks.len(), 8);
            // steps complete in increasing tick order per copy
            for w in ticks.windows(2) {
                assert!(w[0] < w[1], "{ticks:?}");
            }
        }
        // Row completion is monotone and row T matches the makespan.
        let mut last = 0;
        for t in 1..=8 {
            let rc = timing.row_completion(t).expect("row in range");
            assert!(rc >= last);
            last = rc;
        }
        assert_eq!(timing.row_completion(8), Some(out.stats.makespan));
        // Row 0 (initial values) and rows past T are not completions.
        assert_eq!(timing.row_completion(0), None);
        assert_eq!(timing.row_completion(9), None);
        assert_eq!(TimingTrace::default().row_completion(1), None);
        // Utilization is within (0, 1] for active processors.
        let util = timing.utilization(&out.copies, 3, out.stats.makespan, None);
        assert!(util.iter().all(|&u| u > 0.0 && u <= 1.0), "{util:?}");
    }

    #[test]
    #[should_panic(expected = "compute-cost table covers")]
    fn utilization_rejects_short_cost_table() {
        let guest = GuestSpec::array(2, ProgramKind::KvWorkload, 3, 4);
        let host = linear_array(2, DelayModel::constant(1), 0);
        let assign = Assignment::blocked(2, 2);
        let cfg = EngineConfig {
            record_timing: true,
            ..Default::default()
        };
        let out = Engine::new(&guest, &host, &assign, cfg).run().unwrap();
        let timing = out.timing.as_ref().unwrap();
        // One-entry cost table for a two-processor host: formerly an
        // unchecked index panic, now a clear error.
        timing.utilization(&out.copies, 2, out.stats.makespan, Some(&[1u32]));
    }

    #[test]
    #[should_panic(expected = "copy records were passed")]
    fn utilization_rejects_misaligned_copy_records() {
        let guest = GuestSpec::array(2, ProgramKind::KvWorkload, 3, 4);
        let host = linear_array(2, DelayModel::constant(1), 0);
        let assign = Assignment::blocked(2, 2);
        let cfg = EngineConfig {
            record_timing: true,
            ..Default::default()
        };
        let out = Engine::new(&guest, &host, &assign, cfg).run().unwrap();
        let timing = out.timing.as_ref().unwrap();
        timing.utilization(&out.copies[..1], 2, out.stats.makespan, None);
    }

    #[test]
    fn utilization_clamps_overstated_costs() {
        // A cost table that overstates the run's actual per-pebble cost
        // would push busy time past the makespan; the ratio is clamped.
        let guest = GuestSpec::array(2, ProgramKind::KvWorkload, 3, 6);
        let host = linear_array(2, DelayModel::constant(1), 0);
        let assign = Assignment::blocked(2, 2);
        let cfg = EngineConfig {
            record_timing: true,
            ..Default::default()
        };
        let out = Engine::new(&guest, &host, &assign, cfg).run().unwrap();
        let timing = out.timing.as_ref().unwrap();
        let util = timing.utilization(&out.copies, 2, out.stats.makespan, Some(&[1000, 1000]));
        assert!(util.iter().all(|&u| u <= 1.0), "{util:?}");
    }

    #[test]
    fn utilization_weights_heterogeneous_costs() {
        // One column per proc; proc 1 computes at cost 4. Unweighted, its
        // busy time would be T ticks out of a ≥ 4T makespan (≤ 25%); the
        // cost-weighted utilization counts 4T busy ticks.
        let guest = GuestSpec::array(2, ProgramKind::KvWorkload, 3, 10);
        let host = linear_array(2, DelayModel::constant(1), 0);
        let assign = Assignment::blocked(2, 2);
        let cfg = EngineConfig {
            record_timing: true,
            ..Default::default()
        };
        let costs = vec![1u32, 4u32];
        let out = Engine::new(&guest, &host, &assign, cfg)
            .with_compute_costs(costs.clone())
            .run()
            .unwrap();
        let timing = out.timing.as_ref().unwrap();
        let weighted = timing.utilization(&out.copies, 2, out.stats.makespan, Some(&costs));
        let unweighted = timing.utilization(&out.copies, 2, out.stats.makespan, None);
        // The slow processor is never idle between its pebbles: weighted
        // utilization must be exactly 4× the naive count, and high.
        assert!((weighted[1] - 4.0 * unweighted[1]).abs() < 1e-12);
        assert!(
            weighted[1] > 0.9,
            "slow proc looks idle: weighted {weighted:?}, unweighted {unweighted:?}"
        );
        assert_eq!(weighted[0], unweighted[0]);
    }

    /// Conservation invariant of a traced run: every copy's categories
    /// exactly partition `[0, makespan)`.
    fn assert_conserved(out: &RunOutcome) {
        let report = out.trace.as_ref().expect("traced run has a report");
        let stalls = out.stats.stalls.expect("traced run has stall totals");
        assert_eq!(stalls, report.totals);
        assert_eq!(report.makespan, out.stats.makespan);
        assert_eq!(report.per_copy.len(), out.copies.len());
        for (b, c) in report.per_copy.iter().zip(&out.copies) {
            assert_eq!(
                b.total(),
                out.stats.makespan,
                "copy of column {} on proc {}: {b:?}",
                c.cell,
                c.proc
            );
        }
        assert_eq!(stalls.total(), out.stats.makespan * out.copies.len() as u64);
    }

    #[test]
    fn traced_run_is_schedule_identical_and_conserves() {
        let guest = GuestSpec::array(8, ProgramKind::Relaxation, 4, 12);
        let host = linear_array(4, DelayModel::uniform(2, 8), 5);
        let assign = Assignment::from_cells_of(
            4,
            8,
            vec![
                vec![0, 1, 2],
                vec![1, 2, 3, 4],
                vec![3, 4, 5, 6],
                vec![5, 6, 7],
            ],
        );
        let cfg = EngineConfig::default();
        let eng = Engine::new(&guest, &host, &assign, cfg);
        let plain = eng.run().unwrap();
        let traced = eng.run_traced(TraceConfig::default()).unwrap();
        // Tracing must not perturb the schedule: strip the trace-only
        // fields and the outcomes are identical.
        let mut stripped = traced.clone();
        stripped.stats.stalls = None;
        stripped.trace = None;
        assert_eq!(stripped, plain);
        assert_conserved(&traced);
        // This run crosses delay-≥2 links, so both dependency-shaped waits
        // and in-flight waits must show up.
        let totals = traced.stats.stalls.unwrap();
        assert!(totals.compute_ticks > 0);
        assert!(totals.stall_bandwidth > 0, "{totals:?}");
        assert_eq!(totals.stall_fault, 0);
        check_against_reference(&guest, &traced);
    }

    #[test]
    fn traced_multicast_run_conserves() {
        let guest = GuestSpec::array(6, ProgramKind::KvWorkload, 3, 10);
        let host = linear_array(3, DelayModel::constant(3), 0);
        let assign =
            Assignment::from_cells_of(3, 6, vec![vec![0, 1, 2], vec![2, 3, 4], vec![4, 5]]);
        let cfg = EngineConfig {
            multicast: true,
            ..Default::default()
        };
        let traced = Engine::new(&guest, &host, &assign, cfg)
            .run_traced(TraceConfig::default())
            .unwrap();
        assert_conserved(&traced);
        check_against_reference(&guest, &traced);
    }

    #[test]
    fn traced_fault_run_attributes_fault_ticks_and_conserves() {
        use crate::faults::FaultPlan;
        let guest = GuestSpec::array(6, ProgramKind::Relaxation, 2, 20);
        let host = linear_array(3, DelayModel::constant(2), 0);
        let assign = Assignment::blocked(3, 6);
        let cfg = EngineConfig::default();
        // Take the 1↔2 boundary link down mid-run: transfers time out and
        // retry with backoff, which the consumers feel as fault stalls.
        let plan = FaultPlan::new().link_down(1, 2, 5, 60);
        let traced = Engine::new(&guest, &host, &assign, cfg)
            .with_faults(plan)
            .run_traced(TraceConfig::default())
            .unwrap();
        assert_conserved(&traced);
        let totals = traced.stats.stalls.unwrap();
        assert!(traced.stats.faults.retries > 0, "plan must actually bite");
        assert!(totals.stall_fault > 0, "{totals:?}");
        check_against_reference(&guest, &traced);
    }

    #[test]
    fn traced_crash_run_conserves_over_survivors() {
        use crate::faults::FaultPlan;
        // Every column held twice, so a single crash is survivable.
        let guest = GuestSpec::array(6, ProgramKind::KvWorkload, 3, 16);
        let host = linear_array(3, DelayModel::constant(2), 0);
        let assign = Assignment::from_cells_of(
            3,
            6,
            vec![vec![0, 1, 2, 3], vec![2, 3, 4, 5], vec![0, 1, 4, 5]],
        );
        let cfg = EngineConfig::default();
        let clean = Engine::new(&guest, &host, &assign, cfg).run().unwrap();
        let plan = FaultPlan::new().crash(1, clean.stats.makespan / 3);
        let traced = Engine::new(&guest, &host, &assign, cfg)
            .with_faults(plan)
            .run_traced(TraceConfig::default())
            .unwrap();
        assert_eq!(traced.stats.faults.crashed_procs, 1);
        assert!(traced.stats.faults.rerouted_subscriptions > 0);
        // Crashed copies are gone from both the outcome and the report;
        // conservation holds over the survivors.
        assert_conserved(&traced);
        check_against_reference(&guest, &traced);
    }

    #[test]
    fn traced_single_processor_is_pure_compute_and_db_order() {
        // One processor, no links: nothing to wait for except the
        // in-order one-pebble-per-tick database serialization.
        let guest = GuestSpec::array(4, ProgramKind::KvWorkload, 3, 5);
        let host = linear_array(1, DelayModel::constant(1), 0);
        let assign = Assignment::blocked(1, 4);
        let traced = Engine::new(&guest, &host, &assign, EngineConfig::default())
            .run_traced(TraceConfig::default())
            .unwrap();
        assert_conserved(&traced);
        let totals = traced.stats.stalls.unwrap();
        assert_eq!(totals.stall_bandwidth, 0, "{totals:?}");
        assert_eq!(totals.stall_fault, 0);
        assert_eq!(totals.compute_ticks, 20);
        assert!(totals.stall_db_order > 0, "{totals:?}");
    }

    #[test]
    fn timing_is_absent_by_default() {
        let guest = GuestSpec::array(4, ProgramKind::StencilSum, 0, 3);
        let host = linear_array(2, DelayModel::constant(1), 0);
        let assign = Assignment::blocked(2, 4);
        let out = Engine::new(&guest, &host, &assign, EngineConfig::default())
            .run()
            .unwrap();
        assert!(out.timing.is_none());
    }

    #[test]
    fn batch_transit_is_observable_end_to_end() {
        // One producer column feeding one consumer over a single delay-d
        // link with bw = 2: pebble t arrives at its compute tick + d +
        // queueing; the consumer's column completes by ≈ T + d + T/bw.
        let d = 20u64;
        let t_steps = 10u32;
        let guest = GuestSpec::array(2, ProgramKind::StencilSum, 1, t_steps);
        let host = linear_array(2, DelayModel::constant(d), 0);
        let assign = Assignment::blocked(2, 2);
        let cfg = EngineConfig {
            bandwidth: BandwidthMode::Fixed(2),
            record_timing: true,
            ..Default::default()
        };
        let out = Engine::new(&guest, &host, &assign, cfg).run().unwrap();
        // Each step of the pair costs ≥ d (the dependency cycle), so the
        // makespan is ≥ (T−1)·d; and it must terminate within (T+1)·(d+2).
        assert!(out.stats.makespan >= (t_steps as u64 - 1) * d);
        assert!(out.stats.makespan <= (t_steps as u64 + 1) * (d + 2));
    }

    #[test]
    fn heterogeneous_speeds_slow_the_run_proportionally_and_validate() {
        let guest = GuestSpec::array(8, ProgramKind::KvWorkload, 3, 12);
        let host = linear_array(4, DelayModel::constant(2), 0);
        let assign = Assignment::blocked(4, 8);
        let base = Engine::new(&guest, &host, &assign, EngineConfig::default())
            .run()
            .unwrap();
        let slowed = Engine::new(&guest, &host, &assign, EngineConfig::default())
            .with_compute_costs(vec![1, 4, 1, 1])
            .run()
            .unwrap();
        check_against_reference(&guest, &slowed);
        // The slow processor throttles the run: makespan grows but is
        // bounded by the 4× cost on 2 cells per step plus propagation.
        assert!(slowed.stats.makespan > base.stats.makespan);
        assert!(slowed.stats.makespan <= 4 * base.stats.makespan + 16);
    }

    #[test]
    fn uniform_costs_equal_default() {
        let guest = GuestSpec::array(6, ProgramKind::Relaxation, 3, 10);
        let host = linear_array(3, DelayModel::uniform(1, 5), 1);
        let assign = Assignment::blocked(3, 6);
        let a = Engine::new(&guest, &host, &assign, EngineConfig::default())
            .run()
            .unwrap();
        let b = Engine::new(&guest, &host, &assign, EngineConfig::default())
            .with_compute_costs(vec![1; 3])
            .run()
            .unwrap();
        assert_eq!(a.stats.makespan, b.stats.makespan);
        assert_eq!(a.copies, b.copies);
    }

    #[test]
    #[should_panic(expected = "costs must be ≥ 1")]
    fn zero_cost_is_rejected() {
        let guest = GuestSpec::array(2, ProgramKind::StencilSum, 0, 1);
        let host = linear_array(2, DelayModel::constant(1), 0);
        let assign = Assignment::blocked(2, 2);
        let _ = Engine::new(&guest, &host, &assign, EngineConfig::default())
            .with_compute_costs(vec![1, 0]);
    }

    #[test]
    fn multicast_mode_validates_and_reduces_traffic() {
        // A column consumed by several processors: overlapping assignment
        // where cell 4 feeds three consumers.
        let guest = GuestSpec::array(10, ProgramKind::KvWorkload, 7, 14);
        let host = linear_array(5, DelayModel::constant(3), 0);
        let assign = Assignment::from_cells_of(
            5,
            10,
            vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7], vec![8, 9]],
        );
        let uni = Engine::new(&guest, &host, &assign, EngineConfig::default())
            .run()
            .unwrap();
        let mc_cfg = EngineConfig {
            multicast: true,
            ..Default::default()
        };
        let mc = Engine::new(&guest, &host, &assign, mc_cfg).run().unwrap();
        check_against_reference(&guest, &mc);
        // Same computed state.
        let mut a = uni.copies.clone();
        let mut b = mc.copies.clone();
        a.sort_by_key(|c| (c.cell, c.proc));
        b.sort_by_key(|c| (c.cell, c.proc));
        assert_eq!(a, b);
        // Never more link traversals than unicast.
        assert!(
            mc.stats.pebble_hops <= uni.stats.pebble_hops,
            "multicast hops {} > unicast {}",
            mc.stats.pebble_hops,
            uni.stats.pebble_hops
        );
    }

    #[test]
    fn multicast_shares_links_under_fanout() {
        // Source at one end, consumers spread along the line: unicast
        // retraverses the first link per consumer, multicast once.
        let guest = GuestSpec::array(5, ProgramKind::StencilSum, 1, 10);
        let host = linear_array(5, DelayModel::constant(2), 0);
        // cell 0 on proc 0; cells 1..5 each on their own proc, all of
        // which need cell 0? Only proc 1 needs cell 0 (line deps).
        // Instead: proc 0 holds cells 0..=2 so consumers 1,2 both need it.
        let assign = Assignment::from_cells_of(
            5,
            5,
            vec![vec![0, 1, 2], vec![1, 3], vec![2, 4], vec![3], vec![4]],
        );
        let uni = Engine::new(&guest, &host, &assign, EngineConfig::default())
            .run()
            .unwrap();
        let mc = Engine::new(
            &guest,
            &host,
            &assign,
            EngineConfig {
                multicast: true,
                ..Default::default()
            },
        )
        .run()
        .unwrap();
        check_against_reference(&guest, &uni);
        check_against_reference(&guest, &mc);
        assert!(mc.stats.pebble_hops <= uni.stats.pebble_hops);
    }

    #[test]
    fn jitter_none_is_identity_and_effective_is_bounded() {
        assert_eq!(Jitter::None.effective(10, 0, 5), 10);
        let j = Jitter::Periodic {
            amplitude_pct: 50,
            period: 8,
        };
        for lid in 0..4 {
            for t in 0..64 {
                let e = j.effective(10, lid, t);
                assert!((5..=15).contains(&e), "lid={lid} t={t}: {e}");
            }
        }
        // amplitude 100 never drops below 1
        let j = Jitter::Periodic {
            amplitude_pct: 100,
            period: 2,
        };
        for t in 0..32 {
            assert!(j.effective(3, 1, t) >= 1);
        }
    }

    #[test]
    fn jittered_runs_validate_and_stay_near_the_baseline() {
        let guest = GuestSpec::array(16, ProgramKind::KvWorkload, 9, 24);
        let host = linear_array(4, DelayModel::constant(16), 0);
        let assign = Assignment::blocked(4, 16);
        let base = Engine::new(&guest, &host, &assign, EngineConfig::default())
            .run()
            .unwrap();
        let cfg = EngineConfig {
            jitter: Jitter::Periodic {
                amplitude_pct: 50,
                period: 16,
            },
            ..Default::default()
        };
        let jit = Engine::new(&guest, &host, &assign, cfg).run().unwrap();
        check_against_reference(&guest, &jit);
        // ±50% delay fluctuation keeps the makespan within ±60% of base.
        let (b, j) = (base.stats.makespan as f64, jit.stats.makespan as f64);
        assert!((j - b).abs() <= 0.6 * b, "base {b} vs jittered {j}");
        // determinism under jitter
        let again = Engine::new(&guest, &host, &assign, cfg).run().unwrap();
        assert_eq!(jit.stats.makespan, again.stats.makespan);
    }

    #[test]
    fn single_cell_guest_runs() {
        // One cell, boundary deps only: pure sequential work.
        let guest = GuestSpec::array(1, ProgramKind::KvWorkload, 3, 16);
        let host = linear_array(2, DelayModel::constant(9), 0);
        let assign = Assignment::from_cells_of(2, 1, vec![vec![0], vec![]]);
        let out = Engine::new(&guest, &host, &assign, EngineConfig::default())
            .run()
            .unwrap();
        assert_eq!(out.stats.makespan, 16);
        assert_eq!(out.stats.messages, 0);
        check_against_reference(&guest, &out);
    }

    #[test]
    fn single_host_processor_with_ring_guest() {
        let guest = GuestSpec::ring(6, ProgramKind::Relaxation, 5, 8);
        let host = linear_array(1, DelayModel::constant(1), 0);
        let assign = Assignment::all_on_one(1, 6);
        let out = Engine::new(&guest, &host, &assign, EngineConfig::default())
            .run()
            .unwrap();
        assert_eq!(out.stats.makespan, 48);
        check_against_reference(&guest, &out);
    }

    #[test]
    fn duplicate_full_copies_still_agree() {
        // Every processor holds the whole guest: maximal redundancy, no
        // communication at all.
        let guest = GuestSpec::array(5, ProgramKind::KvWorkload, 2, 7);
        let host = linear_array(3, DelayModel::constant(1000), 0);
        let assign = Assignment::from_cells_of(
            3,
            5,
            vec![(0..5).collect(), (0..5).collect(), (0..5).collect()],
        );
        let out = Engine::new(&guest, &host, &assign, EngineConfig::default())
            .run()
            .unwrap();
        assert_eq!(out.stats.messages, 0, "full copies need no messages");
        assert_eq!(out.stats.makespan, 35);
        check_against_reference(&guest, &out);
    }

    #[test]
    fn tick_limit_triggers() {
        let guest = GuestSpec::array(4, ProgramKind::StencilSum, 0, 100);
        let host = linear_array(2, DelayModel::constant(50), 0);
        let assign = Assignment::blocked(2, 4);
        let cfg = EngineConfig {
            bandwidth: BandwidthMode::LogN,
            max_ticks: 10,
            ..Default::default()
        };
        let err = Engine::new(&guest, &host, &assign, cfg).run().unwrap_err();
        assert!(matches!(err, RunError::TickLimit(10)));
    }

    #[test]
    fn stats_count_events_and_queue_depth() {
        let guest = GuestSpec::array(8, ProgramKind::KvWorkload, 3, 12);
        let host = linear_array(4, DelayModel::constant(5), 0);
        let assign = Assignment::blocked(4, 8);
        let out = Engine::new(&guest, &host, &assign, EngineConfig::default())
            .run()
            .unwrap();
        // Every compute completion is an event; routed pebbles add more.
        assert!(out.stats.events_processed >= out.stats.total_compute);
        assert!(out.stats.peak_queue_depth >= 1);
    }

    /// The calendar-queue engine must reproduce the classic heap engine's
    /// outcome bit for bit, across route modes, jitter, and costs.
    #[test]
    fn matches_classic_engine_exactly() {
        let guest = GuestSpec::array(12, ProgramKind::KvWorkload, 5, 18);
        let host = linear_array(4, DelayModel::uniform(1, 9), 7);
        let assign = Assignment::from_cells_of(
            4,
            12,
            vec![
                vec![0, 1, 2, 3],
                vec![3, 4, 5, 6],
                vec![6, 7, 8, 9],
                vec![9, 10, 11],
            ],
        );
        for multicast in [false, true] {
            for jitter in [
                Jitter::None,
                Jitter::Periodic {
                    amplitude_pct: 40,
                    period: 8,
                },
            ] {
                for costs in [None, Some(vec![1u32, 3, 1, 2])] {
                    let cfg = EngineConfig {
                        multicast,
                        jitter,
                        record_timing: true,
                        ..Default::default()
                    };
                    let mut eng = Engine::new(&guest, &host, &assign, cfg);
                    if let Some(c) = costs.clone() {
                        eng = eng.with_compute_costs(c);
                    }
                    let new = eng.run().expect("calendar engine");
                    let classic = run_classic(&guest, &host, &assign, cfg, costs.as_deref())
                        .expect("classic engine");
                    assert_eq!(
                        new, classic,
                        "divergence (multicast={multicast}, jitter={jitter:?}, costs={costs:?})"
                    );
                }
            }
        }
    }
}
