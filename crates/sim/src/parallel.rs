//! Parallel reference execution (rayon).
//!
//! The unit-delay reference executor is embarrassingly parallel within a
//! step: every cell's pebble depends only on the previous step. This module
//! provides a rayon-parallel executor that is bit-identical to
//! [`overlap_model::ReferenceRun`] (checked by tests) and is used for large
//! ground-truth traces in the experiment harness.

use overlap_model::{
    fold64, Db, DbUpdate, Dep, GuestSpec, PebbleGrid, PebbleId, PebbleValue, ReferenceTrace,
};
use rayon::prelude::*;

/// Execute `spec` with one rayon task per cell per step.
pub fn par_reference(spec: &GuestSpec) -> ReferenceTrace {
    let program = spec.program.instantiate();
    let cells = spec.num_cells();
    let steps = spec.steps;
    let boundary = spec.boundary();
    let kind = program.db_kind();

    let mut dbs: Vec<Db> = (0..cells).map(|c| kind.instantiate(c, spec.seed)).collect();
    let mut update_log_digest = vec![0xD16u64; cells as usize];
    let mut grid = PebbleGrid::new(cells, steps);
    let mut prev: Vec<PebbleValue> = (0..cells).map(|c| spec.initial_value(c)).collect();

    for t in 1..=steps {
        let results: Vec<(PebbleValue, DbUpdate)> = (0..cells)
            .into_par_iter()
            .map(|c| {
                let mut deps_buf = Vec::with_capacity(spec.max_deps());
                spec.visit_deps(c, t, |d| {
                    deps_buf.push(match d {
                        Dep::Cell(cc) => prev[cc as usize],
                        Dep::Boundary { side, offset } => boundary.value(side, offset, t),
                    });
                });
                if spec.is_relay(c, t) {
                    (prev[c as usize], DbUpdate::None)
                } else {
                    program.compute(c, t, &dbs[c as usize], &deps_buf)
                }
            })
            .collect();
        dbs.par_iter_mut()
            .zip(results.par_iter())
            .for_each(|(db, (_, u))| db.apply(u));
        for (c, (v, u)) in results.iter().enumerate() {
            update_log_digest[c] = fold64(update_log_digest[c], u.digest());
            prev[c] = *v;
            grid.set(PebbleId::new(c as u32, t), *v);
        }
    }

    ReferenceTrace {
        spec: spec.clone(),
        grid,
        final_db_digest: dbs.iter().map(|d| d.digest()).collect(),
        update_log_digest,
        work: cells as u64 * steps as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlap_model::{ProgramKind, ReferenceRun};

    #[test]
    fn parallel_matches_sequential_line() {
        let spec = GuestSpec::array(64, ProgramKind::KvWorkload, 3, 32);
        let seq = ReferenceRun::execute(&spec);
        let par = par_reference(&spec);
        assert_eq!(seq.grid, par.grid);
        assert_eq!(seq.final_db_digest, par.final_db_digest);
        assert_eq!(seq.update_log_digest, par.update_log_digest);
    }

    #[test]
    fn parallel_matches_sequential_mesh_and_ring() {
        for spec in [
            GuestSpec::mesh(8, 8, ProgramKind::RuleAutomaton { db_size: 8 }, 5, 10),
            GuestSpec::ring(33, ProgramKind::Relaxation, 7, 20),
        ] {
            let seq = ReferenceRun::execute(&spec);
            let par = par_reference(&spec);
            assert_eq!(seq.grid, par.grid);
            assert_eq!(seq.final_db_digest, par.final_db_digest);
        }
    }
}
