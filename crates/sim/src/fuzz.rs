//! Cross-engine differential fuzzer and invariant audit.
//!
//! The repo's correctness story rests on one claim: the event engine, the
//! sharded parallel engine, the time-stepped engine, the lockstep executor
//! and the parallel reference all agree — bit-identically on state,
//! sensibly on time — for *every* scenario the lowering accepts, not just
//! the handful the unit tests pick. This module turns that claim into a
//! machine-checkable property:
//!
//! 1. [`gen_spec`] samples an arbitrary [`ScenarioSpec`] (guest topology
//!    and program, host graph and delay model, assignment shape, compute
//!    costs, multicast, fault schedule) from a seeded deterministic PRNG;
//! 2. [`check_spec`] lowers the scenario **once** into an
//!    [`ExecPlan`] and drives every engine the
//!    scenario is legal for through it, auditing the invariant catalogue
//!    below;
//! 3. on a failure, [`shrink`] greedily simplifies the spec (drop faults,
//!    clear costs, flatten delays, halve the guest/host) while the
//!    failure persists — fault- and cost-only simplifications reuse one
//!    lowering via [`ExecPlan::apply_delta`] — and
//!    [`Divergence::repro_test`] prints the minimal scenario as a
//!    paste-able regression test.
//!
//! # Invariant catalogue
//!
//! * **State agreement** — every engine's surviving copies match the
//!   reference trace ([`validate_run`]); event vs stepped vs lockstep
//!   agree on `(value_fold, db_digest, update_fold)` per `(cell, proc)`.
//! * **Plan reuse** — running the event engine twice off one `ExecPlan`
//!   is bit-identical (`RunOutcome` equality).
//! * **Sharding is free** — the sharded conservative-parallel engine
//!   ([`run_sharded_with`]) equals the event engine bit-for-bit at every
//!   thread count and under both partition heuristics, on every legal
//!   scenario — faults, multicast, jitter, and costs included.
//! * **Tracing is free** — a traced run equals the untraced run once the
//!   stall report is stripped, and its stall breakdown conserves ticks:
//!   `totals.total() == makespan × surviving copies`.
//! * **Causality** — with `record_timing`, per-copy completion ticks
//!   strictly increase and row `t` never completes before row `t-1`
//!   ([`audit_causality`]).
//! * **Accounting** — `guest_work = cells × steps`; fault-free runs
//!   compute exactly `copies × steps` pebbles and report zeroed
//!   [`FaultStats`]; every derived ratio
//!   (slowdown, efficiency, work overhead, mean link pebbles) is finite.
//! * **Time ordering** — the greedy event engine never loses to the
//!   lockstep bound on the same plan.

use crate::assignment::Assignment;
use crate::engine::{Engine, EngineConfig, MemBudget, RunOutcome};
use crate::faults::FaultPlan;
use crate::lockstep::run_lockstep;
use crate::parallel::par_reference;
use crate::plan::{ExecPlan, PlanDelta};
use crate::sharded::{run_sharded_with, Partition};
use crate::stats::FaultStats;
use crate::stepped::run_stepped;
use crate::trace::TraceConfig;
use crate::validate::{audit_causality, validate_run};
use overlap_model::{GuestSpec, ProgramKind, TaskGraph};
use overlap_net::topology;
use overlap_net::{DelayModel, HostGraph, NodeId};

// ---------------------------------------------------------------------------
// deterministic PRNG (splitmix64 — same generator the fault module uses)
// ---------------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform draw in `[lo, hi]`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

// ---------------------------------------------------------------------------
// scenario specification (plain data, shrinkable, printable)
// ---------------------------------------------------------------------------

/// Guest topology of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestKind {
    /// Line of `m` cells.
    Line(u32),
    /// Ring of `m ≥ 3` cells.
    Ring(u32),
    /// `w × h` mesh.
    Mesh(u32, u32),
    /// Complete binary tree of `levels ≥ 1`.
    Tree(u32),
    /// Seeded random layered DAG over `dbs` lanes: each task reads its
    /// own lane plus up to `extra` others at the previous layer with
    /// costs in `1..=max_cost` ([`TaskGraph::layered_random`]); the
    /// spec's `steps` is the layer count. Non-uniform whenever `extra`
    /// or `max_cost` exceed the trivial values, exercising the dynamic
    /// per-`(cell, step)` lowering.
    DagRandom {
        /// Lane (database) count.
        dbs: u32,
        /// Extra cross-lane dependencies per task.
        extra: u32,
        /// Upper bound on per-task compute cost.
        max_cost: u32,
        /// Graph-shape seed.
        seed: u64,
    },
    /// Wavefront (systolic) sweep over `lanes` lanes
    /// ([`TaskGraph::wavefront`]) — an asymmetric stencil no grid
    /// topology expresses, yet uniform (static lowering); the spec's
    /// `steps` is the layer count.
    Wavefront(u32),
    /// Fork-join diamond of `levels` ([`TaskGraph::fork_join`]): relays
    /// off the active frontier make it non-uniform. Its layer count is
    /// fixed at `2·levels − 1`, overriding the spec's `steps`.
    ForkJoin(u32),
}

impl GuestKind {
    /// Number of guest cells this kind produces.
    pub fn num_cells(self) -> u32 {
        match self {
            GuestKind::Line(m) | GuestKind::Ring(m) => m,
            GuestKind::Mesh(w, h) => w * h,
            GuestKind::Tree(levels) => (1u32 << levels) - 1,
            GuestKind::DagRandom { dbs, .. } => dbs,
            GuestKind::Wavefront(lanes) => lanes,
            GuestKind::ForkJoin(levels) => 1u32 << (levels - 1),
        }
    }
}

/// Host topology of a scenario (delays come from the spec's
/// [`DelayModel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostKind {
    /// Linear array of `n` processors.
    Line(u32),
    /// Ring of `n ≥ 3` processors.
    Ring(u32),
    /// `w × h` mesh.
    Mesh(u32, u32),
    /// Complete binary tree of `levels ≥ 2`.
    Tree(u32),
}

impl HostKind {
    /// Number of processors this kind produces.
    pub fn num_procs(self) -> u32 {
        match self {
            HostKind::Line(n) | HostKind::Ring(n) => n,
            HostKind::Mesh(w, h) => w * h,
            HostKind::Tree(levels) => (1u32 << levels) - 1,
        }
    }
}

/// Database-assignment shape of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignKind {
    /// Contiguous blocks, one copy per cell ([`Assignment::blocked`]).
    Blocked,
    /// Every database on processor 0 ([`Assignment::all_on_one`]).
    AllOnOne,
    /// Every cell on exactly two distinct random processors — the only
    /// shape under which the generator schedules crashes (one crash is
    /// always survivable).
    Redundant {
        /// Placement seed.
        seed: u64,
    },
}

/// One scheduled fault (plain-data mirror of the [`FaultPlan`] builders,
/// so the shrinker can drop entries one at a time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Link `(a, b)` down over `[from, until)`.
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
        /// First dead tick.
        from: u64,
        /// First live tick again.
        until: u64,
    },
    /// Link `(a, b)` delays multiplied by `factor` over `[from, until)`.
    Spike {
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
        /// First slowed tick.
        from: u64,
        /// First normal tick again.
        until: u64,
        /// Delay multiplier.
        factor: u32,
    },
    /// Processor `proc` dies at tick `at`.
    Crash {
        /// The victim.
        proc: NodeId,
        /// Crash tick.
        at: u64,
    },
}

/// A complete, self-contained scenario description. Everything an engine
/// run depends on is spelled out here, so a spec can be regenerated,
/// shrunk, printed, and replayed across sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Guest topology.
    pub guest: GuestKind,
    /// Guest program.
    pub program: ProgramKind,
    /// Guest steps (0 is legal: the degenerate empty run).
    pub steps: u32,
    /// Guest init seed.
    pub guest_seed: u64,
    /// Host topology.
    pub host: HostKind,
    /// Link-delay distribution.
    pub delays: DelayModel,
    /// Host delay-sampling seed.
    pub host_seed: u64,
    /// Assignment shape.
    pub assign: AssignKind,
    /// Per-processor compute costs (ticks per pebble), if any.
    pub costs: Option<Vec<u32>>,
    /// Lower the plan for multicast trees instead of unicast routes.
    pub multicast: bool,
    /// Per-processor memory budget on database copies (red–blue pebbling
    /// mode; event, stepped and sharded engines only).
    pub mem: Option<MemBudget>,
    /// Scheduled faults.
    pub faults: Vec<FaultSpec>,
}

impl ScenarioSpec {
    /// Build the guest this spec describes.
    pub fn build_guest(&self) -> GuestSpec {
        let (p, s, t) = (self.program, self.guest_seed, self.steps);
        match self.guest {
            GuestKind::Line(m) => GuestSpec::array(m, p, s, t),
            GuestKind::Ring(m) => GuestSpec::ring(m, p, s, t),
            GuestKind::Mesh(w, h) => GuestSpec::mesh(w, h, p, s, t),
            GuestKind::Tree(levels) => GuestSpec::tree(levels, p, s, t),
            GuestKind::DagRandom {
                dbs,
                extra,
                max_cost,
                seed,
            } => GuestSpec::dag(
                TaskGraph::layered_random(dbs, t, extra, max_cost, seed),
                p,
                s,
            ),
            GuestKind::Wavefront(lanes) => GuestSpec::dag(TaskGraph::wavefront(lanes, t), p, s),
            GuestKind::ForkJoin(levels) => GuestSpec::dag(TaskGraph::fork_join(levels), p, s),
        }
    }

    /// Build the host this spec describes.
    pub fn build_host(&self) -> HostGraph {
        let (d, s) = (self.delays, self.host_seed);
        match self.host {
            HostKind::Line(n) => topology::linear_array(n, d, s),
            HostKind::Ring(n) => topology::ring(n, d, s),
            HostKind::Mesh(w, h) => topology::mesh2d(w, h, d, s),
            HostKind::Tree(levels) => topology::binary_tree(levels, d, s),
        }
    }

    /// Build the assignment this spec describes.
    pub fn build_assignment(&self) -> Assignment {
        let procs = self.host.num_procs();
        let cells = self.guest.num_cells();
        match self.assign {
            AssignKind::Blocked => Assignment::blocked(procs, cells),
            AssignKind::AllOnOne => Assignment::all_on_one(procs, cells),
            AssignKind::Redundant { seed } => {
                let mut rng = Rng::new(seed);
                let holders = (0..cells)
                    .map(|_| {
                        let first = rng.below(procs as u64) as NodeId;
                        let second = (first + 1 + rng.below(procs as u64 - 1) as NodeId) % procs;
                        vec![first, second]
                    })
                    .collect();
                Assignment::from_holders(procs, cells, holders)
            }
        }
    }

    /// Build the fault plan this spec describes.
    pub fn build_faults(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for f in &self.faults {
            plan = match *f {
                FaultSpec::LinkDown { a, b, from, until } => plan.link_down(a, b, from, until),
                FaultSpec::Spike {
                    a,
                    b,
                    from,
                    until,
                    factor,
                } => plan.delay_spike(a, b, from, until, factor),
                FaultSpec::Crash { proc, at } => plan.crash(proc, at),
            };
        }
        plan
    }

    /// Render the spec as a Rust expression that reconstructs it — the
    /// payload of a paste-able regression test.
    pub fn to_code(&self) -> String {
        let guest = match self.guest {
            GuestKind::Line(m) => format!("GuestKind::Line({m})"),
            GuestKind::Ring(m) => format!("GuestKind::Ring({m})"),
            GuestKind::Mesh(w, h) => format!("GuestKind::Mesh({w}, {h})"),
            GuestKind::Tree(l) => format!("GuestKind::Tree({l})"),
            GuestKind::DagRandom {
                dbs,
                extra,
                max_cost,
                seed,
            } => format!(
                "GuestKind::DagRandom {{ dbs: {dbs}, extra: {extra}, \
                 max_cost: {max_cost}, seed: {seed} }}"
            ),
            GuestKind::Wavefront(l) => format!("GuestKind::Wavefront({l})"),
            GuestKind::ForkJoin(l) => format!("GuestKind::ForkJoin({l})"),
        };
        let program = match self.program {
            ProgramKind::StencilSum => "ProgramKind::StencilSum".into(),
            ProgramKind::RuleAutomaton { db_size } => {
                format!("ProgramKind::RuleAutomaton {{ db_size: {db_size} }}")
            }
            ProgramKind::KvWorkload => "ProgramKind::KvWorkload".into(),
            ProgramKind::Relaxation => "ProgramKind::Relaxation".into(),
            ProgramKind::Histogram { buckets } => {
                format!("ProgramKind::Histogram {{ buckets: {buckets} }}")
            }
            ProgramKind::CacheChurn => "ProgramKind::CacheChurn".into(),
        };
        let host = match self.host {
            HostKind::Line(n) => format!("HostKind::Line({n})"),
            HostKind::Ring(n) => format!("HostKind::Ring({n})"),
            HostKind::Mesh(w, h) => format!("HostKind::Mesh({w}, {h})"),
            HostKind::Tree(l) => format!("HostKind::Tree({l})"),
        };
        let delays = match self.delays {
            DelayModel::Constant(d) => format!("DelayModel::Constant({d})"),
            DelayModel::Uniform { lo, hi } => {
                format!("DelayModel::Uniform {{ lo: {lo}, hi: {hi} }}")
            }
            DelayModel::Bimodal { lo, hi, p_hi } => {
                format!("DelayModel::Bimodal {{ lo: {lo}, hi: {hi}, p_hi: {p_hi:?} }}")
            }
            DelayModel::HeavyTail { min, alpha, cap } => {
                format!("DelayModel::HeavyTail {{ min: {min}, alpha: {alpha:?}, cap: {cap} }}")
            }
            DelayModel::Spike {
                base,
                spike,
                period,
            } => format!("DelayModel::Spike {{ base: {base}, spike: {spike}, period: {period} }}"),
        };
        let assign = match self.assign {
            AssignKind::Blocked => "AssignKind::Blocked".into(),
            AssignKind::AllOnOne => "AssignKind::AllOnOne".into(),
            AssignKind::Redundant { seed } => {
                format!("AssignKind::Redundant {{ seed: {seed} }}")
            }
        };
        let costs = match &self.costs {
            None => "None".into(),
            Some(v) => format!("Some(vec!{v:?})"),
        };
        let mem = match self.mem {
            None => "None".into(),
            Some(m) => format!(
                "Some(MemBudget {{ budget: {}, reload_cost: {} }})",
                m.budget, m.reload_cost
            ),
        };
        let faults = if self.faults.is_empty() {
            "vec![]".into()
        } else {
            let items: Vec<String> = self
                .faults
                .iter()
                .map(|f| match *f {
                    FaultSpec::LinkDown { a, b, from, until } => format!(
                        "FaultSpec::LinkDown {{ a: {a}, b: {b}, from: {from}, until: {until} }}"
                    ),
                    FaultSpec::Spike {
                        a,
                        b,
                        from,
                        until,
                        factor,
                    } => format!(
                        "FaultSpec::Spike {{ a: {a}, b: {b}, from: {from}, \
                         until: {until}, factor: {factor} }}"
                    ),
                    FaultSpec::Crash { proc, at } => {
                        format!("FaultSpec::Crash {{ proc: {proc}, at: {at} }}")
                    }
                })
                .collect();
            format!("vec![{}]", items.join(", "))
        };
        format!(
            "ScenarioSpec {{\n        guest: {guest},\n        program: {program},\n        \
             steps: {steps},\n        guest_seed: {gseed},\n        host: {host},\n        \
             delays: {delays},\n        host_seed: {hseed},\n        assign: {assign},\n        \
             costs: {costs},\n        multicast: {multicast},\n        mem: {mem},\n        \
             faults: {faults},\n    }}",
            steps = self.steps,
            gseed = self.guest_seed,
            hseed = self.host_seed,
            multicast = self.multicast,
        )
    }
}

// ---------------------------------------------------------------------------
// generation
// ---------------------------------------------------------------------------

/// Deterministically sample the `case`-th scenario of fuzzing run `seed`.
/// The same `(seed, case)` always yields the same spec, so any reported
/// case number can be replayed exactly.
pub fn gen_spec(seed: u64, case: u64) -> ScenarioSpec {
    let mut rng = Rng::new(seed ^ case.wrapping_mul(0xd1b54a32d192ed03));

    let host = match rng.below(4) {
        0 => HostKind::Line(rng.range(2, 9) as u32),
        1 => HostKind::Ring(rng.range(3, 9) as u32),
        2 => HostKind::Mesh(rng.range(2, 3) as u32, rng.range(2, 3) as u32),
        _ => HostKind::Tree(rng.range(2, 3) as u32),
    };
    let procs = host.num_procs();

    let guest = match rng.below(6) {
        0 => GuestKind::Line(rng.range(2, 24) as u32),
        1 => GuestKind::Ring(rng.range(3, 24) as u32),
        2 => GuestKind::Mesh(rng.range(2, 5) as u32, rng.range(2, 5) as u32),
        3 => GuestKind::Tree(rng.range(2, 4) as u32),
        4 => GuestKind::DagRandom {
            dbs: rng.range(2, 16) as u32,
            extra: rng.range(0, 2) as u32,
            max_cost: rng.range(1, 3) as u32,
            seed: rng.next(),
        },
        _ => {
            if rng.chance(1, 2) {
                GuestKind::Wavefront(rng.range(2, 16) as u32)
            } else {
                GuestKind::ForkJoin(rng.range(2, 4) as u32)
            }
        }
    };

    // Zero-step guests are legal and historically under-tested; keep them
    // in the mix but rare.
    let steps = if rng.chance(1, 16) {
        0
    } else {
        rng.range(1, 12) as u32
    };

    let assign = match rng.below(8) {
        0 => AssignKind::AllOnOne,
        1..=3 => AssignKind::Redundant { seed: rng.next() },
        _ => AssignKind::Blocked,
    };

    let costs = if rng.chance(1, 4) {
        Some((0..procs).map(|_| rng.range(1, 4) as u32).collect())
    } else {
        None
    };

    let multicast = rng.chance(1, 8);

    // Small budgets relative to the blocked copies-per-processor load, so
    // real eviction churn is common.
    let mem = if rng.chance(1, 5) {
        Some(MemBudget {
            budget: rng.range(1, 5) as u32,
            reload_cost: rng.range(1, 5) as u32,
        })
    } else {
        None
    };

    let mut faults = Vec::new();
    if steps > 0 && rng.chance(1, 3) {
        // Crashes only under the guaranteed-redundant assignment, where a
        // single crash is always survivable; link faults on any shape.
        // A spec is materialized below just to enumerate real links.
        let spec_so_far = ScenarioSpec {
            guest,
            program: ProgramKind::StencilSum,
            steps,
            guest_seed: 0,
            host,
            delays: DelayModel::Constant(1),
            host_seed: 0,
            assign,
            costs: None,
            multicast,
            mem: None,
            faults: vec![],
        };
        let links = spec_so_far.build_host().links().to_vec();
        for _ in 0..rng.range(1, 2) {
            match rng.below(3) {
                0 if matches!(assign, AssignKind::Redundant { .. })
                    && !faults.iter().any(|f| matches!(f, FaultSpec::Crash { .. })) =>
                {
                    faults.push(FaultSpec::Crash {
                        proc: rng.below(procs as u64) as NodeId,
                        at: rng.range(1, steps as u64 * 4),
                    });
                }
                1 => {
                    let l = links[rng.below(links.len() as u64) as usize];
                    let from = rng.range(0, 30);
                    faults.push(FaultSpec::LinkDown {
                        a: l.a,
                        b: l.b,
                        from,
                        until: from + rng.range(1, 40),
                    });
                }
                _ => {
                    let l = links[rng.below(links.len() as u64) as usize];
                    let from = rng.range(0, 30);
                    faults.push(FaultSpec::Spike {
                        a: l.a,
                        b: l.b,
                        from,
                        until: from + rng.range(1, 40),
                        factor: rng.range(2, 8) as u32,
                    });
                }
            }
        }
    }

    ScenarioSpec {
        guest,
        program: ProgramKind::arbitrary(rng.next()),
        steps,
        guest_seed: rng.below(1 << 20),
        host,
        delays: DelayModel::arbitrary(rng.next()),
        host_seed: rng.below(1 << 20),
        assign,
        costs,
        multicast,
        mem,
        faults,
    }
}

/// The DAG-focused scenario stream (`overlap-cli fuzz --dag`, the CI
/// smoke profile): every scenario runs a task-graph guest, and half the
/// budget-free draws gain a memory budget. Scenarios whose mixed-stream
/// draw already picked a DAG kind pass through unchanged, so the stream
/// stays replayable by `(seed, case)` exactly like [`gen_spec`].
pub fn gen_spec_dag(seed: u64, case: u64) -> ScenarioSpec {
    let mut spec = gen_spec(seed, case);
    let mut rng = Rng::new(seed ^ case.wrapping_mul(0xa0761d6478bd642f));
    spec.guest = match spec.guest {
        g @ (GuestKind::DagRandom { .. } | GuestKind::Wavefront(_) | GuestKind::ForkJoin(_)) => g,
        g => match rng.below(3) {
            0 => GuestKind::DagRandom {
                dbs: g.num_cells().max(2),
                extra: rng.range(0, 2) as u32,
                max_cost: rng.range(1, 3) as u32,
                seed: rng.next(),
            },
            1 => GuestKind::Wavefront(g.num_cells().max(2)),
            _ => GuestKind::ForkJoin(rng.range(2, 4) as u32),
        },
    };
    if spec.mem.is_none() && rng.chance(1, 2) {
        spec.mem = Some(MemBudget {
            budget: rng.range(1, 4) as u32,
            reload_cost: rng.range(1, 6) as u32,
        });
    }
    spec
}

// ---------------------------------------------------------------------------
// checking
// ---------------------------------------------------------------------------

fn finite(label: &str, x: f64, problems: &mut Vec<String>) {
    if !x.is_finite() {
        problems.push(format!("{label} is not finite: {x}"));
    }
}

/// Invariants every engine's outcome must satisfy on its own.
fn audit_outcome(
    label: &str,
    spec: &ScenarioSpec,
    guest: &GuestSpec,
    assign: &Assignment,
    out: &RunOutcome,
    problems: &mut Vec<String>,
) {
    let s = &out.stats;
    if s.guest_work != guest.total_work() {
        problems.push(format!(
            "{label}: guest_work {} != cells × steps {}",
            s.guest_work,
            guest.total_work()
        ));
    }
    // Crashed copies may have computed pebbles before dying, so the bound
    // is the assignment's full copy set, not just the survivors. Steps
    // come from the built guest: DAG kinds may fix their own layer count.
    let steps = guest.steps;
    if s.total_compute > assign.total_copies() as u64 * steps as u64 {
        problems.push(format!(
            "{label}: total_compute {} exceeds total copies × steps {}",
            s.total_compute,
            assign.total_copies() as u64 * steps as u64
        ));
    }
    // The surviving set is a function of the fault plan alone: no copy of
    // a crashed processor may appear, and every planned crash of a
    // distinct live processor counts exactly once.
    let crashed: std::collections::BTreeSet<NodeId> = spec
        .faults
        .iter()
        .filter_map(|f| match f {
            FaultSpec::Crash { proc, .. } => Some(*proc),
            _ => None,
        })
        .collect();
    if let Some(c) = out.copies.iter().find(|c| crashed.contains(&c.proc)) {
        problems.push(format!(
            "{label}: copy (cell {}, proc {}) survived a planned crash",
            c.cell, c.proc
        ));
    }
    if s.faults.crashed_procs as usize != crashed.len() {
        problems.push(format!(
            "{label}: crashed_procs {} != {} planned crash victims",
            s.faults.crashed_procs,
            crashed.len()
        ));
    }
    if spec.faults.is_empty() {
        if s.total_compute != out.copies.len() as u64 * steps as u64 {
            problems.push(format!(
                "{label}: fault-free total_compute {} != copies × steps {}",
                s.total_compute,
                out.copies.len() as u64 * steps as u64
            ));
        }
        if s.faults != FaultStats::default() {
            problems.push(format!(
                "{label}: fault-free run reports fault work: {:?}",
                s.faults
            ));
        }
    }
    if steps == 0 && s.makespan != 0 {
        problems.push(format!(
            "{label}: zero-step run has makespan {}",
            s.makespan
        ));
    }
    // Memory-budget accounting: no budget ⇒ no churn; with one, every
    // eviction is matched by a reload priced at exactly `reload_cost`.
    match spec.mem {
        None => {
            if s.mem != crate::stats::MemStats::default() {
                problems.push(format!(
                    "{label}: budget-free run reports memory churn: {:?}",
                    s.mem
                ));
            }
        }
        Some(m) => {
            if s.mem.evictions != s.mem.reloads {
                problems.push(format!(
                    "{label}: evictions {} != reloads {}",
                    s.mem.evictions, s.mem.reloads
                ));
            }
            if s.mem.reload_ticks != s.mem.reloads * m.reload_cost as u64 {
                problems.push(format!(
                    "{label}: reload_ticks {} != reloads {} × cost {}",
                    s.mem.reload_ticks, s.mem.reloads, m.reload_cost
                ));
            }
        }
    }
    finite(&format!("{label}: slowdown"), s.slowdown, problems);
    finite(&format!("{label}: efficiency"), s.efficiency(), problems);
    finite(
        &format!("{label}: work_overhead"),
        s.work_overhead(),
        problems,
    );
    finite(
        &format!("{label}: mean_link_pebbles"),
        s.mean_link_pebbles,
        problems,
    );
    finite(&format!("{label}: redundancy"), s.redundancy, problems);
}

/// Copy-state agreement between two engines' outcomes (completion times
/// legitimately differ; folds and digests must not).
fn audit_same_state(label: &str, a: &RunOutcome, b: &RunOutcome, problems: &mut Vec<String>) {
    let mut xs = a.copies.clone();
    let mut ys = b.copies.clone();
    xs.sort_by_key(|c| (c.cell, c.proc));
    ys.sort_by_key(|c| (c.cell, c.proc));
    if xs.len() != ys.len() {
        problems.push(format!("{label}: copy count {} vs {}", xs.len(), ys.len()));
        return;
    }
    for (x, y) in xs.iter().zip(&ys) {
        if (x.cell, x.proc) != (y.cell, y.proc) {
            problems.push(format!(
                "{label}: copy sets differ ({},{}) vs ({},{})",
                x.cell, x.proc, y.cell, y.proc
            ));
            return;
        }
        if (x.value_fold, x.db_digest, x.update_fold) != (y.value_fold, y.db_digest, y.update_fold)
        {
            problems.push(format!(
                "{label}: state of copy (cell {}, proc {}) differs: \
                 ({:#x},{:#x},{:#x}) vs ({:#x},{:#x},{:#x})",
                x.cell,
                x.proc,
                x.value_fold,
                x.db_digest,
                x.update_fold,
                y.value_fold,
                y.db_digest,
                y.update_fold
            ));
            return;
        }
    }
}

/// Lower the scenario once and drive every engine it is legal for through
/// the shared plan, auditing the full invariant catalogue. `Ok(())` means
/// no divergence; `Err` carries a human-readable list of everything that
/// broke.
pub fn check_spec(spec: &ScenarioSpec) -> Result<(), String> {
    let guest = spec.build_guest();
    let host = spec.build_host();
    let assign = spec.build_assignment();
    let config = EngineConfig {
        multicast: spec.multicast,
        record_timing: true,
        mem: spec.mem,
        ..EngineConfig::default()
    };

    // One lowering feeds everything below.
    let mut plan = match ExecPlan::build(&guest, &host, &assign, config) {
        Ok(p) => p,
        Err(e) => return Err(format!("plan lowering failed: {e}")),
    };
    if let Some(costs) = &spec.costs {
        plan = plan.with_compute_costs(costs.clone());
    }
    if !spec.faults.is_empty() {
        plan = match plan.with_faults(spec.build_faults()) {
            Ok(p) => p,
            Err(e) => return Err(format!("fault plan rejected: {e}")),
        };
    }
    check_plan(spec, &plan)
}

/// Drive every engine an already-lowered plan is legal for, auditing the
/// full invariant catalogue — the body of [`check_spec`], factored out so
/// the shrinker can re-check fault- and cost-only candidates through
/// [`ExecPlan::apply_delta`] on a shared plan instead of re-lowering per
/// candidate. `spec` must describe the plan (it is consulted for audit
/// expectations and engine legality).
pub fn check_plan(spec: &ScenarioSpec, plan: &ExecPlan) -> Result<(), String> {
    let guest = plan.guest();
    let assign = plan.assignment();
    let mut problems: Vec<String> = Vec::new();

    let reference = par_reference(guest);

    // Event engine: the ground truth the others are compared against.
    let ev = match Engine::from_plan(plan).run() {
        Ok(out) => out,
        Err(e) => return Err(format!("event engine failed: {e}")),
    };
    for err in validate_run(&reference, &ev) {
        problems.push(format!("event vs reference: {err:?}"));
    }
    audit_outcome("event", spec, guest, assign, &ev, &mut problems);
    for p in audit_causality(&ev) {
        problems.push(format!("event causality: {p}"));
    }

    // Plan reuse: a second run off the same plan is bit-identical.
    match Engine::from_plan(plan).run() {
        Ok(again) if again != ev => {
            problems.push("rerun from the same plan diverged (plan reuse broken)".into());
        }
        Ok(_) => {}
        Err(e) => problems.push(format!("rerun from the same plan failed: {e}")),
    }

    // Traced run: identical modulo the stall report, which must conserve
    // every tick of every surviving copy. The tracer's conservation law
    // assumes uniform per-processor pebble costs, so memory budgets and
    // non-uniform task graphs are out of scope (rejected at build()).
    let traceable = spec.mem.is_none() && guest.is_static() && !guest.has_nonunit_task_costs();
    if traceable {
        match Engine::from_plan(plan).run_traced(TraceConfig::default()) {
            Ok(traced) => {
                let report = traced.trace.clone().expect("tracing was enabled");
                if report.totals.total() != traced.stats.makespan * traced.copies.len() as u64 {
                    problems.push(format!(
                        "stall conservation broken: totals {} != makespan {} × copies {}",
                        report.totals.total(),
                        traced.stats.makespan,
                        traced.copies.len()
                    ));
                }
                for (i, b) in report.per_copy.iter().enumerate() {
                    if b.total() != traced.stats.makespan {
                        problems.push(format!(
                            "copy {i} stall breakdown leaks ticks: {} != makespan {}",
                            b.total(),
                            traced.stats.makespan
                        ));
                        break;
                    }
                }
                let mut stripped = traced;
                stripped.trace = None;
                stripped.stats.stalls = None;
                if stripped != ev {
                    problems.push("traced run differs from untraced run".into());
                }
            }
            Err(e) => problems.push(format!("traced event run failed: {e}")),
        }
    }

    // Sharded engine: legal for every scenario; must be bit-identical to
    // the event engine on the full RunOutcome, peak_queue_depth included.
    for (threads, how) in [
        (1, Partition::DelayCut),
        (3, Partition::DelayCut),
        (3, Partition::RoundRobin),
    ] {
        match run_sharded_with(plan, threads, how) {
            Ok(sh) => {
                if sh != ev {
                    problems.push(format!(
                        "sharded({threads}, {how:?}) diverged from the event engine"
                    ));
                }
            }
            Err(e) => problems.push(format!(
                "sharded({threads}, {how:?}) failed where the event engine succeeded: {e}"
            )),
        }
    }

    // Stepped engine: legal whenever the plan is unicast and jitter-free.
    if !spec.multicast {
        match run_stepped(plan) {
            Ok(st) => {
                for err in validate_run(&reference, &st) {
                    problems.push(format!("stepped vs reference: {err:?}"));
                }
                audit_outcome("stepped", spec, guest, assign, &st, &mut problems);
                audit_same_state("event vs stepped", &ev, &st, &mut problems);
                if spec.faults.is_empty() && ev.stats.messages != st.stats.messages {
                    problems.push(format!(
                        "messages differ: event {} vs stepped {}",
                        ev.stats.messages, st.stats.messages
                    ));
                }
            }
            Err(e) => problems.push(format!("stepped engine failed: {e}")),
        }
    }

    // Lockstep: legal without faults, costs, multicast, memory budgets,
    // and non-unit task costs (its closed-form makespan assumes unit-cost
    // pebbles on always-resident copies).
    if !spec.multicast
        && spec.faults.is_empty()
        && spec.costs.is_none()
        && spec.mem.is_none()
        && !guest.has_nonunit_task_costs()
    {
        match run_lockstep(plan) {
            Ok(lk) => {
                for err in validate_run(&reference, &lk) {
                    problems.push(format!("lockstep vs reference: {err:?}"));
                }
                audit_same_state("event vs lockstep", &ev, &lk, &mut problems);
                if ev.stats.makespan > lk.stats.makespan {
                    problems.push(format!(
                        "greedy event makespan {} lost to lockstep bound {}",
                        ev.stats.makespan, lk.stats.makespan
                    ));
                }
            }
            Err(e) => problems.push(format!("lockstep engine failed: {e}")),
        }
    }

    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n  "))
    }
}

// ---------------------------------------------------------------------------
// shrinking
// ---------------------------------------------------------------------------

/// Candidate one-step simplifications of `spec`, most aggressive first.
/// Each candidate is self-consistent: mutations that could invalidate
/// faults (smaller host, non-redundant assignment) drop the faults too.
fn candidates(spec: &ScenarioSpec) -> Vec<ScenarioSpec> {
    let mut out = Vec::new();
    let mut push = |s: ScenarioSpec| {
        if s != *spec {
            out.push(s);
        }
    };

    if !spec.faults.is_empty() {
        push(ScenarioSpec {
            faults: vec![],
            ..spec.clone()
        });
        for i in 0..spec.faults.len() {
            let mut s = spec.clone();
            s.faults.remove(i);
            push(s);
        }
    }
    if spec.multicast {
        push(ScenarioSpec {
            multicast: false,
            ..spec.clone()
        });
    }
    if spec.costs.is_some() {
        push(ScenarioSpec {
            costs: None,
            ..spec.clone()
        });
    }
    if spec.mem.is_some() {
        push(ScenarioSpec {
            mem: None,
            ..spec.clone()
        });
    }
    if spec.delays != DelayModel::Constant(1) {
        // Flattening delays keeps links valid, so faults can stay.
        push(ScenarioSpec {
            delays: DelayModel::Constant(1),
            ..spec.clone()
        });
    }
    if spec.steps > 1 {
        push(ScenarioSpec {
            steps: spec.steps / 2,
            ..spec.clone()
        });
        push(ScenarioSpec {
            steps: 1,
            ..spec.clone()
        });
    }
    // Smaller guest: halve the leading dimension.
    let smaller_guest = match spec.guest {
        GuestKind::Line(m) if m > 2 => Some(GuestKind::Line((m / 2).max(2))),
        GuestKind::Ring(m) if m > 3 => Some(GuestKind::Ring((m / 2).max(3))),
        GuestKind::Mesh(w, h) if w * h > 4 => Some(GuestKind::Mesh((w / 2).max(2), h.min(2))),
        GuestKind::Tree(l) if l > 2 => Some(GuestKind::Tree(l - 1)),
        GuestKind::DagRandom {
            dbs,
            extra,
            max_cost,
            seed,
        } if dbs > 2 => Some(GuestKind::DagRandom {
            dbs: (dbs / 2).max(2),
            extra,
            max_cost,
            seed,
        }),
        GuestKind::Wavefront(l) if l > 2 => Some(GuestKind::Wavefront((l / 2).max(2))),
        GuestKind::ForkJoin(l) if l > 2 => Some(GuestKind::ForkJoin(l - 1)),
        _ => None,
    };
    if let Some(g) = smaller_guest {
        push(ScenarioSpec {
            guest: g,
            ..spec.clone()
        });
    }
    // Simpler DAG shape: drop the cross-lane edges, then the costs — each
    // alone can already flip the graph back to the uniform fast path.
    if let GuestKind::DagRandom {
        dbs,
        extra,
        max_cost,
        seed,
    } = spec.guest
    {
        if extra > 0 {
            push(ScenarioSpec {
                guest: GuestKind::DagRandom {
                    dbs,
                    extra: 0,
                    max_cost,
                    seed,
                },
                ..spec.clone()
            });
        }
        if max_cost > 1 {
            push(ScenarioSpec {
                guest: GuestKind::DagRandom {
                    dbs,
                    extra,
                    max_cost: 1,
                    seed,
                },
                ..spec.clone()
            });
        }
    }
    if spec.guest != GuestKind::Line(4) {
        push(ScenarioSpec {
            guest: GuestKind::Line(4),
            ..spec.clone()
        });
    }
    // Smaller host: link faults may name vanished links, so drop faults.
    let smaller_host = match spec.host {
        HostKind::Line(n) if n > 2 => Some(HostKind::Line((n / 2).max(2))),
        HostKind::Ring(n) if n > 3 => Some(HostKind::Ring((n / 2).max(3))),
        HostKind::Mesh(..) | HostKind::Tree(..) => Some(HostKind::Line(2)),
        _ => None,
    };
    if let Some(h) = smaller_host {
        push(ScenarioSpec {
            host: h,
            faults: vec![],
            ..spec.clone()
        });
    }
    if spec.assign != AssignKind::Blocked {
        // Blocked is single-copy: crashes would legitimately lose columns.
        push(ScenarioSpec {
            assign: AssignKind::Blocked,
            faults: spec
                .faults
                .iter()
                .copied()
                .filter(|f| !matches!(f, FaultSpec::Crash { .. }))
                .collect(),
            ..spec.clone()
        });
    }
    out
}

/// If `cand` differs from `cur` **only** in its fault list or **only**
/// in its compute costs, the [`PlanDelta`] that turns `cur`'s lowered
/// plan into `cand`'s — such candidates share `cur`'s lowering.
fn fault_or_cost_delta(cur: &ScenarioSpec, cand: &ScenarioSpec) -> Option<PlanDelta> {
    let same_but_faults = ScenarioSpec {
        faults: cur.faults.clone(),
        ..cand.clone()
    } == *cur;
    if same_but_faults {
        return Some(PlanDelta::Faults(if cand.faults.is_empty() {
            None
        } else {
            Some(cand.build_faults())
        }));
    }
    let same_but_costs = ScenarioSpec {
        costs: cur.costs.clone(),
        ..cand.clone()
    } == *cur;
    if same_but_costs {
        return Some(PlanDelta::ComputeCosts(cand.costs.clone()));
    }
    None
}

/// Greedily shrink a failing spec: repeatedly adopt the first candidate
/// simplification that still fails, until none does. The result is the
/// minimal failing scenario this strategy can reach, together with its
/// failure detail.
///
/// Candidates that differ from the current spec only in faults or only
/// in compute costs are checked through [`ExecPlan::apply_delta`] on a
/// plan lowered once per round (the delta's inverse restores it), so the
/// most common shrink steps — dropping fault entries, clearing costs —
/// never re-lower. Everything else goes through [`check_spec`].
pub fn shrink(spec: &ScenarioSpec) -> (ScenarioSpec, String) {
    let mut cur = spec.clone();
    let mut detail = match check_spec(&cur) {
        Err(d) => d,
        Ok(()) => return (cur, String::new()),
    };
    // The candidate set is finite and strictly simplifying, so this
    // terminates; the iteration cap is a pure backstop.
    for _ in 0..200 {
        let mut improved = false;
        // One lowering per round serves every fault/cost-only candidate.
        let guest = cur.build_guest();
        let host = cur.build_host();
        let assign = cur.build_assignment();
        let config = EngineConfig {
            multicast: cur.multicast,
            record_timing: true,
            mem: cur.mem,
            ..EngineConfig::default()
        };
        let mut base = ExecPlan::build(&guest, &host, &assign, config)
            .ok()
            .map(|p| match &cur.costs {
                Some(c) => p.with_compute_costs(c.clone()),
                None => p,
            })
            .and_then(|p| {
                if cur.faults.is_empty() {
                    Some(p)
                } else {
                    p.with_faults(cur.build_faults()).ok()
                }
            });
        for cand in candidates(&cur) {
            let res = match (&mut base, fault_or_cost_delta(&cur, &cand)) {
                (Some(plan), Some(delta)) => match plan.apply_delta(delta) {
                    Ok(receipt) => {
                        let r = check_plan(&cand, plan);
                        plan.apply_delta(receipt.inverse)
                            .expect("inverse delta must apply");
                        r
                    }
                    Err(_) => check_spec(&cand),
                },
                _ => check_spec(&cand),
            };
            if let Err(d) = res {
                cur = cand;
                detail = d;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    (cur, detail)
}

// ---------------------------------------------------------------------------
// driver
// ---------------------------------------------------------------------------

/// One confirmed cross-engine divergence, already shrunk.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The case number (replay with `gen_spec(seed, case)`).
    pub case: u64,
    /// The minimal failing scenario.
    pub spec: ScenarioSpec,
    /// What broke, one problem per line.
    pub detail: String,
}

impl Divergence {
    /// Render a paste-able regression test pinning this divergence.
    pub fn repro_test(&self, name: &str) -> String {
        format!(
            "#[test]\nfn {name}() {{\n    let spec = {};\n    \
             overlap::sim::fuzz::check_spec(&spec).expect(\"engines must agree\");\n}}\n",
            self.spec.to_code()
        )
    }
}

/// Fuzzing-run parameters.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// PRNG seed; the same seed replays the same scenario stream.
    pub seed: u64,
    /// Number of scenarios to generate and check.
    pub cases: u64,
}

/// What a fuzzing run found.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Scenarios checked.
    pub cases: u64,
    /// Confirmed, shrunk divergences (empty on a clean run).
    pub divergences: Vec<Divergence>,
}

/// Generate and check `cfg.cases` scenarios; shrink every failure. Purely
/// deterministic in `cfg.seed`.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut divergences = Vec::new();
    for case in 0..cfg.cases {
        let spec = gen_spec(cfg.seed, case);
        if check_spec(&spec).is_err() {
            let (min, detail) = shrink(&spec);
            divergences.push(Divergence {
                case,
                spec: min,
                detail,
            });
        }
    }
    FuzzReport {
        cases: cfg.cases,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for case in 0..50 {
            assert_eq!(gen_spec(7, case), gen_spec(7, case));
        }
        assert_ne!(gen_spec(7, 0), gen_spec(8, 0));
    }

    #[test]
    fn generated_scenarios_materialize() {
        for case in 0..100 {
            let spec = gen_spec(1, case);
            let guest = spec.build_guest();
            let host = spec.build_host();
            let assign = spec.build_assignment();
            assert!(guest.num_cells() >= 2);
            assert!(host.num_nodes() >= 2);
            assert!(assign.uncovered_cells().is_empty(), "case {case}");
            spec.build_faults()
                .validate(&host)
                .unwrap_or_else(|e| panic!("case {case}: generated bad faults: {e}"));
        }
    }

    #[test]
    fn smoke_fuzz_is_clean() {
        let report = run_fuzz(&FuzzConfig { seed: 0, cases: 40 });
        assert_eq!(report.cases, 40);
        for d in &report.divergences {
            eprintln!(
                "case {}:\n  {}\n{}",
                d.case,
                d.detail,
                d.repro_test("repro")
            );
        }
        assert!(report.divergences.is_empty());
    }

    #[test]
    fn spec_to_code_is_paste_able() {
        let code = gen_spec(3, 17).to_code();
        assert!(code.contains("ScenarioSpec {"));
        assert!(code.contains("guest:"));
        assert!(code.contains("delays:"));
    }

    #[test]
    fn shrinker_reaches_a_fixpoint_on_a_forced_failure() {
        // A spec whose fault names a missing link fails check_spec at
        // with_faults; the shrinker must strictly simplify it while the
        // failure persists (dropping the fault makes it pass, so the
        // minimal repro keeps exactly one fault).
        let spec = ScenarioSpec {
            guest: GuestKind::Line(8),
            program: ProgramKind::KvWorkload,
            steps: 6,
            guest_seed: 1,
            host: HostKind::Line(4),
            delays: DelayModel::Uniform { lo: 1, hi: 9 },
            host_seed: 2,
            assign: AssignKind::Blocked,
            costs: Some(vec![1, 2, 1, 2]),
            multicast: false,
            mem: None,
            faults: vec![FaultSpec::LinkDown {
                a: 0,
                b: 3,
                from: 0,
                until: 10,
            }],
        };
        assert!(check_spec(&spec).is_err());
        let (min, detail) = shrink(&spec);
        assert!(!detail.is_empty());
        assert!(check_spec(&min).is_err());
        assert_eq!(min.faults.len(), 1, "the fault is the failure");
        assert!(min.costs.is_none(), "costs must shrink away");
        assert_eq!(min.steps, 1, "steps must shrink away");
    }
}
