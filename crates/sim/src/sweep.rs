//! Rayon-parallel parameter-sweep driver.
//!
//! Every experiment in the paper reproduction is a sweep over hosts,
//! guests, and assignment strategies — hundreds of independent simulator
//! runs. This driver fans them out across cores; each run is fully
//! deterministic, so the parallel sweep's results are identical to a
//! sequential one.

use crate::assignment::Assignment;
use crate::engine::{Engine, EngineConfig, RunError, RunOutcome};
use crate::plan::{ExecPlan, PlanDelta};
use crate::validate::{validate_run, ValidationError};
use overlap_model::{GuestSpec, ReferenceTrace};
use overlap_net::HostGraph;
use rayon::prelude::*;

/// A run plus its validation result.
#[derive(Debug, Clone)]
pub struct ValidatedRun {
    /// The simulator outcome.
    pub outcome: RunOutcome,
    /// Validation mismatches (empty = fully validated).
    pub errors: Vec<ValidationError>,
}

impl ValidatedRun {
    /// True when the run reproduced the reference exactly.
    pub fn is_valid(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Run one simulation and validate it against a precomputed reference.
///
/// Lowers a fresh [`ExecPlan`] per call. Sweeps that repeat the same
/// `(guest, host, assign, config)` point — across repeats, engines, or
/// fault variants — should build the plan once and call
/// [`run_plan_and_validate`] instead.
pub fn run_and_validate(
    guest: &GuestSpec,
    host: &HostGraph,
    assign: &Assignment,
    config: EngineConfig,
    trace: &ReferenceTrace,
) -> Result<ValidatedRun, RunError> {
    let plan = ExecPlan::build(guest, host, assign, config)?;
    run_plan_and_validate(&plan, trace)
}

/// Run one simulation from an already-lowered plan and validate it
/// against a precomputed reference. The plan is shared, so a sweep pays
/// the lowering cost once per `(host, strategy)` point rather than once
/// per run.
pub fn run_plan_and_validate(
    plan: &ExecPlan,
    trace: &ReferenceTrace,
) -> Result<ValidatedRun, RunError> {
    let outcome = Engine::from_plan(plan).run()?;
    let errors = validate_run(trace, &outcome);
    Ok(ValidatedRun { outcome, errors })
}

/// Sweep a neighbourhood of plans by incremental deltas, validating each
/// point, without re-lowering per point.
///
/// Each delta is applied relative to the **base** plan (the receipt's
/// inverse undoes it before the next point), so the points are
/// independent variations, exactly as if each had been lowered fresh —
/// [`ExecPlan::apply_delta`] guarantees bit-identical outcomes. This is
/// the cheap form of the delay/fault/cost sweeps the experiments run:
/// fault-plan and compute-cost points never re-lower, and single-link
/// delay points re-lower only when the routes could actually move.
///
/// The plan is returned to its base state even when a point's run fails.
pub fn sweep_plan_deltas(
    plan: &mut ExecPlan,
    deltas: &[PlanDelta],
    trace: &ReferenceTrace,
) -> Result<Vec<ValidatedRun>, RunError> {
    let mut out = Vec::with_capacity(deltas.len());
    for d in deltas {
        let receipt = plan.apply_delta(d.clone())?;
        let run = run_plan_and_validate(plan, trace);
        plan.apply_delta(receipt.inverse)?;
        out.push(run?);
    }
    Ok(out)
}

/// Map `f` over `items` in parallel, preserving order.
pub fn par_map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Send + Sync,
{
    items.par_iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlap_model::{ProgramKind, ReferenceRun};
    use overlap_net::topology::linear_array;
    use overlap_net::DelayModel;

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<u64> = (0..100).collect();
        let ys = par_map(&xs, |&x| x * x);
        assert_eq!(ys, xs.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_sweep_matches_sequential_runs() {
        let guest = GuestSpec::array(8, ProgramKind::Relaxation, 1, 6);
        let trace = ReferenceRun::execute(&guest);
        let delays = [1u64, 4, 16];
        let results = par_map(&delays, |&d| {
            let host = linear_array(4, DelayModel::constant(d), 0);
            let assign = Assignment::blocked(4, 8);
            run_and_validate(&guest, &host, &assign, EngineConfig::default(), &trace).expect("run")
        });
        assert!(results.iter().all(|r| r.is_valid()));
        // Higher delays cannot reduce the makespan.
        let spans: Vec<u64> = results.iter().map(|r| r.outcome.stats.makespan).collect();
        assert!(spans[0] <= spans[1] && spans[1] <= spans[2], "{spans:?}");
    }

    #[test]
    fn delta_sweep_matches_fresh_lowerings() {
        use crate::faults::FaultPlan;
        let guest = GuestSpec::array(10, ProgramKind::KvWorkload, 5, 8);
        let trace = ReferenceRun::execute(&guest);
        let host = linear_array(5, DelayModel::constant(3), 0);
        let assign = Assignment::blocked(5, 10);
        let mut plan = ExecPlan::build(&guest, &host, &assign, EngineConfig::default()).unwrap();
        let deltas = vec![
            PlanDelta::LinkDelay {
                a: 2,
                b: 3,
                delay: 9,
            },
            PlanDelta::LinkDelay {
                a: 0,
                b: 1,
                delay: 1,
            },
            PlanDelta::ComputeCosts(Some(vec![1, 2, 1, 1, 3])),
            PlanDelta::Faults(Some(FaultPlan::new().link_down(1, 2, 4, 10))),
        ];
        let swept = sweep_plan_deltas(&mut plan, &deltas, &trace).unwrap();
        assert_eq!(swept.len(), deltas.len());
        // Every point must be bit-identical to a from-scratch lowering.
        for (d, got) in deltas.iter().zip(&swept) {
            assert!(got.is_valid());
            let mut h2 = host.clone();
            if let PlanDelta::LinkDelay { a, b, delay } = d {
                h2.set_link_delay(*a, *b, *delay);
            }
            let fresh = ExecPlan::build(&guest, &h2, &assign, EngineConfig::default()).unwrap();
            let fresh = match d {
                PlanDelta::ComputeCosts(Some(c)) => fresh.with_compute_costs(c.clone()),
                PlanDelta::Faults(Some(f)) => fresh.with_faults(f.clone()).unwrap(),
                _ => fresh,
            };
            let want = run_plan_and_validate(&fresh, &trace).unwrap();
            assert_eq!(got.outcome, want.outcome, "delta {d:?}");
        }
        // And the base plan is restored: rerunning matches a clean build.
        let base = ExecPlan::build(&guest, &host, &assign, EngineConfig::default()).unwrap();
        assert_eq!(plan.run().unwrap(), base.run().unwrap());
    }

    #[test]
    fn shared_plan_sweep_matches_fresh_lowering() {
        let guest = GuestSpec::array(8, ProgramKind::KvWorkload, 3, 6);
        let trace = ReferenceRun::execute(&guest);
        let host = linear_array(4, DelayModel::uniform(1, 7), 1);
        let assign = Assignment::blocked(4, 8);
        let plan = ExecPlan::build(&guest, &host, &assign, EngineConfig::default()).unwrap();
        // Repeats share the plan; each must be bit-identical to a fresh
        // per-run lowering.
        let repeats = [0u32; 3];
        let shared = par_map(&repeats, |_| {
            run_plan_and_validate(&plan, &trace).expect("run")
        });
        let fresh =
            run_and_validate(&guest, &host, &assign, EngineConfig::default(), &trace).unwrap();
        for r in &shared {
            assert!(r.is_valid());
            assert_eq!(r.outcome.stats, fresh.outcome.stats);
            assert_eq!(r.outcome.copies, fresh.outcome.copies);
        }
    }
}
