//! Multicast column distribution.
//!
//! The default engine unicasts every pebble separately to each subscriber,
//! so a column with `k` consumers crosses shared route prefixes `k` times.
//! The paper's interval scheme effectively *multicasts*: boundary columns
//! travel each link once. This module builds, per `(source, column)`, the
//! shortest-path tree from the source to all its subscribers; a pebble
//! then crosses every tree link exactly once, duplicating only at branch
//! points. The E12d ablation measures the traffic difference.

use crate::assignment::Assignment;
use crate::routing::RoutingTable;
use overlap_model::GuestTopology;
use overlap_net::paths::dijkstra;
use overlap_net::{HostGraph, NodeId};
use std::collections::HashMap;

/// One multicast tree: all subscribers of `cell` served by `source`.
#[derive(Debug, Clone)]
pub struct MulticastTree {
    /// The column being distributed.
    pub cell: u32,
    /// The root (a holder of `cell`).
    pub source: NodeId,
    /// Children of each tree node (`children[i]` pairs with `nodes[i]`).
    pub nodes: Vec<NodeId>,
    /// Per node (indexed as in `nodes`): child node indices.
    pub children: Vec<Vec<u32>>,
    /// Per node: parent node index (`u32::MAX` for the root).
    pub parent: Vec<u32>,
    /// Node index of `source` (the tree root).
    pub root: u32,
    /// Per node: is it a delivery destination?
    pub deliver: Vec<bool>,
    /// Node index lookup.
    pub index_of: HashMap<NodeId, u32>,
}

/// All multicast trees plus the per-destination inbound map (compatible
/// with the unicast [`RoutingTable`]'s).
#[derive(Debug, Clone, Default)]
pub struct MulticastTable {
    /// The trees.
    pub trees: Vec<MulticastTree>,
    /// For each source processor: tree ids rooted there.
    pub outbound: Vec<Vec<u32>>,
    /// For each source processor, `outbound` grouped by column: sorted
    /// `(cell, tree ids)` pairs (see [`RoutingTable::outbound_by_cell`]).
    pub outbound_by_cell: Vec<Vec<(u32, Vec<u32>)>>,
    /// For each processor: `(cell, tree_id)` pairs it receives.
    pub inbound: Vec<Vec<(u32, u32)>>,
}

impl MulticastTable {
    /// Build multicast trees from the unicast routing table: subscriptions
    /// of the same `(source, cell)` are merged into one shortest-path tree
    /// (recomputed from the source, so shared prefixes are genuinely
    /// shared).
    pub fn build(host: &HostGraph, topo: &GuestTopology, assign: &Assignment) -> Self {
        Self::build_with(host, assign, |c| topo.neighbours(c))
    }

    /// Multicast analogue of [`RoutingTable::build_with`]: the dependency
    /// sets come from an arbitrary per-cell closure (the per-layer union
    /// for task-graph guests).
    pub fn build_with(
        host: &HostGraph,
        assign: &Assignment,
        dep_cells_of: impl Fn(u32) -> Vec<u32>,
    ) -> Self {
        let unicast = RoutingTable::build_with(host, assign, dep_cells_of);
        let n = host.num_nodes();
        // Group subscribers by (source, cell).
        let mut groups: HashMap<(NodeId, u32), Vec<NodeId>> = HashMap::new();
        for sub in &unicast.subs {
            groups
                .entry((sub.source, sub.cell))
                .or_default()
                .push(sub.dest);
        }
        let mut keys: Vec<(NodeId, u32)> = groups.keys().copied().collect();
        keys.sort_unstable();

        let mut trees = Vec::with_capacity(keys.len());
        let mut outbound = vec![Vec::new(); n as usize];
        let mut inbound = vec![Vec::new(); n as usize];
        // Cache Dijkstra per source.
        let mut sp_cache: HashMap<NodeId, overlap_net::paths::PathResult> = HashMap::new();
        for (source, cell) in keys {
            let dests = &groups[&(source, cell)];
            let sp = sp_cache
                .entry(source)
                .or_insert_with(|| dijkstra(host, source));
            // Union of shortest paths source → dest forms a tree (each node
            // keeps its unique Dijkstra parent).
            let mut index_of: HashMap<NodeId, u32> = HashMap::new();
            let mut nodes: Vec<NodeId> = Vec::new();
            let mut parent_of: HashMap<NodeId, NodeId> = HashMap::new();
            let add_node =
                |v: NodeId, nodes: &mut Vec<NodeId>, index_of: &mut HashMap<NodeId, u32>| {
                    if let Some(&i) = index_of.get(&v) {
                        i
                    } else {
                        let i = nodes.len() as u32;
                        nodes.push(v);
                        index_of.insert(v, i);
                        i
                    }
                };
            add_node(source, &mut nodes, &mut index_of);
            for &d in dests {
                let path = sp.path_to(d).expect("subscriber reachable");
                for w in path.windows(2) {
                    add_node(w[0], &mut nodes, &mut index_of);
                    add_node(w[1], &mut nodes, &mut index_of);
                    parent_of.entry(w[1]).or_insert(w[0]);
                }
            }
            let mut children: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
            let mut parent: Vec<u32> = vec![u32::MAX; nodes.len()];
            for (&ch, &pa) in &parent_of {
                children[index_of[&pa] as usize].push(index_of[&ch]);
                parent[index_of[&ch] as usize] = index_of[&pa];
            }
            for ch in &mut children {
                ch.sort_unstable();
            }
            let root = index_of[&source];
            let deliver: Vec<bool> = nodes.iter().map(|v| dests.contains(v)).collect();
            let tid = trees.len() as u32;
            for &d in dests {
                inbound[d as usize].push((cell, tid));
            }
            outbound[source as usize].push(tid);
            trees.push(MulticastTree {
                cell,
                source,
                nodes,
                children,
                parent,
                root,
                deliver,
                index_of,
            });
        }
        for inb in &mut inbound {
            inb.sort_unstable();
        }
        let outbound_by_cell =
            crate::routing::group_by_cell(&outbound, |tid| trees[tid as usize].cell);
        Self {
            trees,
            outbound,
            outbound_by_cell,
            inbound,
        }
    }

    /// Total tree links (the per-pebble traffic; always ≤ the unicast
    /// pebble-hops for the same assignment).
    pub fn total_tree_links(&self) -> usize {
        self.trees.iter().map(|t| t.nodes.len() - 1).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlap_net::topology::linear_array;
    use overlap_net::DelayModel;

    #[test]
    fn shared_prefixes_are_merged() {
        // Column 0 held at proc 0; consumers at procs 2 and 3 on a line:
        // unicast crosses link 0-1 and 1-2 twice; the tree crosses each
        // link once (4 hops vs 5).
        let host = linear_array(4, DelayModel::constant(1), 0);
        let topo = GuestTopology::Line { m: 4 };
        let assign = Assignment::from_cells_of(4, 4, vec![vec![0], vec![], vec![1], vec![2, 3]]);
        let mc = MulticastTable::build(&host, &topo, &assign);
        // Find the tree for (source 0, cell 0): consumers 2 (holds 1) and
        // 3 (holds 2, needs 1's neighbour... ). Check global accounting:
        let unicast = RoutingTable::build(&host, &topo, &assign);
        let unicast_hops: usize = unicast.subs.iter().map(|s| s.path.len() - 1).sum();
        assert!(
            mc.total_tree_links() <= unicast_hops,
            "multicast {} vs unicast {}",
            mc.total_tree_links(),
            unicast_hops
        );
    }

    #[test]
    fn trees_are_rooted_and_acyclic() {
        let host = linear_array(6, DelayModel::uniform(1, 5), 3);
        let topo = GuestTopology::Line { m: 12 };
        let assign = Assignment::blocked(6, 12);
        let mc = MulticastTable::build(&host, &topo, &assign);
        for t in &mc.trees {
            // Every node reachable from the root exactly once.
            let mut seen = vec![false; t.nodes.len()];
            let mut stack = vec![t.index_of[&t.source]];
            let mut count = 0;
            while let Some(i) = stack.pop() {
                assert!(!seen[i as usize], "cycle at node {i}");
                seen[i as usize] = true;
                count += 1;
                stack.extend(t.children[i as usize].iter().copied());
            }
            assert_eq!(count, t.nodes.len(), "disconnected tree");
            // At least one delivery.
            assert!(t.deliver.iter().any(|&d| d));
        }
    }

    #[test]
    fn parent_links_mirror_children() {
        let host = linear_array(6, DelayModel::uniform(1, 5), 3);
        let topo = GuestTopology::Line { m: 12 };
        let assign = Assignment::blocked(6, 12);
        let mc = MulticastTable::build(&host, &topo, &assign);
        for t in &mc.trees {
            assert_eq!(t.root, t.index_of[&t.source]);
            assert_eq!(t.parent[t.root as usize], u32::MAX);
            for (i, ch) in t.children.iter().enumerate() {
                for &c in ch {
                    assert_eq!(t.parent[c as usize], i as u32);
                }
            }
            // Every non-root node has a parent.
            for (i, &pa) in t.parent.iter().enumerate() {
                assert_eq!(pa == u32::MAX, i as u32 == t.root);
            }
        }
        // outbound_by_cell partitions outbound.
        for p in 0..6usize {
            let flat: usize = mc.outbound_by_cell[p].iter().map(|(_, v)| v.len()).sum();
            assert_eq!(flat, mc.outbound[p].len());
        }
    }

    #[test]
    fn inbound_covers_every_dependency() {
        let host = linear_array(5, DelayModel::constant(2), 0);
        let topo = GuestTopology::Line { m: 10 };
        let assign = Assignment::blocked(5, 10);
        let mc = MulticastTable::build(&host, &topo, &assign);
        let uni = RoutingTable::build(&host, &topo, &assign);
        for p in 0..5usize {
            let mut a: Vec<u32> = mc.inbound[p].iter().map(|&(c, _)| c).collect();
            let mut b: Vec<u32> = uni.inbound[p].iter().map(|&(c, _)| c).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "proc {p} dependency columns differ");
        }
    }
}
