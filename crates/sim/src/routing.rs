//! Static subscription routing.
//!
//! For every (consumer processor, non-held dependency column) pair, the
//! consumer subscribes to the *nearest holder* of that column (minimum
//! shortest-path delay, ties broken by processor id), and all pebbles of
//! that column travel a fixed shortest-delay route. Intermediate processors
//! forward; every link traversal is charged against the link's bandwidth.
//!
//! This mirrors the paper's simulations, where interval endpoints exchange
//! boundary columns with the nearest processors of the adjacent interval
//! (§3.2), generalized to arbitrary hosts.

use crate::assignment::Assignment;
use overlap_model::GuestTopology;
use overlap_net::paths::dijkstra;
use overlap_net::{HostGraph, NodeId};
use std::collections::BTreeSet;

/// One column subscription: `source` computes column `cell` and streams its
/// pebbles to `dest` along `path` (inclusive of both endpoints).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subscription {
    /// The guest column being streamed.
    pub cell: u32,
    /// The holder that computes and sends.
    pub source: NodeId,
    /// The consumer.
    pub dest: NodeId,
    /// Route `source → dest` (node ids, length ≥ 2).
    pub path: Vec<NodeId>,
    /// Total delay of the route.
    pub delay: u64,
}

/// All subscriptions for one (host, assignment, guest-topology) triple.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    /// All subscriptions, indexed by id.
    pub subs: Vec<Subscription>,
    /// For each processor, the ids of subscriptions it *sends* (it is the
    /// source), grouped for fast fan-out at compute time.
    pub outbound: Vec<Vec<u32>>,
    /// For each processor, `outbound` grouped by source column: sorted
    /// `(cell, sub ids)` pairs, sub ids in `outbound` order. Lets the
    /// engine fan out a completed pebble without scanning every
    /// subscription of the processor.
    pub outbound_by_cell: Vec<Vec<(u32, Vec<u32>)>>,
    /// For each processor, `(cell, sub_id)` pairs it *receives*.
    pub inbound: Vec<Vec<(u32, u32)>>,
}

impl RoutingTable {
    /// Build the routing table. For each processor `p`, the *dependency
    /// columns* are the guest-neighbours of its held cells that it does not
    /// hold itself; each is served by the nearest holder.
    ///
    /// # Panics
    /// If some dependency column has no holder anywhere (incomplete
    /// assignment) or the host is disconnected between consumer and every
    /// holder.
    pub fn build(host: &HostGraph, topo: &GuestTopology, assign: &Assignment) -> Self {
        Self::build_with(host, assign, |c| topo.neighbours(c))
    }

    /// Build the routing table from an arbitrary per-cell dependency
    /// closure: `dep_cells_of(c)` lists the distinct cells whose pebbles
    /// `c` ever reads (excluding `c`). This is what task-graph guests use
    /// (their dependency sets vary per layer; routing subscribes to the
    /// union); [`RoutingTable::build`] is the static-topology wrapper.
    pub fn build_with(
        host: &HostGraph,
        assign: &Assignment,
        dep_cells_of: impl Fn(u32) -> Vec<u32>,
    ) -> Self {
        let n = host.num_nodes();
        assert_eq!(n, assign.num_procs(), "host/assignment size mismatch");
        let mut subs: Vec<Subscription> = Vec::new();
        let mut outbound = vec![Vec::new(); n as usize];
        let mut inbound = vec![Vec::new(); n as usize];

        for p in 0..n {
            let own = assign.cells_of(p);
            if own.is_empty() {
                continue;
            }
            // Dependency columns: guest neighbours of held cells, minus held.
            let own_set: BTreeSet<u32> = own.iter().copied().collect();
            let mut dep_cells: BTreeSet<u32> = BTreeSet::new();
            for &c in own {
                for nb in dep_cells_of(c) {
                    if !own_set.contains(&nb) {
                        dep_cells.insert(nb);
                    }
                }
            }
            if dep_cells.is_empty() {
                continue;
            }
            // One Dijkstra from the consumer serves all its columns
            // (undirected graph: dist symmetric, reversed path valid).
            let sp = dijkstra(host, p);
            for c in dep_cells {
                let holders = assign.holders(c);
                assert!(
                    !holders.is_empty(),
                    "column {c} needed by processor {p} has no holder"
                );
                let &best = holders
                    .iter()
                    .min_by_key(|&&q| (sp.dist[q as usize], q))
                    .expect("non-empty");
                let delay = sp.dist[best as usize];
                assert!(
                    delay != u64::MAX,
                    "no route from processor {p} to holder {best} of column {c}"
                );
                let mut path = sp.path_to(best).expect("reachable");
                path.reverse(); // source → dest
                let id = subs.len() as u32;
                subs.push(Subscription {
                    cell: c,
                    source: best,
                    dest: p,
                    path,
                    delay,
                });
                outbound[best as usize].push(id);
                inbound[p as usize].push((c, id));
            }
        }
        let outbound_by_cell = group_by_cell(&outbound, |sid| subs[sid as usize].cell);
        Self {
            subs,
            outbound,
            outbound_by_cell,
            inbound,
        }
    }

    /// Total number of subscriptions.
    pub fn num_subscriptions(&self) -> usize {
        self.subs.len()
    }

    /// Largest route delay over all subscriptions (a lower bound on any
    /// cross-interval communication latency in the run).
    pub fn max_route_delay(&self) -> u64 {
        self.subs.iter().map(|s| s.delay).max().unwrap_or(0)
    }
}

/// Group each processor's outbound route ids by source column: sorted
/// `(cell, ids)` association lists, ids kept in their original (increasing)
/// order within each cell — the order the engine's fan-out must preserve.
pub(crate) fn group_by_cell(
    outbound: &[Vec<u32>],
    cell_of: impl Fn(u32) -> u32,
) -> Vec<Vec<(u32, Vec<u32>)>> {
    outbound
        .iter()
        .map(|out| {
            let mut by_cell: Vec<(u32, Vec<u32>)> = Vec::new();
            for &id in out {
                let cell = cell_of(id);
                match by_cell.iter_mut().find(|(c, _)| *c == cell) {
                    Some((_, ids)) => ids.push(id),
                    None => by_cell.push((cell, vec![id])),
                }
            }
            by_cell.sort_by_key(|&(c, _)| c);
            by_cell
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlap_net::topology::linear_array;
    use overlap_net::DelayModel;

    fn line_host(n: u32, d: u64) -> HostGraph {
        linear_array(n, DelayModel::constant(d), 0)
    }

    #[test]
    fn blocked_line_subscribes_to_adjacent_blocks() {
        // 4 procs, 8 cells blocked: proc 1 holds {2,3}; needs 1 (proc 0)
        // and 4 (proc 2).
        let host = line_host(4, 5);
        let topo = GuestTopology::Line { m: 8 };
        let a = Assignment::blocked(4, 8);
        let rt = RoutingTable::build(&host, &topo, &a);
        let inb: Vec<_> = rt.inbound[1].iter().map(|&(c, _)| c).collect();
        assert_eq!(inb, vec![1, 4]);
        // Each sub route is the single host link, delay 5.
        for &(_, id) in &rt.inbound[1] {
            let s = &rt.subs[id as usize];
            assert_eq!(s.path.len(), 2);
            assert_eq!(s.delay, 5);
            assert_eq!(s.dest, 1);
        }
    }

    #[test]
    fn redundant_copies_remove_subscriptions() {
        // Proc 1 holds {2,3,4}: overlap means cell 4 is held both by 1 and 2;
        // proc 1 no longer subscribes to 4.
        let host = line_host(4, 5);
        let topo = GuestTopology::Line { m: 8 };
        let a = Assignment::from_cells_of(
            4,
            8,
            vec![vec![0, 1], vec![2, 3, 4], vec![4, 5], vec![6, 7]],
        );
        let rt = RoutingTable::build(&host, &topo, &a);
        let inb: Vec<_> = rt.inbound[1].iter().map(|&(c, _)| c).collect();
        assert_eq!(inb, vec![1, 5]);
    }

    #[test]
    fn nearest_holder_is_chosen() {
        // Cell 0 held by procs 0 and 3; consumer 1 holds cell 1 and must
        // pick proc 0 (distance 1 link vs 2).
        let host = line_host(4, 2);
        let topo = GuestTopology::Line { m: 2 };
        let a = Assignment::from_cells_of(4, 2, vec![vec![0], vec![1], vec![], vec![0]]);
        let rt = RoutingTable::build(&host, &topo, &a);
        let (_, id) = rt.inbound[1][0];
        assert_eq!(rt.subs[id as usize].source, 0);
    }

    #[test]
    fn self_sufficient_processor_has_no_inbound() {
        let host = line_host(2, 1);
        let topo = GuestTopology::Line { m: 4 };
        let a = Assignment::from_cells_of(2, 4, vec![vec![0, 1, 2, 3], vec![]]);
        let rt = RoutingTable::build(&host, &topo, &a);
        assert_eq!(rt.num_subscriptions(), 0);
        assert!(rt.inbound[0].is_empty());
    }

    #[test]
    fn ring_topology_wraps_subscriptions() {
        let host = line_host(2, 3);
        let topo = GuestTopology::Ring { m: 4 };
        let a = Assignment::blocked(2, 4); // proc0: {0,1}, proc1: {2,3}
        let rt = RoutingTable::build(&host, &topo, &a);
        // proc 0 needs cells 2 (right neighbour of 1) and 3 (left of 0).
        let inb: Vec<_> = rt.inbound[0].iter().map(|&(c, _)| c).collect();
        assert_eq!(inb, vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "no holder")]
    fn missing_holder_panics() {
        let host = line_host(2, 1);
        let topo = GuestTopology::Line { m: 3 };
        let a = Assignment::from_cells_of(2, 3, vec![vec![0], vec![2]]);
        RoutingTable::build(&host, &topo, &a);
    }

    #[test]
    fn outbound_by_cell_partitions_outbound() {
        let host = line_host(4, 2);
        let topo = GuestTopology::Line { m: 8 };
        let a = Assignment::from_cells_of(
            4,
            8,
            vec![vec![0, 1, 2], vec![2, 3, 4], vec![4, 5, 6], vec![6, 7]],
        );
        let rt = RoutingTable::build(&host, &topo, &a);
        for p in 0..4usize {
            // Same multiset of ids, grouped, cells sorted, ids in sid order.
            let mut flat: Vec<u32> = Vec::new();
            let mut last_cell = None;
            for (cell, ids) in &rt.outbound_by_cell[p] {
                assert!(last_cell < Some(*cell), "cells not strictly sorted");
                last_cell = Some(*cell);
                assert!(!ids.is_empty());
                for &id in ids {
                    assert_eq!(rt.subs[id as usize].cell, *cell);
                    flat.push(id);
                }
                assert!(ids.windows(2).all(|w| w[0] < w[1]));
            }
            let mut expect = rt.outbound[p].clone();
            flat.sort_unstable();
            expect.sort_unstable();
            assert_eq!(flat, expect, "proc {p} grouping lost or invented ids");
        }
    }

    #[test]
    fn routes_avoid_expensive_links() {
        // Host: 0-1 delay 100, 0-2 delay 1, 2-1 delay 1. Consumer 1 needs a
        // column held at 0: the route must go through 2.
        let mut host = HostGraph::new("tri", 3);
        host.add_link(0, 1, 100);
        host.add_link(0, 2, 1);
        host.add_link(2, 1, 1);
        let topo = GuestTopology::Line { m: 2 };
        let a = Assignment::from_cells_of(3, 2, vec![vec![0], vec![1], vec![]]);
        let rt = RoutingTable::build(&host, &topo, &a);
        let (_, id) = rt.inbound[1][0];
        let s = &rt.subs[id as usize];
        assert_eq!(s.path, vec![0, 2, 1]);
        assert_eq!(s.delay, 2);
        assert_eq!(rt.max_route_delay(), 2);
    }
}
