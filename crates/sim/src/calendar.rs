//! A bucketed calendar queue for integer-tick discrete-event simulation.
//!
//! The engine's event queue is extremely structured: ticks are integers,
//! events are only ever scheduled at or after the current tick, and almost
//! all of them land within a few link delays of "now". A binary heap pays
//! `O(log q)` comparisons and a cache miss per operation for a generality
//! the workload never uses. This queue instead keeps a ring of
//! `WINDOW` FIFO buckets — one per tick of the near future — plus a
//! spill-over heap for the rare event beyond the horizon:
//!
//! * `push` appends to the bucket `tick % WINDOW` when `tick` lies inside
//!   the window `[now, now + WINDOW)`, else pushes `(tick, seq)` onto the
//!   overflow heap — `O(1)` amortized either way.
//! * `pop` drains the current bucket in FIFO order, then advances the
//!   cursor to the next occupied slot using a 64-bit occupancy bitmap
//!   (one `trailing_zeros` per 64 empty slots), refilling from the
//!   overflow heap whenever the window slides.
//!
//! # Determinism contract
//!
//! Events are delivered in ascending tick order; **events with equal ticks
//! are delivered in push order** (FIFO). This reproduces exactly the
//! `(tick, sequence-number)` order of a `BinaryHeap<Reverse<(u64, u64)>>`,
//! which is what the seed engine used — see the `matches_reference_heap`
//! test. The invariant that makes the bucket/overflow split safe: the
//! overflow heap only ever holds events with `tick >= cursor + WINDOW`,
//! and the window is refilled *immediately* whenever the cursor advances,
//! so an overflow event always re-enters its bucket before any same-tick
//! event can be pushed directly (pushes happen only while processing
//! events at the cursor tick, with monotonically increasing sequence
//! numbers).
//!
//! Buckets and their backing storage are recycled for the lifetime of the
//! queue: after warm-up, steady-state operation performs no allocation.

use std::collections::{BinaryHeap, VecDeque};

/// Number of near-future tick buckets (must be a power of two). 1024 ticks
/// covers every delay the experiment sweeps use; larger delays simply take
/// the overflow path, which is still `O(log overflow)` only for the rare
/// beyond-horizon event. Public so tests and benchmarks can construct
/// workloads that deliberately straddle the horizon.
pub const WINDOW: u64 = 1024;
const MASK: u64 = WINDOW - 1;
const WORDS: usize = (WINDOW / 64) as usize;

/// Overflow entry ordered by `(tick, seq)` only; the payload rides along.
struct Spill<T> {
    tick: u64,
    seq: u64,
    ev: T,
}

impl<T> PartialEq for Spill<T> {
    fn eq(&self, other: &Self) -> bool {
        self.tick == other.tick && self.seq == other.seq
    }
}
impl<T> Eq for Spill<T> {}
impl<T> PartialOrd for Spill<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Spill<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.tick, other.seq).cmp(&(self.tick, self.seq))
    }
}

/// The calendar queue. `T` is the event payload, stored inline in the
/// buckets (no separate payload arena, no free list to manage).
pub struct CalendarQueue<T> {
    /// `buckets[tick & MASK]` holds the FIFO of events for one tick within
    /// the window `[cursor, cursor + WINDOW)`.
    buckets: Vec<VecDeque<T>>,
    /// Occupancy bitmap over bucket slots (bit `s` = slot `s` non-empty).
    occupied: [u64; WORDS],
    /// The earliest tick any pending event may have.
    cursor: u64,
    /// Events currently in the ring.
    ring_len: usize,
    /// Beyond-horizon events, earliest `(tick, seq)` first.
    overflow: BinaryHeap<Spill<T>>,
    /// Monotone push counter; orders overflow events among themselves.
    seq: u64,
    /// Past-tick pushes clamped up to the cursor (see [`push`](Self::push)).
    clamped: u64,
}

impl<T> CalendarQueue<T> {
    /// An empty queue with the cursor at tick 0.
    pub fn new() -> Self {
        Self {
            buckets: (0..WINDOW).map(|_| VecDeque::new()).collect(),
            occupied: [0; WORDS],
            cursor: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            seq: 0,
            clamped: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `ev` at `tick`. Events must never be scheduled in the past:
    /// an engine pushing below the tick of the most recent `pop` is a bug,
    /// so debug builds assert. Release builds clamp the tick up to the
    /// cursor (delivering at the current tick instead of silently wrapping
    /// into a future ring bucket and corrupting the pop order) **and count
    /// the anomaly** in [`clamped`](Self::clamped), which engines surface
    /// as `RunStats::queue_clamped_pushes` — silent time-travel can no
    /// longer mask a scheduling bug. Callers that push past ticks *by
    /// design* use [`push_clamping`](Self::push_clamping).
    #[inline]
    pub fn push(&mut self, tick: u64, ev: T) {
        debug_assert!(
            tick >= self.cursor,
            "past-tick push: tick {tick} < cursor {}",
            self.cursor
        );
        self.push_clamping(tick, ev);
    }

    /// [`push`](Self::push) without the past-tick debug assertion: the
    /// entry point for callers that *deliberately* schedule at-or-before
    /// the cursor and rely on the documented clamp-to-cursor semantics.
    /// Clamped pushes are still counted.
    #[inline]
    pub fn push_clamping(&mut self, tick: u64, ev: T) {
        if tick < self.cursor {
            self.clamped += 1;
        }
        let tick = tick.max(self.cursor);
        self.seq += 1;
        if tick < self.cursor + WINDOW {
            let slot = (tick & MASK) as usize;
            self.buckets[slot].push_back(ev);
            self.occupied[slot >> 6] |= 1u64 << (slot & 63);
            self.ring_len += 1;
        } else {
            self.overflow.push(Spill {
                tick,
                seq: self.seq,
                ev,
            });
        }
    }

    /// Number of past-tick pushes that were clamped up to the cursor over
    /// this queue's lifetime ([`reset_cursor`](Self::reset_cursor) does not
    /// reset it). Zero on every healthy engine run.
    #[inline]
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Tick of the earliest pending event without removing it. Does NOT
    /// advance the cursor: a caller interleaving peeks with pushes (the
    /// sharded engine merging its two per-shard queues) may still push at
    /// any tick at or above the last *pop*; an eager cursor advance here
    /// would clamp those pushes forward and reorder delivery. Ring events
    /// all lie in `[cursor, cursor + WINDOW)` and overflow events at or
    /// beyond `cursor + WINDOW`, so the minimum needs no window slide.
    #[inline]
    pub fn peek_tick(&self) -> Option<u64> {
        if self.ring_len > 0 {
            let slot = (self.cursor & MASK) as usize;
            if !self.buckets[slot].is_empty() {
                return Some(self.cursor);
            }
            return Some(self.cursor + self.next_occupied_delta(slot));
        }
        self.overflow.peek().map(|spill| spill.tick)
    }

    /// Rewind the cursor of an **empty** queue to `tick`. Draining a queue
    /// leaves the cursor at the last popped tick, and `push` clamps earlier
    /// ticks up to the cursor; a user that drains and then reuses the queue
    /// for an earlier epoch (the sharded engine's per-window fresh queue)
    /// must rewind first or its pushes get silently postponed.
    #[inline]
    pub fn reset_cursor(&mut self, tick: u64) {
        debug_assert!(self.is_empty(), "reset_cursor on a non-empty queue");
        self.cursor = tick;
    }

    /// Remove and return the earliest event as `(tick, event)`; FIFO among
    /// events of equal tick.
    #[inline]
    pub fn pop(&mut self) -> Option<(u64, T)> {
        loop {
            let slot = (self.cursor & MASK) as usize;
            if let Some(ev) = self.buckets[slot].pop_front() {
                self.ring_len -= 1;
                if self.buckets[slot].is_empty() {
                    self.occupied[slot >> 6] &= !(1u64 << (slot & 63));
                }
                return Some((self.cursor, ev));
            }
            if self.ring_len > 0 {
                // Next occupied slot, circularly after `slot`.
                let delta = self.next_occupied_delta(slot);
                self.cursor += delta;
                self.refill();
            } else if let Some(spill) = self.overflow.peek() {
                self.cursor = spill.tick;
                self.refill();
            } else {
                return None;
            }
        }
    }

    /// Distance (in slots, `1..WINDOW`) from `slot` to the next occupied
    /// slot, scanning the bitmap a word at a time.
    #[inline]
    fn next_occupied_delta(&self, slot: usize) -> u64 {
        debug_assert!(self.ring_len > 0);
        // Bits strictly after `slot` in its own word.
        let word = slot >> 6;
        let bit = slot & 63;
        let first = self.occupied[word] & !((1u64 << bit) | ((1u64 << bit) - 1));
        if first != 0 {
            return first.trailing_zeros() as u64 - bit as u64;
        }
        for i in 1..=WORDS {
            let w = (word + i) % WORDS;
            let bits = if w == word {
                // Wrapped fully around: bits up to and including `slot`.
                self.occupied[w] & ((1u64 << bit) | ((1u64 << bit) - 1))
            } else {
                self.occupied[w]
            };
            if bits != 0 {
                let pos = (w << 6) as u64 + bits.trailing_zeros() as u64;
                let cur = slot as u64;
                return if pos > cur {
                    pos - cur
                } else {
                    pos + WINDOW - cur
                };
            }
        }
        unreachable!("ring_len > 0 but no occupied slot");
    }

    /// Move every overflow event whose tick now falls inside the window
    /// into its bucket. Must run on every cursor advance (see module docs).
    #[inline]
    fn refill(&mut self) {
        let horizon = self.cursor + WINDOW;
        while let Some(spill) = self.overflow.peek() {
            if spill.tick >= horizon {
                break;
            }
            let spill = self.overflow.pop().expect("peeked");
            let slot = (spill.tick & MASK) as usize;
            self.buckets[slot].push_back(spill.ev);
            self.occupied[slot >> 6] |= 1u64 << (slot & 63);
            self.ring_len += 1;
        }
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;

    #[test]
    fn empty_queue_pops_none() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_a_tick() {
        let mut q = CalendarQueue::new();
        for v in 0..10 {
            q.push(5, v);
        }
        for v in 0..10 {
            assert_eq!(q.pop(), Some((5, v)));
        }
    }

    #[test]
    fn ascending_ticks_across_the_horizon() {
        let mut q = CalendarQueue::new();
        // Far beyond the window, out of order, plus some near events.
        q.push(WINDOW * 3 + 17, 'c');
        q.push(2, 'a');
        q.push(WINDOW * 3 + 17, 'd');
        q.push(WINDOW + 5, 'b');
        assert_eq!(q.pop(), Some((2, 'a')));
        assert_eq!(q.pop(), Some((WINDOW + 5, 'b')));
        assert_eq!(q.pop(), Some((WINDOW * 3 + 17, 'c')));
        assert_eq!(q.pop(), Some((WINDOW * 3 + 17, 'd')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaves_overflow_and_direct_pushes_in_seq_order() {
        let mut q = CalendarQueue::new();
        let t = WINDOW + 100;
        q.push(t, 1); // overflow (beyond horizon from cursor 0)
        q.push(1, 0);
        assert_eq!(q.pop(), Some((1, 0)));
        // Cursor at 1: t is still outside [1, 1+WINDOW)? 1124 >= 1025 ⇒ yes.
        // Advance the cursor by draining a nearer event.
        q.push(200, 2);
        assert_eq!(q.pop(), Some((200, 2)));
        // Now t < 200 + WINDOW: overflow refilled. A direct push at t must
        // come after the earlier overflow event.
        q.push(t, 3);
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 3)));
    }

    /// The determinism contract: identical delivery order to the seed
    /// engine's `BinaryHeap<Reverse<(tick, seq)>>` under an adversarial
    /// deterministic workload mixing near, far, and equal ticks.
    #[test]
    fn matches_reference_heap() {
        let mut cal = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut next = |m: u64| {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) % m
        };
        let mut now = 0u64;
        let mut id = 0u32;
        let mut pending = 0u32;
        for _ in 0..200_000 {
            let do_push = pending == 0 || next(3) != 0;
            if do_push {
                // Mix of same-tick, near, window-boundary and far-future.
                let delta = match next(8) {
                    0 => 0,
                    1..=4 => next(16),
                    5 => WINDOW - 1 + next(3), // straddle the horizon
                    6 => next(4 * WINDOW),
                    _ => next(64),
                };
                cal.push(now + delta, id);
                heap.push(Reverse((now + delta, seq, id)));
                seq += 1;
                id += 1;
                pending += 1;
            } else {
                let (t1, v1) = cal.pop().expect("calendar non-empty");
                let Reverse((t2, _, v2)) = heap.pop().expect("heap non-empty");
                assert_eq!((t1, v1), (t2, v2), "diverged at event {v2}");
                now = t1;
                pending -= 1;
            }
            assert_eq!(cal.len() as u32, pending);
        }
        while let Some((t1, v1)) = cal.pop() {
            let Reverse((t2, _, v2)) = heap.pop().expect("heap non-empty");
            assert_eq!((t1, v1), (t2, v2));
        }
        assert!(heap.pop().is_none());
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Property version of the determinism contract, biased toward the
        /// overflow path: bursts of events landing at and far beyond the
        /// `WINDOW` horizon (so they spill to the heap and must be
        /// refilled on cursor advances) still pop in bit-identical
        /// `(tick, push-seq)` order to the reference `BinaryHeap`.
        #[test]
        fn overflow_spikes_match_reference_heap_prop(
            ops in proptest::collection::vec(
                (
                    0u8..5,
                    prop_oneof![
                        0u64..4,                    // same-tick / near
                        4u64..64,                   // in-window
                        WINDOW - 2..WINDOW + 2,     // straddle the horizon
                        WINDOW..WINDOW * 8,         // deep overflow spikes
                    ],
                ),
                1..400,
            ),
        ) {
            let mut cal = CalendarQueue::new();
            let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
            let mut now = 0u64;
            let mut seq = 0u64;
            let mut id = 0u32;
            let mut pending = 0u32;
            for &(op, delta) in &ops {
                if op == 0 && pending > 0 {
                    let (t1, v1) = cal.pop().expect("calendar non-empty");
                    let Reverse((t2, _, v2)) = heap.pop().expect("heap non-empty");
                    prop_assert_eq!((t1, v1), (t2, v2));
                    now = t1;
                    pending -= 1;
                } else if op == 4 {
                    // Past-tick push: the calendar clamps to its cursor, so
                    // the reference heap must schedule at `now` instead.
                    // `push_clamping` is the deliberate-past entry point
                    // (plain `push` asserts in debug builds).
                    cal.push_clamping(now.saturating_sub(delta), id);
                    heap.push(Reverse((now, seq, id)));
                    seq += 1;
                    id += 1;
                    pending += 1;
                } else {
                    cal.push(now + delta, id);
                    heap.push(Reverse((now + delta, seq, id)));
                    seq += 1;
                    id += 1;
                    pending += 1;
                }
                prop_assert_eq!(cal.len() as u32, pending);
            }
            while let Some((t1, v1)) = cal.pop() {
                let Reverse((t2, _, v2)) = heap.pop().expect("heap non-empty");
                prop_assert_eq!((t1, v1), (t2, v2));
            }
            prop_assert!(heap.pop().is_none());
        }
    }

    #[test]
    fn past_tick_push_is_clamped_to_cursor() {
        // Before the clamp, a past tick was masked straight into the ring
        // and could land in a *future* bucket (tick & MASK wraps), so
        // release builds popped events out of order. Now it is delivered
        // at the cursor tick, after events already queued there.
        let mut cal = CalendarQueue::new();
        cal.push(0, 'a');
        cal.push(10, 'b');
        assert_eq!(cal.clamped(), 0);
        assert_eq!(cal.pop(), Some((0, 'a'))); // cursor now 0 -> scans to 10
        assert_eq!(cal.pop(), Some((10, 'b'))); // cursor now 10
        cal.push_clamping(3, 'p'); // in the past: clamped to 10
        cal.push(10, 'q');
        cal.push(11, 'r');
        assert_eq!(cal.clamped(), 1, "exactly the past push is counted");
        assert_eq!(cal.pop(), Some((10, 'p')));
        assert_eq!(cal.pop(), Some((10, 'q')));
        assert_eq!(cal.pop(), Some((11, 'r')));
        assert!(cal.pop().is_none());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "past-tick push")]
    fn plain_push_asserts_on_past_ticks_in_debug() {
        let mut cal = CalendarQueue::new();
        cal.push(5, 'a');
        assert_eq!(cal.pop(), Some((5, 'a'))); // cursor now 5
        cal.push(2, 'b'); // engines must never do this
    }

    #[test]
    fn peek_tick_matches_pop_and_preserves_order() {
        let mut q = CalendarQueue::new();
        assert_eq!(q.peek_tick(), None);
        q.push(7, 'a');
        q.push(7, 'b');
        q.push(WINDOW * 2 + 3, 'c'); // overflow path
        assert_eq!(q.peek_tick(), Some(7));
        assert_eq!(q.pop(), Some((7, 'a')));
        assert_eq!(q.peek_tick(), Some(7));
        assert_eq!(q.pop(), Some((7, 'b')));
        // Only the overflow event remains: peek must slide the window.
        assert_eq!(q.peek_tick(), Some(WINDOW * 2 + 3));
        assert_eq!(q.pop(), Some((WINDOW * 2 + 3, 'c')));
        assert_eq!(q.peek_tick(), None);
    }

    #[test]
    fn len_tracks_ring_and_overflow() {
        let mut q = CalendarQueue::new();
        q.push(1, 0);
        q.push(WINDOW * 2, 1);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn sparse_far_apart_events_jump_directly() {
        let mut q = CalendarQueue::new();
        let mut t = 0u64;
        for i in 0..100u64 {
            t += 7919 * (i + 1); // strides far beyond the window
            q.push(t, i);
        }
        let mut last = 0;
        let mut n = 0;
        while let Some((tick, _)) = q.pop() {
            assert!(tick > last || n == 0);
            last = tick;
            n += 1;
        }
        assert_eq!(n, 100);
    }
}
