//! A parallel time-stepped engine, for differential testing against the
//! event-driven [`crate::engine`].
//!
//! The simulation advances in global ticks. Each tick has three phases:
//!
//! 1. **deliver** — pebbles arriving now are written into the destination
//!    processors' dependency buffers (parallel over destinations);
//! 2. **compute** — every processor with a ready pebble computes exactly
//!    one (parallel over processors with rayon; each touches only its own
//!    state and emits an outbox); heterogeneous compute costs hold a
//!    pebble in flight for `cost` ticks;
//! 3. **send** — outboxes are injected into links in processor-id order
//!    (deterministic bandwidth arbitration), scheduling future arrivals.
//!
//! Empty stretches are skipped by jumping to the next calendar event or
//! scheduled crash.
//!
//! Per-copy state lives in **structure-of-arrays** form (the private `SoA` struct):
//! one flat array per field, indexed by the plan's dense copy id
//! `copy_off[p] + i`, with dependency rows indexed by `dep_off[p] + k`.
//! Per-tick sweeps walk contiguous memory instead of pointer-chasing
//! per-copy structs. The ready set and the received-pebble table are
//! **bitsets**: selection of the next pebble is a word scan over the
//! processor's ready words, and the dependency watermark advances by
//! counting trailing ones — no per-step boolean loads. The parallel
//! phases carve the flat arrays into disjoint per-processor
//! `ProcView`s with `split_at_mut`, so each worker owns exactly its
//! processor's word-aligned range (bitset ranges are word-padded per
//! processor for this reason). DESIGN.md §15 documents the layout and
//! its invariants.
//!
//! The engine consumes a lowered [`ExecPlan`] — it builds no routing or
//! interning tables of its own. Compute costs and fault plans attached to
//! the plan are honored: link outages time out and retry with exponential
//! backoff, delay spikes stretch transfers, and crashes forfeit the
//! processor's work and re-subscribe its consumers to the nearest
//! surviving copy, mirroring the event engine's graceful degradation.
//! Multicast and jitter remain event-engine-only.
//!
//! Both engines execute *legal schedules* of the same model, so they must
//! agree **exactly** on every computed value, database state and update
//! log (checked by [`crate::validate`] and differential tests); their
//! makespans may differ slightly because tie-breaking differs, but both
//! respect the same lower bounds. Agreement of the two independent
//! implementations on all state is the workspace's strongest defence
//! against engine bugs.

use crate::engine::{inject, CopyRecord, DynSub, Jitter, LinkSlot, RunError, RunOutcome};
use crate::faults::FaultRt;
use crate::plan::{DepSrc, ExecPlan, ProcTables, SUB_BIT};
use crate::stats::{FaultStats, RunStats};
use overlap_model::{fold64, Db, PebbleValue, ProgramRef};
use overlap_net::paths::dijkstra;
use overlap_net::NodeId;
use rayon::prelude::*;
use std::collections::{BTreeMap, HashMap};

/// One calendar entry: an arrival at route node `hop` (when `resend` is
/// false) or a retry of the send *into* node `hop` after a link timeout.
#[derive(Debug, Clone, Copy)]
struct Delivery {
    sub: u32,
    hop: u16,
    step: u32,
    value: PebbleValue,
    attempt: u32,
    resend: bool,
}

#[inline]
fn bit_get(words: &[u64], i: usize) -> bool {
    words[i / 64] & (1u64 << (i % 64)) != 0
}

#[inline]
fn bit_set(words: &mut [u64], i: usize) {
    words[i / 64] |= 1u64 << (i % 64);
}

#[inline]
fn bit_clear(words: &mut [u64], i: usize) {
    words[i / 64] &= !(1u64 << (i % 64));
}

/// Structure-of-arrays per-copy state. Copy-indexed arrays use the
/// plan's dense copy id `copy_off[p] + i`; step-indexed arrays are flat
/// with stride `steps + 1`; dependency rows use `dep_off[p] + k`.
///
/// The two bitsets are **word-padded per processor**: processor `p`
/// owns ready/queued words `[rw_off[p], rw_off[p+1])` (bit `i` of the
/// range = held cell `i`), and dependency-receipt rows of
/// `row_words = ⌈(steps+1)/64⌉` words each — so disjoint `ProcView`s
/// never share a word.
struct SoA {
    next_step: Vec<u32>,
    value_fold: Vec<u64>,
    update_fold: Vec<u64>,
    finished_at: Vec<u64>,
    history: Vec<PebbleValue>,
    dbs: Vec<Db>,
    dep_values: Vec<PebbleValue>,
    dep_watermark: Vec<u32>,
    /// Bit `s` of row `dep_off[p] + k`: pebble `s` of dependency `k`
    /// has been received.
    dep_have: Vec<u64>,
    /// Queueable frontier: bit set ⇔ the cell is in the ready set
    /// (the SoA twin of the old per-proc binary heap's membership).
    ready: Vec<u64>,
    /// Claimed flags: set while a cell is queued *or* its pebble is in
    /// flight, so deliveries cannot re-queue an already-claimed cell.
    /// Cleared only when the pebble completes.
    queued: Vec<u64>,
}

/// Per-processor control state that is not per-copy array data.
struct Ctl {
    /// Multi-tick pebble in flight: `(own idx, finish tick)`.
    pending: Option<(u32, u64)>,
    /// Pebbles computed this tick: (own idx, step, value).
    outbox: Vec<(u32, u32, PebbleValue)>,
    /// Memory-budget LRU over held copies (`None` for unbounded runs).
    mem: Option<crate::engine::MemLru>,
}

/// Array geometry shared by the global loop and the per-proc views.
struct Layout {
    /// Copy-id range of processor `p`: `[copy_off[p], copy_off[p+1])`.
    copy_off: Vec<usize>,
    /// Dependency-row range of processor `p`.
    dep_off: Vec<usize>,
    /// Ready/queued word range of processor `p` (word-aligned).
    rw_off: Vec<usize>,
    stride: usize,
    /// Words per dependency-receipt row: `⌈stride / 64⌉`.
    row_words: usize,
}

/// One processor's disjoint mutable window into the [`SoA`] arrays —
/// what phase 1 (deliver) and phase 2 (compute) hand to each parallel
/// worker. All indices are processor-local.
struct ProcView<'a> {
    next_step: &'a mut [u32],
    value_fold: &'a mut [u64],
    update_fold: &'a mut [u64],
    finished_at: &'a mut [u64],
    history: &'a mut [PebbleValue],
    dbs: &'a mut [Db],
    dep_values: &'a mut [PebbleValue],
    dep_watermark: &'a mut [u32],
    dep_have: &'a mut [u64],
    ready: &'a mut [u64],
    queued: &'a mut [u64],
    ctl: &'a mut Ctl,
}

/// Carve the flat arrays into per-processor disjoint views. Bitset
/// ranges are word-aligned per processor, so no two views alias.
fn split_views<'a>(soa: &'a mut SoA, ctls: &'a mut [Ctl], lay: &Layout) -> Vec<ProcView<'a>> {
    let n = lay.copy_off.len() - 1;
    let mut next_step = soa.next_step.as_mut_slice();
    let mut value_fold = soa.value_fold.as_mut_slice();
    let mut update_fold = soa.update_fold.as_mut_slice();
    let mut finished_at = soa.finished_at.as_mut_slice();
    let mut history = soa.history.as_mut_slice();
    let mut dbs = soa.dbs.as_mut_slice();
    let mut dep_values = soa.dep_values.as_mut_slice();
    let mut dep_watermark = soa.dep_watermark.as_mut_slice();
    let mut dep_have = soa.dep_have.as_mut_slice();
    let mut ready = soa.ready.as_mut_slice();
    let mut queued = soa.queued.as_mut_slice();
    let mut ctls = ctls;
    macro_rules! carve {
        ($arr:ident, $len:expr) => {{
            let (head, tail) = std::mem::take(&mut $arr).split_at_mut($len);
            $arr = tail;
            head
        }};
    }
    let mut out = Vec::with_capacity(n);
    for p in 0..n {
        let nc = lay.copy_off[p + 1] - lay.copy_off[p];
        let nd = lay.dep_off[p + 1] - lay.dep_off[p];
        let nw = lay.rw_off[p + 1] - lay.rw_off[p];
        out.push(ProcView {
            next_step: carve!(next_step, nc),
            value_fold: carve!(value_fold, nc),
            update_fold: carve!(update_fold, nc),
            finished_at: carve!(finished_at, nc),
            history: carve!(history, nc * lay.stride),
            dbs: carve!(dbs, nc),
            dep_values: carve!(dep_values, nd * lay.stride),
            dep_watermark: carve!(dep_watermark, nd),
            dep_have: carve!(dep_have, nd * lay.row_words),
            ready: carve!(ready, nw),
            queued: carve!(queued, nw),
            ctl: &mut carve!(ctls, 1)[0],
        });
    }
    out
}

impl ProcView<'_> {
    /// Is held cell `i` ready? Pure walk over the plan's check tables.
    fn is_ready(&self, pt: &ProcTables, i: usize, steps: u32) -> bool {
        let s = self.next_step[i];
        if s > steps {
            return false;
        }
        for &enc in pt.checks_at(i, s) {
            if enc & SUB_BIT != 0 {
                if self.dep_watermark[(enc & !SUB_BIT) as usize] < s - 1 {
                    return false;
                }
            } else if self.next_step[enc as usize] < s {
                return false;
            }
        }
        true
    }

    fn requeue(&mut self, pt: &ProcTables, i: usize, steps: u32) {
        if !bit_get(self.queued, i) && self.is_ready(pt, i, steps) {
            bit_set(self.queued, i);
            bit_set(self.ready, i);
        }
    }

    /// Pop the ready cell minimizing `(next_step, index)` — the exact
    /// order the old binary heap produced, since `next_step` is frozen
    /// while a cell is queued. Word scan over the ready bitset; the
    /// claimed (`queued`) bit stays set until the pebble completes.
    fn pop_min(&mut self) -> Option<u32> {
        let mut best: Option<(u32, u32)> = None;
        for (w, &bits) in self.ready.iter().enumerate() {
            let mut word = bits;
            while word != 0 {
                let i = (w * 64) as u32 + word.trailing_zeros();
                let key = (self.next_step[i as usize], i);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
                word &= word - 1;
            }
        }
        let (_, i) = best?;
        bit_clear(self.ready, i as usize);
        Some(i)
    }

    /// Record receipt of pebble `step` on dependency row `k` and advance
    /// the contiguous watermark by counting trailing ones in the row.
    fn deliver_dep(&mut self, k: usize, step: u32, value: PebbleValue, steps: u32, lay: &Layout) {
        self.dep_values[k * lay.stride + step as usize] = value;
        let row = &mut self.dep_have[k * lay.row_words..(k + 1) * lay.row_words];
        let b = step as usize;
        row[b / 64] |= 1u64 << (b % 64);
        let mut w = self.dep_watermark[k];
        while w < steps {
            let bit = w as usize + 1;
            let word = row[bit / 64] >> (bit % 64);
            let ones = (!word).trailing_zeros();
            if ones == 0 {
                break;
            }
            let span = (64 - (bit % 64) as u32).min(steps - w);
            let adv = ones.min(span);
            w += adv;
            if ones < span {
                break;
            }
        }
        self.dep_watermark[k] = w;
    }
}

/// Run the time-stepped engine over a lowered plan. Produces the same
/// outcome shape as [`crate::engine::Engine`].
pub fn run_stepped(plan: &ExecPlan) -> Result<RunOutcome, RunError> {
    run_stepped_controlled(plan, None)
}

/// [`run_stepped`] under a cooperative [`RunControl`](crate::control::RunControl):
/// the tick loop
/// honours pause/resume and returns [`RunError::Cancelled`] on cancel,
/// checked every [`CHECK_EVERY`](crate::control::CHECK_EVERY) iterations.
/// Control never perturbs the schedule.
pub fn run_stepped_controlled(
    plan: &ExecPlan,
    control: Option<&crate::control::RunControl>,
) -> Result<RunOutcome, RunError> {
    let config = plan.config();
    if config.multicast {
        return Err(RunError::UnsupportedFeature {
            engine: "stepped",
            feature: "multicast routing",
        });
    }
    if config.jitter != Jitter::None {
        return Err(RunError::UnsupportedFeature {
            engine: "stepped",
            feature: "delay jitter",
        });
    }
    let guest = plan.guest();
    let host = plan.host();
    let assign = plan.assignment();
    let hot = &plan.hot;
    let rt = plan.routing().expect("unicast plan");
    let n = host.num_nodes();
    let steps = guest.steps;
    let stride = steps as usize + 1;
    let program: ProgramRef = guest.program.instantiate();
    let boundary = guest.boundary();
    let bw = config.bandwidth.per_tick(n) as u64;
    let costs = plan.compute_costs();
    let cost_of = |p: usize| -> u64 { costs.map(|c| c[p] as u64).unwrap_or(1) };
    let has_task_costs = guest.has_nonunit_task_costs();
    let has_relays = guest.graph.is_some();

    // ---- array geometry, straight off the plan's tables ----
    let row_words = stride.div_ceil(64);
    let lay = {
        let mut copy_off = Vec::with_capacity(n as usize + 1);
        let mut dep_off = Vec::with_capacity(n as usize + 1);
        let mut rw_off = Vec::with_capacity(n as usize + 1);
        let (mut co, mut dof, mut rw) = (0usize, 0usize, 0usize);
        copy_off.push(0);
        dep_off.push(0);
        rw_off.push(0);
        for pt in &hot.procs {
            co += pt.cells.len();
            dof += pt.dep_cells.len();
            rw += pt.cells.len().div_ceil(64);
            copy_off.push(co);
            dep_off.push(dof);
            rw_off.push(rw);
        }
        Layout {
            copy_off,
            dep_off,
            rw_off,
            stride,
            row_words,
        }
    };
    let total_copies = *lay.copy_off.last().unwrap();
    let total_deps = *lay.dep_off.last().unwrap();
    let total_words = *lay.rw_off.last().unwrap();
    debug_assert_eq!(total_copies, *hot.copy_off.last().unwrap() as usize);

    let kind = program.db_kind();
    let mut soa = SoA {
        next_step: vec![1; total_copies],
        value_fold: vec![0xF01Du64; total_copies],
        update_fold: vec![0xD16u64; total_copies],
        finished_at: vec![0; total_copies],
        history: vec![0 as PebbleValue; total_copies * stride],
        dbs: Vec::with_capacity(total_copies),
        dep_values: vec![0 as PebbleValue; total_deps * stride],
        dep_watermark: vec![0; total_deps],
        dep_have: vec![0u64; total_deps * row_words],
        ready: vec![0u64; total_words],
        queued: vec![0u64; total_words],
    };
    for (p, pt) in hot.procs.iter().enumerate() {
        for (i, &c) in pt.cells.iter().enumerate() {
            soa.history[(lay.copy_off[p] + i) * stride] = guest.initial_value(c);
            soa.dbs.push(kind.instantiate(c, guest.seed));
        }
        for (k, &c) in pt.dep_cells.iter().enumerate() {
            let row = lay.dep_off[p] + k;
            soa.dep_values[row * stride] = guest.initial_value(c);
            soa.dep_have[row * row_words] |= 1;
        }
    }
    let mut ctls: Vec<Ctl> = hot
        .procs
        .iter()
        .map(|pt| Ctl {
            pending: None,
            outbox: Vec::new(),
            mem: config
                .mem
                .map(|m| crate::engine::MemLru::new(pt.cells.len(), m.budget, m.reload_cost)),
        })
        .collect();

    let mut link_slots: Vec<LinkSlot> = vec![LinkSlot::default(); hot.link_delay.len()];

    // ---- fault runtime (compiled only for a non-empty plan) ----
    let frt: Option<FaultRt> = match plan.faults() {
        Some(fp) if !fp.is_empty() => Some(FaultRt::build(fp, host)?),
        _ => None,
    };
    let n_orig_subs = hot.sub_link_off.len() - 1;
    let mut crashed: Vec<bool> = vec![false; if frt.is_some() { n as usize } else { 0 }];
    let mut dyn_subs: Vec<DynSub> = Vec::new();
    let mut dyn_out: Vec<Vec<u32>> = Vec::new();
    let mut fstats = FaultStats::default();
    let mut total_forfeited = 0u64;
    // Scheduled crashes in (tick, proc) order; consumed as time passes.
    let mut crash_sched: Vec<(u64, NodeId)> = frt
        .as_ref()
        .map(|f| {
            let mut cs: Vec<(u64, NodeId)> = f
                .crash_at
                .iter()
                .enumerate()
                .filter(|&(_, &at)| at != u64::MAX)
                .map(|(p, &at)| (at, p as NodeId))
                .collect();
            cs.sort_unstable();
            cs
        })
        .unwrap_or_default();
    crash_sched.reverse(); // pop from the back in time order
    let mut calendar: BTreeMap<u64, Vec<Delivery>> = BTreeMap::new();

    // ---- seed ready queues ----
    for (p, mut v) in split_views(&mut soa, &mut ctls, &lay)
        .into_iter()
        .enumerate()
    {
        let pt = &hot.procs[p];
        for i in 0..pt.cells.len() {
            v.requeue(pt, i, steps);
        }
    }

    let mut remaining: u64 = hot
        .procs
        .iter()
        .map(|pt| pt.cells.len() as u64 * steps as u64)
        .sum();
    let total_compute = remaining;
    let mut makespan = 0u64;
    let mut messages = 0u64;
    let mut pebble_hops = 0u64;
    let mut tick: u64 = 0;

    // Route geometry, uniform over original and dynamic subscriptions.
    macro_rules! sub_nlinks {
        ($sid:expr) => {{
            let sid = $sid as usize;
            if sid < n_orig_subs {
                (hot.sub_link_off[sid + 1] - hot.sub_link_off[sid]) as usize
            } else {
                dyn_subs[sid - n_orig_subs].links.len()
            }
        }};
    }
    // Directed link id carrying hop `h` (1-based destination node index).
    macro_rules! sub_link {
        ($sid:expr, $h:expr) => {{
            let sid = $sid as usize;
            if sid < n_orig_subs {
                hot.sub_links[hot.sub_link_off[sid] as usize + $h as usize - 1]
            } else {
                dyn_subs[sid - n_orig_subs].links[$h as usize - 1]
            }
        }};
    }

    // Transmit one pebble over the link into route node `hop`, charging
    // bandwidth at `now`. Under a fault plan: delay spikes stretch the
    // transfer, and one overlapping a down interval is lost — the sender
    // times out at the expected arrival and retries after exponential
    // backoff; failed attempts still consume slots.
    macro_rules! send_hop {
        ($now:expr, $sid:expr, $hop:expr, $step:expr, $value:expr, $attempt:expr) => {{
            let lid = sub_link!($sid, $hop) as usize;
            let depart = inject(&mut link_slots[lid], $now, bw);
            let base = hot.link_delay[lid];
            match frt.as_ref() {
                None => calendar.entry(depart + base).or_default().push(Delivery {
                    sub: $sid,
                    hop: $hop,
                    step: $step,
                    value: $value,
                    attempt: 0,
                    resend: false,
                }),
                Some(f) => {
                    let arrive = depart + base * f.spike_factor(lid as u32, depart);
                    if !f.down_overlap(lid as u32, depart, arrive) {
                        calendar.entry(arrive).or_default().push(Delivery {
                            sub: $sid,
                            hop: $hop,
                            step: $step,
                            value: $value,
                            attempt: 0,
                            resend: false,
                        });
                    } else {
                        let attempt = $attempt + 1;
                        if attempt > f.retry.max_attempts {
                            return Err(RunError::RetriesExhausted {
                                link: lid as u32,
                                tick: arrive,
                            });
                        }
                        let back = f.retry.backoff(attempt);
                        fstats.retries += 1;
                        fstats.fault_stall_ticks += arrive - $now + back;
                        calendar.entry(arrive + back).or_default().push(Delivery {
                            sub: $sid,
                            hop: $hop,
                            step: $step,
                            value: $value,
                            attempt,
                            resend: true,
                        });
                    }
                }
            }
        }};
    }

    let mut loop_iters: u64 = 0;
    while remaining > 0 {
        if tick > config.max_ticks {
            return Err(RunError::TickLimit(config.max_ticks));
        }
        loop_iters += 1;
        if loop_iters.is_multiple_of(crate::control::CHECK_EVERY) {
            if let Some(ctl) = control {
                ctl.checkpoint(loop_iters)?;
            }
        }

        // ---- phase 0: crashes scheduled at this tick (before deliveries
        // and computes, matching the event engine's crash-first order) ----
        while let Some(&(at, proc)) = crash_sched.last() {
            if at > tick {
                break;
            }
            crash_sched.pop();
            let p = proc as usize;
            let f = frt.as_ref().expect("crash implies fault plan");
            if crashed[p] {
                continue;
            }
            crashed[p] = true;
            fstats.crashed_procs += 1;
            let pt = &hot.procs[p];
            fstats.lost_copies += pt.cells.len() as u32;
            // Forfeit uncomputed pebbles, including any in flight.
            let forfeited: u64 = soa.next_step[lay.copy_off[p]..lay.copy_off[p + 1]]
                .iter()
                .map(|&ns| (steps + 1 - ns) as u64)
                .sum();
            remaining -= forfeited;
            total_forfeited += forfeited;
            ctls[p].pending = None;
            soa.ready[lay.rw_off[p]..lay.rw_off[p + 1]].fill(0);

            // A column whose every copy is gone is unrecoverable.
            for &c in &pt.cells {
                let alive = assign.holders(c).iter().any(|&q| !crashed[q as usize]);
                if !alive {
                    return Err(RunError::ColumnLost { cell: c, tick });
                }
            }

            // Re-subscribe every consumer this processor was serving to
            // the nearest surviving holder (the paper's redundancy,
            // exploited for recovery).
            let mut orphans: Vec<(u32, NodeId, u32)> = Vec::new();
            for (sid, sub) in rt.subs.iter().enumerate() {
                if sub.source == proc && !crashed[sub.dest as usize] {
                    orphans.push((sub.cell, sub.dest, hot.sub_dest_dep[sid]));
                }
            }
            for ds in &dyn_subs {
                if ds.source == proc && !crashed[ds.dest as usize] {
                    orphans.push((ds.cell, ds.dest, ds.dest_dep));
                }
            }
            if !orphans.is_empty() && dyn_out.is_empty() {
                dyn_out = vec![Vec::new(); total_copies];
            }
            let mut sp_cache: HashMap<NodeId, overlap_net::paths::PathResult> = HashMap::new();
            for (cell, dest, dest_dep) in orphans {
                let sp = sp_cache.entry(dest).or_insert_with(|| dijkstra(host, dest));
                let best = assign
                    .holders(cell)
                    .iter()
                    .copied()
                    .filter(|&q| !crashed[q as usize])
                    .min_by_key(|&q| (sp.dist[q as usize], q))
                    .expect("surviving holder checked above");
                let Some(mut path) = sp.path_to(best) else {
                    return Err(RunError::NoRouteToHolder {
                        cell,
                        holder: best,
                        consumer: dest,
                        tick,
                    });
                };
                path.reverse();
                let links: Vec<u32> = path.windows(2).map(|w| f.link_ids[&(w[0], w[1])]).collect();
                let nhops = links.len() as u64;
                let src_pt = &hot.procs[best as usize];
                let pos = src_pt
                    .cells
                    .binary_search(&cell)
                    .expect("holder holds cell");
                let src_cid = lay.copy_off[best as usize] + pos;
                let sid = (n_orig_subs + dyn_subs.len()) as u32;
                let computed = soa.next_step[src_cid] - 1;
                dyn_subs.push(DynSub {
                    cell,
                    source: best,
                    dest,
                    dest_dep,
                    links,
                });
                dyn_out[src_cid].push(sid);
                fstats.rerouted_subscriptions += 1;
                // Backfill pebbles the consumer may still be missing, from
                // its contiguous watermark up to the new source's progress;
                // duplicate deliveries are idempotent.
                let w = soa.dep_watermark[lay.dep_off[dest as usize] + dest_dep as usize];
                for s2 in (w + 1)..=computed {
                    let value = soa.history[src_cid * stride + s2 as usize];
                    messages += 1;
                    pebble_hops += nhops;
                    send_hop!(tick, sid, 1u16, s2, value, 0u32);
                }
            }
        }

        // ---- phase 1: deliveries scheduled for this tick ----
        if let Some(deliveries) = calendar.remove(&tick) {
            // Retry timed-out sends and forward non-final hops
            // sequentially (link arbitration); collect final-hop
            // deliveries grouped by destination.
            let mut finals: HashMap<u32, Vec<Delivery>> = HashMap::new();
            for d in deliveries {
                if d.resend {
                    send_hop!(tick, d.sub, d.hop, d.step, d.value, d.attempt);
                    continue;
                }
                let nlinks = sub_nlinks!(d.sub);
                if (d.hop as usize) < nlinks {
                    // Intermediate processors store-and-forward even if
                    // crashed: the fabric outlives the workstation.
                    send_hop!(tick, d.sub, d.hop + 1, d.step, d.value, 0u32);
                } else {
                    let dest = if (d.sub as usize) < n_orig_subs {
                        hot.sub_dest[d.sub as usize]
                    } else {
                        dyn_subs[d.sub as usize - n_orig_subs].dest
                    };
                    if !(frt.is_some() && crashed[dest as usize]) {
                        finals.entry(dest).or_default().push(d);
                    }
                }
            }
            // Apply final deliveries in parallel over destinations.
            let mut by_dest: Vec<(u32, Vec<Delivery>)> = finals.into_iter().collect();
            by_dest.sort_unstable_by_key(|e| e.0);
            let dyn_ref = &dyn_subs;
            let lay_ref = &lay;
            let mut views = split_views(&mut soa, &mut ctls, &lay);
            views.par_iter_mut().enumerate().for_each(|(pid, v)| {
                let Ok(ix) = by_dest.binary_search_by_key(&(pid as u32), |e| e.0) else {
                    return;
                };
                let pt = &hot.procs[pid];
                for d in &by_dest[ix].1 {
                    let k = if (d.sub as usize) < n_orig_subs {
                        hot.sub_dest_dep[d.sub as usize] as usize
                    } else {
                        dyn_ref[d.sub as usize - n_orig_subs].dest_dep as usize
                    };
                    v.deliver_dep(k, d.step, d.value, steps, lay_ref);
                    for idx in pt.dep_dep_off[k] as usize..pt.dep_dep_off[k + 1] as usize {
                        let j = pt.dep_dependents[idx] as usize;
                        v.requeue(pt, j, steps);
                    }
                }
            });
        }

        // ---- phase 2: parallel compute (≤ 1 pebble per processor; a
        // cost-`c` pebble occupies the processor for `c` ticks) ----
        let crashed_ref = &crashed;
        let mut views = split_views(&mut soa, &mut ctls, &lay);
        let computed: u64 = views
            .par_iter_mut()
            .enumerate()
            .map(|(pid, v)| {
                if !crashed_ref.is_empty() && crashed_ref[pid] {
                    return 0u64;
                }
                let pt = &hot.procs[pid];
                let i = match v.ctl.pending {
                    Some((i, fin)) if fin == tick => {
                        v.ctl.pending = None;
                        i as usize
                    }
                    Some(_) => return 0, // still in flight
                    None => {
                        let Some(i) = v.pop_min() else {
                            return 0;
                        };
                        let mut c = cost_of(pid);
                        if has_task_costs {
                            let s = v.next_step[i as usize];
                            c *= guest.task_cost(pt.cells[i as usize], s) as u64;
                        }
                        if let Some(m) = v.ctl.mem.as_mut() {
                            c += m.touch(i as usize);
                        }
                        if c > 1 {
                            v.ctl.pending = Some((i, tick + c - 1));
                            return 0;
                        }
                        i as usize
                    }
                };
                let cell = pt.cells[i];
                let s = v.next_step[i];
                let sm1 = s as usize - 1;
                let gather = pt.gather_at(i, s);
                let mut deps_buf = Vec::with_capacity(gather.len());
                for &src in gather {
                    deps_buf.push(match src {
                        DepSrc::Boundary { side, offset } => boundary.value(side, offset, s),
                        DepSrc::Own(j) => v.history[j as usize * stride + sm1],
                        DepSrc::Sub(k) => v.dep_values[k as usize * stride + sm1],
                    });
                }
                let (val, u) = if has_relays && guest.is_relay(cell, s) {
                    (deps_buf[0], overlap_model::DbUpdate::None)
                } else {
                    program.compute(cell, s, &v.dbs[i], &deps_buf)
                };
                v.dbs[i].apply(&u);
                v.history[i * stride + s as usize] = val;
                v.value_fold[i] = fold64(v.value_fold[i], val);
                v.update_fold[i] = fold64(v.update_fold[i], u.digest());
                v.next_step[i] = s + 1;
                bit_clear(v.queued, i);
                if s == steps {
                    v.finished_at[i] = tick + 1;
                }
                v.ctl.outbox.push((i as u32, s, val));
                // Unblock self and local dependents.
                v.requeue(pt, i, steps);
                for idx in pt.own_dep_off[i] as usize..pt.own_dep_off[i + 1] as usize {
                    let j = pt.own_dependents[idx] as usize;
                    v.requeue(pt, j, steps);
                }
                1
            })
            .sum();
        drop(views);
        if computed > 0 {
            remaining -= computed;
            makespan = tick + 1;
        }

        // ---- phase 3: deterministic sends over the plan's route lists ----
        for (p, ctl) in ctls.iter_mut().enumerate() {
            if ctl.outbox.is_empty() {
                continue;
            }
            let outbox = std::mem::take(&mut ctl.outbox);
            for (i, step, value) in outbox {
                let cid = lay.copy_off[p] + i as usize;
                for &sid in &hot.out_ids[hot.out_off[cid] as usize..hot.out_off[cid + 1] as usize] {
                    messages += 1;
                    pebble_hops += sub_nlinks!(sid) as u64;
                    send_hop!(tick + 1, sid, 1u16, step, value, 0u32);
                }
                if !dyn_out.is_empty() {
                    for &dsid in &dyn_out[cid].clone() {
                        messages += 1;
                        pebble_hops += sub_nlinks!(dsid) as u64;
                        send_hop!(tick + 1, dsid, 1u16, step, value, 0u32);
                    }
                }
            }
        }

        // ---- advance, skipping dead time ----
        if remaining == 0 {
            break;
        }
        let any_work =
            soa.ready.iter().any(|&w| w != 0) || ctls.iter().any(|c| c.pending.is_some());
        tick = if any_work {
            tick + 1
        } else {
            let next_cal = calendar.keys().next().copied();
            let next_crash = crash_sched.last().map(|&(at, _)| at);
            match (next_cal, next_crash) {
                (None, None) => {
                    return Err(RunError::Deadlock { tick, remaining });
                }
                (a, b) => a.into_iter().chain(b).min().unwrap().max(tick + 1),
            }
        };
    }

    // Crashes scheduled beyond the last pebble still destroy their
    // processor's databases (matching the event engine): the surviving
    // set depends only on the fault plan, never on this engine's makespan.
    if let Some(f) = frt.as_ref() {
        for (_, proc) in crash_sched.drain(..) {
            let p = proc as usize;
            if !crashed[p] {
                crashed[p] = true;
                fstats.crashed_procs += 1;
                fstats.lost_copies += hot.procs[p].cells.len() as u32;
            }
        }
        debug_assert!(f
            .crash_at
            .iter()
            .enumerate()
            .all(|(p, &at)| { at == u64::MAX || crashed[p] }));
    }

    // ---- collect (crashed processors' copies are lost) ----
    let mut copies = Vec::with_capacity(assign.total_copies());
    for (p, pt) in hot.procs.iter().enumerate() {
        if frt.is_some() && crashed[p] {
            continue;
        }
        for (i, &c) in pt.cells.iter().enumerate() {
            let cid = lay.copy_off[p] + i;
            copies.push(CopyRecord {
                cell: c,
                proc: p as NodeId,
                value_fold: soa.value_fold[cid],
                db_digest: soa.dbs[cid].digest(),
                update_fold: soa.update_fold[cid],
                finished_at: soa.finished_at[cid],
            });
        }
    }
    let stats = RunStats {
        guest_cells: guest.num_cells(),
        guest_steps: steps,
        host_procs: n,
        makespan,
        slowdown: if steps == 0 {
            0.0
        } else {
            makespan as f64 / steps as f64
        },
        total_compute: total_compute - total_forfeited,
        guest_work: guest.total_work(),
        redundancy: assign.redundancy(),
        load: assign.load(),
        active_procs: assign.active_procs(),
        messages,
        pebble_hops,
        subscriptions: plan.num_subscriptions(),
        bandwidth_per_link: bw as u32,
        busiest_link_pebbles: 0,
        mean_link_pebbles: 0.0,
        events_processed: 0,
        peak_queue_depth: 0,
        queue_clamped_pushes: 0,
        faults: fstats,
        stalls: None,
        mem: {
            let mut m = crate::stats::MemStats::default();
            for c in &ctls {
                if let Some(l) = &c.mem {
                    m.evictions += l.evictions;
                    m.reloads += l.reloads;
                    m.reload_ticks += l.reload_ticks;
                }
            }
            m
        },
    };
    Ok(RunOutcome {
        stats,
        copies,
        timing: None,
        trace: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::Assignment;
    use crate::engine::{Engine, EngineConfig};
    use crate::faults::FaultPlan;
    use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
    use overlap_net::topology::{linear_array, mesh2d};
    use overlap_net::DelayModel;
    use overlap_net::HostGraph;

    fn differential(guest: &GuestSpec, host: &HostGraph, assign: &Assignment) {
        let cfg = EngineConfig::default();
        let plan = ExecPlan::build(guest, host, assign, cfg).expect("plan");
        let ev = Engine::from_plan(&plan).run().expect("event");
        let st = run_stepped(&plan).expect("stepped");
        // State must agree exactly (sorted copy records).
        let mut a = ev.copies.clone();
        let mut b = st.copies.clone();
        a.sort_by_key(|c| (c.cell, c.proc));
        b.sort_by_key(|c| (c.cell, c.proc));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.cell, x.proc), (y.cell, y.proc));
            assert_eq!(x.value_fold, y.value_fold, "values {x:?} vs {y:?}");
            assert_eq!(x.db_digest, y.db_digest);
            assert_eq!(x.update_fold, y.update_fold);
        }
        // Both engines validate against the reference.
        let trace = ReferenceRun::execute(guest);
        assert!(crate::validate::validate_run(&trace, &ev).is_empty());
        assert!(crate::validate::validate_run(&trace, &st).is_empty());
        // Makespans agree within scheduling slack.
        let (m1, m2) = (ev.stats.makespan as f64, st.stats.makespan as f64);
        assert!(
            (m1 - m2).abs() <= 0.25 * m1.max(m2) + 4.0,
            "makespans diverge: event {m1} vs stepped {m2}"
        );
        assert_eq!(ev.stats.messages, st.stats.messages);
        assert_eq!(ev.stats.total_compute, st.stats.total_compute);
    }

    #[test]
    fn engines_agree_on_blocked_line() {
        let guest = GuestSpec::array(16, ProgramKind::KvWorkload, 7, 12);
        let host = linear_array(4, DelayModel::uniform(1, 9), 3);
        differential(&guest, &host, &Assignment::blocked(4, 16));
    }

    #[test]
    fn engines_agree_on_redundant_assignments() {
        let guest = GuestSpec::array(12, ProgramKind::RuleAutomaton { db_size: 8 }, 5, 10);
        let host = linear_array(3, DelayModel::constant(12), 0);
        let assign = Assignment::from_cells_of(
            3,
            12,
            vec![
                vec![0, 1, 2, 3, 4, 5],
                vec![4, 5, 6, 7, 8, 9],
                vec![8, 9, 10, 11],
            ],
        );
        differential(&guest, &host, &assign);
    }

    #[test]
    fn engines_agree_on_mesh_guest_and_mesh_host() {
        let guest = GuestSpec::mesh(6, 4, ProgramKind::Relaxation, 2, 8);
        let host = mesh2d(2, 3, DelayModel::uniform(1, 6), 4);
        // strips over the 6 hosts
        let strips = overlap_model::mesh_columns(6, 4);
        let cells_of: Vec<Vec<u32>> = strips.slots.clone();
        differential(&guest, &host, &Assignment::from_cells_of(6, 24, cells_of));
    }

    #[test]
    fn engines_agree_on_ring_guests() {
        let guest = GuestSpec::ring(14, ProgramKind::KvWorkload, 9, 9);
        let host = linear_array(7, DelayModel::uniform(1, 20), 5);
        let fold = overlap_model::ring_fold(14);
        differential(
            &guest,
            &host,
            &Assignment::from_cells_of(7, 14, fold.slots.clone()),
        );
    }

    #[test]
    fn engines_agree_under_compute_costs() {
        let guest = GuestSpec::array(12, ProgramKind::KvWorkload, 3, 10);
        let host = linear_array(4, DelayModel::uniform(1, 8), 2);
        let assign = Assignment::blocked(4, 12);
        let costs = vec![1u32, 3, 2, 1];
        let plan = ExecPlan::build(&guest, &host, &assign, EngineConfig::default())
            .unwrap()
            .with_compute_costs(costs.clone());
        let ev = Engine::from_plan(&plan).run().expect("event");
        let st = run_stepped(&plan).expect("stepped");
        let mut a = ev.copies.clone();
        let mut b = st.copies.clone();
        a.sort_by_key(|c| (c.cell, c.proc));
        b.sort_by_key(|c| (c.cell, c.proc));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.value_fold, y.value_fold);
            assert_eq!(x.db_digest, y.db_digest);
        }
        // Costs slow the run down relative to unit speed.
        let unit = ExecPlan::build(&guest, &host, &assign, EngineConfig::default()).unwrap();
        let fast = run_stepped(&unit).expect("unit stepped");
        assert!(st.stats.makespan > fast.stats.makespan);
        let trace = ReferenceRun::execute(&guest);
        assert!(crate::validate::validate_run(&trace, &st).is_empty());
    }

    #[test]
    fn stepped_retries_through_link_outage() {
        let guest = GuestSpec::array(8, ProgramKind::StencilSum, 1, 8);
        let host = linear_array(4, DelayModel::constant(3), 0);
        let assign = Assignment::blocked(4, 8);
        let faults = FaultPlan::new().link_down(1, 2, 5, 30);
        let plan = ExecPlan::build(&guest, &host, &assign, EngineConfig::default())
            .unwrap()
            .with_faults(faults)
            .unwrap();
        let out = run_stepped(&plan).expect("survives outage");
        assert!(out.stats.faults.retries > 0, "outage must force retries");
        let clean = ExecPlan::build(&guest, &host, &assign, EngineConfig::default()).unwrap();
        let base = run_stepped(&clean).unwrap();
        assert!(out.stats.makespan >= base.stats.makespan);
        let trace = ReferenceRun::execute(&guest);
        assert!(crate::validate::validate_run(&trace, &out).is_empty());
    }

    #[test]
    fn stepped_survives_crash_with_redundancy() {
        // Middle columns held twice: crashing one holder reroutes its
        // consumers to the surviving copy.
        let guest = GuestSpec::array(8, ProgramKind::KvWorkload, 11, 12);
        let host = linear_array(3, DelayModel::constant(4), 0);
        let assign = Assignment::from_cells_of(
            3,
            8,
            vec![vec![0, 1, 2, 3], vec![2, 3, 4, 5], vec![4, 5, 6, 7]],
        );
        let faults = FaultPlan::new().crash(1, 20);
        let plan = ExecPlan::build(&guest, &host, &assign, EngineConfig::default())
            .unwrap()
            .with_faults(faults)
            .unwrap();
        let out = run_stepped(&plan).expect("crash is survivable");
        assert_eq!(out.stats.faults.crashed_procs, 1);
        assert!(out.stats.faults.rerouted_subscriptions > 0);
        // Surviving copies still validate against the reference.
        let trace = ReferenceRun::execute(&guest);
        assert!(crate::validate::validate_run(&trace, &out).is_empty());
    }

    #[test]
    fn stepped_reports_column_lost_without_redundancy() {
        let guest = GuestSpec::array(8, ProgramKind::StencilSum, 0, 10);
        let host = linear_array(4, DelayModel::constant(2), 0);
        let assign = Assignment::blocked(4, 8);
        let faults = FaultPlan::new().crash(2, 6);
        let plan = ExecPlan::build(&guest, &host, &assign, EngineConfig::default())
            .unwrap()
            .with_faults(faults)
            .unwrap();
        let err = run_stepped(&plan).unwrap_err();
        assert!(matches!(err, RunError::ColumnLost { .. }), "{err:?}");
    }

    #[test]
    fn incomplete_assignment_fails_at_plan_build() {
        let guest = GuestSpec::array(4, ProgramKind::StencilSum, 0, 2);
        let host = linear_array(2, DelayModel::constant(1), 0);
        let assign = Assignment::from_cells_of(2, 4, vec![vec![0, 1], vec![3]]);
        let err = ExecPlan::build(&guest, &host, &assign, EngineConfig::default()).unwrap_err();
        assert_eq!(err, RunError::IncompleteAssignment(vec![2]));
    }

    #[test]
    fn stepped_engine_rejects_multicast_config() {
        let guest = GuestSpec::array(4, ProgramKind::StencilSum, 0, 2);
        let host = linear_array(2, DelayModel::constant(1), 0);
        let cfg = EngineConfig {
            multicast: true,
            ..Default::default()
        };
        let assign = Assignment::blocked(2, 4);
        let plan = ExecPlan::build(&guest, &host, &assign, cfg).unwrap();
        let err = run_stepped(&plan).unwrap_err();
        assert!(
            matches!(
                err,
                RunError::UnsupportedFeature {
                    engine: "stepped",
                    feature: "multicast routing",
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn stepped_engine_zero_steps() {
        let guest = GuestSpec::array(4, ProgramKind::StencilSum, 0, 0);
        let host = linear_array(2, DelayModel::constant(5), 0);
        let assign = Assignment::blocked(2, 4);
        let plan = ExecPlan::build(&guest, &host, &assign, EngineConfig::default()).unwrap();
        let out = run_stepped(&plan).unwrap();
        assert_eq!(out.stats.makespan, 0);
    }

    /// The bitset watermark advance must agree with the naive per-step
    /// boolean walk for every receipt pattern, including runs crossing
    /// word boundaries.
    #[test]
    fn watermark_advance_matches_naive_walk() {
        let steps: u32 = 150; // three words of receipt bits
        let stride = steps as usize + 1;
        let row_words = stride.div_ceil(64);
        let lay = Layout {
            copy_off: vec![0, 1],
            dep_off: vec![0, 1],
            rw_off: vec![0, 1],
            stride,
            row_words,
        };
        let mut rng: u64 = 0x5EED;
        for _ in 0..50 {
            let mut soa = SoA {
                next_step: vec![1],
                value_fold: vec![0],
                update_fold: vec![0],
                finished_at: vec![0],
                history: vec![0; stride],
                dbs: vec![overlap_model::DbKind::Counter.instantiate(1, 0)],
                dep_values: vec![0; stride],
                dep_watermark: vec![0],
                dep_have: vec![0; row_words],
                ready: vec![0],
                queued: vec![0],
            };
            soa.dep_have[0] |= 1; // step 0 seeded
            let mut have = vec![false; stride];
            have[0] = true;
            // Deliver a random subset in random order.
            let mut order: Vec<u32> = (1..=steps).collect();
            for i in (1..order.len()).rev() {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                order.swap(i, (rng >> 33) as usize % (i + 1));
            }
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let keep = (rng >> 33) as usize % order.len();
            let mut ctls = [Ctl {
                pending: None,
                outbox: Vec::new(),
                mem: None,
            }];
            for &s in &order[..keep] {
                have[s as usize] = true;
                let mut views = split_views(&mut soa, &mut ctls, &lay);
                views[0].deliver_dep(0, s, 7, steps, &lay);
                let mut w = 0u32;
                while (w as usize) < steps as usize && have[w as usize + 1] {
                    w += 1;
                }
                assert_eq!(views[0].dep_watermark[0], w, "after delivering {s}");
            }
        }
    }
}
