//! A parallel time-stepped engine, for differential testing against the
//! event-driven [`crate::engine`].
//!
//! The simulation advances in global ticks. Each tick has three phases:
//!
//! 1. **deliver** — pebbles arriving now are written into the destination
//!    processors' dependency buffers (parallel over destinations);
//! 2. **compute** — every processor with a ready pebble computes exactly
//!    one (parallel over processors with rayon; each touches only its own
//!    state and emits an outbox);
//! 3. **send** — outboxes are injected into links in processor-id order
//!    (deterministic bandwidth arbitration), scheduling future arrivals.
//!
//! Empty stretches are skipped by jumping to the next calendar event.
//!
//! Both engines execute *legal schedules* of the same model, so they must
//! agree **exactly** on every computed value, database state and update
//! log (checked by [`crate::validate`] and differential tests); their
//! makespans may differ slightly because tie-breaking differs, but both
//! respect the same lower bounds. Agreement of the two independent
//! implementations on all state is the workspace's strongest defence
//! against engine bugs.

use crate::assignment::Assignment;
use crate::engine::{CopyRecord, EngineConfig, RunError, RunOutcome};
use crate::routing::RoutingTable;
use crate::stats::RunStats;
use overlap_model::{fold64, Db, Dep, GuestSpec, PebbleValue, ProgramRef};
use overlap_net::{Delay, HostGraph, NodeId};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

/// One scheduled arrival.
#[derive(Debug, Clone, Copy)]
struct Delivery {
    sub: u32,
    hop: u16,
    step: u32,
    value: PebbleValue,
}

/// Per-processor state (the stepped twin of the event engine's).
struct Proc {
    cells: Vec<u32>,
    next_step: Vec<u32>,
    history: Vec<Vec<PebbleValue>>,
    dbs: Vec<Db>,
    value_fold: Vec<u64>,
    update_fold: Vec<u64>,
    finished_at: Vec<u64>,
    dep_values: Vec<Vec<PebbleValue>>,
    dep_have: Vec<Vec<bool>>,
    dep_watermark: Vec<u32>,
    own_pos: HashMap<u32, u32>,
    dep_pos: HashMap<u32, u32>,
    own_dependents: Vec<Vec<u32>>,
    dep_dependents: Vec<Vec<u32>>,
    ready: BinaryHeap<Reverse<(u32, u32)>>,
    queued: Vec<bool>,
    /// Pebbles sent this tick: (cell, step, value).
    outbox: Vec<(u32, u32, PebbleValue)>,
}

impl Proc {
    fn is_ready(&self, i: usize, steps: u32, topo: &overlap_model::GuestTopology) -> bool {
        let s = self.next_step[i];
        if s > steps {
            return false;
        }
        let c = self.cells[i];
        for d in topo.deps(c).iter() {
            match d {
                Dep::Boundary { .. } => {}
                Dep::Cell(c2) => {
                    if c2 == c {
                        continue;
                    }
                    if let Some(&j) = self.own_pos.get(&c2) {
                        if self.next_step[j as usize] < s {
                            return false;
                        }
                    } else {
                        let k = self.dep_pos[&c2] as usize;
                        if self.dep_watermark[k] < s - 1 {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    fn requeue(&mut self, i: usize, steps: u32, topo: &overlap_model::GuestTopology) {
        if !self.queued[i] && self.is_ready(i, steps, topo) {
            self.ready.push(Reverse((self.next_step[i], i as u32)));
            self.queued[i] = true;
        }
    }
}

/// Directed-link injection slot (same arbitration as the event engine).
#[derive(Clone, Copy, Default)]
struct LinkSlot {
    tick: u64,
    count: u32,
}

fn inject(slot: &mut LinkSlot, now: u64, bw: u64) -> u64 {
    if slot.tick < now {
        slot.tick = now;
        slot.count = 0;
    }
    if (slot.count as u64) < bw {
        slot.count += 1;
    } else {
        slot.tick += 1;
        slot.count = 1;
    }
    slot.tick
}

/// Run the time-stepped engine. Accepts the same inputs as
/// [`crate::engine::Engine`] and produces the same outcome shape.
pub fn run_stepped(
    guest: &GuestSpec,
    host: &HostGraph,
    assign: &Assignment,
    config: EngineConfig,
) -> Result<RunOutcome, RunError> {
    assert!(
        !config.multicast && config.jitter == crate::engine::Jitter::None,
        "the stepped engine implements the default configuration \
         (unicast, fixed delays); use the event engine for multicast/jitter"
    );
    let uncovered = assign.uncovered_cells();
    if !uncovered.is_empty() {
        return Err(RunError::IncompleteAssignment(uncovered));
    }
    let routing = RoutingTable::build(host, &guest.topology, assign);
    let n = host.num_nodes();
    let steps = guest.steps;
    let topo = guest.topology;
    let program: ProgramRef = guest.program.instantiate();
    let boundary = guest.boundary();
    let bw = config.bandwidth.per_tick(n) as u64;

    // ---- processor states ----
    let mut procs: Vec<Proc> = (0..n)
        .map(|p| {
            let cells = assign.cells_of(p).to_vec();
            let own_pos: HashMap<u32, u32> = cells
                .iter()
                .enumerate()
                .map(|(i, &c)| (c, i as u32))
                .collect();
            let dep_cells: Vec<u32> = routing.inbound[p as usize]
                .iter()
                .map(|&(c, _)| c)
                .collect();
            let dep_pos: HashMap<u32, u32> = dep_cells
                .iter()
                .enumerate()
                .map(|(i, &c)| (c, i as u32))
                .collect();
            let mut own_dependents = vec![Vec::new(); cells.len()];
            let mut dep_dependents = vec![Vec::new(); dep_cells.len()];
            for (i, &c) in cells.iter().enumerate() {
                for d in topo.deps(c).iter() {
                    if let Dep::Cell(c2) = d {
                        if c2 == c {
                            continue;
                        }
                        if let Some(&j) = own_pos.get(&c2) {
                            own_dependents[j as usize].push(i as u32);
                        } else if let Some(&k) = dep_pos.get(&c2) {
                            dep_dependents[k as usize].push(i as u32);
                        }
                    }
                }
            }
            let kind = program.db_kind();
            Proc {
                next_step: vec![1; cells.len()],
                history: cells
                    .iter()
                    .map(|&c| {
                        let mut h = vec![0; steps as usize + 1];
                        h[0] = guest.initial_value(c);
                        h
                    })
                    .collect(),
                dbs: cells
                    .iter()
                    .map(|&c| kind.instantiate(c, guest.seed))
                    .collect(),
                value_fold: vec![0xF01Du64; cells.len()],
                update_fold: vec![0xD16u64; cells.len()],
                finished_at: vec![0; cells.len()],
                dep_values: dep_cells
                    .iter()
                    .map(|&c| {
                        let mut v = vec![0; steps as usize + 1];
                        v[0] = guest.initial_value(c);
                        v
                    })
                    .collect(),
                dep_have: dep_cells
                    .iter()
                    .map(|_| {
                        let mut h = vec![false; steps as usize + 1];
                        h[0] = true;
                        h
                    })
                    .collect(),
                dep_watermark: vec![0; dep_cells.len()],
                own_dependents,
                dep_dependents,
                ready: BinaryHeap::new(),
                queued: vec![false; cells.len()],
                outbox: Vec::new(),
                cells,
                own_pos,
                dep_pos,
            }
        })
        .collect();

    // ---- links ----
    let mut link_ids: HashMap<(NodeId, NodeId), u32> = HashMap::new();
    let mut link_delay: Vec<Delay> = Vec::new();
    for l in host.links() {
        for (u, v) in [(l.a, l.b), (l.b, l.a)] {
            link_ids.insert((u, v), link_delay.len() as u32);
            link_delay.push(l.delay);
        }
    }
    let mut link_slots: Vec<LinkSlot> = vec![LinkSlot::default(); link_delay.len()];

    // ---- seed ready queues ----
    for p in procs.iter_mut() {
        for i in 0..p.cells.len() {
            p.requeue(i, steps, &topo);
        }
    }

    let mut remaining: u64 = procs
        .iter()
        .map(|p| p.cells.len() as u64 * steps as u64)
        .sum();
    let total_compute = remaining;
    let mut calendar: BTreeMap<u64, Vec<Delivery>> = BTreeMap::new();
    let mut makespan = 0u64;
    let mut messages = 0u64;
    let mut pebble_hops = 0u64;
    let mut tick: u64 = 0;

    while remaining > 0 {
        if tick > config.max_ticks {
            return Err(RunError::TickLimit(config.max_ticks));
        }
        // ---- phase 1: deliveries scheduled for this tick ----
        if let Some(deliveries) = calendar.remove(&tick) {
            // Forward non-final hops sequentially (link arbitration),
            // collect final-hop deliveries grouped by destination.
            let mut finals: HashMap<u32, Vec<Delivery>> = HashMap::new();
            for d in deliveries {
                let sub = &routing.subs[d.sub as usize];
                let at = d.hop as usize;
                if at + 1 < sub.path.len() {
                    let lid = link_ids[&(sub.path[at], sub.path[at + 1])];
                    let depart = inject(&mut link_slots[lid as usize], tick, bw);
                    calendar
                        .entry(depart + link_delay[lid as usize])
                        .or_default()
                        .push(Delivery {
                            hop: d.hop + 1,
                            ..d
                        });
                } else {
                    finals.entry(sub.dest).or_default().push(d);
                }
            }
            // Apply final deliveries in parallel over destinations.
            let mut by_dest: Vec<(u32, Vec<Delivery>)> = finals.into_iter().collect();
            by_dest.sort_unstable_by_key(|e| e.0);
            // Split-borrow procs via raw indexing: each destination is
            // unique, so parallel mutation is safe through par chunks.
            procs.par_iter_mut().enumerate().for_each(|(pid, proc_)| {
                if let Ok(ix) = by_dest.binary_search_by_key(&(pid as u32), |e| e.0) {
                    for d in &by_dest[ix].1 {
                        let cell = routing.subs[d.sub as usize].cell;
                        let k = proc_.dep_pos[&cell] as usize;
                        proc_.dep_values[k][d.step as usize] = d.value;
                        proc_.dep_have[k][d.step as usize] = true;
                        while (proc_.dep_watermark[k] as usize) < steps as usize
                            && proc_.dep_have[k][proc_.dep_watermark[k] as usize + 1]
                        {
                            proc_.dep_watermark[k] += 1;
                        }
                        let dependents = proc_.dep_dependents[k].clone();
                        for j in dependents {
                            proc_.requeue(j as usize, steps, &topo);
                        }
                    }
                }
            });
        }

        // ---- phase 2: parallel compute (≤ 1 pebble per processor) ----
        let computed: u64 = procs
            .par_iter_mut()
            .map(|proc_| {
                let Some(Reverse((_s, i))) = proc_.ready.pop() else {
                    return 0u64;
                };
                let i = i as usize;
                let cell = proc_.cells[i];
                let s = proc_.next_step[i];
                let mut deps_buf = Vec::with_capacity(topo.max_deps());
                for d in topo.deps(cell).iter() {
                    deps_buf.push(match d {
                        Dep::Boundary { side, offset } => boundary.value(side, offset, s),
                        Dep::Cell(c2) => {
                            if let Some(&j) = proc_.own_pos.get(&c2) {
                                proc_.history[j as usize][s as usize - 1]
                            } else {
                                let k = proc_.dep_pos[&c2] as usize;
                                proc_.dep_values[k][s as usize - 1]
                            }
                        }
                    });
                }
                let (v, u) = program.compute(cell, s, &proc_.dbs[i], &deps_buf);
                proc_.dbs[i].apply(&u);
                proc_.history[i][s as usize] = v;
                proc_.value_fold[i] = fold64(proc_.value_fold[i], v);
                proc_.update_fold[i] = fold64(proc_.update_fold[i], u.digest());
                proc_.next_step[i] = s + 1;
                proc_.queued[i] = false;
                if s == steps {
                    proc_.finished_at[i] = tick + 1;
                }
                proc_.outbox.push((cell, s, v));
                // Unblock self and local dependents.
                proc_.requeue(i, steps, &topo);
                let deps = proc_.own_dependents[i].clone();
                for j in deps {
                    proc_.requeue(j as usize, steps, &topo);
                }
                1
            })
            .sum();
        if computed > 0 {
            remaining -= computed;
            makespan = tick + 1;
        }

        // ---- phase 3: deterministic sends ----
        for (p, proc) in procs.iter_mut().enumerate() {
            if proc.outbox.is_empty() {
                continue;
            }
            let outbox = std::mem::take(&mut proc.outbox);
            for (cell, step, value) in outbox {
                for &sid in &routing.outbound[p] {
                    let sub = &routing.subs[sid as usize];
                    if sub.cell != cell {
                        continue;
                    }
                    messages += 1;
                    pebble_hops += sub.path.len() as u64 - 1;
                    let lid = link_ids[&(sub.path[0], sub.path[1])];
                    let depart = inject(&mut link_slots[lid as usize], tick + 1, bw);
                    calendar
                        .entry(depart + link_delay[lid as usize])
                        .or_default()
                        .push(Delivery {
                            sub: sid,
                            hop: 1,
                            step,
                            value,
                        });
                }
            }
        }

        // ---- advance, skipping dead time ----
        let any_ready = procs.iter().any(|p| !p.ready.is_empty());
        tick = if any_ready {
            tick + 1
        } else if let Some((&next, _)) = calendar.iter().next() {
            next.max(tick + 1)
        } else if remaining > 0 {
            return Err(RunError::Deadlock {
                tick,
                remaining,
            });
        } else {
            tick + 1
        };
    }

    // ---- collect ----
    let mut copies = Vec::with_capacity(assign.total_copies());
    for (p, pr) in procs.iter().enumerate() {
        for (i, &c) in pr.cells.iter().enumerate() {
            copies.push(CopyRecord {
                cell: c,
                proc: p as NodeId,
                value_fold: pr.value_fold[i],
                db_digest: pr.dbs[i].digest(),
                update_fold: pr.update_fold[i],
                finished_at: pr.finished_at[i],
            });
        }
    }
    let stats = RunStats {
        guest_cells: guest.num_cells(),
        guest_steps: steps,
        host_procs: n,
        makespan,
        slowdown: if steps == 0 {
            0.0
        } else {
            makespan as f64 / steps as f64
        },
        total_compute,
        guest_work: guest.total_work(),
        redundancy: assign.redundancy(),
        load: assign.load(),
        active_procs: assign.active_procs(),
        messages,
        pebble_hops,
        subscriptions: routing.num_subscriptions(),
        bandwidth_per_link: bw as u32,
        busiest_link_pebbles: 0,
        mean_link_pebbles: 0.0,
        events_processed: 0,
        peak_queue_depth: 0,
        faults: crate::stats::FaultStats::default(),
        stalls: None,
    };
    Ok(RunOutcome {
        stats,
        copies,
        timing: None,
        trace: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use overlap_model::{GuestSpec, ProgramKind, ReferenceRun};
    use overlap_net::topology::{linear_array, mesh2d};
    use overlap_net::DelayModel;

    fn differential(guest: &GuestSpec, host: &HostGraph, assign: &Assignment) {
        let cfg = EngineConfig::default();
        let ev = Engine::new(guest, host, assign, cfg).run().expect("event");
        let st = run_stepped(guest, host, assign, cfg).expect("stepped");
        // State must agree exactly (sorted copy records).
        let mut a = ev.copies.clone();
        let mut b = st.copies.clone();
        a.sort_by_key(|c| (c.cell, c.proc));
        b.sort_by_key(|c| (c.cell, c.proc));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.cell, x.proc), (y.cell, y.proc));
            assert_eq!(x.value_fold, y.value_fold, "values {x:?} vs {y:?}");
            assert_eq!(x.db_digest, y.db_digest);
            assert_eq!(x.update_fold, y.update_fold);
        }
        // Both engines validate against the reference.
        let trace = ReferenceRun::execute(guest);
        assert!(crate::validate::validate_run(&trace, &ev).is_empty());
        assert!(crate::validate::validate_run(&trace, &st).is_empty());
        // Makespans agree within scheduling slack.
        let (m1, m2) = (ev.stats.makespan as f64, st.stats.makespan as f64);
        assert!(
            (m1 - m2).abs() <= 0.25 * m1.max(m2) + 4.0,
            "makespans diverge: event {m1} vs stepped {m2}"
        );
        assert_eq!(ev.stats.messages, st.stats.messages);
        assert_eq!(ev.stats.total_compute, st.stats.total_compute);
    }

    #[test]
    fn engines_agree_on_blocked_line() {
        let guest = GuestSpec::line(16, ProgramKind::KvWorkload, 7, 12);
        let host = linear_array(4, DelayModel::uniform(1, 9), 3);
        differential(&guest, &host, &Assignment::blocked(4, 16));
    }

    #[test]
    fn engines_agree_on_redundant_assignments() {
        let guest = GuestSpec::line(12, ProgramKind::RuleAutomaton { db_size: 8 }, 5, 10);
        let host = linear_array(3, DelayModel::constant(12), 0);
        let assign = Assignment::from_cells_of(
            3,
            12,
            vec![vec![0, 1, 2, 3, 4, 5], vec![4, 5, 6, 7, 8, 9], vec![8, 9, 10, 11]],
        );
        differential(&guest, &host, &assign);
    }

    #[test]
    fn engines_agree_on_mesh_guest_and_mesh_host() {
        let guest = GuestSpec::mesh(6, 4, ProgramKind::Relaxation, 2, 8);
        let host = mesh2d(2, 3, DelayModel::uniform(1, 6), 4);
        // strips over the 6 hosts
        let strips = overlap_model::mesh_columns(6, 4);
        let cells_of: Vec<Vec<u32>> = strips.slots.clone();
        differential(
            &guest,
            &host,
            &Assignment::from_cells_of(6, 24, cells_of),
        );
    }

    #[test]
    fn engines_agree_on_ring_guests() {
        let guest = GuestSpec::ring(14, ProgramKind::KvWorkload, 9, 9);
        let host = linear_array(7, DelayModel::uniform(1, 20), 5);
        let fold = overlap_model::ring_fold(14);
        differential(
            &guest,
            &host,
            &Assignment::from_cells_of(7, 14, fold.slots.clone()),
        );
    }

    #[test]
    fn stepped_engine_rejects_incomplete_assignment() {
        let guest = GuestSpec::line(4, ProgramKind::StencilSum, 0, 2);
        let host = linear_array(2, DelayModel::constant(1), 0);
        let assign = Assignment::from_cells_of(2, 4, vec![vec![0, 1], vec![3]]);
        let err = run_stepped(&guest, &host, &assign, EngineConfig::default()).unwrap_err();
        assert_eq!(err, RunError::IncompleteAssignment(vec![2]));
    }

    #[test]
    #[should_panic(expected = "stepped engine implements the default")]
    fn stepped_engine_rejects_multicast_config() {
        let guest = GuestSpec::line(4, ProgramKind::StencilSum, 0, 2);
        let host = linear_array(2, DelayModel::constant(1), 0);
        let cfg = EngineConfig {
            multicast: true,
            ..Default::default()
        };
        let _ = run_stepped(&guest, &host, &Assignment::blocked(2, 4), cfg);
    }

    #[test]
    fn stepped_engine_zero_steps() {
        let guest = GuestSpec::line(4, ProgramKind::StencilSum, 0, 0);
        let host = linear_array(2, DelayModel::constant(5), 0);
        let out = run_stepped(&guest, &host, &Assignment::blocked(2, 4), EngineConfig::default())
            .unwrap();
        assert_eq!(out.stats.makespan, 0);
    }
}
