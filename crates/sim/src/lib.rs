//! # overlap-sim
//!
//! A cycle-accurate discrete-event simulator for networks of workstations
//! (NOWs) executing *database-model* guest computations (SPAA'96 latency
//! hiding).
//!
//! ## Execution model
//!
//! The central abstraction is the [`Assignment`]: which host processors hold
//! a copy of which guest databases. Per the paper (§2), a processor holding
//! a copy of `b_i` is the only kind of processor that can compute pebbles of
//! column `i`, and in all of the paper's algorithms every holder computes
//! *every* pebble of its columns (redundant computation). Given an
//! assignment, the [`engine`] executes greedily:
//!
//! * a processor computes one pebble per tick, in step order per column,
//!   as soon as all dependencies are locally known;
//! * dependencies on non-held columns are satisfied by *subscriptions*:
//!   each (consumer, column) pair is served by the nearest holder over a
//!   fixed shortest-delay route ([`routing`]);
//! * links carry `bw` pebbles per tick with pipelining — `P` pebbles cross
//!   a delay-`d` link in `d + ⌈P/bw⌉ − 1` ticks ([`bandwidth`]), the
//!   paper's exact communication cost;
//! * the *makespan* is the tick at which every holder has computed every
//!   pebble of its columns; `slowdown = makespan / guest_steps`.
//!
//! Every run is [validated](validate) against the unit-delay reference
//! executor: per-column value digests and final database digests must match
//! on **every copy**.
//!
//! The paper's algorithms (OVERLAP and friends, in `overlap-core`) are
//! assignment *constructors*; their theorems' slowdown bounds are measured,
//! not assumed.

#![warn(missing_docs)]

pub mod assignment;
pub mod bandwidth;
pub mod calendar;
pub mod control;
pub mod engine;
pub mod engine_classic;
pub mod faults;
pub mod fuzz;
pub mod lockstep;
pub mod multicast;
pub mod parallel;
pub mod plan;
pub mod routing;
pub mod sharded;
pub mod stats;
pub mod stepped;
pub mod sweep;
pub mod trace;
pub mod validate;

pub use assignment::Assignment;
pub use bandwidth::BandwidthMode;
pub use control::RunControl;
pub use engine::{Engine, EngineConfig, Jitter, RunError, RunOutcome};
pub use faults::{FaultPlan, RetryPolicy};
pub use lockstep::{run_lockstep, run_lockstep_controlled};
pub use plan::{fnv1a, scenario_hash, scenario_key, AppliedDelta, ExecPlan, PlanDelta};
pub use routing::RoutingTable;
pub use sharded::{run_sharded, run_sharded_controlled, run_sharded_with, Partition};
pub use stats::{FaultStats, RunStats};
pub use stepped::{run_stepped, run_stepped_controlled};
pub use trace::{MsgKey, NoopTracer, ReadyCause, StallBreakdown, TraceConfig, TraceReport, Tracer};
pub use validate::{audit_causality, validate_run};
